//! Property test: `SimConfig` ⇄ JSON is exact.
//!
//! Random field mutations — every leaf of [`SimConfig::FIELD_PATHS`],
//! including enums, bools and 64-bit integers — round-trip through
//! `to_json` / `from_json` with structural equality and byte-identical
//! re-serialisation. Alongside, the error paths: unknown keys and bad
//! enum names are rejected with messages naming the offender.

use proptest::prelude::*;
use rix::isa::json::Json;
use rix::prelude::*;

/// A type-appropriate random value for one leaf field.
fn value_for(leaf: &str, x: u64) -> Json {
    match leaf {
        "shared_ldst" | "enabled" | "general_reuse" => Json::Bool(x.is_multiple_of(2)),
        "index" => Json::Str(["pc", "opcode_depth"][x as usize % 2].into()),
        "reverse" => {
            Json::Str(["off", "stack_pointer", "all_invertible"][x as usize % 3].into())
        }
        "suppression" => Json::Str(["lisp", "oracle"][x as usize % 2].into()),
        // u64-typed leaves (stack_top, delays) keep full range; the
        // usize/u32 leaves truncate on apply, so bound the probe to stay
        // representable (round-tripping is about serialisation, not
        // machine buildability).
        "stack_top" => Json::Num(x.to_string()),
        _ => Json::Num((x % (1 << 31)).to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn simconfig_json_round_trip_is_exact(
        muts in proptest::collection::vec(
            (0usize..SimConfig::FIELD_PATHS.len(), any::<u64>()),
            0..12,
        )
    ) {
        let mut cfg = SimConfig::default();
        for (pi, x) in muts {
            let path = SimConfig::FIELD_PATHS[pi];
            let leaf = path.rsplit('.').next().expect("paths are non-empty");
            cfg.set_path(path, &value_for(leaf, x)).expect("valid probe value");
        }
        let json = cfg.to_json();
        let back = SimConfig::from_json(&json).expect("own serialisation parses");
        prop_assert_eq!(back, cfg, "structural equality after the round trip");
        prop_assert_eq!(back.to_json(), json, "byte-identical re-serialisation");
    }
}

#[test]
fn every_preset_round_trips_exactly() {
    for (name, _) in SimConfig::PRESET_NAMES {
        let cfg = SimConfig::preset(name).expect("listed preset resolves");
        let back = SimConfig::from_json(&cfg.to_json()).expect("parses");
        assert_eq!(back, cfg, "preset `{name}`");
        assert_eq!(back.to_json(), cfg.to_json(), "preset `{name}` serialisation");
        // And the emitted JSON is well-formed for external tooling.
        assert!(Json::parse(&cfg.to_json()).is_ok());
    }
}

#[test]
fn unknown_keys_name_the_offender_at_depth() {
    for (doc, offender, suggestion) in [
        (r#"{"nun_pregs": 1}"#, "nun_pregs", "num_pregs"),
        (r#"{"core": {"issue": {"widht": 3}}}"#, "widht", "width"),
        (r#"{"predictor": {"history_bitz": 9}}"#, "history_bitz", "history_bits"),
        (r#"{"mem": {"l2": {"hit_latensy": 9}}}"#, "hit_latensy", "hit_latency"),
    ] {
        let err = SimConfig::from_json(doc).unwrap_err();
        assert!(err.contains(&format!("unknown key `{offender}`")), "{doc}: {err}");
        assert!(err.contains(suggestion), "{doc} suggests `{suggestion}`: {err}");
    }
}

#[test]
fn enum_typos_list_the_choices() {
    let err = SimConfig::from_json(r#"{"integration":{"index":"opcode"}}"#).unwrap_err();
    assert!(err.contains("opcode_depth"), "{err}");
    let err = SimConfig::from_json(r#"{"integration":{"reverse":"stack"}}"#).unwrap_err();
    assert!(err.contains("stack_pointer"), "{err}");
}
