//! Smoke test: every advertised benchmark builds a program and survives
//! early simulation. This guards the workload generator's contract with
//! the rest of the system — `all_benchmarks()` names must build, and the
//! built programs must keep the pipeline busy rather than wedging or
//! panicking in the first thousand cycles.

use rix::prelude::*;

#[test]
fn every_benchmark_builds_and_runs_1k_cycles() {
    let benchmarks = all_benchmarks();
    assert_eq!(benchmarks.len(), 16, "the paper's 16 benchmark points");
    for b in &benchmarks {
        let named = by_name(b.name).unwrap_or_else(|| panic!("{} resolves by name", b.name));
        assert_eq!(named.name, b.name);
        let program = b.build(7);
        assert!(!program.is_empty(), "{}: empty program", b.name);
        for cfg in [SimConfig::baseline(), SimConfig::default()] {
            let mut sim = Simulator::new(&program, cfg);
            while sim.cycle() < 1_000 && !sim.halted() {
                sim.step();
            }
            assert!(sim.cycle() >= 1_000, "{}: halted after only {} cycles", b.name, sim.cycle());
            assert!(
                sim.stats().retired > 0,
                "{}: no instructions retired in 1k cycles",
                b.name
            );
        }
    }
}
