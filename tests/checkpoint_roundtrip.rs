//! Checkpoint round-trip: checkpoint mid-run → save → load → resume
//! produces a `RunResult::to_json()` **byte-identical** to the
//! uninterrupted session.
//!
//! "Uninterrupted" is the session that called `checkpoint()` and kept
//! running in the same process, never touching disk; the resumed session
//! reconstructs itself in a "different process" (a fresh `Simulator`)
//! from the file. `Simulator::checkpoint` re-synchronises the live
//! session to exactly the state a restore produces — that contract is
//! what these tests pin down.

use rix::prelude::*;

const SEED: u64 = 7;

fn ckpt_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rix_ckpt_{tag}_{}.json", std::process::id()))
}

#[test]
fn save_load_resume_is_byte_identical() {
    for bench in ["gcc", "vortex", "mcf"] {
        let program = by_name(bench).expect("known benchmark").build(SEED);
        for (label, cfg) in
            [("base", SimConfig::baseline()), ("integration", SimConfig::default())]
        {
            let mut live = Simulator::new(&program, cfg);
            live.run_until(&StopWhen::RetiredAtLeast(8_000));
            let ck = live.checkpoint();
            assert!(ck.arch.retired >= 8_000);

            let path = ckpt_path(&format!("{bench}_{label}"));
            ck.save(&path).expect("write checkpoint");
            let loaded = Checkpoint::load(&path).expect("read checkpoint");
            std::fs::remove_file(&path).ok();
            assert_eq!(loaded, ck, "disk round trip is lossless");

            let mut resumed = Simulator::from_checkpoint(&program, cfg, &loaded);
            let a = live.run_budget(20_000);
            let b = resumed.run_budget(20_000);
            assert_eq!(
                a.to_json(),
                b.to_json(),
                "{bench}/{label}: resumed session drifted from the uninterrupted one"
            );
            assert!(b.stats.retired >= 20_000, "stats continue across the restore");
        }
    }
}

/// A checkpoint refuses to resume against the wrong program: the
/// snapshot records a fingerprint of the instruction stream + data
/// image, and `from_checkpoint` checks it.
#[test]
#[should_panic(expected = "different program")]
fn restore_rejects_the_wrong_program() {
    let bench = by_name("gcc").expect("known benchmark");
    let program = bench.build(SEED);
    let mut sim = Simulator::new(&program, SimConfig::default());
    sim.run_until(&StopWhen::RetiredAtLeast(1_000));
    let ck = sim.checkpoint();
    let other = bench.build(SEED + 1); // same benchmark, different seed
    let _ = Simulator::from_checkpoint(&other, SimConfig::default(), &ck);
}

/// Checkpointing inside a measurement interval (after `reset_stats`)
/// carries the partial counters — including the memory-hierarchy block,
/// which restarts at zero in the restored `MemSystem` — across the
/// restore.
#[test]
fn checkpoint_mid_measurement_carries_stats() {
    let program = by_name("mcf").expect("known benchmark").build(SEED);
    let cfg = SimConfig::default();
    let mut live = Simulator::new(&program, cfg);
    live.run_until(&StopWhen::RetiredAtLeast(3_000));
    live.reset_stats();
    live.run_until(&StopWhen::RetiredAtLeast(4_000));
    let ck = live.checkpoint();
    assert!(ck.stats.mem.l1d.misses > 0, "mcf misses inside the measured segment");
    assert!(ck.stats.retired >= 4_000 && ck.stats.retired < ck.arch.retired);

    let mut resumed = Simulator::from_checkpoint(&program, cfg, &ck);
    let a = live.run_budget(10_000);
    let b = resumed.run_budget(10_000);
    assert_eq!(a.to_json(), b.to_json());
    assert!(
        b.stats.mem.l1d.misses >= ck.stats.mem.l1d.misses,
        "memory counters accumulate on top of the carried block"
    );
}

/// The serialised form is plain JSON that the in-repo reader — and
/// therefore `python3 -m json.tool`, which CI runs on a saved file —
/// accepts, and it is stable: parse → serialise is the identity.
#[test]
fn checkpoint_file_is_canonical_json() {
    let program = by_name("crafty").expect("known benchmark").build(SEED);
    let mut sim = Simulator::new(&program, SimConfig::default());
    sim.run_until(&StopWhen::RetiredAtLeast(2_000));
    let ck = sim.checkpoint();
    let text = ck.to_json();
    let parsed = rix::isa::json::Json::parse(&text).expect("well-formed JSON");
    assert_eq!(parsed.get("schema").and_then(|s| s.as_str()), Some("rix-ckpt/1"));
    assert_eq!(Checkpoint::from_json(&text).expect("parses").to_json(), text);

    // A halted session checkpoints and restores too (and stays halted).
    let mut a = Asm::new();
    a.addq_i(reg::R1, reg::ZERO, 3);
    a.halt();
    let tiny = a.assemble().expect("assembles");
    let mut sim = Simulator::new(&tiny, SimConfig::default());
    sim.run_until(&StopWhen::RetiredAtLeast(100));
    assert!(sim.halted());
    let ck = sim.checkpoint();
    assert!(ck.arch.halted);
    assert_eq!(ck.arch.retired, 2);
    let mut resumed = Simulator::from_checkpoint(&tiny, SimConfig::default(), &ck);
    assert!(resumed.halted());
    assert_eq!(resumed.run_budget(100).to_json(), sim.run_budget(100).to_json());
}
