//! Property test: for random generated programs, the out-of-order
//! core's **retired `ArchState`** equals the reference interpreter's —
//! mid-run at an arbitrary retirement boundary and at the final halt —
//! under both the baseline and the full-integration configuration.
//!
//! This is stricter than `tests/differential.rs` (which compares final
//! registers): `ArchState` equality covers the PC chain, the retired
//! position, and the memory image word-for-word, and the mid-run probe
//! checks a boundary the machine reaches with speculation still in
//! flight around it.

use proptest::prelude::*;
use rix::prelude::*;

const STACK_TOP: u64 = 0x0800_0000;

/// One random body operation (a compact cousin of the generator in
/// `tests/differential.rs`, biased toward memory traffic so the image
/// comparison has something to chew on).
#[derive(Clone, Debug)]
enum BodyOp {
    Alu(u8, u8, u8, u8),
    AluImm(u8, u8, u8, i16),
    Load(u8, u8, u16),
    Store(u8, u8, u16),
    Hammock(u8, i16, i16),
    SaveRestore(u8, u8),
}

fn alu_opcode(kind: u8) -> Opcode {
    match kind % 8 {
        0 => Opcode::Addq,
        1 => Opcode::Subq,
        2 => Opcode::And,
        3 => Opcode::Or,
        4 => Opcode::Xor,
        5 => Opcode::Mulq,
        6 => Opcode::Cmplt,
        _ => Opcode::Cmpeq,
    }
}

fn gp(n: u8) -> rix::isa::LogReg {
    rix::isa::LogReg::int(1 + (n % 12))
}

fn build(ops: &[BodyOp], trips: u8) -> Program {
    let mut a = Asm::new();
    for i in 0..13 {
        a.addq_i(rix::isa::LogReg::int(1 + i), reg::ZERO, i32::from(i) * 41 + 3);
    }
    a.addq_i(rix::isa::LogReg::int(14), reg::ZERO, i32::from(trips % 8) + 2);
    let mut label = 0usize;
    a.label("loop");
    for op in ops {
        match *op {
            BodyOp::Alu(k, d, x, y) => {
                a.emit(rix::isa::Instr::alu_rr(alu_opcode(k), gp(d), gp(x), gp(y)));
            }
            BodyOp::AluImm(k, d, x, imm) => {
                a.emit(rix::isa::Instr::alu_ri(alu_opcode(k), gp(d), gp(x), i32::from(imm)));
            }
            BodyOp::Load(d, b, off) => {
                a.and_i(rix::isa::LogReg::int(15), gp(b), 0x3f8);
                a.addq_i(rix::isa::LogReg::int(15), rix::isa::LogReg::int(15), 0x4000);
                a.ldq(gp(d), i32::from(off % 64) * 8, rix::isa::LogReg::int(15));
            }
            BodyOp::Store(v, b, off) => {
                a.and_i(rix::isa::LogReg::int(15), gp(b), 0x3f8);
                a.addq_i(rix::isa::LogReg::int(15), rix::isa::LogReg::int(15), 0x4000);
                a.stq(gp(v), i32::from(off % 64) * 8, rix::isa::LogReg::int(15));
            }
            BodyOp::Hammock(c, ia, ib) => {
                label += 1;
                let arm = format!("arm{label}");
                let join = format!("join{label}");
                a.and_i(rix::isa::LogReg::int(15), gp(c), 3);
                a.beq(rix::isa::LogReg::int(15), arm.clone());
                a.addq_i(gp(c.wrapping_add(1)), gp(c), i32::from(ia));
                a.br(join.clone());
                a.label(arm);
                a.addq_i(gp(c.wrapping_add(1)), gp(c), i32::from(ib));
                a.label(join);
            }
            BodyOp::SaveRestore(v, w) => {
                a.lda(reg::SP, -16, reg::SP);
                a.stq(gp(v), 0, reg::SP);
                a.stq(gp(w), 8, reg::SP);
                a.addq_i(gp(v), reg::ZERO, 1);
                a.addq_i(gp(w), reg::ZERO, 2);
                a.ldq(gp(v), 0, reg::SP);
                a.ldq(gp(w), 8, reg::SP);
                a.lda(reg::SP, 16, reg::SP);
            }
        }
    }
    a.subq_i(rix::isa::LogReg::int(14), rix::isa::LogReg::int(14), 1);
    a.bne(rix::isa::LogReg::int(14), "loop");
    a.halt();
    a.assemble().expect("generated program assembles")
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(k, d, x, y)| BodyOp::Alu(k, d, x, y)),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<i16>())
            .prop_map(|(k, d, x, i)| BodyOp::AluImm(k, d, x, i)),
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(d, b, o)| BodyOp::Load(d, b, o)),
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(v, b, o)| BodyOp::Store(v, b, o)),
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(v, b, o)| BodyOp::Store(v, b, o)),
        (any::<u8>(), -20i16..20, -20i16..20)
            .prop_map(|(c, x, y)| BodyOp::Hammock(c, x, y)),
        (any::<u8>(), any::<u8>()).prop_map(|(v, w)| BodyOp::SaveRestore(v, w)),
    ]
}

fn arch_agrees(program: &Program, cfg: SimConfig) -> Result<(), TestCaseError> {
    let mut reference = Interp::new(program, STACK_TOP);
    let stop = reference.run(200_000);
    prop_assert_eq!(stop, InterpStopReason::Halted, "reference halts");
    let total = reference.steps();

    // Mid-run probe: stop the detailed machine at an arbitrary
    // retirement boundary (it may overshoot the ask by retire-width),
    // then fast-forward a fresh interpreter to the exact position.
    let mut sim = Simulator::new(program, cfg);
    sim.run_until(&StopWhen::RetiredAtLeast(total / 2));
    let mid = sim.arch_state();
    let expected_mid = Interp::new(program, STACK_TOP).fast_forward(mid.retired);
    prop_assert_eq!(&mid, &expected_mid, "mid-run arch state diverged");

    // Run the same session to the halt: the final states agree, halt
    // flag, retired count and memory image included.
    sim.run_until(&StopWhen::RetiredAtLeast(total + 8));
    prop_assert!(sim.halted(), "pipeline halts");
    let fin = sim.arch_state();
    prop_assert_eq!(&fin, reference.arch_state(), "final arch state diverged");
    prop_assert_eq!(fin.retired, total, "every instruction retired exactly once");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Random programs retire into interpreter states under the baseline
    /// and the full integration machine.
    #[test]
    fn random_programs_retire_into_interpreter_states(
        ops in proptest::collection::vec(body_op(), 1..20),
        trips in any::<u8>(),
    ) {
        let program = build(&ops, trips);
        arch_agrees(&program, SimConfig::baseline())?;
        arch_agrees(&program, SimConfig::default())?;
    }
}
