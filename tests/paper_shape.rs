//! Reproduction-shape tests: the qualitative claims of the paper's
//! evaluation, asserted with tolerant thresholds so the suite stays
//! robust to calibration noise. These are the "who wins, by roughly what
//! factor, where the crossovers fall" checks.

use rix::prelude::*;
use rix::sim::Simulator;

const BUDGET: u64 = 40_000;

fn run(name: &str, cfg: SimConfig) -> rix::sim::RunResult {
    let program = by_name(name).expect("known benchmark").build(7);
    Simulator::new(&program, cfg).run(BUDGET)
}

fn rate(name: &str, ic: IntegrationConfig) -> f64 {
    run(name, SimConfig::default().with_integration(ic))
        .stats
        .integration
        .rate()
}

#[test]
fn extension_staircase_on_average() {
    // §3.2: squash ≈ 2%, +general ≈ 10%, +reverse ≈ 17% (we assert the
    // ordering and coarse magnitudes over the benchmark mean).
    let names: Vec<_> = all_benchmarks().iter().map(|b| b.name).collect();
    let mean = |ic: IntegrationConfig| {
        names.iter().map(|n| rate(n, ic)).sum::<f64>() / names.len() as f64
    };
    let squash = mean(IntegrationConfig::squash_reuse());
    let general = mean(IntegrationConfig::plus_general());
    let reverse = mean(IntegrationConfig::plus_reverse());
    assert!(squash < 0.05, "squash-only is a few percent: {squash:.3}");
    assert!(general > squash + 0.05, "general reuse is the big jump: {general:.3}");
    assert!(general > 0.08, "general reuse around 10%: {general:.3}");
    assert!(reverse > 0.08, "full configuration around 10–17%: {reverse:.3}");
}

#[test]
fn opcode_indexing_helps_twin_heavy_hurts_call_poor() {
    // §3.2: crafty/perl.s/vortex gain ~10 points from opcode indexing;
    // gzip/vpr.r lose ~5.
    for winner in ["crafty", "perl.s", "vortex"] {
        let g = rate(winner, IntegrationConfig::plus_general());
        let o = rate(winner, IntegrationConfig::plus_opcode());
        assert!(o > g + 0.03, "{winner}: opcode indexing should gain ({g:.3} → {o:.3})");
    }
    for loser in ["gzip", "vpr.r"] {
        let g = rate(loser, IntegrationConfig::plus_general());
        let o = rate(loser, IntegrationConfig::plus_opcode());
        assert!(o < g - 0.02, "{loser}: opcode indexing should lose ({g:.3} → {o:.3})");
    }
}

#[test]
fn reverse_integration_is_a_call_intensive_phenomenon() {
    for call_heavy in ["vortex", "gcc", "perl.s", "eon.k", "gap"] {
        let r = run(call_heavy, SimConfig::default());
        assert!(
            r.stats.integration.reverse_rate() > 0.01,
            "{call_heavy}: reverse rate {:.4}",
            r.stats.integration.reverse_rate()
        );
    }
    for call_poor in ["gzip", "vpr.r"] {
        let r = run(call_poor, SimConfig::default());
        assert!(
            r.stats.integration.reverse_rate() < 0.005,
            "{call_poor}: reverse rate {:.4}",
            r.stats.integration.reverse_rate()
        );
    }
}

#[test]
fn integration_speeds_up_call_intensive_benchmarks() {
    for name in ["vortex", "gcc", "perl.d", "gap", "eon.k"] {
        let base = run(name, SimConfig::baseline());
        let full = run(name, SimConfig::default());
        assert!(
            full.ipc() > base.ipc() * 1.01,
            "{name}: {:.3} vs {:.3}",
            full.ipc(),
            base.ipc()
        );
    }
}

#[test]
fn mcf_is_memory_bound_and_gains_least() {
    // §3.2: programs with a large cache-miss component benefit less.
    let base = run("mcf", SimConfig::baseline());
    let full = run("mcf", SimConfig::default());
    let mcf_gain = full.ipc() / base.ipc() - 1.0;
    assert!(base.ipc() < 0.6, "mcf is memory bound: IPC {:.2}", base.ipc());
    assert!(mcf_gain.abs() < 0.02, "mcf speedup is tiny: {mcf_gain:.3}");
    assert!(
        full.stats.integration.rate() > 0.05,
        "…even though it integrates plenty: {:.3}",
        full.stats.integration.rate()
    );
}

#[test]
fn oracle_suppression_dominates_realistic() {
    for name in ["crafty", "vortex"] {
        let real = run(name, SimConfig::default());
        let oracle = run(
            name,
            SimConfig::default()
                .with_integration(IntegrationConfig::plus_reverse().with_oracle()),
        );
        assert_eq!(oracle.stats.integration.mis_integrations, 0, "{name}");
        assert!(
            oracle.ipc() >= real.ipc() * 0.995,
            "{name}: oracle {:.3} vs realistic {:.3}",
            oracle.ipc(),
            real.ipc()
        );
    }
}

#[test]
fn low_associativity_degrades_gracefully() {
    // §3.4: dropping to 2-way/1-way costs little.
    let program = by_name("vortex").expect("known benchmark").build(7);
    let base = Simulator::new(&program, SimConfig::baseline()).run(BUDGET);
    let mut ipcs = Vec::new();
    for ways in [1usize, 2, 4] {
        let ic = IntegrationConfig::plus_reverse().with_it_geometry(1024, ways);
        let r = Simulator::new(&program, SimConfig::default().with_integration(ic)).run(BUDGET);
        ipcs.push(r.ipc());
    }
    for (i, ipc) in ipcs.iter().enumerate() {
        assert!(
            *ipc > base.ipc(),
            "{}-way IT still beats baseline: {ipc:.3} vs {:.3}",
            1 << i,
            base.ipc()
        );
    }
    assert!(
        ipcs[0] > ipcs[2] * 0.93,
        "direct-mapped keeps most of the benefit: {ipcs:?}",
    );
}

#[test]
fn integration_reduces_executed_loads_and_rs_pressure() {
    // §3.5: ~27% fewer executed loads, lower RS occupancy.
    let base = run("vortex", SimConfig::baseline());
    let full = run("vortex", SimConfig::default());
    assert!(
        full.stats.loads_executed < base.stats.loads_executed,
        "{} vs {}",
        full.stats.loads_executed,
        base.stats.loads_executed
    );
    assert!(
        full.stats.avg_rs_occupancy() < base.stats.avg_rs_occupancy(),
        "{:.1} vs {:.1}",
        full.stats.avg_rs_occupancy(),
        base.stats.avg_rs_occupancy()
    );
    assert!(
        full.stats.executed < base.stats.executed,
        "integrating instructions bypass the execution engine"
    );
}

#[test]
fn generalised_reverse_scope_is_a_superset() {
    // §2.4 sketches reverse entries beyond the stack pointer; the
    // AllInvertible scope must find at least as much reverse reuse as
    // the paper's sp-only design point (at the cost of IT pressure).
    let sp_only = run("vortex", SimConfig::default());
    let all = run(
        "vortex",
        SimConfig::default().with_integration(IntegrationConfig {
            reverse: rix::integration::ReverseScope::AllInvertible,
            ..IntegrationConfig::plus_reverse()
        }),
    );
    assert!(
        all.stats.integration.reverse >= sp_only.stats.integration.reverse / 2,
        "wider scope keeps most sp reuse: {} vs {}",
        all.stats.integration.reverse,
        sp_only.stats.integration.reverse
    );
}

#[test]
fn integration_accelerates_branch_resolution() {
    // §3.2: resolution latency 26 → 23.5 cycles in the paper.
    let base = run("vortex", SimConfig::baseline());
    let full = run("vortex", SimConfig::default());
    assert!(
        full.stats.branch_resolution_latency() < base.stats.branch_resolution_latency(),
        "{:.1} vs {:.1}",
        full.stats.branch_resolution_latency(),
        base.stats.branch_resolution_latency()
    );
}

#[test]
fn halved_reservation_stations_recovered_by_integration() {
    // §3.5: RS loss mostly recovered. Assert over call-intensive means.
    let names = ["gap", "gcc", "perl.d", "vortex", "parser"];
    let mut loss = 0.0;
    let mut recovered = 0.0;
    for name in names {
        let reference = run(name, SimConfig::baseline());
        let rs = run(name, SimConfig::baseline().with_core(rix::sim::CoreConfig::rs20()));
        let rs_i = run(name, SimConfig::default().with_core(rix::sim::CoreConfig::rs20()));
        loss += rs.ipc() / reference.ipc();
        recovered += rs_i.ipc() / reference.ipc();
    }
    loss /= names.len() as f64;
    recovered /= names.len() as f64;
    assert!(recovered > loss, "integration recovers RS loss: {loss:.3} → {recovered:.3}");
    assert!(recovered > 0.99, "… to within ~1% of the full machine: {recovered:.3}");
}
