//! The static-analysis layer against the shipped workloads, plus a
//! fixture pinning every stable diagnostic code to a minimal offending
//! program.
//!
//! The oracle half is the load-bearing part: for every workload under
//! both the baseline and the full-integration machine, the *static*
//! integration-opportunity bound must dominate the *dynamic* IT hit
//! count — a machine-checked link between `rix-analysis`' CFG/dataflow
//! view of a program and what the pipeline actually did with it.

use rix::prelude::*;

const BUDGET: u64 = 25_000;

fn has_code(program: &Program, code: LintCode) -> bool {
    lint_program(program).iter().any(|d| d.code == code)
}

// --- fixture: one minimal offending program per diagnostic code -------

#[test]
fn rix001_read_before_write() {
    let mut a = Asm::new();
    a.addq(reg::R2, reg::R1, reg::R1); // r1 never written
    a.halt();
    let p = a.assemble().unwrap();
    assert!(has_code(&p, LintCode::ReadBeforeWrite));
}

#[test]
fn rix001_flags_one_armed_writes() {
    // r2 is written on only one arm of the hammock, then read after the
    // join: not definitely assigned.
    let mut a = Asm::new();
    a.addq_i(reg::R1, reg::ZERO, 1);
    a.beq(reg::R1, "else");
    a.addq_i(reg::R2, reg::ZERO, 2);
    a.label("else");
    a.addq(reg::R3, reg::R2, reg::R2);
    a.halt();
    let p = a.assemble().unwrap();
    assert!(has_code(&p, LintCode::ReadBeforeWrite));
}

#[test]
fn rix002_unreachable_block() {
    let mut a = Asm::new();
    a.br("end");
    a.addq_i(reg::R1, reg::ZERO, 1); // jumped over, no path reaches it
    a.label("end");
    a.halt();
    let p = a.assemble().unwrap();
    assert!(has_code(&p, LintCode::UnreachableBlock));
}

#[test]
fn rix003_no_reachable_halt() {
    let mut a = Asm::new();
    a.label("spin");
    a.br("spin");
    let p = a.assemble().unwrap();
    assert!(has_code(&p, LintCode::NoReachableHalt));
}

#[test]
fn rix004_branch_on_never_written() {
    let mut a = Asm::new();
    a.beq(reg::LogReg::int(7), "skip"); // r7 has no definition anywhere
    a.nop();
    a.label("skip");
    a.halt();
    let p = a.assemble().unwrap();
    assert!(has_code(&p, LintCode::BranchOnNeverWritten));
}

#[test]
fn rix005_const_addr_outside_segments() {
    let mut a = Asm::new();
    a.addq_i(reg::R1, reg::ZERO, 0x2000);
    a.ldq(reg::R2, 0, reg::R1); // constant 0x2000: no segment, no store
    a.halt();
    let p = a.assemble().unwrap();
    assert!(has_code(&p, LintCode::ConstAddrOutOfBounds));
}

#[test]
fn rix005_suppressed_by_covering_store() {
    // The generator's conflict-pair idiom: constant-address store first,
    // then the load of the same word. Not a finding.
    let mut a = Asm::new();
    a.addq_i(reg::R1, reg::ZERO, 0x2000);
    a.stq(reg::R1, 0, reg::R1);
    a.ldq(reg::R2, 0, reg::R1);
    a.halt();
    let p = a.assemble().unwrap();
    assert!(!has_code(&p, LintCode::ConstAddrOutOfBounds));
}

#[test]
fn rix006_misaligned_const_access() {
    let mut a = Asm::new();
    a.data(0x1000, (0..512).collect::<Vec<u64>>());
    a.addq_i(reg::R1, reg::ZERO, 0x1001);
    a.ldq(reg::R2, 3, reg::R1); // constant 0x1004: not 8-byte aligned
    a.halt();
    let p = a.assemble().unwrap();
    assert!(has_code(&p, LintCode::MisalignedConstAccess));
    assert!(!has_code(&p, LintCode::ConstAddrOutOfBounds), "it is inside the segment");
}

#[test]
fn rix007_falls_off_end() {
    let mut a = Asm::new();
    a.addq_i(reg::R1, reg::ZERO, 1); // no halt, no branch: runs off
    let p = a.assemble().unwrap();
    assert!(has_code(&p, LintCode::FallsOffEnd));
}

#[test]
fn every_code_is_pinned_and_distinct() {
    let codes: Vec<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
    assert_eq!(
        codes,
        ["RIX001", "RIX002", "RIX003", "RIX004", "RIX005", "RIX006", "RIX007"]
    );
}

// --- the shipped workloads lint clean ---------------------------------

#[test]
fn all_workloads_lint_clean_across_seeds() {
    for seed in [1, 7, 42] {
        for b in all_benchmarks() {
            let p = b.build(seed);
            let findings = lint_program(&p);
            assert!(
                findings.is_empty(),
                "{} (seed {seed}) has lint findings:\n{}",
                b.name,
                findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
            );
        }
    }
}

// --- the integration-opportunity oracle vs. dynamic IT stats ----------

/// Per-PC execution counts of the first `retired` architectural steps,
/// from the reference interpreter (which retires the same stream as the
/// detailed simulator — see tests/arch_equivalence.rs).
fn profile(program: &Program, stack_top: u64, retired: u64) -> Vec<u64> {
    let mut counts = vec![0u64; program.len()];
    let mut interp = Interp::new(program, stack_top);
    for _ in 0..retired {
        if interp.halted() {
            break;
        }
        let pc = usize::try_from(interp.pc()).expect("pc fits in usize");
        counts[pc] += 1;
        interp.run(1);
    }
    counts
}

#[test]
fn static_bound_dominates_dynamic_hits_all_workloads_both_configs() {
    for b in all_benchmarks() {
        let program = b.build(7);
        let opp = analyze_program(&program);
        assert!(opp.integrable > 0, "{}", b.name);
        for (label, cfg) in [("base", SimConfig::baseline()), ("integration", SimConfig::default())]
        {
            let stack_top = cfg.stack_top;
            let r = Simulator::new(&program, cfg).run(BUDGET);
            let hits = r.stats.integration.integrations();
            let retired = r.stats.retired;
            assert!(
                hits <= opp.hit_bound(retired),
                "{}/{label}: {hits} dynamic hits exceed the static bound {} ({} retired)",
                b.name,
                opp.hit_bound(retired),
                retired
            );
            // The profile-weighted bound is the tight one: total
            // retirements of integration-eligible PCs.
            let weighted = opp.weighted_bound(&profile(&program, stack_top, retired));
            assert!(
                hits <= weighted,
                "{}/{label}: {hits} dynamic hits exceed the profile-weighted bound {weighted}",
                b.name,
            );
            assert!(
                weighted <= retired,
                "{}/{label}: eligible retirements cannot exceed retirements",
                b.name,
            );
        }
    }
}

#[test]
fn oracle_reports_reverse_pairs_for_call_heavy_workloads() {
    // vortex is the paper's stack-traffic showcase: callee saves pair
    // with restores, frame pushes pair with pops.
    let p = by_name("vortex").unwrap().build(7);
    let opp = analyze_program(&p);
    assert!(opp.reverse_sources > 0);
    assert!(opp.reverse_pairs > 0);
    assert!(opp.opportunity_fraction() > 0.4, "{}", opp.opportunity_fraction());
}
