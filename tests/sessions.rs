//! The resumable-session execution API: determinism of `run` vs an
//! interleaved `step`/`run_until` session, and warm-up semantics of
//! `reset_stats`.

use rix::prelude::*;

/// `run(n)` and an interleaved `step()`/`run_until` session over the
/// same program and config must produce byte-identical statistics: the
/// session API is a pure refactoring of the run loop, not a different
/// machine.
#[test]
fn run_and_session_are_byte_identical() {
    let program = by_name("gcc").expect("known benchmark").build(7);
    let target = 20_000;
    let one_shot = Simulator::new(&program, SimConfig::default()).run(target);

    let mut sim = Simulator::new(&program, SimConfig::default());
    // Interleave: manual single-stepping, a partial run_until, then the
    // same stop condition `run(n)` uses internally.
    for _ in 0..257 {
        sim.step();
    }
    let reason = sim.run_until(&StopWhen::RetiredAtLeast(5_000));
    assert_eq!(reason, StopReason::RetiredAtLeast(5_000));
    let session = sim.run_budget(target);

    assert_eq!(one_shot.stats, session.stats);
    assert_eq!(one_shot.halted, session.halted);
    assert!(!session.timed_out);
}

/// `reset_stats` zeroes every counter (including the memory-hierarchy
/// deltas) but preserves machine state: after warming up, the measured
/// IPC on a cache-heavy workload is at least the cold-start IPC.
#[test]
fn reset_stats_warms_up_without_losing_machine_state() {
    // mcf: the paper's cache-miss-bound pointer chaser.
    let program = by_name("mcf").expect("known benchmark").build(7);
    let measure = 20_000;
    let cold = Simulator::new(&program, SimConfig::default()).run(measure);
    assert!(cold.stats.mem.l1d.misses > 0, "mcf misses in the cold run");

    let mut sim = Simulator::new(&program, SimConfig::default());
    sim.run_until(&StopWhen::RetiredAtLeast(20_000));
    let warmup_cycles = sim.cycle();
    sim.reset_stats();
    // Counters are zeroed...
    assert_eq!(sim.stats().retired, 0);
    assert_eq!(sim.stats().cycles, 0);
    assert_eq!(sim.stats().mem.l1d.misses, 0);
    // ...but machine state is preserved: absolute time keeps counting.
    assert_eq!(sim.cycle(), warmup_cycles);

    let reason = sim.run_until(&StopWhen::RetiredAtLeast(measure));
    assert_eq!(reason, StopReason::RetiredAtLeast(measure));
    let warm = sim.result();
    assert!(warm.stats.retired >= measure);
    assert_eq!(
        warm.stats.cycles,
        sim.cycle() - warmup_cycles,
        "measured cycles count from the reset, not from construction"
    );
    assert!(
        warm.ipc() >= cold.ipc(),
        "warm IPC {:.4} should be at least cold IPC {:.4}",
        warm.ipc(),
        cold.ipc()
    );
    assert!(
        warm.stats.mem.l1i.misses < cold.stats.mem.l1i.misses,
        "the I-cache is warm after warm-up ({} vs {})",
        warm.stats.mem.l1i.misses,
        cold.stats.mem.l1i.misses
    );
}

/// The combined stop conditions report which leaf fired, and a cycle
/// budget interrupts a session that a retired-count target would not.
#[test]
fn stop_conditions_compose() {
    let program = by_name("gzip").expect("known benchmark").build(7);
    let mut sim = Simulator::new(&program, SimConfig::baseline());
    let reason = sim.run_until(
        &StopWhen::RetiredAtLeast(u64::MAX).or(StopWhen::CyclesAtLeast(1_000)),
    );
    assert_eq!(reason, StopReason::CyclesAtLeast(1_000));
    assert!(sim.stats().cycles >= 1_000);

    // Resuming the same session with an `All` condition keeps going
    // until both thresholds hold.
    let reason = sim.run_until(
        &StopWhen::RetiredAtLeast(2_000).and(StopWhen::CyclesAtLeast(2_000)),
    );
    assert!(matches!(
        reason,
        StopReason::RetiredAtLeast(2_000) | StopReason::CyclesAtLeast(2_000)
    ));
    assert!(sim.stats().retired >= 2_000 && sim.stats().cycles >= 2_000);
}

/// `RunResult::to_json` emits well-formed JSON with the headline
/// counters of a real run.
#[test]
fn run_result_serialises_to_json() {
    let program = by_name("bzip2").expect("known benchmark").build(7);
    let r = Simulator::new(&program, SimConfig::default()).run(5_000);
    let j = r.to_json();
    assert!(j.starts_with('{') && j.ends_with('}'));
    assert_eq!(j.matches('{').count(), j.matches('}').count());
    assert_eq!(j.matches('[').count(), j.matches(']').count());
    for key in ["\"halted\":", "\"ipc\":", "\"retired\":", "\"integration\":", "\"l1d\":"] {
        assert!(j.contains(key), "missing {key} in {j}");
    }
    assert!(!j.contains("NaN") && !j.contains("inf"));
}
