//! Differential testing: random (but always-terminating) programs run on
//! the out-of-order pipeline and the in-order reference interpreter, and
//! the final architectural state must match exactly — under every
//! integration configuration. This is the strongest correctness property
//! of the reproduction: integration, mis-integration recovery, wrong-path
//! execution, and memory-order speculation must all be architecturally
//! invisible.

use proptest::prelude::*;
use rix::isa::interp::{Interp, StopReason};
use rix::isa::{reg, Asm, LogReg, Opcode, Program};
use rix::prelude::*;

const STACK_TOP: u64 = 0x0800_0000;

/// One random body operation.
#[derive(Clone, Debug)]
enum BodyOp {
    Alu(u8, u8, u8, u8), // op-kind, dst, a, b
    AluImm(u8, u8, u8, i16),
    Load(u8, u8, u16),
    Store(u8, u8, u16),
    Hammock(u8, i16, i16),
    SaveRestore(u8, u8),
}

fn alu_opcode(kind: u8) -> Opcode {
    match kind % 8 {
        0 => Opcode::Addq,
        1 => Opcode::Subq,
        2 => Opcode::And,
        3 => Opcode::Or,
        4 => Opcode::Xor,
        5 => Opcode::Mulq,
        6 => Opcode::Cmplt,
        _ => Opcode::Cmpeq,
    }
}

/// Registers the generator may use freely (avoids sp/ra/zero).
fn gp(n: u8) -> LogReg {
    LogReg::int(1 + (n % 12))
}

fn build(ops: &[BodyOp], trips: u8) -> Program {
    let mut a = Asm::new();
    // Deterministic initial values.
    for i in 0..13 {
        a.addq_i(LogReg::int(1 + i), reg::ZERO, i32::from(i) * 37 + 5);
    }
    a.addq_i(LogReg::int(14), reg::ZERO, i32::from(trips % 8) + 2); // counter
    let mut label = 0usize;
    a.label("loop");
    for op in ops {
        match *op {
            BodyOp::Alu(k, d, x, y) => {
                a.emit(rix::isa::Instr::alu_rr(alu_opcode(k), gp(d), gp(x), gp(y)));
            }
            BodyOp::AluImm(k, d, x, imm) => {
                a.emit(rix::isa::Instr::alu_ri(alu_opcode(k), gp(d), gp(x), i32::from(imm)));
            }
            BodyOp::Load(d, b, off) => {
                // Confine addresses to a small aligned arena.
                a.and_i(LogReg::int(15), gp(b), 0x3f8);
                a.addq_i(LogReg::int(15), LogReg::int(15), 0x4000);
                a.ldq(gp(d), i32::from(off % 64) * 8, LogReg::int(15));
            }
            BodyOp::Store(v, b, off) => {
                a.and_i(LogReg::int(15), gp(b), 0x3f8);
                a.addq_i(LogReg::int(15), LogReg::int(15), 0x4000);
                a.stq(gp(v), i32::from(off % 64) * 8, LogReg::int(15));
            }
            BodyOp::Hammock(c, ia, ib) => {
                label += 1;
                let arm = format!("arm{label}");
                let join = format!("join{label}");
                a.and_i(LogReg::int(15), gp(c), 3);
                a.beq(LogReg::int(15), arm.clone());
                a.addq_i(gp(c.wrapping_add(1)), gp(c), i32::from(ia));
                a.br(join.clone());
                a.label(arm);
                a.addq_i(gp(c.wrapping_add(1)), gp(c), i32::from(ib));
                a.label(join);
            }
            BodyOp::SaveRestore(v, w) => {
                // The §2.4 idiom inline: push, save two, clobber, restore,
                // pop.
                a.lda(reg::SP, -16, reg::SP);
                a.stq(gp(v), 0, reg::SP);
                a.stq(gp(w), 8, reg::SP);
                a.addq_i(gp(v), reg::ZERO, 1);
                a.addq_i(gp(w), reg::ZERO, 2);
                a.ldq(gp(v), 0, reg::SP);
                a.ldq(gp(w), 8, reg::SP);
                a.lda(reg::SP, 16, reg::SP);
            }
        }
    }
    a.subq_i(LogReg::int(14), LogReg::int(14), 1);
    a.bne(LogReg::int(14), "loop");
    a.halt();
    a.assemble().expect("generated program assembles")
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(k, d, x, y)| BodyOp::Alu(k, d, x, y)),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<i16>())
            .prop_map(|(k, d, x, i)| BodyOp::AluImm(k, d, x, i)),
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(d, b, o)| BodyOp::Load(d, b, o)),
        (any::<u8>(), any::<u8>(), any::<u16>()).prop_map(|(v, b, o)| BodyOp::Store(v, b, o)),
        (any::<u8>(), -20i16..20, -20i16..20)
            .prop_map(|(c, x, y)| BodyOp::Hammock(c, x, y)),
        (any::<u8>(), any::<u8>()).prop_map(|(v, w)| BodyOp::SaveRestore(v, w)),
    ]
}

fn agree(program: &Program, cfg: SimConfig) -> Result<(), TestCaseError> {
    let mut interp = Interp::new(program, STACK_TOP);
    let stop = interp.run(200_000);
    prop_assert_eq!(stop, StopReason::Halted, "reference halts");
    let result = Simulator::new(program, cfg).run(interp.steps() + 8);
    prop_assert!(result.halted, "pipeline halts");
    // Re-run stepwise for register access.
    let mut sim = rix::sim::Simulator::new(program, cfg);
    while !sim.halted() && sim.cycle() < 2_000_000 {
        sim.step();
    }
    for i in 0..32 {
        let r = LogReg::int(i);
        prop_assert_eq!(sim.arch_reg(r), interp.reg(r), "register {} diverged", r);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random programs agree with the reference under the baseline and
    /// the full integration machine.
    #[test]
    fn random_programs_agree(ops in proptest::collection::vec(body_op(), 1..24), trips in any::<u8>()) {
        let program = build(&ops, trips);
        agree(&program, SimConfig::baseline())?;
        agree(&program, SimConfig::default())?;
    }

    /// ... and under squash-only reuse with a direct-mapped IT (the most
    /// conflict-prone configuration).
    #[test]
    fn random_programs_agree_squash_dm(ops in proptest::collection::vec(body_op(), 1..16), trips in any::<u8>()) {
        let program = build(&ops, trips);
        let ic = IntegrationConfig::squash_reuse().with_it_geometry(64, 1);
        agree(&program, SimConfig::default().with_integration(ic))?;
    }
}
