//! Golden determinism snapshots: architectural results must not drift.
//!
//! Runs every named workload at a fixed seed and instruction budget
//! under both the no-integration baseline and the full-integration
//! configuration, and compares `RunResult::to_json()` byte-for-byte
//! against the committed goldens in `tests/goldens/`. Performance
//! refactors of the simulator hot path must leave every counter —
//! cycles, squashes, cache misses, integration events — exactly
//! unchanged; any diff here is an architectural change, not an
//! optimisation, and needs a deliberate golden regeneration:
//!
//! ```text
//! RIX_BLESS=1 cargo test --test golden_determinism
//! ```

use rix::prelude::*;
use std::path::PathBuf;

const SEED: u64 = 7;
const BUDGET: u64 = 25_000;

fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("goldens")
}

fn configs() -> Vec<(&'static str, SimConfig)> {
    vec![("base", SimConfig::baseline()), ("integration", SimConfig::default())]
}

#[test]
fn run_results_match_committed_goldens() {
    let bless = std::env::var_os("RIX_BLESS").is_some();
    let dir = goldens_dir();
    if bless {
        std::fs::create_dir_all(&dir).expect("create goldens dir");
    }
    let mut failures = Vec::new();
    for bench in all_benchmarks() {
        let program = bench.build(SEED);
        for (label, cfg) in configs() {
            let got = Simulator::new(&program, cfg).run(BUDGET).to_json();
            let path = dir.join(format!("{}__{label}.json", bench.name));
            if bless {
                std::fs::write(&path, format!("{got}\n")).expect("write golden");
                continue;
            }
            let want = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    failures.push(format!("{}/{label}: missing golden {path:?}: {e}", bench.name));
                    continue;
                }
            };
            if want.trim_end() != got {
                failures.push(format!(
                    "{}/{label}: RunResult drifted from golden {path:?}\n  want: {}\n  got:  {got}",
                    bench.name,
                    want.trim_end()
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "architectural results changed ({} cells; rerun with RIX_BLESS=1 only if the \
         change is deliberate):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn goldens_are_committed_for_every_workload() {
    if std::env::var_os("RIX_BLESS").is_some() {
        return; // the blessing run is about to create them
    }
    let dir = goldens_dir();
    for bench in all_benchmarks() {
        for (label, _) in configs() {
            let path = dir.join(format!("{}__{label}.json", bench.name));
            assert!(path.is_file(), "missing golden {path:?}; run RIX_BLESS=1 once");
        }
    }
}
