//! Cross-crate end-to-end tests: every benchmark workload runs on the
//! full simulator, and the retired architectural state always equals the
//! reference interpreter's at the same instruction count — regardless of
//! speculation, integration, or mis-integration recovery along the way.

use rix::isa::interp::Interp;
use rix::isa::{reg, LogReg};
use rix::prelude::*;

const STACK_TOP: u64 = 0x0800_0000;
const BUDGET: u64 = 6_000;

/// Steps the simulator to at least `BUDGET` retired instructions, then
/// checks every integer register against the interpreter run to exactly
/// the same retirement count.
fn check_benchmark(bench: &Benchmark, cfg: SimConfig) {
    let program = bench.build(7);
    let mut sim = rix::sim::Simulator::new(&program, cfg);
    let limit = 100_000 + BUDGET * 60;
    while sim.stats().retired < BUDGET && sim.cycle() < limit && !sim.halted() {
        sim.step();
    }
    assert!(
        sim.stats().retired >= BUDGET,
        "{}: simulator stalled at {} retired",
        bench.name,
        sim.stats().retired
    );
    let retired = sim.stats().retired;
    let mut interp = Interp::new(&program, STACK_TOP);
    interp.run(retired);
    assert_eq!(interp.steps(), retired, "{}: reference kept pace", bench.name);
    for i in 0..32 {
        let r = LogReg::int(i);
        assert_eq!(
            sim.arch_reg(r),
            interp.reg(r),
            "{}: register {r} diverged after {retired} instructions",
            bench.name
        );
    }
}

#[test]
fn all_benchmarks_baseline() {
    for b in all_benchmarks() {
        check_benchmark(&b, SimConfig::baseline());
    }
}

#[test]
fn all_benchmarks_full_integration() {
    for b in all_benchmarks() {
        check_benchmark(&b, SimConfig::default());
    }
}

#[test]
fn all_benchmarks_oracle() {
    for b in all_benchmarks() {
        check_benchmark(&b, SimConfig::default().with_integration(
            IntegrationConfig::plus_reverse().with_oracle(),
        ));
    }
}

#[test]
fn all_benchmarks_squash_only() {
    for b in all_benchmarks() {
        check_benchmark(&b, SimConfig::default().with_integration(
            IntegrationConfig::squash_reuse(),
        ));
    }
}

#[test]
fn reduced_cores_stay_correct() {
    for core in [rix::sim::CoreConfig::rs20(), rix::sim::CoreConfig::iw3_rs20()] {
        for name in ["vortex", "gzip", "mcf"] {
            let b = by_name(name).expect("known benchmark");
            check_benchmark(&b, SimConfig::default().with_core(core));
        }
    }
}

#[test]
fn tiny_and_direct_mapped_its_stay_correct() {
    for (entries, ways) in [(64, 1), (1024, 1), (64, 64)] {
        let ic = IntegrationConfig::plus_reverse().with_it_geometry(entries, ways);
        let b = by_name("vortex").expect("known benchmark");
        check_benchmark(&b, SimConfig::default().with_integration(ic));
    }
}

#[test]
fn stack_pointer_stays_sane_under_reverse_integration() {
    // Reverse integration constantly re-maps sp; after any prefix the
    // architectural sp must still sit inside the stack region.
    let b = by_name("vortex").expect("known benchmark");
    let program = b.build(7);
    let mut sim = rix::sim::Simulator::new(&program, SimConfig::default());
    for _ in 0..30_000 {
        sim.step();
    }
    let sp = sim.arch_reg(reg::SP);
    assert!(sp <= STACK_TOP && sp > STACK_TOP - 0x10_000, "sp = {sp:#x}");
}
