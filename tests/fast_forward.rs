//! Functional fast-forward equivalence: for **every** workload, under
//! both the baseline and the full-integration configuration, the
//! detailed out-of-order machine retires into exactly the architectural
//! state the reference interpreter reports at the same retired position
//! — and a machine *booted* mid-program from an interpreter snapshot
//! (`Simulator::from_arch_state`) keeps retiring into interpreter
//! states.
//!
//! Equality is on the whole [`ArchState`]: PC, all 64 logical
//! registers, the retired position, and the memory image word-for-word.

use rix::prelude::*;

const SEED: u64 = 7;
const BUDGET: u64 = 2_500;

fn configs() -> Vec<(&'static str, SimConfig)> {
    vec![("base", SimConfig::baseline()), ("integration", SimConfig::default())]
}

#[test]
fn detailed_machine_retires_into_interpreter_states() {
    for bench in all_benchmarks() {
        let program = bench.build(SEED);
        for (label, cfg) in configs() {
            // Run the detailed machine cold to (at least) the budget;
            // retirement width means it may overshoot by a few, so ask
            // the interpreter for the exact position reached.
            let mut sim = Simulator::new(&program, cfg);
            sim.run_until(&StopWhen::budget(BUDGET));
            let state = sim.arch_state();
            assert!(state.retired >= BUDGET, "{}/{label} met the budget", bench.name);

            let expected =
                Interp::new(&program, cfg.stack_top).fast_forward(state.retired);
            assert_eq!(
                state, expected,
                "{}/{label}: detailed arch state diverged from the interpreter \
                 at retirement {}",
                bench.name, expected.retired
            );

            // Fork the detailed machine from the snapshot (cold
            // microarchitecture, mid-program architecture) and keep
            // going: it must continue retiring into interpreter states.
            let mut resumed = Simulator::from_arch_state(&program, cfg, &state);
            assert_eq!(resumed.retired_total(), state.retired);
            resumed.run_until(&StopWhen::budget(1_000));
            let later = resumed.arch_state();
            assert!(later.retired >= state.retired + 1_000);
            let expected_later =
                Interp::new(&program, cfg.stack_top).fast_forward(later.retired);
            assert_eq!(
                later, expected_later,
                "{}/{label}: resumed session diverged from the interpreter",
                bench.name
            );
        }
    }
}

/// `Interp::fast_forward(n)` is itself resumable: forwarding in two hops
/// lands on the same state as one, for every workload.
#[test]
fn fast_forward_composes() {
    for bench in all_benchmarks() {
        let program = bench.build(SEED);
        let stack_top = SimConfig::default().stack_top;
        let whole = Interp::new(&program, stack_top).fast_forward(BUDGET);
        let mut first = Interp::new(&program, stack_top);
        let mid = first.fast_forward(BUDGET / 3);
        let two_hop = Interp::from_arch_state(&program, mid).fast_forward(BUDGET - BUDGET / 3);
        assert_eq!(two_hop, whole, "{}", bench.name);
    }
}
