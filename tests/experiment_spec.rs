//! The spec-driven experiment engine, end to end:
//!
//! * every committed `specs/*.json` parses, materialises its arms and
//!   validates (what `exp run --dry-run` checks in CI),
//! * the committed fig4 spec produces exactly the historical arm
//!   labels, in order — the label-level half of the byte-identity
//!   contract (the trial values are pinned by
//!   `tests/golden_determinism.rs`),
//! * a spec run is byte-identical to the equivalent hand-built
//!   [`Sweep`],
//! * `WarmupMode::Checkpoint` forks every arm from saved PR-4
//!   checkpoints, equals a hand-rolled `from_checkpoint` fork, and
//!   rejects a seed mismatch descriptively,
//! * `Harness::emit_trials` writes `--output` files while preserving
//!   table mode.

use rix::prelude::*;

fn spec_dir() -> String {
    concat!(env!("CARGO_MANIFEST_DIR"), "/specs").to_string()
}

#[test]
fn every_committed_spec_parses_and_validates() {
    let dir = spec_dir();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("specs/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        seen += 1;
        let spec = ExperimentSpec::load(path.to_str().unwrap())
            .unwrap_or_else(|e| panic!("{path:?}: {e}"));
        let arms = spec.arms().unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(!arms.is_empty(), "{path:?} has arms");
        spec.sweep(&Harness::default())
            .validate()
            .unwrap_or_else(|e| panic!("{path:?}: {e}"));
        // Canonicalisation is a fixed point for every committed spec.
        let again = ExperimentSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(again.to_json(), spec.to_json(), "{path:?}");
        assert_eq!(again.fingerprint(), spec.fingerprint(), "{path:?}");
    }
    assert_eq!(seen, 5, "the five figure specs are committed");
}

#[test]
fn committed_fig_specs_produce_the_historical_arm_labels() {
    let load = |name: &str| {
        ExperimentSpec::load(&format!("{}/{name}.json", spec_dir())).expect("committed spec")
    };
    let labels = |spec: &ExperimentSpec| -> Vec<String> {
        spec.arms().unwrap().into_iter().map(|(l, _)| l).collect()
    };

    assert_eq!(
        labels(&load("fig4")),
        [
            "base", "squash", "squash*", "+general", "+general*", "+opcode", "+opcode*",
            "+reverse", "+reverse*"
        ]
    );
    assert_eq!(labels(&load("fig5")), ["default"]);
    assert_eq!(
        labels(&load("fig6")),
        [
            "base", "1-way", "1-way*", "2-way", "2-way*", "4-way", "4-way*", "full", "full*",
            "sz64", "sz64*", "sz256", "sz256*", "sz1K", "sz1K*", "sz4K", "sz4K*"
        ]
    );
    assert_eq!(
        labels(&load("fig7")),
        [
            "reference", "base", "base+i", "base*", "RS", "RS+i", "RS*", "IW", "IW+i", "IW*",
            "IW+RS", "IW+RS+i", "IW+RS*"
        ]
    );
    assert_eq!(
        labels(&load("ablations")),
        [
            "gen1", "gen2", "gen3", "gen4", "cnt1", "cnt2", "cnt3", "cnt4", "pipe0", "pipe2",
            "pipe4", "pipe8", "rev:off", "rev:stack pointer", "rev:all invertible"
        ]
    );

    // And the spec arms equal the historical hand-built configs, not
    // just their labels: fig7's `IW+RS+i` is the reduced core with the
    // default integration machinery.
    let fig7 = load("fig7");
    let arms = fig7.arms().unwrap();
    let (_, iw_rs_i) = &arms[11];
    assert_eq!(
        *iw_rs_i,
        SimConfig::default().with_core(rix::sim::CoreConfig::iw3_rs20()),
        "spec-built arm equals the historical builder chain"
    );
}

#[test]
fn spec_run_equals_the_equivalent_hand_built_sweep() {
    let spec = ExperimentSpec::from_json(
        r#"{
            "schema": "rix-exp/1",
            "benchmarks": ["gcc", "mcf"],
            "instructions": 2000,
            "warmup": 1000,
            "seed": 9,
            "arms": [
                {"label": "base", "preset": "base"},
                {"label": "integration", "preset": "plus_reverse"}
            ]
        }"#,
    )
    .unwrap();
    let h = Harness { threads: 2, ..Harness::default() };
    let from_spec = spec.sweep(&h).try_run().unwrap();

    let by_hand = Sweep::new()
        .benchmarks([by_name("gcc").unwrap(), by_name("mcf").unwrap()])
        .config("base", SimConfig::baseline())
        .config("integration", SimConfig::default())
        .instructions(2000)
        .warmup(1000)
        .seed(9)
        .run();

    assert_eq!(from_spec.len(), by_hand.len());
    for (a, b) in from_spec.iter().zip(&by_hand) {
        assert_eq!(a.bench, b.bench);
        assert_eq!(a.config_label, b.config_label);
        assert_eq!(a.result, b.result, "{}/{}", a.bench, a.config_label);
        assert_eq!(a.result.to_json(), b.result.to_json(), "byte-identical");
    }
}

fn temp_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("rix-exp-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.to_str().expect("utf-8 temp path").to_string()
}

#[test]
fn checkpoint_seeded_spec_forks_every_arm_from_the_snapshot() {
    let dir = temp_dir("seed");
    let seed = 7;
    let benches = ["gcc", "vortex"];
    // Save one snapshot per benchmark where the sweep will look for it.
    for name in benches {
        let program = by_name(name).unwrap().build(seed);
        let mut sim = Simulator::new(&program, SimConfig::default());
        sim.run_until(&StopWhen::RetiredAtLeast(5_000));
        sim.checkpoint().save(checkpoint_path(&dir, name, seed)).expect("save");
    }

    let spec = ExperimentSpec::from_json(&format!(
        r#"{{
            "schema": "rix-exp/1",
            "benchmarks": ["gcc", "vortex"],
            "instructions": 2000,
            "warmup_mode": {{"checkpoint": {{"dir": "{dir}"}}}},
            "arms": [
                {{"label": "base", "preset": "base"}},
                {{"label": "integration", "preset": "plus_reverse"}}
            ]
        }}"#
    ))
    .unwrap();
    assert_eq!(spec.warmup_mode, WarmupMode::Checkpoint { dir: dir.clone() });
    let trials = spec.sweep(&Harness::default()).try_run().unwrap();
    assert_eq!(trials.len(), 4);

    // Each cell equals a hand-rolled fork of the same snapshot.
    for t in &trials {
        let program = by_name(t.bench).unwrap().build(seed);
        let ck = Checkpoint::load(checkpoint_path(&dir, t.bench, seed)).unwrap();
        let cfg = if t.config_label == "base" {
            SimConfig::baseline()
        } else {
            SimConfig::default()
        };
        let mut sim = Simulator::from_checkpoint(&program, cfg, &ck);
        sim.reset_stats();
        let expected = sim.run_budget(2000);
        assert_eq!(
            t.result.to_json(),
            expected.to_json(),
            "{}/{}: spec fork is byte-identical to the manual fork",
            t.bench,
            t.config_label
        );
        assert!(t.result.stats.retired >= 2000);
    }

    // A seed mismatch is refused with a descriptive error, not run.
    let wrong_seed = Sweep::new()
        .benchmarks([by_name("gcc").unwrap()])
        .config("base", SimConfig::baseline())
        .instructions(1000)
        .seed(8)
        .warmup_mode(WarmupMode::Checkpoint { dir: dir.clone() })
        .try_run()
        .unwrap_err();
    assert!(wrong_seed.contains("gcc"), "{wrong_seed}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn emit_trials_writes_the_output_file_and_preserves_table_mode() {
    let dir = temp_dir("out");
    let out = format!("{dir}/trials.json");
    let trials = Sweep::new()
        .benchmarks([by_name("gcc").unwrap()])
        .config("base", SimConfig::baseline())
        .instructions(1000)
        .run();
    let h = Harness { output: Some(out.clone()), ..Harness::default() };
    let skip_tables = h.emit_trials(&trials);
    assert!(!skip_tables, "table mode: the caller still renders");
    let written = std::fs::read_to_string(&out).expect("file written");
    assert_eq!(written, format!("{}\n", trials_json(&trials)));
    // The written file is machine-readable by the workspace's own
    // reader.
    assert!(rix::isa::json::Json::parse(written.trim_end()).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}
