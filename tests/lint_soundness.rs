//! Lint soundness, property-tested: any random `Asm` program the linter
//! passes clean (a) never reads a register the program has not written
//! (beyond the architecturally-defined `zero`/`fzero`/`sp`), (b) never
//! runs off the end of the instruction memory, and (c) terminates.
//!
//! The generator lowers a random op list into structured programs —
//! straight-line ALU work, in-segment loads/stores, two-armed and
//! one-armed hammocks, bounded counted loops, calls to a shared leaf
//! function — including shapes the linter must reject (reads of a
//! partially-initialised register pool, one-armed definitions). Cases
//! with findings are skipped: the property under test is the
//! *soundness* direction (clean ⇒ safe), while tests/static_analysis.rs
//! pins the detection direction per diagnostic code.

use proptest::prelude::*;
use rix::prelude::*;

const DATA_BASE: u64 = 0x1000;
const STACK_TOP: u64 = 0x8000;
const BUDGET: u64 = 20_000;

/// Destination/source register pool (r1..r6), partially initialised.
fn pool(i: u8) -> rix_isa::LogReg {
    rix_isa::LogReg::int(1 + (i % 6))
}

/// One generated op: (kind, dst index, src indices, immediate).
type Op = (u8, u8, u8, u8, i32);

fn lower(init_count: u8, ops: &[Op]) -> Program {
    let base = rix_isa::LogReg::int(9); // data-segment base, always set
    let cnt = rix_isa::LogReg::int(10); // loop counter, loop-local
    let mut a = Asm::new();
    a.data(DATA_BASE, (0..64u64).map(|w| w.wrapping_mul(0x9e37)).collect::<Vec<u64>>());
    for i in 0..init_count.min(6) {
        a.addq_i(pool(i), reg::ZERO, 7 * i32::from(i) + 1);
    }
    a.addq_i(base, reg::ZERO, DATA_BASE as i32);
    let mut label_n = 0usize;
    let mut fresh = |tag: &str| {
        label_n += 1;
        format!("{tag}_{label_n}")
    };
    let mut used_fn = false;
    for &(kind, d, s1, s2, imm) in ops {
        let (d, s1, s2) = (pool(d), pool(s1), pool(s2));
        match kind % 8 {
            0 => {
                a.addq(d, s1, s2);
            }
            1 => {
                a.xor_i(d, s1, imm);
            }
            2 => {
                a.ldq(d, 8 * (imm.rem_euclid(64)), base);
            }
            3 => {
                a.stq(s1, 8 * (imm.rem_euclid(64)), base);
            }
            4 => {
                // Two-armed hammock: d defined on both paths.
                let arm = fresh("arm");
                let join = fresh("join");
                a.beq(s1, arm.clone());
                a.addq_i(d, reg::ZERO, imm);
                a.br(join.clone());
                a.label(arm);
                a.addq_i(d, reg::ZERO, imm ^ 1);
                a.label(join);
            }
            5 => {
                // Bounded counted loop; d is written inside the body,
                // which every path traverses at least once.
                let top = fresh("top");
                a.addq_i(cnt, reg::ZERO, imm.rem_euclid(7) + 1);
                a.label(top.clone());
                a.addq_i(d, reg::ZERO, imm);
                a.subq_i(cnt, cnt, 1);
                a.bne(cnt, top);
            }
            6 => {
                // One-armed definition: d is only maybe-defined after the
                // join — later reads of d are exactly what RIX001 rejects.
                let skip = fresh("skip");
                a.beq(s1, skip.clone());
                a.addq_i(d, reg::ZERO, imm);
                a.label(skip);
            }
            _ => {
                a.jsr("leaf");
                used_fn = true;
            }
        }
    }
    a.halt();
    if used_fn {
        a.label("leaf");
        a.addq_i(rix_isa::LogReg::int(11), reg::ZERO, 5);
        a.ret();
    }
    a.assemble().expect("generated labels resolve")
}

/// Guards the property against vacuity: the generator must produce both
/// clean programs (the property's domain) and rejected ones.
#[test]
fn generator_covers_clean_and_rejected_programs() {
    // Fully-initialised pool, benign ops of every safe kind: clean.
    let clean: Vec<Op> =
        (0u8..6).map(|k| (k.min(5), k % 6, (k + 1) % 6, (k + 2) % 6, 40 + i32::from(k))).collect();
    let p = lower(6, &clean);
    assert!(lint_program(&p).is_empty(), "{:?}", lint_program(&p));

    // A one-armed definition of r5 (index 4) followed by a read of it,
    // with nothing else initialising it: RIX001 territory.
    let rejected: Vec<Op> = vec![(6, 4, 0, 0, 9), (0, 1, 4, 4, 0)];
    let p = lower(2, &rejected);
    assert!(lint_program(&p).iter().any(|d| d.code == LintCode::ReadBeforeWrite));
}

proptest! {
    #[test]
    fn lint_clean_programs_are_safe_to_interpret(
        init_count in 2u8..7,
        ops in proptest::collection::vec(
            (0u8..16, 0u8..6, 0u8..6, 0u8..6, 0i32..512),
            1..32,
        ),
    ) {
        let program = lower(init_count, &ops);
        if !lint_program(&program).is_empty() {
            // Rejected programs are outside the property; detection
            // precision is pinned by the fixture suite.
            return Ok(());
        }
        // Shadow definite-assignment state, maintained independently of
        // the analysis: start from the architectural init set and replay.
        let mut written = [false; 64];
        for r in [reg::ZERO, reg::FZERO, reg::SP] {
            written[r.index()] = true;
        }
        let mut interp = Interp::new(&program, STACK_TOP);
        let mut steps = 0u64;
        while !interp.halted() {
            prop_assert!(steps < BUDGET, "clean program failed to terminate");
            let pc = interp.pc();
            let i = program.fetch(pc);
            prop_assert!(i.is_some(), "fetch ran off the program at @{pc}");
            let i = i.unwrap();
            for r in [i.src1, i.src2_reg()].into_iter().flatten() {
                prop_assert!(
                    written[r.index()],
                    "`{i}` @{pc} read {r} before any write (lint said clean)"
                );
            }
            let stop = interp.run(1);
            prop_assert_ne!(
                stop,
                InterpStopReason::FellOffProgram,
                "interpreter fell off the program"
            );
            if let Some(d) = i.dst {
                written[d.index()] = true;
            }
            steps += 1;
        }
    }
}
