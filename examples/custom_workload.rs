//! Writing and running your own RIX program.
//!
//! Shows the assembler API, the reference interpreter, and the simulator
//! agreeing on the architectural result while reporting very different
//! timing — and how general reuse integrates an un-hoisted
//! loop-invariant computation (§2.2).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use rix::isa::interp::Interp;
use rix::isa::reg;
use rix::prelude::*;

fn main() {
    // A loop whose body recomputes `base + 100` and `(base+100) ^ 63`
    // every iteration — loop-invariant work a compiler could have
    // hoisted. General reuse integrates it away at run time.
    let mut a = Asm::new();
    a.addq_i(reg::R2, reg::ZERO, 17); // loop-invariant input
    a.addq_i(reg::R1, reg::ZERO, 10_000); // trip count
    a.addq_i(reg::R6, reg::ZERO, 0); // sink
    a.label("loop");
    a.addq_i(reg::R3, reg::R2, 100); // un-hoisted invariant
    a.xor_i(reg::R4, reg::R3, 63); // un-hoisted invariant chain
    a.addq(reg::R6, reg::R6, reg::R4);
    a.subq_i(reg::R1, reg::R1, 1);
    a.bne(reg::R1, "loop");
    a.halt();
    let program = a.assemble().expect("labels resolve");

    // Functional reference.
    let mut interp = Interp::new(&program, 0x0800_0000);
    interp.run(1_000_000);
    println!("reference result  r6 = {}", interp.reg(reg::R6));

    // Timing, with and without integration.
    let base = Simulator::new(&program, SimConfig::baseline()).run(1_000_000);
    let full = Simulator::new(&program, SimConfig::default()).run(1_000_000);
    assert!(base.halted && full.halted);
    println!(
        "baseline    : {} cycles (IPC {:.2})",
        base.stats.cycles,
        base.ipc()
    );
    println!(
        "integration : {} cycles (IPC {:.2}), {:.1}% of instructions integrated",
        full.stats.cycles,
        full.ipc(),
        full.stats.integration.rate() * 100.0
    );
    println!(
        "speedup     : {:+.1}%",
        (full.ipc() / base.ipc() - 1.0) * 100.0
    );
}
