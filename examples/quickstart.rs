//! Quickstart: run one benchmark on the baseline machine and on the full
//! register-integration machine, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rix::prelude::*;

fn main() {
    // A call-intensive workload: the kind of program the paper's
    // extensions target (save/restore traffic, repeated helper calls).
    let bench = by_name("vortex").expect("vortex is a known benchmark");
    println!("workload: {} — {}", bench.name, bench.notes);
    let program = bench.build(7);
    println!("static instructions: {}\n", program.len());

    let budget = 100_000;

    // Baseline: conventional pointer-based renaming, no integration.
    let base = Simulator::new(&program, SimConfig::baseline()).run(budget);

    // The paper's headline configuration: general reuse + opcode/call-
    // depth indexing + reverse integration, 1K-entry 4-way IT, LISP.
    let full = Simulator::new(&program, SimConfig::default()).run(budget);

    let s = &full.stats;
    println!("baseline IPC           : {:.3}", base.ipc());
    println!("integration IPC        : {:.3}", full.ipc());
    println!(
        "speedup                : {:+.1}%",
        (full.ipc() / base.ipc() - 1.0) * 100.0
    );
    println!(
        "integration rate       : {:.1}% of retired instructions",
        s.integration.rate() * 100.0
    );
    println!(
        "  direct / reverse     : {:.1}% / {:.1}%",
        s.integration.direct_rate() * 100.0,
        s.integration.reverse_rate() * 100.0
    );
    println!(
        "loads that executed    : {:.1}% (the rest bypassed the cache)",
        s.load_execution_fraction() * 100.0
    );
    println!(
        "mis-integrations       : {:.0} per million retired",
        s.integration.mis_per_million()
    );
    println!(
        "branch resolution      : {:.1} cycles (baseline {:.1})",
        s.branch_resolution_latency(),
        base.stats.branch_resolution_latency()
    );
    println!(
        "reservation occupancy  : {:.1} (baseline {:.1})",
        s.avg_rs_occupancy(),
        base.stats.avg_rs_occupancy()
    );
}
