//! Quickstart: run one benchmark on the baseline machine and on the full
//! register-integration machine — as one [`Sweep`] over a 1×2 grid with
//! an explicit warm-up — and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rix::prelude::*;

fn main() {
    // A call-intensive workload: the kind of program the paper's
    // extensions target (save/restore traffic, repeated helper calls).
    let bench = by_name("vortex").expect("vortex is a known benchmark");
    println!("workload: {} — {}", bench.name, bench.notes);
    println!("static instructions: {}\n", bench.build(7).len());

    // Warm the caches and predictors for 20k instructions, then measure
    // 100k hot — the session API (`run_until` + `reset_stats`) under the
    // hood. The two machines are named presets resolved by string
    // (`SimConfig::preset`); the two configs run on two worker threads.
    let trials = Sweep::new()
        .benchmarks([bench])
        .space(ParamSpace::presets([
            ("baseline", "base"),
            ("integration", "plus_reverse"), // +general +opcode +reverse
        ]))
        .instructions(100_000)
        .warmup(20_000)
        .threads(2)
        .run();
    let base = &trials[0].result;
    let full = &trials[1].result;

    let s = &full.stats;
    println!("warm-up                : 20000 instructions (discarded)");
    println!("baseline IPC           : {:.3}", base.ipc());
    println!("integration IPC        : {:.3}", full.ipc());
    println!(
        "speedup                : {:+.1}%",
        (full.ipc() / base.ipc() - 1.0) * 100.0
    );
    println!(
        "integration rate       : {:.1}% of retired instructions",
        s.integration.rate() * 100.0
    );
    println!(
        "  direct / reverse     : {:.1}% / {:.1}%",
        s.integration.direct_rate() * 100.0,
        s.integration.reverse_rate() * 100.0
    );
    println!(
        "loads that executed    : {:.1}% (the rest bypassed the cache)",
        s.load_execution_fraction() * 100.0
    );
    println!(
        "mis-integrations       : {:.0} per million retired",
        s.integration.mis_per_million()
    );
    println!(
        "branch resolution      : {:.1} cycles (baseline {:.1})",
        s.branch_resolution_latency(),
        base.stats.branch_resolution_latency()
    );
    println!(
        "reservation occupancy  : {:.1} (baseline {:.1})",
        s.avg_rs_occupancy(),
        base.stats.avg_rs_occupancy()
    );
}
