//! Integration as a substitute for execution-core complexity (§3.5).
//!
//! The paper's Figure 7 experiment on one benchmark: shrink the machine
//! (half the reservation stations, then 3-way issue with a single memory
//! port, then both) and watch integration buy the performance back. The
//! nine machine points are a [`ParamSpace`] — a core axis crossed with
//! an integration axis, chained after the reference arm — fanned out as
//! one [`Sweep`] over four threads.
//!
//! ```sh
//! cargo run --release --example complexity_tradeoff
//! ```

use rix::prelude::*;

fn main() {
    let bench = by_name("gcc").expect("gcc is a known benchmark");
    let cores = ["base", "RS", "IW", "IW+RS"];

    // The reference arm, then (core point × {no integration, +i}):
    // presets replace the config at a point, patches modify it, and
    // label fragments concatenate ("RS" + "+i" = "RS+i").
    let space = ParamSpace::point("reference", SimConfig::baseline()).chain(
        ParamSpace::base(SimConfig::preset("base").expect("known preset"))
            .cross(&Axis::patches(
                "core",
                [
                    ("base", "{}"),
                    ("RS", r#"{"core":{"rs_entries":20}}"#),
                    ("IW", r#"{"core":{"issue":{"width":3,"shared_ldst":true}}}"#),
                    ("IW+RS", r#"{"core":{"rs_entries":20,"issue":{"width":3,"shared_ldst":true}}}"#),
                ],
            ))
            .cross(&Axis::patches(
                "integration",
                [("", "{}"), ("+i", r#"{"integration":{"enabled":true}}"#)],
            )),
    );
    let trials = Sweep::new()
        .benchmarks([bench])
        .space(space)
        .instructions(100_000)
        .threads(4)
        .run();

    let reference = &trials[0].result;
    println!("gcc on four machines (speedup vs full-size machine without integration):\n");
    println!("{:>8}  {:>12}  {:>12}", "machine", "no integ", "integration");
    let pct = |r: &RunResult| (r.ipc() / reference.ipc() - 1.0) * 100.0;
    for (i, name) in cores.iter().enumerate() {
        let none = &trials[1 + 2 * i].result;
        let with = &trials[2 + 2 * i].result;
        println!("{name:>8}  {:>11.1}%  {:>11.1}%", pct(none), pct(with));
    }

    println!(
        "\nIntegration is latency-insensitive rename-stage work; the execution\n\
         core is latency-critical. Trading the former for the latter is the\n\
         paper's §3.5 argument — the IW and RS rows should recover most of\n\
         their loss when integration is on."
    );
}
