//! Integration as a substitute for execution-core complexity (§3.5).
//!
//! The paper's Figure 7 experiment on one benchmark: shrink the machine
//! (half the reservation stations, then 3-way issue with a single memory
//! port, then both) and watch integration buy the performance back.
//!
//! ```sh
//! cargo run --release --example complexity_tradeoff
//! ```

use rix::prelude::*;
use rix::sim::CoreConfig;

fn main() {
    let bench = by_name("gcc").expect("gcc is a known benchmark");
    let program = bench.build(7);
    let budget = 100_000;

    let reference = Simulator::new(&program, SimConfig::baseline()).run(budget);
    println!("gcc on four machines (speedup vs full-size machine without integration):\n");
    println!("{:>8}  {:>12}  {:>12}", "machine", "no integ", "integration");

    for (name, core) in [
        ("base", CoreConfig::default()),
        ("RS", CoreConfig::rs20()),
        ("IW", CoreConfig::iw3()),
        ("IW+RS", CoreConfig::iw3_rs20()),
    ] {
        let none = Simulator::new(&program, SimConfig::baseline().with_core(core)).run(budget);
        let with = Simulator::new(&program, SimConfig::default().with_core(core)).run(budget);
        let pct = |r: &RunResult| (r.ipc() / reference.ipc() - 1.0) * 100.0;
        println!("{name:>8}  {:>11.1}%  {:>11.1}%", pct(&none), pct(&with));
    }

    println!(
        "\nIntegration is latency-insensitive rename-stage work; the execution\n\
         core is latency-critical. Trading the former for the latter is the\n\
         paper's §3.5 argument — the IW and RS rows should recover most of\n\
         their loss when integration is on."
    );
}
