//! Integration as a substitute for execution-core complexity (§3.5).
//!
//! The paper's Figure 7 experiment on one benchmark: shrink the machine
//! (half the reservation stations, then 3-way issue with a single memory
//! port, then both) and watch integration buy the performance back. The
//! nine machine points are one [`Sweep`] fanned out over four threads.
//!
//! ```sh
//! cargo run --release --example complexity_tradeoff
//! ```

use rix::prelude::*;
use rix::sim::CoreConfig;

fn main() {
    let bench = by_name("gcc").expect("gcc is a known benchmark");
    let cores = [
        ("base", CoreConfig::default()),
        ("RS", CoreConfig::rs20()),
        ("IW", CoreConfig::iw3()),
        ("IW+RS", CoreConfig::iw3_rs20()),
    ];

    let mut cfgs: Vec<(String, SimConfig)> = vec![("reference".into(), SimConfig::baseline())];
    for (name, core) in cores {
        cfgs.push((name.to_string(), SimConfig::baseline().with_core(core)));
        cfgs.push((format!("{name}+i"), SimConfig::default().with_core(core)));
    }
    let trials = Sweep::new()
        .benchmarks([bench])
        .configs(cfgs)
        .instructions(100_000)
        .threads(4)
        .run();

    let reference = &trials[0].result;
    println!("gcc on four machines (speedup vs full-size machine without integration):\n");
    println!("{:>8}  {:>12}  {:>12}", "machine", "no integ", "integration");
    let pct = |r: &RunResult| (r.ipc() / reference.ipc() - 1.0) * 100.0;
    for (i, (name, _)) in cores.iter().enumerate() {
        let none = &trials[1 + 2 * i].result;
        let with = &trials[2 + 2 * i].result;
        println!("{name:>8}  {:>11.1}%  {:>11.1}%", pct(none), pct(with));
    }

    println!(
        "\nIntegration is latency-insensitive rename-stage work; the execution\n\
         core is latency-critical. Trading the former for the latter is the\n\
         paper's §3.5 argument — the IW and RS rows should recover most of\n\
         their loss when integration is on."
    );
}
