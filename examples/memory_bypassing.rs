//! Speculative memory bypassing via reverse integration — the paper's
//! §2.4 working example (Figure 3), as a runnable program.
//!
//! A caller saves `t0`, the callee opens a stack frame and saves `s0`;
//! both registers are clobbered and later restored. With reverse
//! integration the restores (`ldq`) and the frame pop (`lda sp, +F(sp)`)
//! never execute: they re-map to the physical registers the saves and
//! the frame push used — speculative memory bypassing for free.
//!
//! ```sh
//! cargo run --release --example memory_bypassing
//! ```

use rix::prelude::*;
use rix::isa::reg;

fn program() -> Program {
    let mut a = Asm::new();
    // Set up values that must survive the call.
    a.addq_i(reg::T1, reg::ZERO, 111); // t1 is caller-saved (alias r2)
    a.addq_i(reg::S0, reg::ZERO, 222); // s0 is callee-saved
    a.addq_i(reg::R4, reg::ZERO, 400); // loop counter
    a.label("loop");
    // --- caller side: save t1, call, restore t1 (Figure 3, I#1/I#8) ---
    a.stq(reg::T1, 8, reg::SP);
    a.jsr("function");
    a.ldq(reg::T1, 8, reg::SP); // ← reverse-integrates the save's data
    a.addq(reg::V0, reg::V0, reg::T1);
    a.subq_i(reg::R4, reg::R4, 1);
    a.bne(reg::R4, "loop");
    a.halt();
    // --- callee: open frame, save s0, clobber it, restore, close ------
    a.label("function");
    a.lda(reg::SP, -32, reg::SP); // frame push    (Figure 3, I#3)
    a.stq(reg::S0, 4, reg::SP); //  callee save    (Figure 3, I#4)
    a.addq_i(reg::S0, reg::ZERO, 9); // overwrite s0
    a.mulq(reg::S0, reg::S0, reg::S0);
    a.ldq(reg::S0, 4, reg::SP); //  restore        (Figure 3, I#5) ← bypassed
    a.lda(reg::SP, 32, reg::SP); // frame pop      (Figure 3, I#6) ← bypassed
    a.ret();
    a.assemble().expect("example assembles")
}

fn main() {
    let p = program();
    println!("{}", p.disassemble());

    for (name, cfg) in [
        ("without reverse integration", IntegrationConfig::plus_opcode()),
        ("with reverse integration   ", IntegrationConfig::plus_reverse()),
    ] {
        let r = Simulator::new(&p, SimConfig::default().with_integration(cfg)).run(50_000);
        let s = &r.stats;
        println!(
            "{name}: IPC {:.3} | integration rate {:5.1}% (reverse {:4.1}%) | \
             stack loads executed {}/{}",
            r.ipc(),
            s.integration.rate() * 100.0,
            s.integration.reverse_rate() * 100.0,
            s.loads_executed,
            s.loads_retired,
        );
    }
    println!(
        "\nThe reverse rows show the restores and frame pops re-mapping to the\n\
         saved physical registers instead of executing — §2.4's free\n\
         implementation of speculative memory bypassing."
    );
}
