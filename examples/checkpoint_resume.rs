//! Save a mid-run session to disk, reload it, and resume —
//! byte-identical to the session that never stopped.
//!
//! ```sh
//! cargo run --release --example checkpoint_resume [-- /path/to/ckpt.json]
//! ```
//!
//! CI runs this with an explicit path and then validates the saved file
//! with `python3 -m json.tool`.

use rix::prelude::*;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "checkpoint_resume.json".to_string());
    let program = by_name("vortex").expect("known workload").build(7);
    let cfg = SimConfig::default();

    // Run to a mid-program retirement boundary and checkpoint. The call
    // drains in-flight (speculative, unretired) work and re-synchronises
    // the live session to exactly the state a restore produces, which is
    // what makes the comparison below exact.
    let mut live = Simulator::new(&program, cfg);
    live.run_until(&StopWhen::RetiredAtLeast(10_000));
    let ck = live.checkpoint();
    ck.save(&path).expect("write checkpoint");
    println!(
        "checkpointed at retirement {} (cycle {}), saved to {path}",
        ck.arch.retired, ck.cycle
    );

    // "Another process": reload from disk and resume.
    let loaded = Checkpoint::load(&path).expect("read checkpoint");
    assert_eq!(loaded, ck, "disk round trip is lossless");
    let mut resumed = Simulator::from_checkpoint(&program, cfg, &loaded);

    let uninterrupted = live.run_budget(30_000);
    let from_disk = resumed.run_budget(30_000);
    assert_eq!(
        uninterrupted.to_json(),
        from_disk.to_json(),
        "resumed session must be byte-identical to the uninterrupted one"
    );
    println!(
        "resumed from disk and uninterrupted sessions agree: {} retired, IPC {:.3}",
        from_disk.stats.retired,
        from_disk.ipc()
    );
}
