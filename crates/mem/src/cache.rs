//! Set-associative cache with true-LRU replacement and write-back policy.
//!
//! The cache models tags and dirty state only; data values live in
//! [`crate::DataStore`]. Lookups and fills update LRU order; fills report
//! the victim line so the memory system can charge write-back bus traffic.

use crate::Cycle;

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in cycles for a hit.
    pub hit_latency: Cycle,
}

impl CacheConfig {
    /// The paper's 64 KB / 32 B / 2-way / 1-cycle instruction cache.
    #[must_use]
    pub fn l1i() -> Self {
        Self { size_bytes: 64 * 1024, line_bytes: 32, ways: 2, hit_latency: 1 }
    }

    /// The paper's 32 KB / 32 B / 2-way / 2-cycle data cache.
    #[must_use]
    pub fn l1d() -> Self {
        Self { size_bytes: 32 * 1024, line_bytes: 32, ways: 2, hit_latency: 2 }
    }

    /// The paper's 2 MB / 64 B / 4-way / 6-cycle unified L2.
    #[must_use]
    pub fn l2() -> Self {
        Self { size_bytes: 2 * 1024 * 1024, line_bytes: 64, ways: 4, hit_latency: 6 }
    }

    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * self.ways as u64)
    }

    /// Checks that the geometry can actually be built ([`Cache::new`]
    /// would panic otherwise): at least one way, a power-of-two line
    /// size, and a capacity that divides evenly into at least one set.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 {
            return Err("cache must have at least one way".to_string());
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(format!(
                "cache line size must be a non-zero power of two (got {})",
                self.line_bytes
            ));
        }
        let set_bytes = self.line_bytes * self.ways as u64;
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(set_bytes) {
            return Err(format!(
                "cache capacity {} must be a non-zero multiple of line_bytes × ways = {}",
                self.size_bytes, set_bytes
            ));
        }
        Ok(())
    }

    /// The field names [`CacheConfig::apply_json`] accepts.
    pub const KEYS: &'static [&'static str] =
        &["size_bytes", "line_bytes", "ways", "hit_latency"];

    /// Serialises the geometry as a JSON object (every field, stable
    /// key order; round-trips exactly through [`CacheConfig::apply_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"size_bytes":{},"line_bytes":{},"ways":{},"hit_latency":{}}}"#,
            self.size_bytes, self.line_bytes, self.ways, self.hit_latency
        )
    }

    /// Applies a (possibly partial) JSON object onto this geometry:
    /// present keys overwrite, omitted keys keep their current value,
    /// unknown keys are rejected with an error naming them.
    pub fn apply_json(&mut self, v: &rix_isa::json::Json) -> Result<(), String> {
        use rix_isa::json::expect_u64;
        let rix_isa::json::Json::Obj(fields) = v else {
            return Err("cache config must be a JSON object".to_string());
        };
        for (k, val) in fields {
            match k.as_str() {
                "size_bytes" => self.size_bytes = expect_u64(k, val)?,
                "line_bytes" => self.line_bytes = expect_u64(k, val)?,
                "ways" => self.ways = expect_u64(k, val)? as usize,
                "hit_latency" => self.hit_latency = expect_u64(k, val)?,
                other => return Err(rix_isa::json::unknown_key(other, Self::KEYS)),
            }
        }
        Ok(())
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64, // larger = more recently used
}

/// Hit/miss counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
    /// Number of dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss ratio over all lookups (0 when no lookups happened).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A dirty victim evicted by [`Cache::fill`], which the next level must
/// absorb.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Victim {
    /// Line-aligned byte address of the evicted line.
    pub addr: u64,
}

/// One level of set-associative, write-back, true-LRU cache.
///
/// ```
/// use rix_mem::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::l1d());
/// assert!(!c.lookup(0x1000, false)); // cold miss
/// c.fill(0x1000);
/// assert!(c.lookup(0x1000, false)); // now hits
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// All lines in one strided allocation: set `s` occupies
    /// `lines[s * ways .. (s + 1) * ways]` (one contiguous cache-line-
    /// friendly block per set, no per-set `Vec` indirection).
    lines: Vec<Line>,
    /// `cfg.num_sets()`, cached so the per-access index math does not
    /// re-derive it with a hardware divide.
    num_sets: u64,
    /// `log2(cfg.line_bytes)` (line size is asserted a power of two).
    line_shift: u32,
    /// Line number of the last lookup hit (`u64::MAX` = none) and the
    /// flat index of its way. A consecutive repeat hit skips the set
    /// scan *and* the LRU stamp: the line already holds the
    /// most-recent stamp, so its relative LRU order cannot change.
    /// Invalidated on every fill (a fill can evict this very line).
    last_line: u64,
    last_way: usize,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, non-power-of-two
    /// line size, or capacity not divisible by `line_bytes * ways`).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.ways > 0, "cache must have at least one way");
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(
            cfg.size_bytes.is_multiple_of(cfg.line_bytes * cfg.ways as u64),
            "capacity must divide evenly into sets"
        );
        let sets = cfg.num_sets() as usize;
        Self {
            cfg,
            lines: vec![Line::default(); sets * cfg.ways],
            num_sets: cfg.num_sets(),
            line_shift: cfg.line_bytes.trailing_zeros(),
            last_line: u64::MAX,
            last_way: 0,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The ways of one set, as a contiguous slice.
    #[inline]
    fn set_ways(&self, set: usize) -> &[Line] {
        &self.lines[set * self.cfg.ways..(set + 1) * self.cfg.ways]
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        // Power-of-two set counts (all realistic geometries) split the
        // line number with mask/shift instead of hardware divides.
        if self.num_sets.is_power_of_two() {
            let shift = self.num_sets.trailing_zeros();
            ((line & (self.num_sets - 1)) as usize, line >> shift)
        } else {
            ((line % self.num_sets) as usize, line / self.num_sets)
        }
    }

    /// Looks up `addr`; on a hit updates LRU (and the dirty bit when
    /// `write` is true) and returns `true`.
    pub fn lookup(&mut self, addr: u64, write: bool) -> bool {
        if addr >> self.line_shift == self.last_line {
            self.lines[self.last_way].dirty |= write;
            self.stats.hits += 1;
            return true;
        }
        let (set, tag) = self.set_and_tag(addr);
        self.stamp += 1;
        let stamp = self.stamp;
        let w = self.cfg.ways;
        for (wi, line) in self.lines[set * w..(set + 1) * w].iter_mut().enumerate() {
            if line.valid && line.tag == tag {
                line.lru = stamp;
                line.dirty |= write;
                self.stats.hits += 1;
                self.last_line = addr >> self.line_shift;
                self.last_way = set * w + wi;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Probes for `addr` without touching LRU, dirty state, or statistics.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.set_ways(set).iter().any(|l| l.valid && l.tag == tag)
    }

    /// Installs the line containing `addr`, evicting the LRU way.
    ///
    /// Returns the dirty victim (if any) that must be written back to the
    /// next level. Filling a line that is already present only refreshes
    /// its LRU position.
    pub fn fill(&mut self, addr: u64) -> Option<Victim> {
        // The fill may evict the memoized last-hit line.
        self.last_line = u64::MAX;
        let (set, tag) = self.set_and_tag(addr);
        self.stamp += 1;
        let stamp = self.stamp;
        let num_sets = self.num_sets;
        let line_bytes = self.cfg.line_bytes;
        let w = self.cfg.ways;
        let set_lines = &mut self.lines[set * w..(set + 1) * w];
        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = stamp;
            return None;
        }
        let way = set_lines
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("cache has at least one way");
        let victim = set_lines[way];
        let evicted = (victim.valid && victim.dirty).then(|| {
            self.stats.writebacks += 1;
            Victim { addr: (victim.tag * num_sets + set as u64) * line_bytes }
        });
        set_lines[way] = Line { tag, valid: true, dirty: false, lru: stamp };
        evicted
    }

    /// Marks the line containing `addr` dirty if present (used when a
    /// write-buffer drain hits).
    pub fn mark_dirty(&mut self, addr: u64) {
        let (set, tag) = self.set_and_tag(addr);
        let w = self.cfg.ways;
        for line in &mut self.lines[set * w..(set + 1) * w] {
            if line.valid && line.tag == tag {
                line.dirty = true;
            }
        }
    }

    /// Line-aligns an address.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 32B = 256B.
        Cache::new(CacheConfig { size_bytes: 256, line_bytes: 32, ways: 2, hit_latency: 1 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.lookup(0x40, false));
        assert!(c.fill(0x40).is_none());
        assert!(c.lookup(0x40, false));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn same_line_offsets_hit() {
        let mut c = small();
        c.fill(0x40);
        assert!(c.lookup(0x47, false));
        assert!(c.lookup(0x5f, false));
        assert!(!c.lookup(0x60, false)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 holds lines with addr % 128 == 0 (4 sets * 32B).
        c.fill(0x000);
        c.fill(0x080); // both in set 0 now
        c.lookup(0x000, false); // touch first → second is LRU
        c.fill(0x100); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = small();
        c.fill(0x000);
        c.lookup(0x000, true); // dirty it
        c.fill(0x080);
        let victim = c.fill(0x100); // evicts 0x000 (LRU, dirty)
        assert_eq!(victim, Some(Victim { addr: 0x000 }));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_victim_not_reported() {
        let mut c = small();
        c.fill(0x000);
        c.fill(0x080);
        assert_eq!(c.fill(0x100), None);
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn refill_refreshes_lru_without_eviction() {
        let mut c = small();
        c.fill(0x000);
        c.fill(0x080);
        c.fill(0x000); // refresh, no eviction
        c.fill(0x100); // should evict 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
    }

    #[test]
    fn probe_does_not_perturb() {
        let mut c = small();
        c.fill(0x000);
        let before = c.stats();
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::l1d().num_sets(), 512);
        assert_eq!(CacheConfig::l1i().num_sets(), 1024);
        assert_eq!(CacheConfig::l2().num_sets(), 8192);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = Cache::new(CacheConfig { size_bytes: 256, line_bytes: 32, ways: 0, hit_latency: 1 });
    }

    #[test]
    fn miss_rate() {
        let mut c = small();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.lookup(0x00, false);
        c.fill(0x00);
        c.lookup(0x00, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    proptest! {
        /// After filling a line, a lookup of any offset within it hits;
        /// capacity is bounded: at most `sets*ways` distinct lines resident.
        #[test]
        fn fill_makes_line_resident(addr in 0u64..0x10000) {
            let mut c = small();
            c.fill(addr);
            prop_assert!(c.probe(addr));
            prop_assert!(c.probe(c.line_addr(addr)));
        }

        /// A freshly filled line is never its own victim.
        #[test]
        fn victim_differs_from_fill(addrs in proptest::collection::vec(0u64..0x4000, 1..64)) {
            let mut c = small();
            for a in addrs {
                c.lookup(a, true);
                if let Some(v) = c.fill(a) {
                    prop_assert_ne!(c.line_addr(v.addr), c.line_addr(a));
                }
                prop_assert!(c.probe(a));
            }
        }
    }
}
