//! The retirement write buffer.
//!
//! Retired stores drain to the data cache through a 16-entry write buffer
//! (§3.1). Retirement never waits for the cache — it only stalls when the
//! buffer itself is full. Each entry occupies its slot until the store's
//! cache write completes.

use crate::Cycle;

/// A bounded buffer of in-flight retired stores.
#[derive(Clone, Debug)]
pub struct WriteBuffer {
    drains_at: Vec<Cycle>,
    capacity: usize,
    full_stalls: u64,
    stores: u64,
}

impl WriteBuffer {
    /// Creates a write buffer with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "write buffer needs at least one entry");
        Self { drains_at: Vec::new(), capacity, full_stalls: 0, stores: 0 }
    }

    fn expire(&mut self, now: Cycle) {
        self.drains_at.retain(|&t| t > now);
    }

    /// Whether a retiring store can enter the buffer at `now`.
    pub fn can_accept(&mut self, now: Cycle) -> bool {
        self.expire(now);
        let ok = self.drains_at.len() < self.capacity;
        if !ok {
            self.full_stalls += 1;
        }
        ok
    }

    /// Records a store that will complete its cache write at `drains_at`.
    pub fn push(&mut self, drains_at: Cycle) {
        self.stores += 1;
        self.drains_at.push(drains_at);
    }

    /// Entries occupied at `now`.
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.expire(now);
        self.drains_at.len()
    }

    /// Number of times a store found the buffer full.
    #[must_use]
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Total stores buffered.
    #[must_use]
    pub fn stores(&self) -> u64 {
        self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_until_full() {
        let mut wb = WriteBuffer::new(2);
        assert!(wb.can_accept(0));
        wb.push(100);
        assert!(wb.can_accept(0));
        wb.push(100);
        assert!(!wb.can_accept(0));
        assert_eq!(wb.full_stalls(), 1);
    }

    #[test]
    fn entries_drain() {
        let mut wb = WriteBuffer::new(1);
        wb.push(50);
        assert!(!wb.can_accept(10));
        assert!(wb.can_accept(50)); // drained at 50
        assert_eq!(wb.occupancy(50), 0);
    }

    #[test]
    fn counts_stores() {
        let mut wb = WriteBuffer::new(4);
        wb.push(1);
        wb.push(2);
        assert_eq!(wb.stores(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = WriteBuffer::new(0);
    }
}
