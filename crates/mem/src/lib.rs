//! # rix-mem: the memory hierarchy
//!
//! A cycle-level model of the aggressive memory system from §3.1 of the
//! paper:
//!
//! * 64 KB / 32 B / 2-way instruction cache,
//! * 32 KB / 32 B / 2-way, 2-cycle, write-back, non-blocking data cache
//!   with 16 MSHRs and a 16-entry retirement write buffer,
//! * 2 MB / 64 B / 4-way, 6-cycle unified L2,
//! * infinite main memory at 80 cycles,
//! * a 32-byte backside bus at core frequency and a 32-byte memory bus at
//!   one-quarter core frequency, both modelled at cycle granularity,
//! * 64-entry 4-way I-TLB and 128-entry 4-way D-TLB with a 30-cycle
//!   hardware-walked miss.
//!
//! The model is a *latency oracle*: every access updates the cache/TLB/bus
//! state immediately and returns the cycle at which its data is available.
//! This captures hit-under-miss, MSHR merging and bus contention without
//! an event queue, which keeps the out-of-order core simple.
//!
//! [`DataStore`] holds the actual memory *values* (sparse 64-bit words);
//! the caches model timing only. The split mirrors how execute-driven
//! simulators like SimpleScalar keep functional and timing state separate.

pub mod bus;
pub mod cache;
pub mod datastore;
pub mod mshr;
pub mod system;
pub mod tlb;
pub mod writebuf;

pub use bus::Bus;
pub use cache::{Cache, CacheConfig, CacheStats};
pub use datastore::DataStore;
pub use mshr::MshrFile;
pub use system::{MemConfig, MemSystem, MemSystemStats};
pub use tlb::Tlb;
pub use writebuf::WriteBuffer;

/// A machine cycle count.
pub type Cycle = u64;
