//! Translation lookaside buffers.
//!
//! RIX uses a flat (identity) address mapping — workloads run in a single
//! address space — so the TLB exists purely for timing: a miss costs the
//! 30-cycle hardware table walk the paper charges (§3.1). Geometry follows
//! the paper: 64-entry 4-way I-TLB, 128-entry 4-way D-TLB, 8 KB pages.

use crate::Cycle;

/// Page size in bytes.
pub const PAGE_BYTES: u64 = 8192;

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    vpn: u64,
    valid: bool,
    lru: u64,
}

/// A set-associative TLB with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct Tlb {
    /// All entries in one strided allocation: set `s` occupies
    /// `entries[s * ways .. (s + 1) * ways]`.
    entries: Vec<Entry>,
    ways: usize,
    num_sets: u64,
    miss_latency: Cycle,
    stamp: u64,
    hits: u64,
    misses: u64,
    /// Last page translated (`u64::MAX` = none). A consecutive repeat
    /// hit can skip the set scan *and* the LRU stamp: the entry already
    /// holds the most-recent stamp, so its relative LRU order — the
    /// only thing stamps are compared for — cannot change.
    last_vpn: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `ways` or either is zero.
    #[must_use]
    pub fn new(entries: usize, ways: usize, miss_latency: Cycle) -> Self {
        assert!(ways > 0 && entries > 0 && entries.is_multiple_of(ways), "bad TLB geometry");
        let num_sets = (entries / ways) as u64;
        Self {
            entries: vec![Entry::default(); entries],
            ways,
            num_sets,
            miss_latency,
            stamp: 0,
            hits: 0,
            misses: 0,
            last_vpn: u64::MAX,
        }
    }

    /// The paper's 64-entry 4-way instruction TLB.
    #[must_use]
    pub fn itlb() -> Self {
        Self::new(64, 4, 30)
    }

    /// The paper's 128-entry 4-way data TLB.
    #[must_use]
    pub fn dtlb() -> Self {
        Self::new(128, 4, 30)
    }

    /// Translates `addr`, returning the added latency: 0 on a hit, the
    /// hardware-walk latency on a miss (the entry is filled).
    pub fn translate(&mut self, addr: u64) -> Cycle {
        let vpn = addr / PAGE_BYTES;
        if vpn == self.last_vpn {
            self.hits += 1;
            return 0;
        }
        // Power-of-two set counts (all realistic geometries) index with
        // a mask instead of a hardware divide.
        let set = if self.num_sets.is_power_of_two() {
            (vpn & (self.num_sets - 1)) as usize
        } else {
            (vpn % self.num_sets) as usize
        };
        self.stamp += 1;
        let stamp = self.stamp;
        self.last_vpn = vpn;
        let ways = &mut self.entries[set * self.ways..(set + 1) * self.ways];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.vpn == vpn) {
            e.lru = stamp;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("TLB set non-empty");
        *victim = Entry { vpn, valid: true, lru: stamp };
        self.miss_latency
    }

    /// Hit count.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_then_hits() {
        let mut t = Tlb::new(8, 2, 30);
        assert_eq!(t.translate(0x0000), 30);
        assert_eq!(t.translate(0x1000), 0); // same 8K page
        assert_eq!(t.translate(0x2000), 30); // next page
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_within_set() {
        let mut t = Tlb::new(2, 2, 30); // one set, two ways
        t.translate(0);
        t.translate(PAGE_BYTES);
        t.translate(0); // touch page 0
        t.translate(2 * PAGE_BYTES); // evicts page 1
        assert_eq!(t.translate(0), 0);
        assert_eq!(t.translate(PAGE_BYTES), 30);
    }

    #[test]
    fn paper_geometries_construct() {
        let _ = Tlb::itlb();
        let _ = Tlb::dtlb();
    }

    #[test]
    #[should_panic(expected = "bad TLB geometry")]
    fn bad_geometry_rejected() {
        let _ = Tlb::new(7, 2, 30);
    }
}
