//! Backing store for memory *values*.
//!
//! The cache hierarchy in this crate models timing only; the actual data
//! lives here, as a sparse map of 4 KB pages of 64-bit words. The
//! simulator keeps one `DataStore` as architectural memory (updated at
//! store retirement) — out-of-order loads see younger in-flight stores
//! through the store queue, not through this store.

use rix_isa::semantics;
use rix_isa::Opcode;
use std::collections::HashMap;

const WORDS_PER_PAGE: usize = 512; // 4 KB pages
const PAGE_SHIFT: u32 = 12;

/// Sparse word-addressable memory. Uninitialised words read as zero.
///
/// ```
/// use rix_mem::DataStore;
/// let mut m = DataStore::new();
/// m.write_word(0x1000, 42);
/// assert_eq!(m.read_word(0x1000), 42);
/// assert_eq!(m.read_word(0x2000), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DataStore {
    pages: HashMap<u64, Box<[u64; WORDS_PER_PAGE]>>,
}

impl DataStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the naturally-aligned 64-bit word containing `addr`.
    #[must_use]
    pub fn read_word(&self, addr: u64) -> u64 {
        let page = addr >> PAGE_SHIFT;
        let idx = ((addr >> 3) as usize) & (WORDS_PER_PAGE - 1);
        self.pages.get(&page).map_or(0, |p| p[idx])
    }

    /// Writes the naturally-aligned 64-bit word containing `addr`.
    pub fn write_word(&mut self, addr: u64, value: u64) {
        let page = addr >> PAGE_SHIFT;
        let idx = ((addr >> 3) as usize) & (WORDS_PER_PAGE - 1);
        self.pages.entry(page).or_insert_with(|| Box::new([0; WORDS_PER_PAGE]))[idx] = value;
    }

    /// Performs a load with the given opcode's width/extension semantics.
    #[must_use]
    pub fn load(&self, op: Opcode, addr: u64) -> u64 {
        semantics::load_from_word(op, addr, self.read_word(addr & !7))
    }

    /// Performs a store with the given opcode's width semantics.
    pub fn store(&mut self, op: Opcode, addr: u64, data: u64) {
        let word_addr = addr & !7;
        let merged = semantics::merge_store(op, addr, self.read_word(word_addr), data);
        self.write_word(word_addr, merged);
    }

    /// Loads an initial image produced by the assembler.
    pub fn load_segments(&mut self, segments: &[rix_isa::program::DataSegment]) {
        for seg in segments {
            for (i, &w) in seg.words.iter().enumerate() {
                self.write_word(seg.base + 8 * i as u64, w);
            }
        }
    }

    /// Number of resident 4 KB pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_fill_semantics() {
        let m = DataStore::new();
        assert_eq!(m.read_word(0), 0);
        assert_eq!(m.read_word(!7), 0);
    }

    #[test]
    fn cross_page_isolation() {
        let mut m = DataStore::new();
        m.write_word(0x0ff8, 1);
        m.write_word(0x1000, 2);
        assert_eq!(m.read_word(0x0ff8), 1);
        assert_eq!(m.read_word(0x1000), 2);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn typed_load_store() {
        let mut m = DataStore::new();
        m.store(Opcode::Stq, 0x100, 0xdead_beef_cafe_f00d);
        assert_eq!(m.load(Opcode::Ldq, 0x100), 0xdead_beef_cafe_f00d);
        m.store(Opcode::Stl, 0x104, 0xffff_ffff);
        assert_eq!(m.load(Opcode::Ldl, 0x104), u64::MAX); // sign-extended
        // Low half 0xcafe_f00d has its sign bit set → extends to all-ones.
        assert_eq!(m.load(Opcode::Ldl, 0x100), 0xffff_ffff_cafe_f00d);
    }

    #[test]
    fn segments_load() {
        let mut m = DataStore::new();
        m.load_segments(&[rix_isa::program::DataSegment {
            base: 0x2000,
            words: vec![10, 20, 30],
        }]);
        assert_eq!(m.read_word(0x2000), 10);
        assert_eq!(m.read_word(0x2008), 20);
        assert_eq!(m.read_word(0x2010), 30);
    }

    proptest! {
        #[test]
        fn write_read_roundtrip(addr in any::<u64>(), val in any::<u64>()) {
            let addr = addr & !7;
            let mut m = DataStore::new();
            m.write_word(addr, val);
            prop_assert_eq!(m.read_word(addr), val);
        }

        #[test]
        fn distinct_words_independent(a in any::<u64>(), b in any::<u64>(), va in any::<u64>(), vb in any::<u64>()) {
            let (a, b) = (a & !7, b & !7);
            prop_assume!(a != b);
            let mut m = DataStore::new();
            m.write_word(a, va);
            m.write_word(b, vb);
            prop_assert_eq!(m.read_word(a), va);
            prop_assert_eq!(m.read_word(b), vb);
        }
    }
}
