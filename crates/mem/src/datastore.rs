//! Backing store for memory *values*.
//!
//! The cache hierarchy in this crate models timing only; the actual data
//! lives here, as a sparse map of 4 KB pages of 64-bit words. The
//! simulator keeps one `DataStore` as architectural memory (updated at
//! store retirement) — out-of-order loads see younger in-flight stores
//! through the store queue, not through this store.

use rix_isa::semantics;
use rix_isa::{MemImage, Opcode};
use std::cell::Cell;

const WORDS_PER_PAGE: usize = 512; // 4 KB pages
const PAGE_SHIFT: u32 = 12;

// The bulk image paths copy whole pages, so the two layouts must agree.
const _: () = assert!(WORDS_PER_PAGE == rix_isa::arch::WORDS_PER_PAGE);
const _: () = assert!(PAGE_SHIFT == rix_isa::arch::PAGE_SHIFT);

/// Fibonacci multiplicative hash constant (2^64 / φ).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// Sparse word-addressable memory. Uninitialised words read as zero.
///
/// This sits on the simulator's hottest data path — every executed
/// load, every DIVA re-execution and every retired store touches it —
/// so instead of a `HashMap` (SipHash per access) pages live in a dense
/// vector behind an open-addressed, linearly-probed index, fronted by a
/// one-entry MRU cache that short-circuits the page-locality common
/// case to a single compare.
///
/// ```
/// use rix_mem::DataStore;
/// let mut m = DataStore::new();
/// m.write_word(0x1000, 42);
/// assert_eq!(m.read_word(0x1000), 42);
/// assert_eq!(m.read_word(0x2000), 0);
/// ```
#[derive(Clone, Debug)]
pub struct DataStore {
    /// Dense page storage; `keys[i]` is the page number of `pages[i]`.
    pages: Vec<Box<[u64; WORDS_PER_PAGE]>>,
    keys: Vec<u64>,
    /// Open-addressed page table: slot → dense index + 1, 0 = empty.
    /// Length is a power of two, load factor kept below ~0.7.
    index: Vec<u32>,
    /// Last page touched, as (page number, dense index); the page
    /// number is `u64::MAX` (unreachable: pages are `addr >> 12`) when
    /// nothing is cached. A `Cell` so reads stay `&self`.
    mru: Cell<(u64, u32)>,
}

impl Default for DataStore {
    fn default() -> Self {
        Self {
            pages: Vec::new(),
            keys: Vec::new(),
            index: vec![0; 64],
            mru: Cell::new((u64::MAX, 0)),
        }
    }
}

impl DataStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// First probe slot for `page`.
    #[inline]
    fn home_slot(&self, page: u64) -> usize {
        ((page.wrapping_mul(HASH_MUL) >> 32) as usize) & (self.index.len() - 1)
    }

    /// Dense index of `page`, if resident.
    #[inline]
    fn find(&self, page: u64) -> Option<u32> {
        let mask = self.index.len() - 1;
        let mut slot = self.home_slot(page);
        loop {
            match self.index[slot] {
                0 => return None,
                e => {
                    let di = e - 1;
                    if self.keys[di as usize] == page {
                        return Some(di);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Allocates a fresh zero page for `page`, growing the index table
    /// when its load factor would exceed ~0.7.
    fn insert_page(&mut self, page: u64) -> u32 {
        if (self.pages.len() + 1) * 10 > self.index.len() * 7 {
            let mut grown = vec![0u32; self.index.len() * 2];
            let mask = grown.len() - 1;
            for (di, &key) in self.keys.iter().enumerate() {
                let mut slot = ((key.wrapping_mul(HASH_MUL) >> 32) as usize) & mask;
                while grown[slot] != 0 {
                    slot = (slot + 1) & mask;
                }
                grown[slot] = di as u32 + 1;
            }
            self.index = grown;
        }
        let di = self.pages.len() as u32;
        self.pages.push(Box::new([0; WORDS_PER_PAGE]));
        self.keys.push(page);
        let mask = self.index.len() - 1;
        let mut slot = self.home_slot(page);
        while self.index[slot] != 0 {
            slot = (slot + 1) & mask;
        }
        self.index[slot] = di + 1;
        di
    }

    /// Reads the naturally-aligned 64-bit word containing `addr`.
    #[must_use]
    #[inline]
    pub fn read_word(&self, addr: u64) -> u64 {
        let page = addr >> PAGE_SHIFT;
        let idx = ((addr >> 3) as usize) & (WORDS_PER_PAGE - 1);
        let (mru_page, mru_di) = self.mru.get();
        if mru_page == page {
            return self.pages[mru_di as usize][idx];
        }
        match self.find(page) {
            Some(di) => {
                self.mru.set((page, di));
                self.pages[di as usize][idx]
            }
            None => 0,
        }
    }

    /// Writes the naturally-aligned 64-bit word containing `addr`.
    #[inline]
    pub fn write_word(&mut self, addr: u64, value: u64) {
        let page = addr >> PAGE_SHIFT;
        let idx = ((addr >> 3) as usize) & (WORDS_PER_PAGE - 1);
        let (mru_page, mru_di) = self.mru.get();
        let di = if mru_page == page {
            mru_di
        } else {
            let di = self.find(page).unwrap_or_else(|| self.insert_page(page));
            self.mru.set((page, di));
            di
        };
        self.pages[di as usize][idx] = value;
    }

    /// Performs a load with the given opcode's width/extension semantics.
    #[must_use]
    pub fn load(&self, op: Opcode, addr: u64) -> u64 {
        semantics::load_from_word(op, addr, self.read_word(addr & !7))
    }

    /// Performs a store with the given opcode's width semantics.
    pub fn store(&mut self, op: Opcode, addr: u64, data: u64) {
        let word_addr = addr & !7;
        let merged = semantics::merge_store(op, addr, self.read_word(word_addr), data);
        self.write_word(word_addr, merged);
    }

    /// Loads an initial image produced by the assembler.
    pub fn load_segments(&mut self, segments: &[rix_isa::program::DataSegment]) {
        for seg in segments {
            for (i, &w) in seg.words.iter().enumerate() {
                self.write_word(seg.base + 8 * i as u64, w);
            }
        }
    }

    /// Bulk-seeds the store from an architectural [`MemImage`]
    /// (page-granular copies, not word-by-word writes) — the restore
    /// path of checkpoints and functional fast-forward warm-up.
    /// Existing pages that also appear in the image are overwritten;
    /// pages absent from the image are left untouched, so seed a fresh
    /// store when the image is the complete memory state.
    pub fn load_image(&mut self, img: &MemImage) {
        for (page, words) in img.pages() {
            let di = self.find(page).unwrap_or_else(|| self.insert_page(page));
            *self.pages[di as usize] = *words;
        }
    }

    /// Dumps the store's full contents as an architectural [`MemImage`]
    /// (page-granular copies). The image's canonical ordering makes the
    /// dump independent of this store's internal page order.
    #[must_use]
    pub fn dump_image(&self) -> MemImage {
        let mut img = MemImage::new();
        for (di, &page) in self.keys.iter().enumerate() {
            img.set_page(page, *self.pages[di]);
        }
        img
    }

    /// Number of resident 4 KB pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_fill_semantics() {
        let m = DataStore::new();
        assert_eq!(m.read_word(0), 0);
        assert_eq!(m.read_word(!7), 0);
    }

    #[test]
    fn cross_page_isolation() {
        let mut m = DataStore::new();
        m.write_word(0x0ff8, 1);
        m.write_word(0x1000, 2);
        assert_eq!(m.read_word(0x0ff8), 1);
        assert_eq!(m.read_word(0x1000), 2);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn typed_load_store() {
        let mut m = DataStore::new();
        m.store(Opcode::Stq, 0x100, 0xdead_beef_cafe_f00d);
        assert_eq!(m.load(Opcode::Ldq, 0x100), 0xdead_beef_cafe_f00d);
        m.store(Opcode::Stl, 0x104, 0xffff_ffff);
        assert_eq!(m.load(Opcode::Ldl, 0x104), u64::MAX); // sign-extended
        // Low half 0xcafe_f00d has its sign bit set → extends to all-ones.
        assert_eq!(m.load(Opcode::Ldl, 0x100), 0xffff_ffff_cafe_f00d);
    }

    #[test]
    fn many_pages_survive_index_growth() {
        // Enough pages to force several open-addressed table doublings,
        // with strided page numbers to exercise probe collisions.
        let mut m = DataStore::new();
        for i in 0..500u64 {
            m.write_word(i * 0x1000 * 64, i + 1);
        }
        assert_eq!(m.resident_pages(), 500);
        for i in 0..500u64 {
            assert_eq!(m.read_word(i * 0x1000 * 64), i + 1, "page {i}");
            assert_eq!(m.read_word(i * 0x1000 * 64 + 8), 0);
        }
    }

    #[test]
    fn mru_tracks_clone_independently() {
        let mut a = DataStore::new();
        a.write_word(0x1000, 7);
        let mut b = a.clone();
        b.write_word(0x1000, 8);
        assert_eq!(a.read_word(0x1000), 7);
        assert_eq!(b.read_word(0x1000), 8);
    }

    #[test]
    fn segments_load() {
        let mut m = DataStore::new();
        m.load_segments(&[rix_isa::program::DataSegment {
            base: 0x2000,
            words: vec![10, 20, 30],
        }]);
        assert_eq!(m.read_word(0x2000), 10);
        assert_eq!(m.read_word(0x2008), 20);
        assert_eq!(m.read_word(0x2010), 30);
    }

    #[test]
    fn image_roundtrip() {
        let mut m = DataStore::new();
        m.write_word(0x1000, 7);
        m.write_word(0x4_2000, u64::MAX);
        m.write_word(0x0ff8, 3);
        let img = m.dump_image();
        assert_eq!(
            img.words().collect::<Vec<_>>(),
            vec![(0x0ff8, 3), (0x1000, 7), (0x4_2000, u64::MAX)],
        );
        let mut back = DataStore::new();
        back.load_image(&img);
        assert_eq!(back.read_word(0x1000), 7);
        assert_eq!(back.read_word(0x4_2000), u64::MAX);
        assert_eq!(back.read_word(0x0ff8), 3);
        assert_eq!(back.read_word(0x9_9000), 0, "untouched words stay zero");
        assert_eq!(back.dump_image(), img);
    }

    #[test]
    fn load_image_overwrites_matching_pages() {
        let mut m = DataStore::new();
        m.write_word(0x1000, 1);
        m.write_word(0x1008, 2);
        let mut img = rix_isa::MemImage::new();
        img.write_word(0x1000, 9); // page 1: replaces the whole page
        m.load_image(&img);
        assert_eq!(m.read_word(0x1000), 9);
        assert_eq!(m.read_word(0x1008), 0, "page copy is wholesale");
    }

    proptest! {
        #[test]
        fn write_read_roundtrip(addr in any::<u64>(), val in any::<u64>()) {
            let addr = addr & !7;
            let mut m = DataStore::new();
            m.write_word(addr, val);
            prop_assert_eq!(m.read_word(addr), val);
        }

        #[test]
        fn distinct_words_independent(a in any::<u64>(), b in any::<u64>(), va in any::<u64>(), vb in any::<u64>()) {
            let (a, b) = (a & !7, b & !7);
            prop_assume!(a != b);
            let mut m = DataStore::new();
            m.write_word(a, va);
            m.write_word(b, vb);
            prop_assert_eq!(m.read_word(a), va);
            prop_assert_eq!(m.read_word(b), vb);
        }
    }
}
