//! The composed memory system.
//!
//! [`MemSystem`] wires the L1 caches, unified L2, TLBs, MSHR file, buses
//! and write buffer into the three operations the core needs:
//!
//! * [`MemSystem::ifetch`] — instruction fetch timing,
//! * [`MemSystem::dload`] — out-of-order load timing (cache port side;
//!   store-queue forwarding is the LSQ's job),
//! * [`MemSystem::retire_store`] — retirement-time store drain through the
//!   write buffer.
//!
//! Every operation returns the cycle its data is available. Miss flows
//! charge, in order: the L2 lookup, the memory bus + 80-cycle DRAM on an
//! L2 miss, the L2→L1 backside transfer, and any dirty-victim write-backs.

use crate::bus::Bus;
use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::mshr::MshrFile;
use crate::tlb::Tlb;
use crate::writebuf::WriteBuffer;
use crate::Cycle;

/// Configuration of the whole hierarchy (defaults = §3.1 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Instruction cache geometry.
    pub l1i: CacheConfig,
    /// Data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles.
    pub mem_latency: Cycle,
    /// Number of data-cache MSHRs.
    pub mshrs: usize,
    /// Retirement write-buffer entries.
    pub write_buffer: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            l1i: CacheConfig::l1i(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            mem_latency: 80,
            mshrs: 16,
            write_buffer: 16,
        }
    }
}

impl MemConfig {
    /// The field names [`MemConfig::apply_json`] accepts.
    pub const KEYS: &'static [&'static str] =
        &["l1i", "l1d", "l2", "mem_latency", "mshrs", "write_buffer"];

    /// Serialises the hierarchy configuration as a JSON object (every
    /// field, stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"l1i":{},"l1d":{},"l2":{},"mem_latency":{},"mshrs":{},"write_buffer":{}}}"#,
            self.l1i.to_json(),
            self.l1d.to_json(),
            self.l2.to_json(),
            self.mem_latency,
            self.mshrs,
            self.write_buffer,
        )
    }

    /// Checks that every cache level can actually be built (see
    /// [`CacheConfig::validate`]), naming the level on failure.
    pub fn validate(&self) -> Result<(), String> {
        for (name, c) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            c.validate().map_err(|e| format!("{name}: {e}"))?;
        }
        Ok(())
    }

    /// Applies a (possibly partial) JSON object: present keys overwrite
    /// (nested cache objects may themselves be partial), omitted keys
    /// keep their current value, unknown keys are rejected with an error
    /// naming them and their position.
    pub fn apply_json(&mut self, v: &rix_isa::json::Json) -> Result<(), String> {
        use rix_isa::json::expect_u64;
        let rix_isa::json::Json::Obj(fields) = v else {
            return Err("memory config must be a JSON object".to_string());
        };
        for (k, val) in fields {
            let nest = |e: String| format!("{k}: {e}");
            match k.as_str() {
                "l1i" => self.l1i.apply_json(val).map_err(nest)?,
                "l1d" => self.l1d.apply_json(val).map_err(nest)?,
                "l2" => self.l2.apply_json(val).map_err(nest)?,
                "mem_latency" => self.mem_latency = expect_u64(k, val)?,
                "mshrs" => self.mshrs = expect_u64(k, val)? as usize,
                "write_buffer" => self.write_buffer = expect_u64(k, val)? as usize,
                other => return Err(rix_isa::json::unknown_key(other, Self::KEYS)),
            }
        }
        Ok(())
    }
}

/// Aggregate statistics across the hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemSystemStats {
    /// Instruction-cache hit/miss counters.
    pub l1i: CacheStats,
    /// Data-cache hit/miss counters.
    pub l1d: CacheStats,
    /// L2 hit/miss counters.
    pub l2: CacheStats,
    /// I-TLB misses.
    pub itlb_misses: u64,
    /// D-TLB misses.
    pub dtlb_misses: u64,
    /// MSHR merges (loads piggy-backing on in-flight fills).
    pub mshr_merges: u64,
    /// Write-buffer full events (retirement stalls).
    pub write_buffer_stalls: u64,
    /// Backside-bus busy cycles.
    pub backside_busy: u64,
    /// Memory-bus busy cycles.
    pub membus_busy: u64,
}

/// The full cache/TLB/bus hierarchy.
#[derive(Clone, Debug)]
pub struct MemSystem {
    cfg: MemConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    dmshr: MshrFile,
    backside: Bus,
    membus: Bus,
    wb: WriteBuffer,
}

impl MemSystem {
    /// Builds the hierarchy from a configuration.
    #[must_use]
    pub fn new(cfg: MemConfig) -> Self {
        Self {
            cfg,
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            itlb: Tlb::itlb(),
            dtlb: Tlb::dtlb(),
            dmshr: MshrFile::new(cfg.mshrs),
            backside: Bus::backside(),
            membus: Bus::memory(),
            wb: WriteBuffer::new(cfg.write_buffer),
        }
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> MemConfig {
        self.cfg
    }

    /// Fetches the L2 line containing `line_addr` into the L2 (if absent)
    /// and returns the cycle the line is available at the L2's output.
    fn l2_data_ready(&mut self, now: Cycle, addr: u64) -> Cycle {
        let l2_line = self.l2.line_addr(addr);
        let lookup_done = now + self.l2.config().hit_latency;
        if self.l2.lookup(l2_line, false) {
            return lookup_done;
        }
        // L2 miss: DRAM access then transfer over the memory bus.
        let dram_done = lookup_done + self.cfg.mem_latency;
        let line_bytes = self.l2.config().line_bytes;
        let bus_done = self.membus.acquire(dram_done, line_bytes);
        if let Some(victim) = self.l2.fill(l2_line) {
            // Dirty L2 victim drains to memory; charges the bus but does
            // not delay the demand fill.
            let _ = self.membus.acquire(bus_done, line_bytes);
            let _ = victim;
        }
        bus_done
    }

    /// Moves the L1 line containing `addr` from L2 to the given L1,
    /// returning its arrival cycle. Handles dirty-victim write-back.
    fn fill_l1(&mut self, now: Cycle, addr: u64, which: WhichL1) -> Cycle {
        let l2_ready = self.l2_data_ready(now, addr);
        let l1 = match which {
            WhichL1::Instr => &mut self.l1i,
            WhichL1::Data => &mut self.l1d,
        };
        let line_bytes = l1.config().line_bytes;
        let line = l1.line_addr(addr);
        let arrival = self.backside.acquire(l2_ready, line_bytes);
        if let Some(victim) = l1.fill(line) {
            // Dirty L1 victim goes down the backside bus into L2.
            let wb_done = self.backside.acquire(arrival, line_bytes);
            if !self.l2.lookup(victim.addr, true) {
                // Victim missing in L2 (non-inclusive): allocate it there.
                let _ = self.l2.fill(victim.addr);
                let _ = wb_done;
            }
        }
        arrival
    }

    /// Instruction fetch of the line containing byte address `addr`,
    /// requested at `now`. Returns the cycle the line is available.
    pub fn ifetch(&mut self, now: Cycle, addr: u64) -> Cycle {
        let t0 = now + self.itlb.translate(addr);
        let line = self.l1i.line_addr(addr);
        let hit_latency = self.l1i.config().hit_latency;
        if self.l1i.lookup(line, false) {
            return t0 + hit_latency;
        }
        self.fill_l1(t0, addr, WhichL1::Instr) + hit_latency
    }

    /// Data load of the word at `addr`, requested at `now` (after address
    /// generation). Returns the cycle the data is available.
    ///
    /// Captures hit-under-miss (hits proceed while fills are in flight),
    /// MSHR merging, and MSHR exhaustion.
    pub fn dload(&mut self, now: Cycle, addr: u64) -> Cycle {
        let t0 = now + self.dtlb.translate(addr);
        let line = self.l1d.line_addr(addr);
        let hit_latency = self.l1d.config().hit_latency;
        // The MSHR check precedes the tag lookup: fills update tag state
        // eagerly in this latency-oracle model, so an in-flight line would
        // otherwise appear to hit before its data has arrived.
        if let Some(fill_done) = self.dmshr.merge(t0, line) {
            return fill_done.max(t0) + hit_latency;
        }
        if self.l1d.lookup(line, false) {
            return t0 + hit_latency;
        }
        let start = self.dmshr.allocate_at(t0);
        let fill_done = self.fill_l1(start, addr, WhichL1::Data);
        self.dmshr.insert(line, fill_done);
        fill_done + hit_latency
    }

    /// Attempts to retire a store at `now`: enters the write buffer and
    /// performs the (write-allocate) cache write in the background.
    ///
    /// Returns `None` when the write buffer is full — the caller must
    /// stall retirement and retry next cycle.
    pub fn retire_store(&mut self, now: Cycle, addr: u64) -> Option<Cycle> {
        if !self.wb.can_accept(now) {
            return None;
        }
        let t0 = now + self.dtlb.translate(addr);
        let line = self.l1d.line_addr(addr);
        let hit_latency = self.l1d.config().hit_latency;
        let done = if let Some(fill_done) = self.dmshr.merge(t0, line) {
            self.l1d.mark_dirty(line);
            fill_done.max(t0) + hit_latency
        } else if self.l1d.lookup(line, true) {
            t0 + hit_latency
        } else {
            let fill_done = self.fill_l1(t0, addr, WhichL1::Data);
            self.l1d.mark_dirty(line);
            fill_done + hit_latency
        };
        self.wb.push(done);
        Some(done)
    }

    /// Whether the data cache currently holds the line of `addr`
    /// (probe only; no state change).
    #[must_use]
    pub fn dcache_resident(&self, addr: u64) -> bool {
        self.l1d.probe(addr)
    }

    /// Aggregated statistics snapshot.
    #[must_use]
    pub fn stats(&mut self) -> MemSystemStats {
        MemSystemStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            itlb_misses: self.itlb.misses(),
            dtlb_misses: self.dtlb.misses(),
            mshr_merges: self.dmshr.merges(),
            write_buffer_stalls: self.wb.full_stalls(),
            backside_busy: self.backside.busy_cycles(),
            membus_busy: self.membus.busy_cycles(),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum WhichL1 {
    Instr,
    Data,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSystem {
        MemSystem::new(MemConfig::default())
    }

    #[test]
    fn load_hit_is_min_latency() {
        let mut m = sys();
        let _ = m.dload(0, 0x1000); // cold miss warms TLB + caches
        let t = m.dload(1000, 0x1000);
        assert_eq!(t, 1002, "2-cycle D$ hit");
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let mut m = sys();
        let t = m.dload(0, 0x1000);
        // TLB walk (30) + L2 lookup (6) + DRAM (80) + buses.
        assert!(t > 100, "cold miss should cost >100 cycles, got {t}");
    }

    #[test]
    fn l2_hit_cheaper_than_memory() {
        let mut m = sys();
        let cold = m.dload(0, 0x1000);
        // A different L1 line mapping to the same L2 line (L2 lines are
        // 64 B, L1 lines 32 B): 0x1020 misses L1, hits L2.
        let warm = m.dload(cold + 100, 0x1020) - (cold + 100);
        let cold_cost = cold; // from cycle 0
        assert!(warm < cold_cost / 2, "L2 hit {warm} vs cold {cold_cost}");
    }

    #[test]
    fn mshr_merge_shares_fill() {
        let mut m = sys();
        let t1 = m.dload(0, 0x1000);
        let t2 = m.dload(1, 0x1008); // same L1 line, fill in flight
        assert!(t2 <= t1 + 2, "merged access piggy-backs: {t2} vs {t1}");
        assert_eq!(m.stats().mshr_merges, 1);
    }

    #[test]
    fn hit_under_miss() {
        let mut m = sys();
        let _ = m.dload(0, 0x1000); // warm line A
        let miss = m.dload(100, 0x9000); // miss starts
        let hit = m.dload(101, 0x1000); // hit proceeds underneath
        assert!(hit < miss, "hit {hit} completes before miss {miss}");
    }

    #[test]
    fn ifetch_hits_after_warmup() {
        let mut m = sys();
        let _ = m.ifetch(0, 0x0);
        let t = m.ifetch(500, 0x8);
        assert_eq!(t, 501, "1-cycle I$ hit");
    }

    #[test]
    fn store_retire_uses_write_buffer() {
        let mut m = sys();
        let done = m.retire_store(0, 0x1000);
        assert!(done.is_some());
        // Immediately-following stores to a warm line accept quickly.
        let _ = m.retire_store(1, 0x1000).unwrap();
    }

    #[test]
    fn write_buffer_fills_up() {
        let mut m = MemSystem::new(MemConfig { write_buffer: 2, ..MemConfig::default() });
        // Two cold stores to distinct far-apart lines occupy the buffer
        // for the full miss latency.
        assert!(m.retire_store(0, 0x10000).is_some());
        assert!(m.retire_store(0, 0x20000).is_some());
        assert!(m.retire_store(1, 0x30000).is_none(), "buffer full");
        assert!(m.stats().write_buffer_stalls >= 1);
    }

    #[test]
    fn stats_populate() {
        let mut m = sys();
        let _ = m.dload(0, 0x1000);
        let _ = m.dload(200, 0x1000);
        let _ = m.ifetch(0, 0x40);
        let s = m.stats();
        assert_eq!(s.l1d.hits, 1);
        assert_eq!(s.l1d.misses, 1);
        assert_eq!(s.l1i.misses, 1);
        assert!(s.dtlb_misses >= 1);
        assert!(s.membus_busy > 0);
    }

    #[test]
    fn bus_contention_serialises_misses() {
        let mut m = sys();
        // Two concurrent cold misses to distinct lines contend on the
        // memory bus; the second finishes no earlier than the first.
        let t1 = m.dload(0, 0x40000);
        let t2 = m.dload(0, 0x80000);
        assert!(t2 >= t1);
    }
}
