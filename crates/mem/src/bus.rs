//! Cycle-level bus occupancy.
//!
//! The paper models two buses at the cycle level (§3.1): a 32-byte
//! backside bus clocked at processor frequency between L1 and L2, and a
//! 32-byte memory bus at one-quarter processor frequency between L2 and
//! main memory. [`Bus`] tracks when the wire is next free and serialises
//! transfers.

use crate::Cycle;

/// A shared transfer resource with width and a clock divisor.
#[derive(Clone, Debug)]
pub struct Bus {
    width_bytes: u64,
    period: Cycle,
    next_free: Cycle,
    busy_cycles: u64,
    transfers: u64,
}

impl Bus {
    /// Creates a bus `width_bytes` wide whose clock runs at
    /// `1/period` of the core clock.
    ///
    /// # Panics
    ///
    /// Panics if width or period is zero.
    #[must_use]
    pub fn new(width_bytes: u64, period: Cycle) -> Self {
        assert!(width_bytes > 0 && period > 0, "bus width and period must be non-zero");
        Self { width_bytes, period, next_free: 0, busy_cycles: 0, transfers: 0 }
    }

    /// The paper's backside (L1↔L2) bus: 32 bytes at core frequency.
    #[must_use]
    pub fn backside() -> Self {
        Self::new(32, 1)
    }

    /// The paper's memory (L2↔DRAM) bus: 32 bytes at quarter frequency.
    #[must_use]
    pub fn memory() -> Self {
        Self::new(32, 4)
    }

    /// Core cycles needed to move `bytes` across this bus.
    #[must_use]
    pub fn transfer_cycles(&self, bytes: u64) -> Cycle {
        bytes.div_ceil(self.width_bytes).max(1) * self.period
    }

    /// Reserves the bus for a `bytes`-long transfer requested at `now`.
    ///
    /// Returns the cycle at which the transfer *completes*. Requests are
    /// serialised in arrival order.
    pub fn acquire(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let start = self.next_free.max(now);
        let dur = self.transfer_cycles(bytes);
        self.next_free = start + dur;
        self.busy_cycles += dur;
        self.transfers += 1;
        self.next_free
    }

    /// The first cycle at which a new transfer could start.
    #[must_use]
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Total cycles the bus has been occupied.
    #[must_use]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of transfers performed.
    #[must_use]
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_cycle_math() {
        let backside = Bus::backside();
        assert_eq!(backside.transfer_cycles(32), 1);
        assert_eq!(backside.transfer_cycles(64), 2);
        let membus = Bus::memory();
        assert_eq!(membus.transfer_cycles(32), 4);
        assert_eq!(membus.transfer_cycles(64), 8);
    }

    #[test]
    fn serialises_contending_transfers() {
        let mut b = Bus::backside();
        let t1 = b.acquire(10, 32);
        let t2 = b.acquire(10, 32); // queued behind t1
        assert_eq!(t1, 11);
        assert_eq!(t2, 12);
    }

    #[test]
    fn idle_bus_starts_immediately() {
        let mut b = Bus::memory();
        let done = b.acquire(100, 64);
        assert_eq!(done, 108);
        // After a long gap a new transfer starts at `now`.
        let done2 = b.acquire(1000, 32);
        assert_eq!(done2, 1004);
    }

    #[test]
    fn stats_accumulate() {
        let mut b = Bus::backside();
        b.acquire(0, 32);
        b.acquire(0, 64);
        assert_eq!(b.transfers(), 2);
        assert_eq!(b.busy_cycles(), 3);
    }

    #[test]
    fn zero_byte_transfer_takes_one_slot() {
        let mut b = Bus::backside();
        assert_eq!(b.acquire(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_width_rejected() {
        let _ = Bus::new(0, 1);
    }
}
