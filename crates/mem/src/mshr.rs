//! Miss-status holding registers (MSHRs).
//!
//! The data cache is non-blocking with 16 MSHRs (§3.1): up to 16 distinct
//! line misses may be outstanding, and accesses to a line that already has
//! an MSHR merge with it (returning the in-flight fill's completion time
//! instead of issuing a second request). When all MSHRs are busy, a new
//! miss must wait for the earliest one to retire.

use crate::Cycle;

#[derive(Clone, Copy, Debug)]
struct Entry {
    line_addr: u64,
    ready_at: Cycle,
}

/// A file of miss-status holding registers.
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    merges: u64,
    allocation_stalls: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR file needs at least one register");
        Self { entries: Vec::new(), capacity, merges: 0, allocation_stalls: 0 }
    }

    fn expire(&mut self, now: Cycle) {
        self.entries.retain(|e| e.ready_at > now);
    }

    /// Checks whether a miss to `line_addr` at `now` merges with an
    /// outstanding fill; returns the fill's completion time if so.
    pub fn merge(&mut self, now: Cycle, line_addr: u64) -> Option<Cycle> {
        self.expire(now);
        let hit = self
            .entries
            .iter()
            .find(|e| e.line_addr == line_addr)
            .map(|e| e.ready_at);
        if hit.is_some() {
            self.merges += 1;
        }
        hit
    }

    /// The earliest cycle at which a *new* miss can allocate an MSHR.
    ///
    /// Equal to `now` when a register is free; otherwise the completion
    /// time of the earliest outstanding fill.
    pub fn allocate_at(&mut self, now: Cycle) -> Cycle {
        self.expire(now);
        if self.entries.len() < self.capacity {
            now
        } else {
            self.allocation_stalls += 1;
            self.entries
                .iter()
                .map(|e| e.ready_at)
                .min()
                .expect("file is full, so non-empty")
        }
    }

    /// Records an in-flight fill of `line_addr` completing at `ready_at`.
    ///
    /// Callers must have consulted [`MshrFile::allocate_at`]; if the file
    /// is still full the oldest entry is displaced (it completes earliest,
    /// so by construction `ready_at >= its completion`).
    pub fn insert(&mut self, line_addr: u64, ready_at: Cycle) {
        if self.entries.len() >= self.capacity {
            if let Some((idx, _)) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.ready_at)
            {
                self.entries.swap_remove(idx);
            }
        }
        self.entries.push(Entry { line_addr, ready_at });
    }

    /// Number of currently outstanding misses at `now`.
    pub fn outstanding(&mut self, now: Cycle) -> usize {
        self.expire(now);
        self.entries.len()
    }

    /// Number of merged (piggy-backed) misses.
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Number of misses that had to wait for a free register.
    #[must_use]
    pub fn allocation_stalls(&self) -> u64 {
        self.allocation_stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_returns_inflight_completion() {
        let mut m = MshrFile::new(4);
        m.insert(0x100, 50);
        assert_eq!(m.merge(10, 0x100), Some(50));
        assert_eq!(m.merge(10, 0x200), None);
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn entries_expire() {
        let mut m = MshrFile::new(4);
        m.insert(0x100, 50);
        assert_eq!(m.merge(50, 0x100), None); // completed at 50
        assert_eq!(m.outstanding(50), 0);
    }

    #[test]
    fn full_file_delays_allocation() {
        let mut m = MshrFile::new(2);
        m.insert(0x100, 40);
        m.insert(0x200, 60);
        assert_eq!(m.allocate_at(10), 40); // wait for the earliest fill
        assert_eq!(m.allocation_stalls(), 1);
        assert_eq!(m.allocate_at(45), 45); // one register now free
    }

    #[test]
    fn insert_when_full_displaces_earliest() {
        let mut m = MshrFile::new(2);
        m.insert(0x100, 40);
        m.insert(0x200, 60);
        m.insert(0x300, 80);
        assert_eq!(m.outstanding(0), 2);
        assert_eq!(m.merge(0, 0x100), None); // displaced
        assert_eq!(m.merge(0, 0x300), Some(80));
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_capacity_rejected() {
        let _ = MshrFile::new(0);
    }
}
