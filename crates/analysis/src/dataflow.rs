//! Classic dataflow analyses over the 64 logical registers.
//!
//! All register sets are `u64` bitmasks ([`RegSet`]) — the RIX register
//! file is exactly 64 registers, so a set is one machine word. Programs
//! are small (hundreds to a few thousand static instructions) and the
//! analyses run block-level worklist fixpoints, then replay transfer
//! functions instruction-by-instruction where per-PC precision is needed.
//!
//! Four analyses are provided:
//!
//! * **definite assignment** ([`Dataflow::must_defined_at`]): forward,
//!   intersection at joins — the set of registers written on *every* path
//!   from the entry. Reading outside it is the read-before-write lint.
//! * **reaching definitions** / **def-use chains**
//!   ([`Dataflow::def_use_chains`]): forward, union at joins, tracking
//!   individual definition sites.
//! * **liveness** ([`Dataflow::live_out_of_block`]): backward, union.
//! * **constant propagation** ([`Dataflow::const_value_at`]): forward over
//!   the flat lattice unknown → constant → non-constant, evaluating ALU
//!   results through [`rix_isa::semantics::alu`] so the analysis can never
//!   disagree with the machine.
//!
//! Writes to the hardwired zero registers are discarded by the machine and
//! are therefore not definitions here; reads of them are always defined
//! and always the constant 0.

use crate::cfg::Cfg;
use rix_isa::{reg, semantics, InstAddr, Instr, LogReg, Opcode, Operand, Program};

/// A set of logical registers as a 64-bit mask (bit _i_ = register _i_).
pub type RegSet = u64;

/// The registers architecturally defined before the first instruction:
/// the hardwired zeros (`r31`/`f63`) and the stack pointer (`r30`,
/// initialised by the loader).
pub const ENTRY_DEFINED: RegSet = (1 << 31) | (1 << 63) | (1 << 30);

const FULL: RegSet = u64::MAX;

fn bit(r: LogReg) -> RegSet {
    1u64 << r.index()
}

/// The registers `i` reads.
#[must_use]
pub fn uses(i: Instr) -> RegSet {
    let mut s = 0;
    if let Some(r) = i.src1 {
        s |= bit(r);
    }
    if let Some(Operand::Reg(r)) = i.src2 {
        s |= bit(r);
    }
    s
}

/// The register `i` defines, if any. Writes to the zero registers are
/// discarded by the machine and report `None`.
#[must_use]
pub fn def(i: Instr) -> Option<LogReg> {
    i.dst.filter(|r| !r.is_zero())
}

/// A constant-propagation lattice value for one register at one point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstVal {
    /// No path reaching this point has assigned the register yet
    /// (the lattice bottom; joins as the identity).
    Unknown,
    /// Every reaching path leaves the same value in the register.
    Const(u64),
    /// Reaching paths disagree, or the value is data-dependent.
    NonConst,
}

impl ConstVal {
    fn join(self, other: ConstVal) -> ConstVal {
        use ConstVal::{Const, NonConst, Unknown};
        match (self, other) {
            (Unknown, x) | (x, Unknown) => x,
            (Const(a), Const(b)) if a == b => Const(a),
            _ => NonConst,
        }
    }
}

type Env = [ConstVal; 64];

/// One definition site: the PC of an instruction that writes `reg`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefSite {
    /// The defining instruction.
    pub pc: InstAddr,
    /// The register it writes.
    pub reg: LogReg,
}

/// A def-use edge: definition site and a PC that may observe it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DefUse {
    /// The definition.
    pub def: DefSite,
    /// An instruction that may read the defined value.
    pub use_pc: InstAddr,
}

/// The dataflow results for one program.
pub struct Dataflow<'p> {
    program: &'p Program,
    cfg: &'p Cfg,
    /// Definite-assignment sets at block entry.
    must_in: Vec<RegSet>,
    /// Liveness at block entry/exit.
    live_in: Vec<RegSet>,
    live_out: Vec<RegSet>,
    /// Constant environments at block entry.
    const_in: Vec<Env>,
    /// All definition sites, in PC order.
    defs: Vec<DefSite>,
}

impl<'p> Dataflow<'p> {
    /// Runs every analysis over `program` using its prebuilt `cfg`.
    #[must_use]
    pub fn run(program: &'p Program, cfg: &'p Cfg) -> Self {
        let defs = program
            .instrs()
            .iter()
            .enumerate()
            .filter_map(|(pc, i)| def(*i).map(|reg| DefSite { pc: pc as InstAddr, reg }))
            .collect();
        let mut df = Self {
            program,
            cfg,
            must_in: Vec::new(),
            live_in: Vec::new(),
            live_out: Vec::new(),
            const_in: Vec::new(),
            defs,
        };
        df.solve_must_defined();
        df.solve_liveness();
        df.solve_consts();
        df
    }

    /// Every definition site in the program, in PC order.
    #[must_use]
    pub fn def_sites(&self) -> &[DefSite] {
        &self.defs
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the program.
    #[must_use]
    pub fn instr_at(&self, pc: InstAddr) -> Instr {
        self.program.fetch(pc).expect("pc in program")
    }

    /// Whether `r` has any definition anywhere in the program.
    #[must_use]
    pub fn ever_defined(&self, r: LogReg) -> bool {
        r.is_zero() || self.defs.iter().any(|d| d.reg == r)
    }

    fn block_instrs(&self, b: usize) -> impl Iterator<Item = (InstAddr, Instr)> + '_ {
        let blk = &self.cfg.blocks[b];
        (blk.start..blk.end).map(|pc| (pc, self.program.fetch(pc).expect("pc in block")))
    }

    // --- definite assignment -------------------------------------------

    fn solve_must_defined(&mut self) {
        let nb = self.cfg.blocks.len();
        let preds = self.cfg.predecessors();
        // Unreached-as-yet blocks start at ⊤ (all registers) so the
        // intersection at joins is not poisoned by them.
        let mut ins = vec![FULL; nb];
        ins[self.cfg.entry_block] = ENTRY_DEFINED;
        let gens: Vec<RegSet> = (0..nb)
            .map(|b| self.block_instrs(b).filter_map(|(_, i)| def(i)).fold(0, |s, r| s | bit(r)))
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                // The virtual program-start edge into the entry block
                // contributes exactly ENTRY_DEFINED; since definitions only
                // accumulate, the intersection with any real back edge into
                // the entry is still ENTRY_DEFINED.
                let inb = if b == self.cfg.entry_block {
                    ENTRY_DEFINED
                } else {
                    preds[b].iter().fold(FULL, |s, &p| s & (ins[p] | gens[p]))
                };
                if inb != ins[b] {
                    ins[b] = inb;
                    changed = true;
                }
            }
        }
        self.must_in = ins;
    }

    /// The set of registers definitely written on every path from the
    /// entry to `pc` (exclusive of `pc` itself). Includes the
    /// architecturally pre-defined [`ENTRY_DEFINED`] registers.
    #[must_use]
    pub fn must_defined_at(&self, pc: InstAddr) -> RegSet {
        let b = self.cfg.block_of(pc);
        let mut cur = self.must_in[b];
        for (p, i) in self.block_instrs(b) {
            if p == pc {
                break;
            }
            if let Some(r) = def(i) {
                cur |= bit(r);
            }
        }
        cur
    }

    // --- liveness ------------------------------------------------------

    fn solve_liveness(&mut self) {
        let nb = self.cfg.blocks.len();
        let mut live_in = vec![0 as RegSet; nb];
        let mut live_out = vec![0 as RegSet; nb];
        // Per-block upward-exposed uses and defs.
        let mut use_b = vec![0 as RegSet; nb];
        let mut def_b = vec![0 as RegSet; nb];
        for b in 0..nb {
            for (_, i) in self.block_instrs(b) {
                use_b[b] |= uses(i) & !def_b[b];
                if let Some(r) = def(i) {
                    def_b[b] |= bit(r);
                }
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for b in (0..nb).rev() {
                let out = self.cfg.blocks[b].succs.iter().fold(0, |s, &q| s | live_in[q]);
                let inn = use_b[b] | (out & !def_b[b]);
                if out != live_out[b] || inn != live_in[b] {
                    live_out[b] = out;
                    live_in[b] = inn;
                    changed = true;
                }
            }
        }
        self.live_in = live_in;
        self.live_out = live_out;
    }

    /// Registers live on entry to block `b`.
    #[must_use]
    pub fn live_into_block(&self, b: usize) -> RegSet {
        self.live_in[b]
    }

    /// Registers live on exit from block `b`.
    #[must_use]
    pub fn live_out_of_block(&self, b: usize) -> RegSet {
        self.live_out[b]
    }

    // --- constant propagation ------------------------------------------

    fn entry_env() -> Env {
        let mut e = [ConstVal::NonConst; 64];
        e[reg::ZERO.index()] = ConstVal::Const(0);
        e[reg::FZERO.index()] = ConstVal::Const(0);
        e
    }

    fn transfer_const(env: &mut Env, pc: InstAddr, i: Instr) {
        let Some(d) = def(i) else { return };
        let val = match i.op {
            Opcode::Jsr => ConstVal::Const(pc + 1),
            op if op.is_load() => ConstVal::NonConst,
            _ => {
                // ALU form: evaluate when both operands are constant.
                let a = i.src1.map_or(ConstVal::NonConst, |r| env[r.index()]);
                let b = match i.src2 {
                    Some(Operand::Imm(imm)) => ConstVal::Const(imm as i64 as u64),
                    Some(Operand::Reg(r)) => env[r.index()],
                    None => ConstVal::NonConst,
                };
                match (a, b) {
                    (ConstVal::Const(x), ConstVal::Const(y)) => {
                        ConstVal::Const(semantics::alu(i.op, x, y))
                    }
                    (ConstVal::Unknown, _) | (_, ConstVal::Unknown) => ConstVal::Unknown,
                    _ => ConstVal::NonConst,
                }
            }
        };
        env[d.index()] = val;
    }

    fn solve_consts(&mut self) {
        let nb = self.cfg.blocks.len();
        let preds = self.cfg.predecessors();
        let mut ins = vec![[ConstVal::Unknown; 64]; nb];
        ins[self.cfg.entry_block] = Self::entry_env();
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                let mut inb = if b == self.cfg.entry_block {
                    Self::entry_env()
                } else {
                    [ConstVal::Unknown; 64]
                };
                for &p in &preds[b] {
                    let mut out = ins[p];
                    for (pc, i) in self.block_instrs(p) {
                        Self::transfer_const(&mut out, pc, i);
                    }
                    for r in 0..64 {
                        inb[r] = inb[r].join(out[r]);
                    }
                }
                if inb != ins[b] {
                    ins[b] = inb;
                    changed = true;
                }
            }
        }
        self.const_in = ins;
    }

    /// The constant-propagation value of `r` just before `pc` executes.
    #[must_use]
    pub fn const_value_at(&self, pc: InstAddr, r: LogReg) -> ConstVal {
        let b = self.cfg.block_of(pc);
        let mut env = self.const_in[b];
        for (p, i) in self.block_instrs(b) {
            if p == pc {
                break;
            }
            Self::transfer_const(&mut env, p, i);
        }
        env[r.index()]
    }

    // --- reaching definitions / def-use chains -------------------------

    /// Def-use chains over the whole program: every `(definition, use)`
    /// pair such that the definition may reach the use, in PC order of
    /// the use. Reaching definitions are tracked per definition *site*,
    /// so two writes to the same register are distinct definitions.
    #[must_use]
    pub fn def_use_chains(&self) -> Vec<DefUse> {
        let nd = self.defs.len();
        let nb = self.cfg.blocks.len();
        let words = nd.div_ceil(64).max(1);
        // Per-reg def-site index lists.
        let mut sites_of = vec![Vec::new(); 64];
        for (idx, d) in self.defs.iter().enumerate() {
            sites_of[d.reg.index()].push(idx);
        }
        let set = |v: &mut [u64], i: usize| v[i / 64] |= 1 << (i % 64);
        let clear_reg = |v: &mut [u64], sites: &[usize]| {
            for &i in sites {
                v[i / 64] &= !(1 << (i % 64));
            }
        };
        // Block-level gen/kill fixpoint (forward, union).
        let mut ins = vec![vec![0u64; words]; nb];
        let mut outs = vec![vec![0u64; words]; nb];
        let mut changed = true;
        while changed {
            changed = false;
            for b in 0..nb {
                let mut cur = ins[b].clone();
                for (pc, i) in self.block_instrs(b) {
                    if let Some(r) = def(i) {
                        clear_reg(&mut cur, &sites_of[r.index()]);
                        let idx = self
                            .defs
                            .binary_search_by_key(&pc, |d| d.pc)
                            .expect("def site indexed");
                        set(&mut cur, idx);
                    }
                }
                if cur != outs[b] {
                    outs[b] = cur;
                    changed = true;
                }
                for &s in &self.cfg.blocks[b].succs {
                    let mut any = false;
                    for w in 0..words {
                        let merged = ins[s][w] | outs[b][w];
                        if merged != ins[s][w] {
                            ins[s][w] = merged;
                            any = true;
                        }
                    }
                    changed |= any;
                }
            }
        }
        // Replay each block recording (def, use) pairs.
        let mut chains = Vec::new();
        for (b, b_in) in ins.iter().enumerate().take(nb) {
            let mut cur = b_in.clone();
            for (pc, i) in self.block_instrs(b) {
                let used = uses(i);
                for r in 0..64u8 {
                    if used & (1 << r) == 0 {
                        continue;
                    }
                    for &idx in &sites_of[usize::from(r)] {
                        if cur[idx / 64] & (1 << (idx % 64)) != 0 {
                            chains.push(DefUse { def: self.defs[idx], use_pc: pc });
                        }
                    }
                }
                if let Some(r) = def(i) {
                    clear_reg(&mut cur, &sites_of[r.index()]);
                    let idx =
                        self.defs.binary_search_by_key(&pc, |d| d.pc).expect("def site indexed");
                    set(&mut cur, idx);
                }
            }
        }
        chains
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rix_isa::Asm;

    fn analyse(p: &Program) -> (Cfg, Vec<DefUse>) {
        let cfg = Cfg::build(p);
        let chains = Dataflow::run(p, &cfg).def_use_chains();
        (cfg, chains)
    }

    #[test]
    fn must_defined_accumulates_straight_line() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 1);
        a.addq(reg::R2, reg::R1, reg::R1);
        a.halt();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let df = Dataflow::run(&p, &cfg);
        assert_eq!(df.must_defined_at(0), ENTRY_DEFINED);
        assert_ne!(df.must_defined_at(1) & (1 << reg::R1.index()), 0);
        assert_eq!(df.must_defined_at(1) & (1 << reg::R2.index()), 0);
    }

    #[test]
    fn must_defined_intersects_at_joins() {
        // Only one arm of the hammock writes r2.
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 1);
        a.beq(reg::R1, "else");
        a.addq_i(reg::R2, reg::ZERO, 2);
        a.br("join");
        a.label("else");
        a.nop();
        a.label("join");
        a.halt();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let df = Dataflow::run(&p, &cfg);
        let join_pc = p.len() as InstAddr - 1;
        assert_eq!(p.fetch(join_pc).unwrap().op, Opcode::Halt);
        assert_eq!(df.must_defined_at(join_pc) & (1 << reg::R2.index()), 0);
        assert_ne!(df.must_defined_at(join_pc) & (1 << reg::R1.index()), 0);
    }

    #[test]
    fn const_prop_evaluates_through_alu() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 1);
        a.sll_i(reg::R2, reg::R1, 20);
        a.ldq(reg::R3, 0, reg::R2);
        a.halt();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let df = Dataflow::run(&p, &cfg);
        assert_eq!(df.const_value_at(2, reg::R2), ConstVal::Const(1 << 20));
        assert_eq!(df.const_value_at(3, reg::R3), ConstVal::NonConst);
    }

    #[test]
    fn const_prop_joins_to_nonconst() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 4);
        a.label("loop");
        a.addq_i(reg::R2, reg::R1, 0); // r2 joins 4 (first pass) with loop value
        a.subq_i(reg::R1, reg::R1, 1);
        a.bne(reg::R1, "loop");
        a.halt();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let df = Dataflow::run(&p, &cfg);
        assert_eq!(df.const_value_at(1, reg::R1), ConstVal::NonConst);
    }

    #[test]
    fn liveness_flows_backward() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 1); // r1 live until its use below
        a.addq_i(reg::R2, reg::ZERO, 2); // dead: never read
        a.addq(reg::R3, reg::R1, reg::R1);
        a.halt();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let df = Dataflow::run(&p, &cfg);
        let b = cfg.block_of(0);
        // Nothing is live into the entry block: every read is preceded by
        // a write inside the block.
        assert_eq!(df.live_into_block(b) & (1 << reg::R1.index()), 0);
        assert_eq!(df.live_out_of_block(b), 0);
    }

    #[test]
    fn def_use_chains_cross_blocks() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 5);
        a.label("loop");
        a.subq_i(reg::R1, reg::R1, 1);
        a.bne(reg::R1, "loop");
        a.halt();
        let p = a.assemble().unwrap();
        let (_, chains) = analyse(&p);
        // The subq at pc 1 reads both the init at pc 0 and itself (around
        // the loop), and the bne at pc 2 reads the subq.
        assert!(chains.contains(&DefUse {
            def: DefSite { pc: 0, reg: reg::R1 },
            use_pc: 1
        }));
        assert!(chains.contains(&DefUse {
            def: DefSite { pc: 1, reg: reg::R1 },
            use_pc: 1
        }));
        assert!(chains.contains(&DefUse {
            def: DefSite { pc: 1, reg: reg::R1 },
            use_pc: 2
        }));
    }

    #[test]
    fn zero_register_writes_are_not_defs() {
        let i = Instr::alu_rr(Opcode::Addq, reg::ZERO, reg::R1, reg::R2);
        assert_eq!(def(i), None);
        assert_ne!(uses(i) & (1 << reg::R1.index()), 0);
    }
}
