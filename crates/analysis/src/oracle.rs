//! The static integration-opportunity oracle.
//!
//! Register integration (the paper's central mechanism) only ever fires
//! for instructions whose opcode is *integration eligible*
//! ([`rix_isa::Opcode::is_integrable`]): ALU operations, loads, and conditional
//! branches — and every integration table hit is accounted at the
//! **retirement** of the integrating instruction. That yields a sound,
//! purely static upper bound on the dynamic hit count:
//!
//! 1. every dynamic hit (direct or reverse) is the retirement of an
//!    instruction at some static PC with an integrable opcode;
//! 2. an instruction whose basic block lies on no CFG cycle retires at
//!    most once in a run started at the program entry;
//! 3. total retirements of cyclic PCs cannot exceed total retirements.
//!
//! Hence, for a run that retired `retired` instructions:
//!
//! ```text
//! direct + reverse  ≤  hit_bound(retired)
//!                   =  min(retired, acyclic_integrable + cyclic_part)
//! ```
//!
//! where `cyclic_part` is `retired` when any integrable instruction lies
//! on a cycle and 0 otherwise. With a per-PC execution profile (for
//! example from stepping [`rix_isa::interp::Interp`], which retires the
//! same architectural stream as the detailed simulator), the
//! profile-weighted bound [`Opportunity::weighted_bound`] is much
//! tighter: the sum of execution counts over integrable PCs.
//!
//! The report also counts the static ingredients of **reverse**
//! integration (§2.4): instructions whose opcode has an
//! [`inverse`](rix_isa::Opcode::inverse) create IT entries for their
//! complement when renamed, and a static complement elsewhere in the
//! program is a reverse-integration opportunity (store→same-width load
//! at the same base/displacement; immediate add/subtract→the negated
//! immediate on the same base, the `lda` push/pop pair).

use crate::cfg::Cfg;
use rix_isa::{InstAddr, Program};

/// The static integration-opportunity report for one program.
#[derive(Clone, Debug)]
pub struct Opportunity {
    /// Static instruction count.
    pub total_instrs: usize,
    /// Instructions with an integration-eligible opcode.
    pub integrable: usize,
    /// Integrable instructions on no CFG cycle (retire at most once).
    pub acyclic_integrable: usize,
    /// Integrable instructions on some CFG cycle.
    pub cyclic_integrable: usize,
    /// Instructions whose opcode has a reverse-integration inverse and
    /// carries an immediate (stores; `lda`-form adds/subtracts): each
    /// creates an inverse IT entry when renamed.
    pub reverse_sources: usize,
    /// Instructions that statically complement some reverse source
    /// (matching inverse opcode, same base register, complementary
    /// immediate/displacement).
    pub reverse_pairs: usize,
    /// Per-PC eligibility: `eligible[pc]` is true when the instruction
    /// at `pc` can ever be an integration hit.
    pub eligible: Vec<bool>,
}

impl Opportunity {
    /// Analyses `program`, reusing a prebuilt `cfg`.
    #[must_use]
    pub fn analyze(program: &Program, cfg: &Cfg) -> Self {
        let instrs = program.instrs();
        let mut integrable = 0;
        let mut acyclic = 0;
        let mut cyclic = 0;
        let mut eligible = vec![false; instrs.len()];
        for (pc, i) in instrs.iter().enumerate() {
            if !i.op.is_integrable() {
                continue;
            }
            integrable += 1;
            eligible[pc] = true;
            if cfg.cyclic(pc as InstAddr) {
                cyclic += 1;
            } else {
                acyclic += 1;
            }
        }

        let mut reverse_sources = 0;
        for i in instrs {
            if i.op.inverse().is_some() && i.has_immediate() {
                reverse_sources += 1;
            }
        }
        let mut reverse_pairs = 0;
        for c in instrs {
            // Does some source's inverse entry match this consumer?
            let matched = instrs.iter().any(|s| {
                let Some(inv) = s.op.inverse() else { return false };
                if inv != c.op || !s.has_immediate() || !c.has_immediate() {
                    return false;
                }
                if s.src1 != c.src1 {
                    return false;
                }
                if s.op.is_store() {
                    // Store at disp pairs with the same-width load at disp.
                    s.it_imm() == c.it_imm()
                } else {
                    // lda push/pop: the inverse entry negates the immediate.
                    s.it_imm() == c.it_imm().wrapping_neg()
                }
            });
            if matched {
                reverse_pairs += 1;
            }
        }

        Self {
            total_instrs: instrs.len(),
            integrable,
            acyclic_integrable: acyclic,
            cyclic_integrable: cyclic,
            reverse_sources,
            reverse_pairs,
            eligible,
        }
    }

    /// The fraction of static instructions that are integration eligible.
    #[must_use]
    pub fn opportunity_fraction(&self) -> f64 {
        if self.total_instrs == 0 {
            0.0
        } else {
            self.integrable as f64 / self.total_instrs as f64
        }
    }

    /// A sound static upper bound on dynamic IT hits (direct + reverse)
    /// for a run from the program entry that retired `retired`
    /// instructions. See the module docs for the argument.
    #[must_use]
    pub fn hit_bound(&self, retired: u64) -> u64 {
        let cyclic_part = if self.cyclic_integrable > 0 { retired } else { 0 };
        retired.min((self.acyclic_integrable as u64).saturating_add(cyclic_part))
    }

    /// The profile-weighted bound: total retirements of integrable PCs,
    /// given per-PC execution counts (indexed like the program). Sound
    /// whenever `counts` covers every retirement of the measured run;
    /// always ≤ the profile's total and usually far below
    /// [`Opportunity::hit_bound`].
    #[must_use]
    pub fn weighted_bound(&self, counts: &[u64]) -> u64 {
        self.eligible
            .iter()
            .zip(counts)
            .filter(|(e, _)| **e)
            .map(|(_, c)| *c)
            .sum()
    }
}

/// Convenience: build the CFG and analyse in one call.
#[must_use]
pub fn analyze_program(program: &Program) -> Opportunity {
    let cfg = Cfg::build(program);
    Opportunity::analyze(program, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rix_isa::{reg, Asm};

    #[test]
    fn straight_line_counts() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 1); // integrable
        a.stq(reg::R1, 0, reg::SP); // not integrable, reverse source
        a.ldq(reg::R2, 0, reg::SP); // integrable, reverse pair
        a.halt();
        let o = analyze_program(&a.assemble().unwrap());
        assert_eq!(o.total_instrs, 4);
        assert_eq!(o.integrable, 2);
        assert_eq!(o.acyclic_integrable, 2);
        assert_eq!(o.cyclic_integrable, 0);
        assert!(o.reverse_sources >= 1);
        assert_eq!(o.reverse_pairs, 1, "the ldq complements the stq");
        // No cycles: at most one hit per integrable instruction.
        assert_eq!(o.hit_bound(1_000_000), 2);
        assert_eq!(o.hit_bound(1), 1);
    }

    #[test]
    fn lda_pairs_negate_the_immediate() {
        let mut a = Asm::new();
        a.addq_i(reg::SP, reg::SP, -32); // frame push (lda)
        a.addq_i(reg::SP, reg::SP, 32); // frame pop: complements the push
        a.halt();
        let o = analyze_program(&a.assemble().unwrap());
        assert_eq!(o.reverse_pairs, 2, "push and pop complement each other");
    }

    #[test]
    fn cyclic_integrable_makes_bound_retired() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 10);
        a.label("loop");
        a.subq_i(reg::R1, reg::R1, 1); // integrable, on the loop
        a.bne(reg::R1, "loop");
        a.halt();
        let o = analyze_program(&a.assemble().unwrap());
        assert!(o.cyclic_integrable >= 2);
        assert_eq!(o.hit_bound(500), 500);
    }

    #[test]
    fn weighted_bound_sums_eligible_counts() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 1); // eligible, 1 exec
        a.stq(reg::R1, 0, reg::SP); // ineligible, 1 exec
        a.halt();
        let o = analyze_program(&a.assemble().unwrap());
        assert_eq!(o.weighted_bound(&[1, 1, 1]), 1);
    }
}
