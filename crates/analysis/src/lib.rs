//! # rix-analysis: static analysis over RIX programs
//!
//! A small, self-contained static-analysis layer for the `rix`
//! register-integration simulator. Everything works on the plain
//! [`rix_isa::Program`] form — no simulator state involved — so the
//! toolchain can vet a workload *before* burning cycles simulating it:
//!
//! * [`Cfg`] — basic blocks, branch-target successor edges,
//!   context-insensitive return edges, reachability, cycle (SCC)
//!   classification, and fall-off-the-end detection;
//! * [`Dataflow`] — definite assignment, reaching definitions with
//!   def-use chains, liveness, and constant propagation over the 64
//!   logical registers;
//! * [`lint_program`] — the lint driver with stable `RIXnnn` diagnostic
//!   codes (see [`LintCode`] for the table);
//! * [`Opportunity`] — the paper-specific **integration-opportunity
//!   oracle**: a sound static upper bound on dynamic integration-table
//!   hits, built from [`rix_isa::Opcode::is_integrable`] eligibility and
//!   CFG cyclicity, plus static reverse-integration pair counts via
//!   [`rix_isa::Opcode::inverse`].
//!
//! ```
//! use rix_analysis::{lint_program, analyze_program};
//! use rix_isa::{reg, Asm};
//!
//! let mut a = Asm::new();
//! a.addq_i(reg::R1, reg::ZERO, 10);
//! a.label("loop");
//! a.subq_i(reg::R1, reg::R1, 1);
//! a.bne(reg::R1, "loop");
//! a.halt();
//! let p = a.assemble().unwrap();
//!
//! assert!(lint_program(&p).is_empty(), "the loop is lint-clean");
//! let o = analyze_program(&p);
//! assert!(o.integrable > 0);
//! assert!(o.hit_bound(1_000) <= 1_000);
//! ```

pub mod cfg;
pub mod dataflow;
pub mod lint;
pub mod oracle;

pub use cfg::{BasicBlock, Cfg};
pub use dataflow::{ConstVal, Dataflow, DefSite, DefUse, RegSet};
pub use lint::{lint_program, Diagnostic, LintCode};
pub use oracle::{analyze_program, Opportunity};
