//! Control-flow graph construction over [`Program`]s.
//!
//! Instruction addresses are word indices, so a basic block is simply a
//! half-open PC range `[start, end)`. Block boundaries ("leaders") are the
//! entry point, every direct branch/call target, and every instruction
//! following a control transfer. Successor edges follow the machine's
//! next-PC rules:
//!
//! * conditional branches go to the target *and* fall through,
//! * `br`/`jsr` go to the target only (`jsr`'s return address matters to
//!   `ret`, not to the call itself),
//! * `ret` is modelled context-insensitively: it may resume at the return
//!   site of **any** `jsr` in the program (a sound over-approximation that
//!   keeps loop-called function bodies on cycles),
//! * `halt` has no successors,
//! * everything else falls through.
//!
//! A block whose execution can continue past the last instruction of the
//! program (fall-through at the end, or a branch target outside the
//! instruction memory) is flagged [`BasicBlock::falls_off_end`]; the
//! interpreter reports the same situation as `StopReason::FellOffProgram`.

use rix_isa::{ExecClass, InstAddr, Opcode, Program};

/// A basic block: the half-open instruction range `[start, end)`.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// PC of the first instruction.
    pub start: InstAddr,
    /// One past the PC of the last instruction.
    pub end: InstAddr,
    /// Indices into [`Cfg::blocks`] of the successor blocks.
    pub succs: Vec<usize>,
    /// Whether control can leave this block past the end of the program
    /// (fall-through at the last instruction, or an out-of-range target).
    pub falls_off_end: bool,
}

impl BasicBlock {
    /// PC of the last instruction in the block.
    #[must_use]
    pub fn last_pc(&self) -> InstAddr {
        self.end - 1
    }
}

/// The control-flow graph of a program.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Basic blocks in address order. Every instruction belongs to
    /// exactly one block.
    pub blocks: Vec<BasicBlock>,
    /// Index of the block containing the entry point.
    pub entry_block: usize,
    block_of: Vec<usize>,
    reachable: Vec<bool>,
    cyclic: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of `program`.
    ///
    /// # Panics
    ///
    /// Panics if the program is empty or its entry point is outside the
    /// instruction memory (neither is constructible through `Asm`).
    #[must_use]
    pub fn build(program: &Program) -> Self {
        let n = program.len();
        assert!(n > 0, "cannot build a CFG over an empty program");
        let entry = usize::try_from(program.entry()).expect("entry fits usize");
        assert!(entry < n, "entry point outside the program");
        let instrs = program.instrs();

        // Mark leaders.
        let mut leader = vec![false; n];
        leader[entry] = true;
        leader[0] = true;
        for (pc, i) in instrs.iter().enumerate() {
            if ends_block(i.op) {
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
                if has_direct_target(i.op) {
                    if let Ok(t) = usize::try_from(i.target) {
                        if t < n {
                            leader[t] = true;
                        }
                    }
                }
            }
        }

        // Carve blocks and record the instruction → block map.
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for pc in 0..n {
            block_of[pc] = blocks.len();
            let last = pc + 1 == n || leader[pc + 1] || ends_block(instrs[pc].op);
            if last {
                blocks.push(BasicBlock {
                    start: start as InstAddr,
                    end: (pc + 1) as InstAddr,
                    succs: Vec::new(),
                    falls_off_end: false,
                });
                start = pc + 1;
            }
        }

        // Return sites: the instruction after every jsr.
        let return_sites: Vec<usize> = instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.op == Opcode::Jsr)
            .filter_map(|(pc, _)| (pc + 1 < n).then_some(block_of[pc + 1]))
            .collect();

        // Successor edges.
        for blk in &mut blocks {
            let last = (blk.end - 1) as usize;
            let i = instrs[last];
            let mut succs = Vec::new();
            let mut falls_off = false;
            let push_target = |succs: &mut Vec<usize>, falls_off: &mut bool| {
                match usize::try_from(i.target).ok().filter(|&t| t < n) {
                    Some(t) => succs.push(block_of[t]),
                    None => *falls_off = true,
                }
            };
            match i.op.exec_class() {
                ExecClass::CondBranch => {
                    push_target(&mut succs, &mut falls_off);
                    if last + 1 < n {
                        succs.push(block_of[last + 1]);
                    } else {
                        falls_off = true;
                    }
                }
                ExecClass::DirectJump => push_target(&mut succs, &mut falls_off),
                ExecClass::IndirectJump => succs.extend_from_slice(&return_sites),
                ExecClass::Nop if i.op == Opcode::Halt => {}
                _ => {
                    if last + 1 < n {
                        succs.push(block_of[last + 1]);
                    } else {
                        falls_off = true;
                    }
                }
            }
            succs.sort_unstable();
            succs.dedup();
            blk.succs = succs;
            blk.falls_off_end = falls_off;
        }

        let entry_block = block_of[entry];
        let reachable = reach(&blocks, entry_block);
        let cyclic = cyclic_blocks(&blocks);
        Self { blocks, entry_block, block_of, reachable, cyclic }
    }

    /// The index of the block containing `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is outside the program.
    #[must_use]
    pub fn block_of(&self, pc: InstAddr) -> usize {
        self.block_of[usize::try_from(pc).expect("pc fits usize")]
    }

    /// Whether block `b` is reachable from the entry point.
    #[must_use]
    pub fn block_reachable(&self, b: usize) -> bool {
        self.reachable[b]
    }

    /// Whether the instruction at `pc` is reachable from the entry point.
    #[must_use]
    pub fn reachable(&self, pc: InstAddr) -> bool {
        self.reachable[self.block_of(pc)]
    }

    /// Whether block `b` lies on a CFG cycle (its strongly connected
    /// component has more than one block, or it has a self edge). An
    /// instruction in an acyclic block executes at most once per run
    /// started at the entry point — the fact the integration-opportunity
    /// oracle's bound rests on.
    #[must_use]
    pub fn block_cyclic(&self, b: usize) -> bool {
        self.cyclic[b]
    }

    /// Whether the instruction at `pc` lies on a CFG cycle.
    #[must_use]
    pub fn cyclic(&self, pc: InstAddr) -> bool {
        self.cyclic[self.block_of(pc)]
    }

    /// Predecessor lists, computed on demand.
    #[must_use]
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (b, blk) in self.blocks.iter().enumerate() {
            for &s in &blk.succs {
                preds[s].push(b);
            }
        }
        preds
    }
}

fn ends_block(op: Opcode) -> bool {
    op.is_control() || op == Opcode::Halt
}

fn has_direct_target(op: Opcode) -> bool {
    matches!(op.exec_class(), ExecClass::CondBranch | ExecClass::DirectJump)
}

fn reach(blocks: &[BasicBlock], entry: usize) -> Vec<bool> {
    let mut seen = vec![false; blocks.len()];
    let mut stack = vec![entry];
    seen[entry] = true;
    while let Some(b) = stack.pop() {
        for &s in &blocks[b].succs {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Marks blocks on CFG cycles via iterative Tarjan SCC.
fn cyclic_blocks(blocks: &[BasicBlock]) -> Vec<bool> {
    let n = blocks.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut cyclic = vec![false; n];
    let mut next_index = 0usize;

    // Explicit DFS state machine: (node, next-successor position).
    let mut work: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        work.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut pos)) = work.last_mut() {
            if *pos < blocks[v].succs.len() {
                let w = blocks[v].succs[*pos];
                *pos += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    // Pop one SCC.
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let self_loop = comp.len() == 1 && blocks[comp[0]].succs.contains(&comp[0]);
                    if comp.len() > 1 || self_loop {
                        for w in comp {
                            cyclic[w] = true;
                        }
                    }
                }
            }
        }
    }
    cyclic
}

#[cfg(test)]
mod tests {
    use super::*;
    use rix_isa::{reg, Asm};

    fn straight() -> Program {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 1);
        a.addq_i(reg::R2, reg::R1, 1);
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn straight_line_is_one_block() {
        let cfg = Cfg::build(&straight());
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
        assert!(!cfg.blocks[0].falls_off_end);
        assert!(cfg.reachable(0));
        assert!(!cfg.cyclic(0));
    }

    #[test]
    fn loop_is_cyclic() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 10);
        a.label("loop");
        a.subq_i(reg::R1, reg::R1, 1);
        a.bne(reg::R1, "loop");
        a.halt();
        let cfg = Cfg::build(&a.assemble().unwrap());
        assert!(cfg.cyclic(1), "loop body is on a cycle");
        assert!(cfg.cyclic(2));
        assert!(!cfg.cyclic(0), "preamble is acyclic");
        assert!(!cfg.cyclic(3), "halt is acyclic");
    }

    #[test]
    fn fall_off_end_detected() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 1);
        let cfg = Cfg::build(&a.assemble().unwrap());
        assert!(cfg.blocks[0].falls_off_end);
    }

    #[test]
    fn call_from_loop_makes_function_cyclic() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 3);
        a.label("loop");
        a.jsr("f");
        a.subq_i(reg::R1, reg::R1, 1);
        a.bne(reg::R1, "loop");
        a.halt();
        a.label("f");
        a.addq_i(reg::R2, reg::ZERO, 7);
        a.ret();
        let p = a.assemble().unwrap();
        let cfg = Cfg::build(&p);
        let f_pc = 5; // first instruction of f
        assert_eq!(p.fetch(f_pc).unwrap().alu_imm(), Some(7));
        assert!(cfg.cyclic(f_pc), "loop-called function body lies on a cycle");
    }

    #[test]
    fn unreachable_block_detected() {
        let mut a = Asm::new();
        a.br("end");
        a.addq_i(reg::R1, reg::ZERO, 1); // skipped
        a.label("end");
        a.halt();
        let cfg = Cfg::build(&a.assemble().unwrap());
        assert!(cfg.reachable(0));
        assert!(!cfg.reachable(1));
        assert!(cfg.reachable(2));
    }

    #[test]
    fn ret_edges_cover_all_return_sites() {
        let mut a = Asm::new();
        a.jsr("f"); // return site 1
        a.jsr("f"); // return site 2
        a.halt();
        a.label("f");
        a.ret();
        let cfg = Cfg::build(&a.assemble().unwrap());
        let f_block = cfg.block_of(3);
        let succs = &cfg.blocks[f_block].succs;
        assert_eq!(succs.len(), 2);
        assert!(succs.contains(&cfg.block_of(1)));
        assert!(succs.contains(&cfg.block_of(2)));
    }
}
