//! The lint driver: stable diagnostic codes over CFG + dataflow facts.
//!
//! | code     | name                     | meaning |
//! |----------|--------------------------|---------|
//! | `RIX001` | `read-before-write`      | a reachable instruction reads a register not written on every path from the entry |
//! | `RIX002` | `unreachable-block`      | a basic block no path from the entry reaches |
//! | `RIX003` | `no-reachable-halt`      | no `halt` instruction is reachable: the program cannot terminate cleanly |
//! | `RIX004` | `branch-on-never-written`| a conditional branch tests a register with no definition anywhere — its direction is a foregone conclusion |
//! | `RIX005` | `const-addr-out-of-bounds` | a load from a statically-constant address outside every `DataSegment` that no statically-constant store initialises |
//! | `RIX006` | `misaligned-const-access`| a memory access at a statically-constant address that is not naturally aligned for its width |
//! | `RIX007` | `falls-off-end`          | control can run past the last instruction (`StopReason::FellOffProgram` in the interpreter) |
//!
//! The codes are stable: tests pin each one to a minimal offending
//! program, and the `lint` binary's JSON output keys on them.

use crate::cfg::Cfg;
use crate::dataflow::{uses, ConstVal, Dataflow};
use rix_isa::{InstAddr, LogReg, Program};
use std::fmt;

/// A stable diagnostic code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `RIX001`: read of a register not written on every path.
    ReadBeforeWrite,
    /// `RIX002`: basic block unreachable from the entry.
    UnreachableBlock,
    /// `RIX003`: no reachable `halt`.
    NoReachableHalt,
    /// `RIX004`: conditional branch on a never-written register.
    BranchOnNeverWritten,
    /// `RIX005`: constant-address load outside every data segment.
    ConstAddrOutOfBounds,
    /// `RIX006`: constant-address access not naturally aligned.
    MisalignedConstAccess,
    /// `RIX007`: control can fall off the end of the program.
    FallsOffEnd,
}

impl LintCode {
    /// The stable `RIXnnn` code string.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Self::ReadBeforeWrite => "RIX001",
            Self::UnreachableBlock => "RIX002",
            Self::NoReachableHalt => "RIX003",
            Self::BranchOnNeverWritten => "RIX004",
            Self::ConstAddrOutOfBounds => "RIX005",
            Self::MisalignedConstAccess => "RIX006",
            Self::FallsOffEnd => "RIX007",
        }
    }

    /// The human-readable lint name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::ReadBeforeWrite => "read-before-write",
            Self::UnreachableBlock => "unreachable-block",
            Self::NoReachableHalt => "no-reachable-halt",
            Self::BranchOnNeverWritten => "branch-on-never-written",
            Self::ConstAddrOutOfBounds => "const-addr-out-of-bounds",
            Self::MisalignedConstAccess => "misaligned-const-access",
            Self::FallsOffEnd => "falls-off-end",
        }
    }

    /// Every lint code, in `RIXnnn` order.
    pub const ALL: &'static [LintCode] = &[
        Self::ReadBeforeWrite,
        Self::UnreachableBlock,
        Self::NoReachableHalt,
        Self::BranchOnNeverWritten,
        Self::ConstAddrOutOfBounds,
        Self::MisalignedConstAccess,
        Self::FallsOffEnd,
    ];
}

/// One finding: a code, the PC it anchors to, and a rendered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: LintCode,
    /// The instruction the finding anchors to.
    pub pc: InstAddr,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] @{}: {}", self.code.code(), self.code.name(), self.pc, self.message)
    }
}

/// Runs every lint over `program`, returning findings sorted by PC then
/// code. An empty vector means the program is lint-clean.
#[must_use]
pub fn lint_program(program: &Program) -> Vec<Diagnostic> {
    let cfg = Cfg::build(program);
    let df = Dataflow::run(program, &cfg);
    let mut out = Vec::new();

    // RIX002 / RIX007 / RIX003: block-level facts.
    let mut any_reachable_halt = false;
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if !cfg.block_reachable(b) {
            out.push(Diagnostic {
                code: LintCode::UnreachableBlock,
                pc: blk.start,
                message: format!(
                    "block @{}..@{} is unreachable from the entry point @{}",
                    blk.start,
                    blk.end - 1,
                    program.entry()
                ),
            });
            continue;
        }
        if blk.falls_off_end {
            let last = blk.last_pc();
            let i = program.fetch(last).expect("pc in program");
            out.push(Diagnostic {
                code: LintCode::FallsOffEnd,
                pc: last,
                message: format!("`{i}` can run past the last instruction of the program"),
            });
        }
        for pc in blk.start..blk.end {
            if program.fetch(pc).expect("pc in block").op == rix_isa::Opcode::Halt {
                any_reachable_halt = true;
            }
        }
    }
    if !any_reachable_halt {
        out.push(Diagnostic {
            code: LintCode::NoReachableHalt,
            pc: program.entry(),
            message: "no halt instruction is reachable: the program cannot terminate".into(),
        });
    }

    // Statically-constant store coverage for RIX005: a constant-address
    // load outside every segment is still fine when some constant-address
    // store initialises the containing word first (the generator's
    // conflict-pair idiom writes then reads a scratch word no segment
    // backs).
    let mut const_store_words = Vec::new();
    for (pc, i) in program.instrs().iter().enumerate() {
        let pc = pc as InstAddr;
        if i.op.is_store() && cfg.reachable(pc) {
            if let Some(ea) = const_ea(&df, pc) {
                const_store_words.push(ea & !7);
            }
        }
    }
    const_store_words.sort_unstable();
    const_store_words.dedup();

    // Instruction-level lints over reachable instructions.
    for (pc, i) in program.instrs().iter().enumerate() {
        let pc = pc as InstAddr;
        if !cfg.reachable(pc) {
            continue;
        }
        // RIX001: read before write.
        let defined = df.must_defined_at(pc);
        let used = uses(*i);
        let missing = used & !defined;
        for r in 0..64u8 {
            if missing & (1 << r) != 0 {
                let reg = LogReg::new(r);
                out.push(Diagnostic {
                    code: LintCode::ReadBeforeWrite,
                    pc,
                    message: format!(
                        "`{i}` reads {reg}, which is not written on every path from the entry"
                    ),
                });
            }
        }
        // RIX004: branch on a never-written register.
        if i.op.is_cond_branch() {
            let cond = i.src1.expect("cond branch has a condition register");
            // Zero-register writes are discarded, so def_sites never lists
            // them: branching on `zero` is flagged too (it always reads 0).
            if !df.def_sites().iter().any(|d| d.reg == cond) {
                out.push(Diagnostic {
                    code: LintCode::BranchOnNeverWritten,
                    pc,
                    message: format!(
                        "`{i}` tests {cond}, which no instruction writes: the branch always \
                         goes the same way"
                    ),
                });
            }
        }
        // RIX005 / RIX006: constant-address memory accesses.
        if i.op.is_mem() {
            if let Some(ea) = const_ea(&df, pc) {
                let width = i.op.mem_bytes();
                if ea % width != 0 {
                    out.push(Diagnostic {
                        code: LintCode::MisalignedConstAccess,
                        pc,
                        message: format!(
                            "`{i}` accesses constant address {ea:#x}, which is not \
                             {width}-byte aligned (the machine silently aligns it down)"
                        ),
                    });
                }
                if i.op.is_load()
                    && !in_any_segment(program, ea, width)
                    && const_store_words.binary_search(&(ea & !7)).is_err()
                {
                    out.push(Diagnostic {
                        code: LintCode::ConstAddrOutOfBounds,
                        pc,
                        message: format!(
                            "`{i}` loads from constant address {ea:#x}, outside every \
                             data segment and never written by a constant-address store"
                        ),
                    });
                }
            }
        }
    }

    out.sort_by_key(|a| (a.pc, a.code));
    out
}

/// The statically-constant effective address of the memory access at
/// `pc`, if its base register is a propagated constant.
fn const_ea(df: &Dataflow<'_>, pc: InstAddr) -> Option<u64> {
    let i = df.instr_at(pc);
    let base = i.src1?;
    match df.const_value_at(pc, base) {
        ConstVal::Const(b) => Some(b.wrapping_add(i.disp as i64 as u64)),
        _ => None,
    }
}

fn in_any_segment(program: &Program, ea: u64, width: u64) -> bool {
    program.data_segments().iter().any(|seg| {
        let len = seg.words.len() as u64 * 8;
        ea >= seg.base && ea + width <= seg.base + len
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rix_isa::{reg, Asm};

    #[test]
    fn clean_program_has_no_findings() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 10);
        a.label("loop");
        a.subq_i(reg::R1, reg::R1, 1);
        a.bne(reg::R1, "loop");
        a.halt();
        assert!(lint_program(&a.assemble().unwrap()).is_empty());
    }

    #[test]
    fn display_renders_code_and_name() {
        let mut a = Asm::new();
        a.addq(reg::R2, reg::R1, reg::R1); // r1 never written
        a.halt();
        let d = &lint_program(&a.assemble().unwrap())[0];
        let s = d.to_string();
        assert!(s.contains("RIX001"), "{s}");
        assert!(s.contains("read-before-write"), "{s}");
    }
}
