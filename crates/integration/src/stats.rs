//! Retirement-stream integration accounting (Figures 4 and 5).
//!
//! Integration rates are measured at **retirement** to avoid counting
//! integrations by squashed instructions and double-counting instructions
//! that integrated, squashed, and squash-reused (§3.2). The simulator
//! captures an [`IntegrationEvent`] at rename and commits it to
//! [`IntegrationStats`] when the instruction retires.

use rix_isa::{reg, ExecClass, Instr};

/// Direct (repetition-based) vs reverse (inverse-operation) integration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrationKind {
    /// Conventional reuse of a previously created entry.
    Direct,
    /// Reuse through a reverse entry (§2.4).
    Reverse,
}

/// Instruction classes of the Figure 5 "Type" breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrationType {
    /// Loads whose base register is the stack pointer (the reverse-
    /// integration target class).
    StackLoad,
    /// All other loads.
    OtherLoad,
    /// Integer and logical ALU operations.
    Alu,
    /// Conditional branches.
    Branch,
    /// Floating-point operations.
    Fp,
}

impl IntegrationType {
    /// Classifies an instruction (integration-eligible classes only).
    #[must_use]
    pub fn classify(instr: Instr) -> Self {
        match instr.exec_class() {
            ExecClass::Load if instr.src1 == Some(reg::SP) => Self::StackLoad,
            ExecClass::Load => Self::OtherLoad,
            ExecClass::CondBranch => Self::Branch,
            _ if instr.op.is_fp() => Self::Fp,
            _ => Self::Alu,
        }
    }

    /// All classes, in Figure 5 order.
    pub const ALL: [Self; 5] = [
        Self::StackLoad,
        Self::OtherLoad,
        Self::Alu,
        Self::Branch,
        Self::Fp,
    ];

    /// Index into per-type arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::StackLoad => 0,
            Self::OtherLoad => 1,
            Self::Alu => 2,
            Self::Branch => 3,
            Self::Fp => 4,
        }
    }

    /// Display label matching the paper's figure.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::StackLoad => "load sp",
            Self::OtherLoad => "load",
            Self::Alu => "ALU",
            Self::Branch => "branch",
            Self::Fp => "FP",
        }
    }
}

/// The state of the integrated result when the integrating instruction
/// was renamed (Figure 5 "Status").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResultStatus {
    /// Allocated but its producer had not issued yet — reuse that
    /// value-based mechanisms cannot perform, because the value does not
    /// exist yet.
    Rename,
    /// Producer issued but the original instruction had not retired.
    Issue,
    /// Producer completed and retired; mapping still architecturally
    /// live.
    Retire,
    /// Producer completed but the register was unmapped at integration
    /// time (squashed, or retired-and-overwritten).
    ShadowSquash,
}

impl ResultStatus {
    /// All statuses, in Figure 5 stack order.
    pub const ALL: [Self; 4] = [Self::Rename, Self::Issue, Self::Retire, Self::ShadowSquash];

    /// Index into per-status arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::Rename => 0,
            Self::Issue => 1,
            Self::Retire => 2,
            Self::ShadowSquash => 3,
        }
    }

    /// Display label matching the paper's figure.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Rename => "rename",
            Self::Issue => "issue",
            Self::Retire => "retire",
            Self::ShadowSquash => "shadow/squash",
        }
    }
}

/// Rename-distance buckets (Figure 5 "Distance"): the number of renamed
/// instructions between the entry's creator and its integrator.
pub const DISTANCE_BUCKETS: [u64; 6] = [4, 16, 64, 256, 1024, u64::MAX];

/// Labels for [`DISTANCE_BUCKETS`].
pub const DISTANCE_LABELS: [&str; 6] = ["<=4", "<=16", "<=64", "<=256", "<=1024", ">1024"];

/// Post-integration reference-count buckets (Figure 5 "Refcount"): the
/// sharing degrees representable by 1-, 2-, 3- and 4-bit counters.
pub const REFCOUNT_BUCKETS: [u8; 4] = [1, 3, 7, 15];

/// Labels for [`REFCOUNT_BUCKETS`].
pub const REFCOUNT_LABELS: [&str; 4] = ["1", "<=3", "<=7", "<=15"];

/// One retired integration, as captured at rename time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntegrationEvent {
    /// Direct or reverse.
    pub kind: IntegrationKind,
    /// Instruction class.
    pub itype: IntegrationType,
    /// Renamed instructions between creator and integrator.
    pub distance: u64,
    /// Result state at integration time.
    pub status: ResultStatus,
    /// Reference count after the integration's increment; 0 for branch
    /// integrations, which share an outcome rather than a register (they
    /// are excluded from the refcount histogram).
    pub refcount: u8,
}

/// Aggregated retirement-stream integration statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IntegrationStats {
    /// Retired instructions that integrated directly.
    pub direct: u64,
    /// Retired instructions that integrated via reverse entries.
    pub reverse: u64,
    /// Retired instructions (denominator of the integration rate).
    pub retired: u64,
    /// Mis-integrations detected by DIVA.
    pub mis_integrations: u64,
    /// Of which: loads (store-conflict mis-integrations).
    pub load_mis_integrations: u64,
    /// Of which: register mis-integrations (stale-entry coincidences).
    pub register_mis_integrations: u64,
    /// Integrations suppressed (LISP hit or oracle veto).
    pub suppressed: u64,
    /// Per-type counts, `[type][0]` = direct, `[type][1]` = reverse.
    pub by_type: [[u64; 2]; 5],
    /// Distance histogram, same direct/reverse split.
    pub by_distance: [[u64; 2]; 6],
    /// Status histogram.
    pub by_status: [[u64; 2]; 4],
    /// Refcount histogram.
    pub by_refcount: [[u64; 2]; 4],
}

impl IntegrationStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one retired integration.
    pub fn record(&mut self, ev: IntegrationEvent) {
        let k = match ev.kind {
            IntegrationKind::Direct => {
                self.direct += 1;
                0
            }
            IntegrationKind::Reverse => {
                self.reverse += 1;
                1
            }
        };
        self.by_type[ev.itype.index()][k] += 1;
        let d = DISTANCE_BUCKETS.iter().position(|&b| ev.distance <= b).unwrap_or(5);
        self.by_distance[d][k] += 1;
        self.by_status[ev.status.index()][k] += 1;
        if ev.refcount > 0 {
            let r = REFCOUNT_BUCKETS.iter().position(|&b| ev.refcount <= b).unwrap_or(3);
            self.by_refcount[r][k] += 1;
        }
    }

    /// Total retired integrations.
    #[must_use]
    pub fn integrations(&self) -> u64 {
        self.direct + self.reverse
    }

    /// The integration rate: integrating retired instructions over all
    /// retired instructions.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.integrations() as f64 / self.retired as f64
        }
    }

    /// Direct-only integration rate.
    #[must_use]
    pub fn direct_rate(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.direct as f64 / self.retired as f64
        }
    }

    /// Reverse-only integration rate.
    #[must_use]
    pub fn reverse_rate(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.reverse as f64 / self.retired as f64
        }
    }

    /// Mis-integrations per one million retired instructions (the number
    /// printed atop each Figure 4 bar).
    #[must_use]
    pub fn mis_per_million(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.mis_integrations as f64 * 1.0e6 / self.retired as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rix_isa::{Instr, Opcode};

    #[test]
    fn classify_types() {
        use IntegrationType::*;
        assert_eq!(
            IntegrationType::classify(Instr::load(Opcode::Ldq, reg::S0, reg::SP, 8)),
            StackLoad
        );
        assert_eq!(
            IntegrationType::classify(Instr::load(Opcode::Ldq, reg::S0, reg::R2, 8)),
            OtherLoad
        );
        assert_eq!(
            IntegrationType::classify(Instr::alu_rr(Opcode::Addq, reg::R1, reg::R2, reg::R3)),
            Alu
        );
        assert_eq!(
            IntegrationType::classify(Instr::cond_branch(Opcode::Beq, reg::R1, 9)),
            Branch
        );
        assert_eq!(
            IntegrationType::classify(Instr::alu_rr(Opcode::Addt, reg::F0, reg::F1, reg::F2)),
            Fp
        );
    }

    #[test]
    fn record_fills_histograms() {
        let mut s = IntegrationStats::new();
        s.record(IntegrationEvent {
            kind: IntegrationKind::Direct,
            itype: IntegrationType::Alu,
            distance: 3,
            status: ResultStatus::Retire,
            refcount: 2,
        });
        s.record(IntegrationEvent {
            kind: IntegrationKind::Reverse,
            itype: IntegrationType::StackLoad,
            distance: 500,
            status: ResultStatus::ShadowSquash,
            refcount: 1,
        });
        s.retired = 10;
        assert_eq!(s.direct, 1);
        assert_eq!(s.reverse, 1);
        assert_eq!(s.integrations(), 2);
        assert!((s.rate() - 0.2).abs() < 1e-12);
        assert_eq!(s.by_type[IntegrationType::Alu.index()][0], 1);
        assert_eq!(s.by_type[IntegrationType::StackLoad.index()][1], 1);
        assert_eq!(s.by_distance[0][0], 1); // 3 ≤ 4
        assert_eq!(s.by_distance[4][1], 1); // 500 ≤ 1024
        assert_eq!(s.by_status[ResultStatus::Retire.index()][0], 1);
        assert_eq!(s.by_refcount[1][0], 1); // 2 ≤ 3
        assert_eq!(s.by_refcount[0][1], 1); // 1
    }

    #[test]
    fn rates_with_zero_retired() {
        let s = IntegrationStats::new();
        assert_eq!(s.rate(), 0.0);
        assert_eq!(s.mis_per_million(), 0.0);
    }

    #[test]
    fn mis_per_million_math() {
        let mut s = IntegrationStats::new();
        s.retired = 2_000_000;
        s.mis_integrations = 50;
        assert!((s.mis_per_million() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn labels_are_paper_labels() {
        assert_eq!(IntegrationType::StackLoad.label(), "load sp");
        assert_eq!(ResultStatus::ShadowSquash.label(), "shadow/squash");
        assert_eq!(DISTANCE_LABELS[0], "<=4");
        assert_eq!(REFCOUNT_LABELS[3], "<=15");
    }
}
