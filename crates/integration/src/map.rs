//! The pointer-based rename map table.
//!
//! Maps each logical register to its current `(physical register,
//! generation)` pair. Storing the generation in the map table is part of
//! the §2.2 mis-integration defence: IT entries copy the generation from
//! here when created, and the integration test requires both the register
//! number *and* the counter to match.
//!
//! Squash recovery is performed by the core walking the ROB backwards and
//! calling [`MapTable::set`] with each instruction's previous mapping —
//! the serial-undo scheme the paper describes (checkpoint-based recovery
//! would be an optimisation with identical semantics).

use crate::preg::PregRef;
use rix_isa::reg::NUM_LOG_REGS;
use rix_isa::LogReg;

/// The logical→physical rename map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapTable {
    map: Vec<PregRef>,
}

impl MapTable {
    /// Creates a map with every logical register pointing at `init`
    /// (callers re-point each register at its reset physical register).
    #[must_use]
    pub fn new(init: PregRef) -> Self {
        Self { map: vec![init; NUM_LOG_REGS] }
    }

    /// Current mapping of `r`.
    #[must_use]
    pub fn get(&self, r: LogReg) -> PregRef {
        self.map[r.index()]
    }

    /// Re-points `r` at `p`, returning the previous mapping.
    pub fn set(&mut self, r: LogReg, p: PregRef) -> PregRef {
        std::mem::replace(&mut self.map[r.index()], p)
    }

    /// Iterates over all `(logical, physical)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LogReg, PregRef)> + '_ {
        self.map
            .iter()
            .enumerate()
            .map(|(i, &p)| (LogReg::new(i as u8), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rix_isa::reg;

    #[test]
    fn set_returns_old_mapping() {
        let mut m = MapTable::new(PregRef::new(0, 0));
        let old = m.set(reg::R1, PregRef::new(5, 1));
        assert_eq!(old, PregRef::new(0, 0));
        assert_eq!(m.get(reg::R1), PregRef::new(5, 1));
        assert_eq!(m.get(reg::R2), PregRef::new(0, 0), "others untouched");
    }

    #[test]
    fn serial_undo_restores() {
        let mut m = MapTable::new(PregRef::new(0, 0));
        let old1 = m.set(reg::R1, PregRef::new(5, 1));
        let old2 = m.set(reg::R1, PregRef::new(6, 1));
        // Undo in reverse order.
        m.set(reg::R1, old2);
        m.set(reg::R1, old1);
        assert_eq!(m.get(reg::R1), PregRef::new(0, 0));
    }

    #[test]
    fn iter_covers_all_registers() {
        let m = MapTable::new(PregRef::new(3, 2));
        assert_eq!(m.iter().count(), NUM_LOG_REGS);
        assert!(m.iter().all(|(_, p)| p == PregRef::new(3, 2)));
    }
}
