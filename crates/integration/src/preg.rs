//! Physical register references.

use std::fmt;

/// A physical register paired with its generation counter.
///
/// Generation counters (§2.2, "avoiding register mis-integrations") are
/// short wrap-around counters incremented on every reallocation. They are
/// stored in the map table and copied into IT entries at creation; the
/// integration logic signals success only when *both* the register number
/// and the counter match, which simulates invalidating all IT entries
/// that name a reallocated register. N-bit counters cut register
/// mis-integrations by 2^N (one input) or 2^2N (two inputs); the paper
/// found 4 bits eliminate virtually all of them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PregRef {
    /// Physical register number.
    pub preg: u16,
    /// Generation at the time the reference was captured.
    pub gen: u8,
}

impl PregRef {
    /// Creates a reference to `preg` at generation `gen`.
    #[must_use]
    pub fn new(preg: u16, gen: u8) -> Self {
        Self { preg, gen }
    }
}

impl fmt::Debug for PregRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}g{}", self.preg, self.gen)
    }
}

impl fmt::Display for PregRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.preg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_preg_different_gen_unequal() {
        assert_ne!(PregRef::new(5, 0), PregRef::new(5, 1));
        assert_eq!(PregRef::new(5, 3), PregRef::new(5, 3));
    }

    #[test]
    fn debug_and_display() {
        let r = PregRef::new(12, 3);
        assert_eq!(format!("{r:?}"), "p12g3");
        assert_eq!(r.to_string(), "p12");
    }
}
