//! The integration table (IT).
//!
//! The IT buffers `<operation, input-preg1, input-preg2, output-preg>`
//! tuples of recently renamed instructions. A renaming instruction whose
//! operation and (generation-qualified) input physical registers match an
//! entry may *integrate*: its output logical register is pointed at the
//! entry's output physical register and the instruction bypasses the
//! execution engine. Neither the test nor the reuse moves any values.
//!
//! This implementation holds **direct** and **reverse** entries in one
//! unified set-associative LRU table (§3.1: "a unified design allows
//! direct integration to use the maximum number of entries in programs
//! which do not exploit reverse integration"), supports both PC indexing
//! and the opcode ⊕ immediate ⊕ call-depth indexing of §2.3, and stores
//! generation counters alongside every physical register specifier so
//! stale entries fail the match (§2.2).
//!
//! Conditional branches have no output register; their entries record the
//! resolved *outcome* instead ([`ItOutput::Branch`]), created at execution
//! time. Because an entry only matches when the input `(preg, gen)` pair
//! matches — i.e. the very same value — a matching branch entry's outcome
//! is always value-correct; integrating it resolves the branch at rename.

use crate::config::{IndexScheme, ReverseScope};
use crate::preg::PregRef;
use rix_isa::{reg, InstAddr, Instr, Opcode};

/// What an IT entry yields on integration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItOutput {
    /// A shared physical register (ALU operations and loads).
    Value(PregRef),
    /// A resolved conditional-branch direction.
    Branch(bool),
}

/// The lookup key built from a renaming instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ItKey {
    /// The instruction's PC (used by PC indexing).
    pub pc: InstAddr,
    /// Operation.
    pub op: Opcode,
    /// Whether the instruction carries an immediate/displacement.
    pub has_imm: bool,
    /// The immediate/displacement value (0 for register forms).
    pub imm: i32,
    /// Call depth at fetch (used by opcode indexing).
    pub call_depth: u16,
    /// Renamed first input.
    pub in1: Option<PregRef>,
    /// Renamed second input.
    pub in2: Option<PregRef>,
}

impl ItKey {
    /// Builds the key for `instr` at `pc` given its renamed inputs.
    #[must_use]
    pub fn new(
        pc: InstAddr,
        instr: Instr,
        call_depth: u16,
        in1: Option<PregRef>,
        in2: Option<PregRef>,
    ) -> Self {
        Self {
            pc,
            op: instr.op,
            has_imm: instr.has_immediate(),
            imm: instr.it_imm(),
            call_depth,
            in1,
            in2,
        }
    }
}

/// One integration-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ItEntry {
    /// Creator PC (matched under PC indexing).
    pub pc: InstAddr,
    /// Operation (matched under opcode indexing; stored as the minimal
    /// tag in both schemes).
    pub op: Opcode,
    /// Whether the operation carries an immediate.
    pub has_imm: bool,
    /// Immediate value.
    pub imm: i32,
    /// Call depth of the creator (index component under opcode indexing).
    pub call_depth: u16,
    /// First input register, with generation.
    pub in1: Option<PregRef>,
    /// Second input register, with generation.
    pub in2: Option<PregRef>,
    /// The shared output.
    pub out: ItOutput,
    /// Whether this is a reverse entry (§2.4).
    pub reverse: bool,
    /// Dynamic sequence number of the creating instruction (for the
    /// Figure 5 distance statistic).
    pub creator_seq: u64,
}

/// Hot compare half of a slot: the packed opcode-indexing tag (exactly
/// the fields [`It::tag_matches`] checks under
/// [`IndexScheme::OpcodeDepth`]) and the packed inputs. An invalid slot
/// carries `INVALID_TAG` (real tags fit in 48 bits).
type SlotTag = (u64, u64);

const INVALID_TAG: u64 = u64::MAX;

/// Packs `op`/`has_imm`/`imm` into the one-compare opcode-indexing tag.
fn pack_od_tag(op: Opcode, has_imm: bool, imm: i32) -> u64 {
    u64::from(op.code()) | (u64::from(has_imm) << 8) | (u64::from(imm as u32) << 16)
}

/// Packs the two optional inputs injectively (pregs are far below the
/// `None` encoding).
fn pack_inputs(in1: Option<PregRef>, in2: Option<PregRef>) -> u64 {
    let enc = |r: Option<PregRef>| -> u64 {
        r.map_or(u64::from(u32::MAX), |r| u64::from(r.preg) | (u64::from(r.gen) << 16))
    };
    enc(in1) | (enc(in2) << 32)
}

/// Statistics for the integration table itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ItStats {
    /// Successful lookups (tag + inputs matched).
    pub hits: u64,
    /// Lookups with no matching entry.
    pub misses: u64,
    /// Entries created.
    pub inserts: u64,
    /// Valid entries evicted by LRU replacement.
    pub evictions: u64,
    /// Entries invalidated after a mis-integration.
    pub invalidations: u64,
}

/// The set-associative integration table.
///
/// ```
/// use rix_integration::{It, ItKey, ItOutput, IndexScheme, PregRef};
/// use rix_isa::{Instr, Opcode, reg};
///
/// let mut it = It::new(64, 4, IndexScheme::OpcodeDepth);
/// let add = Instr::alu_ri(Opcode::Addq, reg::R1, reg::R2, 4);
/// let key = ItKey::new(10, add, 0, Some(PregRef::new(7, 1)), None);
/// it.insert_direct(key, PregRef::new(9, 1), 100);
/// let hit = it.lookup(key).expect("matches");
/// assert_eq!(hit.out, ItOutput::Value(PregRef::new(9, 1)));
/// ```
#[derive(Clone, Debug)]
pub struct It {
    /// Hot halves (tag, inputs), strided: set `s` occupies
    /// `tags[s * ways .. (s + 1) * ways]` — one cache line per 4-way
    /// set, so the common lookup never touches the cold entries.
    tags: Vec<SlotTag>,
    /// LRU stamps, parallel to `tags`.
    lrus: Vec<u64>,
    /// Cold entry payloads, parallel to `tags`.
    entries: Vec<ItEntry>,
    ways: usize,
    num_sets: usize,
    scheme: IndexScheme,
    stamp: u64,
    stats: ItStats,
}

impl It {
    /// Creates an IT with `entries` total entries and `ways`
    /// associativity under the given index scheme.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero, `ways` is zero, or `entries` is not a
    /// multiple of `ways` with a power-of-two set count.
    #[must_use]
    pub fn new(entries: usize, ways: usize, scheme: IndexScheme) -> Self {
        assert!(entries > 0 && ways > 0 && entries.is_multiple_of(ways), "bad IT geometry");
        let num_sets = entries / ways;
        assert!(num_sets.is_power_of_two(), "IT set count must be a power of two");
        let empty = ItEntry {
            pc: 0,
            op: Opcode::Nop,
            has_imm: false,
            imm: 0,
            call_depth: 0,
            in1: None,
            in2: None,
            out: ItOutput::Branch(false),
            reverse: false,
            creator_seq: 0,
        };
        Self {
            tags: vec![(INVALID_TAG, 0); num_sets * ways],
            lrus: vec![0; num_sets * ways],
            entries: vec![empty; num_sets * ways],
            ways,
            num_sets,
            scheme,
            stamp: 0,
            stats: ItStats::default(),
        }
    }

    /// The index scheme in use.
    #[must_use]
    pub fn scheme(&self) -> IndexScheme {
        self.scheme
    }

    /// Table statistics.
    #[must_use]
    pub fn stats(&self) -> ItStats {
        self.stats
    }

    fn index(&self, pc: InstAddr, op: Opcode, has_imm: bool, imm: i32, depth: u16) -> usize {
        let mask = self.num_sets - 1;
        match self.scheme {
            IndexScheme::Pc => (pc as usize) & mask,
            IndexScheme::OpcodeDepth => {
                // §2.3: XOR of opcode, immediate and call depth — raw,
                // as the paper describes. The XOR's clumpy distribution
                // (ldq/0, addq/1, …) is part of what the paper measures;
                // the call depth is the structured disambiguator, and
                // because stack displacements are 8-byte aligned while
                // the depth occupies the low bits, frame slots and call
                // levels compose into distinct sets.
                let imm_bits = if has_imm { imm as u32 as u64 } else { u64::MAX };
                let h = u64::from(op.code()) ^ imm_bits ^ u64::from(depth);
                (h as usize) & mask
            }
        }
    }

    fn key_index(&self, key: &ItKey) -> usize {
        self.index(key.pc, key.op, key.has_imm, key.imm, key.call_depth)
    }

    fn entry_index(&self, e: &ItEntry) -> usize {
        self.index(e.pc, e.op, e.has_imm, e.imm, e.call_depth)
    }

    fn tag_matches(scheme: IndexScheme, e: &ItEntry, key: &ItKey) -> bool {
        match scheme {
            // PC match establishes operation and immediate equivalence.
            IndexScheme::Pc => !e.reverse && e.pc == key.pc && e.op == key.op,
            // Opcode indexing uses the minimal opcode/immediate tag so
            // different static instructions can match (§2.3).
            IndexScheme::OpcodeDepth => {
                e.op == key.op && e.has_imm == key.has_imm && e.imm == key.imm
            }
        }
    }

    /// Performs the operational-equivalence test: finds an entry whose
    /// tag and generation-qualified inputs match `key`.
    ///
    /// On a hit the entry's LRU position is refreshed and a copy
    /// returned. The entry is *not* removed — in general reuse many
    /// instructions may integrate the same result.
    pub fn lookup(&mut self, key: ItKey) -> Option<ItEntry> {
        let set = self.key_index(&key);
        self.stamp += 1;
        let stamp = self.stamp;
        let scheme = self.scheme;
        let w = self.ways;
        let kin = pack_inputs(key.in1, key.in2);
        match scheme {
            // Opcode indexing: the whole tag + input test is two
            // u64 compares against the packed hot halves.
            IndexScheme::OpcodeDepth => {
                let kt = pack_od_tag(key.op, key.has_imm, key.imm);
                for wi in set * w..(set + 1) * w {
                    let t = self.tags[wi];
                    if t.0 == kt && t.1 == kin {
                        self.lrus[wi] = stamp;
                        self.stats.hits += 1;
                        return Some(self.entries[wi]);
                    }
                }
            }
            IndexScheme::Pc => {
                for wi in set * w..(set + 1) * w {
                    if self.tags[wi].0 != INVALID_TAG
                        && Self::tag_matches(scheme, &self.entries[wi], &key)
                        && self.tags[wi].1 == kin
                    {
                        self.lrus[wi] = stamp;
                        self.stats.hits += 1;
                        return Some(self.entries[wi]);
                    }
                }
            }
        }
        self.stats.misses += 1;
        None
    }

    fn insert(&mut self, entry: ItEntry) {
        let set = self.entry_index(&entry);
        self.stamp += 1;
        let stamp = self.stamp;
        self.stats.inserts += 1;
        let scheme = self.scheme;
        let w = self.ways;
        // Overwrite an entry for the same static operation and inputs
        // rather than duplicating it.
        let dup_key = ItKey {
            pc: entry.pc,
            op: entry.op,
            has_imm: entry.has_imm,
            imm: entry.imm,
            call_depth: entry.call_depth,
            in1: entry.in1,
            in2: entry.in2,
        };
        let od_tag = pack_od_tag(entry.op, entry.has_imm, entry.imm);
        let inputs = pack_inputs(entry.in1, entry.in2);
        let mut victim = set * w;
        let mut victim_lru = u64::MAX;
        for wi in set * w..(set + 1) * w {
            let t = self.tags[wi];
            if t.0 != INVALID_TAG
                && t.1 == inputs
                && self.entries[wi].reverse == entry.reverse
                && match scheme {
                    IndexScheme::OpcodeDepth => t.0 == od_tag,
                    IndexScheme::Pc => Self::tag_matches(scheme, &self.entries[wi], &dup_key),
                }
            {
                self.entries[wi] = entry;
                self.lrus[wi] = stamp;
                return;
            }
            let key_lru = if t.0 == INVALID_TAG { 0 } else { self.lrus[wi] };
            if key_lru < victim_lru {
                victim_lru = key_lru;
                victim = wi;
            }
        }
        if self.tags[victim].0 != INVALID_TAG {
            self.stats.evictions += 1;
        }
        self.tags[victim] = (od_tag, inputs);
        self.lrus[victim] = stamp;
        self.entries[victim] = entry;
    }

    /// Creates a direct entry for a value-producing instruction that
    /// failed to integrate: `<op/imm, in1, in2> → out`.
    pub fn insert_direct(&mut self, key: ItKey, out: PregRef, creator_seq: u64) {
        self.insert(ItEntry {
            pc: key.pc,
            op: key.op,
            has_imm: key.has_imm,
            imm: key.imm,
            call_depth: key.call_depth,
            in1: key.in1,
            in2: key.in2,
            out: ItOutput::Value(out),
            reverse: false,
            creator_seq,
        });
    }

    /// Creates (or refreshes) a branch-outcome entry at execution time.
    pub fn insert_branch(&mut self, key: ItKey, taken: bool, creator_seq: u64) {
        self.insert(ItEntry {
            pc: key.pc,
            op: key.op,
            has_imm: key.has_imm,
            imm: key.imm,
            call_depth: key.call_depth,
            in1: key.in1,
            in2: key.in2,
            out: ItOutput::Branch(taken),
            reverse: false,
            creator_seq,
        });
    }

    /// Creates the reverse entry for a renamed store (§2.4): renaming
    /// `stq data, disp(base)` creates `<ldq/disp, base> → data`, which a
    /// future `ldq ?, disp(base)` integrates — speculative memory
    /// bypassing with no value movement.
    ///
    /// Returns `false` (creating nothing) for opcodes with no inverse.
    pub fn insert_reverse_store(
        &mut self,
        pc: InstAddr,
        instr: Instr,
        call_depth: u16,
        base: PregRef,
        data: PregRef,
        creator_seq: u64,
    ) -> bool {
        let Some(load_op) = instr.op.inverse() else { return false };
        self.insert(ItEntry {
            pc,
            op: load_op,
            has_imm: true,
            imm: instr.disp,
            call_depth,
            in1: Some(base),
            in2: None,
            out: ItOutput::Value(data),
            reverse: true,
            creator_seq,
        });
        true
    }

    /// Creates the reverse entry for a renamed immediate add (§2.4):
    /// renaming `addq d, s, #imm` (old mapping of `s` = `src`, new
    /// mapping of `d` = `dst`) creates `<addq/-imm, dst> → src`, so the
    /// complementary `addq ?, d, #-imm` re-maps to the *original*
    /// physical register. Applied to `lda sp, -32(sp)` / `lda sp, 32(sp)`
    /// pairs this restores the pre-call stack-pointer mapping, which is
    /// what lets save/restore bypassing work across frame pushes.
    ///
    /// Returns `false` when the immediate cannot be negated or the opcode
    /// has no inverse.
    pub fn insert_reverse_add(
        &mut self,
        pc: InstAddr,
        instr: Instr,
        call_depth: u16,
        src: PregRef,
        dst: PregRef,
        creator_seq: u64,
    ) -> bool {
        let Some(inv_op) = instr.op.inverse() else { return false };
        let Some(imm) = instr.alu_imm() else { return false };
        let Some(neg) = imm.checked_neg() else { return false };
        self.insert(ItEntry {
            pc,
            op: inv_op,
            has_imm: true,
            imm: neg,
            call_depth,
            in1: Some(dst),
            in2: None,
            out: ItOutput::Value(src),
            reverse: true,
            creator_seq,
        });
        true
    }

    /// Invalidates the entry that produced a mis-integration (identified
    /// by its tag, inputs and output), preventing repeat offenders and
    /// livelock after the DIVA flush re-fetches the same instruction.
    pub fn invalidate(&mut self, key: ItKey, out: ItOutput) {
        let set = self.key_index(&key);
        let scheme = self.scheme;
        let w = self.ways;
        let kin = pack_inputs(key.in1, key.in2);
        for wi in set * w..(set + 1) * w {
            if self.tags[wi].0 != INVALID_TAG
                && Self::tag_matches(scheme, &self.entries[wi], &key)
                && self.tags[wi].1 == kin
                && self.entries[wi].out == out
            {
                self.tags[wi].0 = INVALID_TAG;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Number of valid entries (diagnostics).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|t| t.0 != INVALID_TAG).count()
    }
}

/// Whether `instr` should create a reverse entry under `scope`.
///
/// The paper's design point creates them for stack-pointer stores
/// (register saves) and stack-pointer immediate adds (frame pushes/pops)
/// only — "the logic to recognise stack-pointer stores and decrements".
#[must_use]
pub fn wants_reverse_entry(scope: ReverseScope, instr: Instr) -> bool {
    match scope {
        ReverseScope::Off => false,
        ReverseScope::StackPointer => {
            let sp_based = instr.src1 == Some(reg::SP);
            (instr.op.is_store() && sp_based)
                || (instr.op == Opcode::Addq
                    && sp_based
                    && instr.dst == Some(reg::SP)
                    && instr.alu_imm().is_some())
        }
        ReverseScope::AllInvertible => {
            instr.op.is_store()
                || (instr.op.inverse().is_some() && instr.alu_imm().is_some())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u16, g: u8) -> PregRef {
        PregRef::new(n, g)
    }

    fn add_key(pc: InstAddr, imm: i32, depth: u16, in1: PregRef) -> ItKey {
        let i = Instr::alu_ri(Opcode::Addq, reg::R1, reg::R2, imm);
        ItKey::new(pc, i, depth, Some(in1), None)
    }

    #[test]
    fn direct_hit_requires_matching_inputs() {
        let mut it = It::new(64, 4, IndexScheme::OpcodeDepth);
        let key = add_key(10, 4, 0, p(7, 1));
        it.insert_direct(key, p(9, 1), 1);
        assert!(it.lookup(key).is_some());
        // Different input preg → miss.
        assert!(it.lookup(add_key(10, 4, 0, p(8, 1))).is_none());
        // Same preg, different generation → miss (stale entry filtered).
        assert!(it.lookup(add_key(10, 4, 0, p(7, 2))).is_none());
    }

    #[test]
    fn pc_indexing_requires_same_pc() {
        let mut it = It::new(64, 4, IndexScheme::Pc);
        let key = add_key(10, 4, 0, p(7, 1));
        it.insert_direct(key, p(9, 1), 1);
        assert!(it.lookup(key).is_some());
        let other_pc = add_key(11, 4, 0, p(7, 1));
        assert!(it.lookup(other_pc).is_none(), "different static instruction");
    }

    #[test]
    fn opcode_indexing_matches_across_pcs() {
        let mut it = It::new(64, 4, IndexScheme::OpcodeDepth);
        let key = add_key(10, 4, 0, p(7, 1));
        it.insert_direct(key, p(9, 1), 1);
        let other_pc = add_key(999, 4, 0, p(7, 1));
        assert!(
            it.lookup(other_pc).is_some(),
            "§2.3: different static instructions integrate each other"
        );
    }

    #[test]
    fn reg_form_and_imm_form_distinct() {
        let mut it = It::new(64, 4, IndexScheme::OpcodeDepth);
        let ri = Instr::alu_ri(Opcode::Addq, reg::R1, reg::R2, 0);
        let rr = Instr::alu_rr(Opcode::Addq, reg::R1, reg::R2, reg::ZERO);
        let k_ri = ItKey::new(5, ri, 0, Some(p(7, 1)), None);
        let k_rr = ItKey::new(5, rr, 0, Some(p(7, 1)), Some(p(0, 0)));
        it.insert_direct(k_ri, p(9, 1), 1);
        assert!(it.lookup(k_rr).is_none());
    }

    #[test]
    fn reverse_store_creates_load_entry() {
        let mut it = It::new(64, 4, IndexScheme::OpcodeDepth);
        let st = Instr::store(Opcode::Stq, reg::T0, reg::SP, 8);
        assert!(it.insert_reverse_store(3, st, 2, p(12, 1), p(20, 1), 50));
        // The complementary load: ldq ?, 8(sp) with the same base preg.
        let ld = Instr::load(Opcode::Ldq, reg::T0, reg::SP, 8);
        let key = ItKey::new(77, ld, 2, Some(p(12, 1)), None);
        let hit = it.lookup(key).expect("bypassing entry matches");
        assert_eq!(hit.out, ItOutput::Value(p(20, 1)));
        assert!(hit.reverse);
    }

    #[test]
    fn reverse_add_restores_original_mapping() {
        // §2.4 working example: lda sp, -32(sp) (old sp = p12, new = p31)
        // creates <addq/+32, p31> → p12.
        let mut it = It::new(64, 4, IndexScheme::OpcodeDepth);
        let push = Instr::alu_ri(Opcode::Addq, reg::SP, reg::SP, -32);
        assert!(it.insert_reverse_add(4, push, 1, p(12, 1), p(31, 1), 60));
        let pop = Instr::alu_ri(Opcode::Addq, reg::SP, reg::SP, 32);
        let key = ItKey::new(90, pop, 1, Some(p(31, 1)), None);
        let hit = it.lookup(key).expect("inverse matches");
        assert_eq!(hit.out, ItOutput::Value(p(12, 1)));
    }

    #[test]
    fn reverse_add_rejects_unnegatable_imm() {
        let mut it = It::new(64, 4, IndexScheme::OpcodeDepth);
        let i = Instr::alu_ri(Opcode::Addq, reg::SP, reg::SP, i32::MIN);
        assert!(!it.insert_reverse_add(4, i, 1, p(12, 1), p(31, 1), 60));
    }

    #[test]
    fn branch_entries_roundtrip() {
        let mut it = It::new(64, 4, IndexScheme::OpcodeDepth);
        let br = Instr::cond_branch(Opcode::Bne, reg::R1, 55);
        let key = ItKey::new(20, br, 0, Some(p(5, 2)), None);
        it.insert_branch(key, true, 9);
        assert_eq!(it.lookup(key).unwrap().out, ItOutput::Branch(true));
    }

    #[test]
    fn lru_eviction_within_set() {
        // Fully associative 2-entry table: third insert evicts LRU.
        let mut it = It::new(2, 2, IndexScheme::OpcodeDepth);
        let k1 = add_key(1, 100, 0, p(1, 1));
        let k2 = add_key(2, 200, 0, p(2, 1));
        let k3 = add_key(3, 300, 0, p(3, 1));
        it.insert_direct(k1, p(10, 1), 1);
        it.insert_direct(k2, p(11, 1), 2);
        assert!(it.lookup(k1).is_some()); // touch k1 → k2 is LRU
        it.insert_direct(k3, p(12, 1), 3);
        assert!(it.lookup(k1).is_some());
        assert!(it.lookup(k2).is_none(), "LRU entry evicted");
        assert!(it.lookup(k3).is_some());
        assert_eq!(it.stats().evictions, 1);
    }

    #[test]
    fn duplicate_insert_overwrites() {
        let mut it = It::new(64, 4, IndexScheme::OpcodeDepth);
        let key = add_key(10, 4, 0, p(7, 1));
        it.insert_direct(key, p(9, 1), 1);
        it.insert_direct(key, p(13, 2), 2);
        assert_eq!(it.lookup(key).unwrap().out, ItOutput::Value(p(13, 2)));
        assert_eq!(it.occupancy(), 1, "no duplicate entries");
    }

    #[test]
    fn invalidate_removes_offender() {
        let mut it = It::new(64, 4, IndexScheme::OpcodeDepth);
        let key = add_key(10, 4, 0, p(7, 1));
        it.insert_direct(key, p(9, 1), 1);
        it.invalidate(key, ItOutput::Value(p(9, 1)));
        assert!(it.lookup(key).is_none());
        assert_eq!(it.stats().invalidations, 1);
    }

    #[test]
    fn call_depth_separates_sets_under_opcode_indexing() {
        // Same op/imm at different depths indexes different sets (the
        // §2.3 conflict-relief property). With a direct-mapped table the
        // two entries must coexist.
        let mut it = It::new(64, 1, IndexScheme::OpcodeDepth);
        let k_d1 = add_key(10, 8, 1, p(7, 1));
        let k_d2 = add_key(10, 8, 2, p(8, 1));
        it.insert_direct(k_d1, p(9, 1), 1);
        it.insert_direct(k_d2, p(10, 1), 2);
        assert!(it.lookup(k_d1).is_some());
        assert!(it.lookup(k_d2).is_some());
    }

    #[test]
    fn wants_reverse_entry_scopes() {
        let sp_store = Instr::store(Opcode::Stq, reg::T0, reg::SP, 8);
        let other_store = Instr::store(Opcode::Stq, reg::T0, reg::R2, 8);
        let sp_push = Instr::alu_ri(Opcode::Addq, reg::SP, reg::SP, -32);
        let plain_add = Instr::alu_ri(Opcode::Addq, reg::R1, reg::R2, 4);
        let sp_read = Instr::alu_ri(Opcode::Addq, reg::R1, reg::SP, 4);

        assert!(!wants_reverse_entry(ReverseScope::Off, sp_store));
        assert!(wants_reverse_entry(ReverseScope::StackPointer, sp_store));
        assert!(wants_reverse_entry(ReverseScope::StackPointer, sp_push));
        assert!(!wants_reverse_entry(ReverseScope::StackPointer, other_store));
        assert!(!wants_reverse_entry(ReverseScope::StackPointer, plain_add));
        assert!(!wants_reverse_entry(ReverseScope::StackPointer, sp_read));
        assert!(wants_reverse_entry(ReverseScope::AllInvertible, other_store));
        assert!(wants_reverse_entry(ReverseScope::AllInvertible, plain_add));
    }

    #[test]
    #[should_panic(expected = "bad IT geometry")]
    fn bad_geometry_rejected() {
        let _ = It::new(0, 4, IndexScheme::Pc);
    }
}
