//! The physical register state vector, generalised to reference counts.
//!
//! Squash reuse needed only three states per register (free / active /
//! squashed) because a physical register was mapped by at most one logical
//! register instance at a time. General reuse (§2.2) removes that
//! invariant: a register may be simultaneously mapped by any number of
//! in-flight and retired-but-not-overwritten logical instances. The state
//! vector therefore holds a **true reference count** — the number of
//! active mappings — plus:
//!
//! * a **valid bit** distinguishing the two zero-reference states: `0/T`
//!   ("currently unused but holds a useful, integration-eligible value")
//!   and `0/F` ("holds garbage" — the output of a squashed instruction
//!   that never executed, whose integration would deadlock the machine),
//! * a wrap-around **generation counter**, incremented on reallocation,
//!   that filters stale IT entries,
//! * a **written** flag recording whether the producing instruction has
//!   executed — this is what decides `0/T` vs `0/F` when a squash
//!   completely unmaps a register.
//!
//! Mapping operations (allocation, integration) increment the count;
//! unmapping operations (squash undo, architectural overwrite at commit)
//! decrement it. Retirement itself does not change the count. A register
//! is reclaimable exactly when its count is zero; allocation scans
//! circularly (FIFO reclamation), which — combined with IT LRU — is the
//! paper's "disjoint organisation" approximation of coordinated
//! replacement.

use crate::preg::PregRef;

/// Interpretation of a zero-reference register.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZeroKind {
    /// Never written, or squashed before executing: garbage, not
    /// integration eligible (the `0/F` state).
    Garbage,
    /// Completely unmapped by a squash after its value was produced
    /// (the squash-reuse `squashed` state; `0/T`).
    Squashed,
    /// Unmapped by architectural overwrite at commit (shadowed; `0/T`).
    Shadowed,
}

/// Public snapshot of one register's state (for tests and diagnostics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegSnapshot {
    /// Active mapping count.
    pub count: u8,
    /// Current generation.
    pub gen: u8,
    /// Whether the register holds an executed value.
    pub written: bool,
    /// Zero-state interpretation (meaningful only when `count == 0`).
    pub kind: ZeroKind,
}

#[derive(Clone, Copy, Debug)]
struct Reg {
    count: u8,
    gen: u8,
    written: bool,
    kind: ZeroKind,
    pinned: bool,
}

/// The reference-count vector over all physical registers.
#[derive(Clone, Debug)]
pub struct RefVector {
    regs: Vec<Reg>,
    alloc_ptr: usize,
    gen_mask: u8,
    max_count: u8,
    saturation_rejects: u64,
}

impl RefVector {
    /// Creates a vector of `num_pregs` registers, all free (`0/F`), with
    /// `gen_bits`-bit generation counters and `count_bits`-bit reference
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if `num_pregs == 0`, `gen_bits` is 0 or > 8, or
    /// `count_bits` is 0 or > 8.
    #[must_use]
    pub fn new(num_pregs: usize, gen_bits: u32, count_bits: u32) -> Self {
        assert!(num_pregs > 0, "need at least one physical register");
        assert!((1..=8).contains(&gen_bits), "generation counters are 1-8 bits");
        assert!((1..=8).contains(&count_bits), "reference counters are 1-8 bits");
        Self {
            regs: vec![
                Reg {
                    count: 0,
                    gen: 0,
                    written: false,
                    kind: ZeroKind::Garbage,
                    pinned: false,
                };
                num_pregs
            ],
            alloc_ptr: 0,
            gen_mask: ((1u16 << gen_bits) - 1) as u8,
            max_count: ((1u16 << count_bits) - 1) as u8,
            saturation_rejects: 0,
        }
    }

    /// Number of physical registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Whether the vector is empty (never true for a constructed vector).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Pins `preg` with one permanent mapping and an executed value
    /// (used for the architectural reset state and the zero register).
    ///
    /// Returns the pinned reference.
    pub fn pin(&mut self, preg: u16) -> PregRef {
        let r = &mut self.regs[preg as usize];
        r.count = 1;
        r.written = true;
        r.pinned = true;
        PregRef::new(preg, r.gen)
    }

    /// Allocates a free register (count 0, not pinned) by circular scan,
    /// bumping its generation. Returns `None` when no register is free.
    pub fn alloc(&mut self) -> Option<PregRef> {
        let n = self.regs.len();
        let mut idx = self.alloc_ptr;
        for _ in 0..n {
            // Manual wrap instead of a hardware divide per probe.
            if idx >= n {
                idx -= n;
            }
            let r = &mut self.regs[idx];
            if r.count == 0 && !r.pinned {
                r.gen = (r.gen + 1) & self.gen_mask;
                r.count = 1;
                r.written = false;
                r.kind = ZeroKind::Garbage;
                self.alloc_ptr = if idx + 1 >= n { 0 } else { idx + 1 };
                return Some(PregRef::new(idx as u16, r.gen));
            }
            idx += 1;
        }
        None
    }

    /// Number of registers currently allocatable.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.regs.iter().filter(|r| r.count == 0 && !r.pinned).count()
    }

    /// Whether `r` may be integrated under *general* reuse: the generation
    /// matches (the register has not been reallocated), the register is
    /// not garbage, and the reference count is not saturated.
    pub fn eligible_general(&mut self, r: PregRef) -> bool {
        let Some(reg) = self.regs.get(r.preg as usize) else { return false };
        if reg.gen != r.gen {
            return false;
        }
        if reg.count == 0 && reg.kind == ZeroKind::Garbage {
            return false;
        }
        if reg.count >= self.max_count {
            self.saturation_rejects += 1;
            return false;
        }
        true
    }

    /// Whether `r` may be integrated under *squash-only* reuse: exactly
    /// the `squashed` zero-reference state of the original mechanism.
    #[must_use]
    pub fn eligible_squash(&self, r: PregRef) -> bool {
        self.regs.get(r.preg as usize).is_some_and(|reg| {
            reg.gen == r.gen && reg.count == 0 && reg.kind == ZeroKind::Squashed
        })
    }

    /// Integrates `r`: increments its reference count.
    ///
    /// Returns the count *after* the increment (the Figure 5 "Refcount"
    /// statistic), or `None` if `r` is not integration-eligible (callers
    /// should have checked eligibility first).
    pub fn integrate(&mut self, r: PregRef) -> Option<u8> {
        if self.regs[r.preg as usize].gen != r.gen
            || self.regs[r.preg as usize].count >= self.max_count
        {
            return None;
        }
        let reg = &mut self.regs[r.preg as usize];
        reg.count += 1;
        Some(reg.count)
    }

    /// Marks the producing instruction's value as present (at writeback).
    pub fn mark_written(&mut self, r: PregRef) {
        let reg = &mut self.regs[r.preg as usize];
        if reg.gen == r.gen {
            reg.written = true;
        }
    }

    /// Whether the value for `r` has been produced.
    #[must_use]
    pub fn written(&self, r: PregRef) -> bool {
        let reg = &self.regs[r.preg as usize];
        reg.gen == r.gen && reg.written
    }

    /// Unmaps on architectural overwrite: the retiring instruction's
    /// destination shadows the previous mapping of the same logical
    /// register. On reaching zero the register stays integration eligible
    /// (`0/T`, shadowed).
    ///
    /// # Panics
    ///
    /// Panics if the count is already zero — reference counts must be
    /// conserved, and an underflow means a leak elsewhere.
    pub fn unmap_shadow(&mut self, r: PregRef) {
        let reg = &mut self.regs[r.preg as usize];
        if reg.pinned || reg.gen != r.gen {
            return;
        }
        assert!(reg.count > 0, "shadow unmap of unmapped register p{}", r.preg);
        reg.count -= 1;
        if reg.count == 0 {
            reg.kind = ZeroKind::Shadowed;
        }
    }

    /// Unmaps on squash undo (the squashed instruction's own output
    /// mapping, whether allocated or integrated). On reaching zero the
    /// register becomes `0/T` (squashed) if its value was produced, `0/F`
    /// (garbage) otherwise — the §2.2 deadlock-avoidance rule.
    ///
    /// # Panics
    ///
    /// Panics if the count is already zero.
    pub fn unmap_squash(&mut self, r: PregRef) {
        let reg = &mut self.regs[r.preg as usize];
        if reg.pinned || reg.gen != r.gen {
            return;
        }
        assert!(reg.count > 0, "squash unmap of unmapped register p{}", r.preg);
        reg.count -= 1;
        if reg.count == 0 {
            reg.kind = if reg.written { ZeroKind::Squashed } else { ZeroKind::Garbage };
        }
    }

    /// Snapshot of one register (for tests/diagnostics).
    #[must_use]
    pub fn snapshot(&self, preg: u16) -> RegSnapshot {
        let r = &self.regs[preg as usize];
        RegSnapshot { count: r.count, gen: r.gen, written: r.written, kind: r.kind }
    }

    /// Sum of all reference counts (for conservation checks).
    #[must_use]
    pub fn total_count(&self) -> u64 {
        self.regs.iter().map(|r| u64::from(r.count)).sum()
    }

    /// Integrations rejected because the counter was saturated.
    #[must_use]
    pub fn saturation_rejects(&self) -> u64 {
        self.saturation_rejects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rv() -> RefVector {
        RefVector::new(8, 4, 4)
    }

    #[test]
    fn alloc_bumps_generation() {
        let mut v = rv();
        let a = v.alloc().unwrap();
        assert_eq!(a.gen, 1);
        assert_eq!(v.snapshot(a.preg).count, 1);
        // Free it via squash (unwritten → garbage), realloc bumps again.
        v.unmap_squash(a);
        let b = v.alloc().unwrap();
        // Circular scan moved on; eventually the same preg reallocates
        // with gen 2 — force it by exhausting.
        let _ = b;
        for _ in 0..7 {
            let _ = v.alloc();
        }
        assert!(v.alloc().is_none(), "all 8 allocated");
    }

    #[test]
    fn generation_wraps() {
        let mut v = RefVector::new(1, 2, 4); // single reg, 2-bit gen
        let mut gens = Vec::new();
        for _ in 0..6 {
            let r = v.alloc().unwrap();
            gens.push(r.gen);
            v.unmap_squash(r);
        }
        assert_eq!(gens, vec![1, 2, 3, 0, 1, 2]);
    }

    #[test]
    fn stale_reference_ineligible() {
        let mut v = rv();
        let a = v.alloc().unwrap();
        v.mark_written(a);
        v.unmap_squash(a); // 0/T squashed
        assert!(v.eligible_general(a));
        // Reallocate the same preg (exhaust others first).
        let mut realloc = None;
        for _ in 0..10 {
            if let Some(b) = v.alloc() {
                if b.preg == a.preg {
                    realloc = Some(b);
                    break;
                }
            }
        }
        let realloc = realloc.expect("preg reallocated");
        assert_ne!(realloc.gen, a.gen);
        assert!(!v.eligible_general(a), "old generation filtered");
        assert!(v.eligible_general(realloc) || v.snapshot(realloc.preg).count > 0);
    }

    #[test]
    fn two_zero_states() {
        let mut v = rv();
        // Executed then squashed → 0/T (squashed), eligible.
        let a = v.alloc().unwrap();
        v.mark_written(a);
        v.unmap_squash(a);
        assert_eq!(v.snapshot(a.preg).kind, ZeroKind::Squashed);
        assert!(v.eligible_general(a));
        assert!(v.eligible_squash(a));
        // Never executed, squashed → 0/F (garbage), not eligible.
        let b = v.alloc().unwrap();
        v.unmap_squash(b);
        assert_eq!(v.snapshot(b.preg).kind, ZeroKind::Garbage);
        assert!(!v.eligible_general(b));
        assert!(!v.eligible_squash(b));
    }

    #[test]
    fn shadowed_state_eligible_general_not_squash() {
        let mut v = rv();
        let a = v.alloc().unwrap();
        v.mark_written(a);
        v.unmap_shadow(a); // architectural overwrite
        assert_eq!(v.snapshot(a.preg).kind, ZeroKind::Shadowed);
        assert!(v.eligible_general(a));
        assert!(!v.eligible_squash(a), "squash reuse only reuses squashed registers");
    }

    #[test]
    fn simultaneous_sharing() {
        let mut v = rv();
        let a = v.alloc().unwrap();
        v.mark_written(a);
        assert!(v.eligible_general(a), "in-flight results are reusable");
        assert_eq!(v.integrate(a), Some(2));
        assert_eq!(v.integrate(a), Some(3));
        assert_eq!(v.snapshot(a.preg).count, 3);
        // Unmapping twice leaves the original mapping.
        v.unmap_squash(a);
        v.unmap_shadow(a);
        assert_eq!(v.snapshot(a.preg).count, 1);
    }

    #[test]
    fn saturation_rejects_integration() {
        let mut v = RefVector::new(2, 4, 2); // 2-bit counters: max 3
        let a = v.alloc().unwrap();
        v.mark_written(a);
        assert_eq!(v.integrate(a), Some(2));
        assert_eq!(v.integrate(a), Some(3));
        assert!(!v.eligible_general(a), "saturated");
        assert_eq!(v.integrate(a), None);
        assert_eq!(v.saturation_rejects(), 1);
    }

    #[test]
    fn pinned_never_allocated_or_unmapped() {
        let mut v = rv();
        let z = v.pin(0);
        for _ in 0..7 {
            let r = v.alloc().unwrap();
            assert_ne!(r.preg, 0);
            let _ = r;
        }
        assert!(v.alloc().is_none());
        v.unmap_shadow(z); // no-op on pinned
        assert_eq!(v.snapshot(0).count, 1);
    }

    #[test]
    fn retirement_does_not_change_count() {
        // §2.2: "the retirement of an instruction does not change the
        // reference count of its output physical register." Only the
        // *shadowed* register is decremented — modelled by the caller
        // invoking unmap_shadow on the old mapping only.
        let mut v = rv();
        let out = v.alloc().unwrap();
        let old = v.alloc().unwrap();
        v.mark_written(out);
        v.mark_written(old);
        let before = v.snapshot(out.preg).count;
        v.unmap_shadow(old);
        assert_eq!(v.snapshot(out.preg).count, before);
        assert_eq!(v.snapshot(old.preg).count, 0);
    }

    #[test]
    #[should_panic(expected = "shadow unmap of unmapped")]
    fn underflow_detected() {
        let mut v = rv();
        let a = v.alloc().unwrap();
        v.mark_written(a);
        v.unmap_shadow(a);
        v.unmap_shadow(a); // underflow
    }

    proptest! {
        /// Reference counts are conserved: after any interleaving of
        /// alloc/integrate/unmap pairs, total count equals live mappings.
        #[test]
        fn count_conservation(ops in proptest::collection::vec(0u8..3, 1..200)) {
            let mut v = RefVector::new(16, 4, 4);
            let mut live: Vec<PregRef> = Vec::new();
            for op in ops {
                match op {
                    0 => {
                        if let Some(r) = v.alloc() {
                            v.mark_written(r);
                            live.push(r);
                        }
                    }
                    1 => {
                        if let Some(&r) = live.first() {
                            if v.eligible_general(r) && v.integrate(r).is_some() {
                                live.push(r);
                            }
                        }
                    }
                    _ => {
                        if let Some(r) = live.pop() {
                            v.unmap_squash(r);
                        }
                    }
                }
                prop_assert_eq!(v.total_count(), live.len() as u64);
            }
        }

        /// A garbage register is never integration-eligible, under either
        /// reuse discipline.
        #[test]
        fn garbage_never_eligible(n in 1usize..10) {
            let mut v = RefVector::new(16, 4, 4);
            for _ in 0..n {
                let r = v.alloc().unwrap();
                v.unmap_squash(r); // never written
                prop_assert!(!v.eligible_general(r));
                prop_assert!(!v.eligible_squash(r));
            }
        }
    }
}
