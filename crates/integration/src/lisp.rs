//! The load integration suppression predictor (LISP).
//!
//! Load mis-integrations — a load integrating despite an intervening
//! conflicting store — cannot be detected by the integration mechanism,
//! which tracks only register dependences. They are, however, functions
//! of store-load dependences and therefore predictable. The LISP is a
//! PC-indexed *tag cache*: a load whose PC hits is suppressed from
//! integrating. It is trained by inserting the PC of every load that
//! mis-integrates, and deliberately **overbiased** (§3.1): it suppresses
//! as many integrations as possible even at the expense of false
//! suppressions, because a mis-integration costs a full pipeline flush.

use rix_isa::InstAddr;

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    pc: InstAddr,
    valid: bool,
    lru: u64,
}

/// PC-indexed set-associative suppression tag cache (paper default:
/// 1K entries, 2-way).
#[derive(Clone, Debug)]
pub struct Lisp {
    sets: Vec<Vec<Entry>>,
    num_sets: u64,
    stamp: u64,
    suppressions: u64,
    insertions: u64,
}

impl Lisp {
    /// Creates a LISP with `entries` total entries and `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible by `ways` or either is zero.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries > 0 && entries.is_multiple_of(ways), "bad LISP geometry");
        let num_sets = (entries / ways) as u64;
        Self {
            sets: vec![vec![Entry::default(); ways]; num_sets as usize],
            num_sets,
            stamp: 0,
            suppressions: 0,
            insertions: 0,
        }
    }

    fn set_of(&self, pc: InstAddr) -> usize {
        // Power-of-two set counts (all realistic geometries) index with
        // a mask instead of a hardware divide.
        if self.num_sets.is_power_of_two() {
            (pc & (self.num_sets - 1)) as usize
        } else {
            (pc % self.num_sets) as usize
        }
    }

    /// Whether the load at `pc` should be suppressed from integrating.
    /// A hit refreshes the entry (recently offending loads stay
    /// suppressed).
    pub fn suppress(&mut self, pc: InstAddr) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(pc);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.valid && e.pc == pc) {
            e.lru = stamp;
            self.suppressions += 1;
            return true;
        }
        false
    }

    /// Trains the predictor with a mis-integrating load's PC.
    pub fn train(&mut self, pc: InstAddr) {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_of(pc);
        let lines = &mut self.sets[set];
        if let Some(e) = lines.iter_mut().find(|e| e.valid && e.pc == pc) {
            e.lru = stamp;
            return;
        }
        self.insertions += 1;
        let victim = lines
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("LISP set non-empty");
        *victim = Entry { pc, valid: true, lru: stamp };
    }

    /// Number of integrations suppressed.
    #[must_use]
    pub fn suppressions(&self) -> u64 {
        self.suppressions
    }

    /// Number of distinct offender insertions.
    #[must_use]
    pub fn insertions(&self) -> u64 {
        self.insertions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_pc_not_suppressed() {
        let mut l = Lisp::new(16, 2);
        assert!(!l.suppress(100));
    }

    #[test]
    fn trained_pc_suppressed() {
        let mut l = Lisp::new(16, 2);
        l.train(100);
        assert!(l.suppress(100));
        assert!(!l.suppress(101));
        assert_eq!(l.suppressions(), 1);
    }

    #[test]
    fn retrain_refreshes_not_duplicates() {
        let mut l = Lisp::new(16, 2);
        l.train(100);
        l.train(100);
        assert_eq!(l.insertions(), 1);
    }

    #[test]
    fn conflict_evicts_lru() {
        let mut l = Lisp::new(4, 2); // 2 sets, 2 ways: PCs 0,2,4 share set 0
        l.train(0);
        l.train(2);
        assert!(l.suppress(0)); // refresh 0 → 2 is LRU
        l.train(4); // evicts 2
        assert!(l.suppress(0));
        assert!(!l.suppress(2));
        assert!(l.suppress(4));
    }

    #[test]
    #[should_panic(expected = "bad LISP geometry")]
    fn bad_geometry_rejected() {
        let _ = Lisp::new(3, 2);
    }
}
