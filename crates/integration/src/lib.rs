//! # rix-integration: the paper's contribution
//!
//! Register integration is a register-renaming discipline that implements
//! instruction reuse via physical register sharing: a renaming instruction
//! whose `<operation, input physical registers>` tuple matches an
//! **integration table** entry points its output logical register at the
//! entry's output physical register and bypasses the out-of-order engine
//! entirely. This crate implements the mechanism and all three extensions
//! from *"Three Extensions to Register Integration"*:
//!
//! * [`RefVector`] — the generalised physical register state vector:
//!   true reference counts with a valid bit (distinguishing the two
//!   zero-reference states of §2.2) and the per-register *generation
//!   counters* that kill stale IT entries when a register is reallocated,
//! * [`It`] — the integration table, holding direct and reverse entries in
//!   a unified set-associative LRU structure, with either PC indexing
//!   (squash reuse) or the opcode ⊕ immediate ⊕ call-depth indexing of
//!   §2.3,
//! * reverse-entry construction for stores and invertible adds (§2.4),
//!   which yields free speculative memory bypassing for stack
//!   save/restore pairs,
//! * [`Lisp`] — the load integration suppression predictor,
//! * [`MapTable`] — pointer-based rename map storing `(preg, generation)`
//!   pairs,
//! * [`IntegrationConfig`] — configuration presets matching the paper's
//!   four experiment arms (`squash`, `+general`, `+opcode`, `+reverse`),
//! * [`stats`] — the retirement-stream accounting behind Figures 4 and 5.
//!
//! The pipeline that drives all of this lives in `rix-sim`; this crate is
//! pure mechanism and is exhaustively unit- and property-tested on its
//! own invariants (reference-count conservation, generation-counter
//! filtering, LRU behaviour, reverse-entry algebra).

pub mod config;
pub mod it;
pub mod lisp;
pub mod map;
pub mod preg;
pub mod refvec;
pub mod stats;

pub use config::{IndexScheme, IntegrationConfig, ReverseScope, Suppression};
pub use it::{It, ItEntry, ItKey, ItOutput};
pub use lisp::Lisp;
pub use map::MapTable;
pub use preg::PregRef;
pub use refvec::{RefVector, RegSnapshot, ZeroKind};
pub use stats::{
    IntegrationEvent, IntegrationKind, IntegrationStats, IntegrationType, ResultStatus,
};
