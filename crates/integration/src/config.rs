//! Integration configuration and the paper's experiment presets.

use rix_isa::json::Json;

/// How the integration table is indexed (§2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexScheme {
    /// PC indexing: instructions only integrate results of older dynamic
    /// instances of *themselves* (squash-reuse style).
    Pc,
    /// Opcode ⊕ immediate ⊕ call-depth indexing: different static
    /// instructions with the same operation can integrate each other's
    /// results, and save/restore pairs land in conflict-free sets.
    OpcodeDepth,
}

impl IndexScheme {
    /// The scheme's stable JSON name.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Pc => "pc",
            Self::OpcodeDepth => "opcode_depth",
        }
    }

    /// Parses a JSON name produced by [`IndexScheme::as_str`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "pc" => Ok(Self::Pc),
            "opcode_depth" => Ok(Self::OpcodeDepth),
            other => Err(format!("unknown index scheme `{other}` (expected `pc` or `opcode_depth`)")),
        }
    }
}

/// Which operations create reverse IT entries (§2.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReverseScope {
    /// No reverse entries.
    Off,
    /// The paper's design point: stack-pointer-based stores (register
    /// saves) and stack-pointer adds (frame pushes/pops) only.
    StackPointer,
    /// Every store and every invertible immediate add — a generalisation
    /// the paper sketches (more IT pressure, more coverage).
    AllInvertible,
}

impl ReverseScope {
    /// The scope's stable JSON name.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::StackPointer => "stack_pointer",
            Self::AllInvertible => "all_invertible",
        }
    }

    /// Parses a JSON name produced by [`ReverseScope::as_str`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(Self::Off),
            "stack_pointer" => Ok(Self::StackPointer),
            "all_invertible" => Ok(Self::AllInvertible),
            other => Err(format!(
                "unknown reverse scope `{other}` (expected `off`, `stack_pointer` or `all_invertible`)"
            )),
        }
    }
}

/// How load mis-integrations are suppressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suppression {
    /// The realistic predictor: a 1K-entry 2-way PC-indexed tag cache
    /// where a hit suppresses integration (overbiased: any past
    /// mis-integration of this PC suppresses all its future
    /// integrations).
    Lisp,
    /// Oracle suppression: an integration is allowed only if its value
    /// will verify at DIVA (the paper's dark-bar configurations).
    Oracle,
}

impl Suppression {
    /// The policy's stable JSON name.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Lisp => "lisp",
            Self::Oracle => "oracle",
        }
    }

    /// Parses a JSON name produced by [`Suppression::as_str`].
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "lisp" => Ok(Self::Lisp),
            "oracle" => Ok(Self::Oracle),
            other => Err(format!("unknown suppression `{other}` (expected `lisp` or `oracle`)")),
        }
    }
}

/// Full configuration of the integration machinery.
///
/// `IntegrationConfig::default()` is the paper's headline configuration:
/// general reuse + opcode indexing + stack-pointer reverse integration,
/// a 1K-entry 4-way IT, 4-bit generation counters, 4-bit reference
/// counters, and a realistic LISP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntegrationConfig {
    /// Master switch; `false` gives the no-integration baseline renamer.
    pub enabled: bool,
    /// `true` = general reuse (reference counting); `false` = squash
    /// reuse only (only squashed registers integrate).
    pub general_reuse: bool,
    /// IT index function.
    pub index: IndexScheme,
    /// Reverse-entry creation policy.
    pub reverse: ReverseScope,
    /// Mis-integration suppression.
    pub suppression: Suppression,
    /// Total IT entries (power of two).
    pub it_entries: usize,
    /// IT associativity; use [`IntegrationConfig::fully_associative`] or
    /// set `it_ways == it_entries` for a fully-associative table.
    pub it_ways: usize,
    /// Generation counter width in bits (paper: 4).
    pub gen_bits: u32,
    /// Reference counter width in bits (paper: 4).
    pub count_bits: u32,
    /// LISP entries (power of two).
    pub lisp_entries: usize,
    /// LISP associativity.
    pub lisp_ways: usize,
    /// Emulated integration-pipeline depth (§3.3): an IT entry becomes
    /// visible to lookups only this many renamed instructions after its
    /// creation. 0 models the atomic (single-stage) integration circuit;
    /// 4 models integration pipelined over four stages on a 4-wide
    /// machine. Squash reuse is naturally impervious (the squash
    /// separates creator and integrator by a pipeline flush).
    pub pipeline_depth: u64,
}

impl Default for IntegrationConfig {
    fn default() -> Self {
        Self::plus_reverse()
    }
}

impl IntegrationConfig {
    fn base() -> Self {
        Self {
            enabled: true,
            general_reuse: true,
            index: IndexScheme::OpcodeDepth,
            reverse: ReverseScope::StackPointer,
            suppression: Suppression::Lisp,
            it_entries: 1024,
            it_ways: 4,
            gen_bits: 4,
            count_bits: 4,
            lisp_entries: 1024,
            lisp_ways: 2,
            pipeline_depth: 0,
        }
    }

    /// Integration disabled: the baseline processor.
    #[must_use]
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::base() }
    }

    /// The paper's first experiment arm: PC-indexed squash reuse only.
    #[must_use]
    pub fn squash_reuse() -> Self {
        Self {
            general_reuse: false,
            index: IndexScheme::Pc,
            reverse: ReverseScope::Off,
            ..Self::base()
        }
    }

    /// Second arm: + general reuse via reference counting.
    #[must_use]
    pub fn plus_general() -> Self {
        Self {
            general_reuse: true,
            index: IndexScheme::Pc,
            reverse: ReverseScope::Off,
            ..Self::base()
        }
    }

    /// Third arm: + opcode ⊕ immediate ⊕ call-depth indexing.
    #[must_use]
    pub fn plus_opcode() -> Self {
        Self {
            general_reuse: true,
            index: IndexScheme::OpcodeDepth,
            reverse: ReverseScope::Off,
            ..Self::base()
        }
    }

    /// Final arm (the paper's headline configuration): + reverse
    /// integration for stack saves/restores.
    #[must_use]
    pub fn plus_reverse() -> Self {
        Self::base()
    }

    /// Switches this configuration to oracle mis-integration suppression.
    #[must_use]
    pub fn with_oracle(self) -> Self {
        Self { suppression: Suppression::Oracle, ..self }
    }

    /// Sets IT geometry (entries must be a power of two and a multiple of
    /// ways).
    #[must_use]
    pub fn with_it_geometry(self, entries: usize, ways: usize) -> Self {
        Self { it_entries: entries, it_ways: ways, ..self }
    }

    /// Makes the IT fully associative at its current size.
    #[must_use]
    pub fn fully_associative(self) -> Self {
        Self { it_ways: self.it_entries, ..self }
    }

    /// Sets the emulated integration-pipeline depth (§3.3).
    #[must_use]
    pub fn with_pipeline_depth(self, depth: u64) -> Self {
        Self { pipeline_depth: depth, ..self }
    }

    /// Sets the generation-counter width (§2.2's register
    /// mis-integration defence; the paper uses 4 bits).
    #[must_use]
    pub fn with_gen_bits(self, bits: u32) -> Self {
        Self { gen_bits: bits, ..self }
    }

    /// Checks that the machinery can actually be built (the IT, LISP
    /// and reference-vector constructors would panic otherwise):
    /// buildable IT geometry with a power-of-two set count, buildable
    /// LISP geometry, and 1–8-bit counters. Checked even when
    /// `enabled` is false — the simulator constructs the structures
    /// either way.
    pub fn validate(&self) -> Result<(), String> {
        let ways = self.it_ways.min(self.it_entries);
        if self.it_entries == 0 || ways == 0 || !self.it_entries.is_multiple_of(ways) {
            return Err(format!(
                "bad IT geometry: {} entries must be a non-zero multiple of {} ways",
                self.it_entries, self.it_ways
            ));
        }
        if !(self.it_entries / ways).is_power_of_two() {
            return Err(format!(
                "IT set count must be a power of two ({} entries / {} ways = {} sets)",
                self.it_entries,
                ways,
                self.it_entries / ways
            ));
        }
        if self.lisp_entries == 0
            || self.lisp_ways == 0
            || !self.lisp_entries.is_multiple_of(self.lisp_ways)
        {
            return Err(format!(
                "bad LISP geometry: {} entries must be a non-zero multiple of {} ways",
                self.lisp_entries, self.lisp_ways
            ));
        }
        if !(1..=8).contains(&self.gen_bits) {
            return Err(format!("gen_bits must be 1-8 (got {})", self.gen_bits));
        }
        if !(1..=8).contains(&self.count_bits) {
            return Err(format!("count_bits must be 1-8 (got {})", self.count_bits));
        }
        Ok(())
    }

    /// The field names [`IntegrationConfig::apply_json`] accepts.
    pub const KEYS: &'static [&'static str] = &[
        "enabled",
        "general_reuse",
        "index",
        "reverse",
        "suppression",
        "it_entries",
        "it_ways",
        "gen_bits",
        "count_bits",
        "lisp_entries",
        "lisp_ways",
        "pipeline_depth",
    ];

    /// Serialises the configuration as a JSON object (every field,
    /// stable key order; enums by their stable names).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                r#"{{"enabled":{},"general_reuse":{},"index":"{}","reverse":"{}","#,
                r#""suppression":"{}","it_entries":{},"it_ways":{},"gen_bits":{},"#,
                r#""count_bits":{},"lisp_entries":{},"lisp_ways":{},"pipeline_depth":{}}}"#
            ),
            self.enabled,
            self.general_reuse,
            self.index.as_str(),
            self.reverse.as_str(),
            self.suppression.as_str(),
            self.it_entries,
            self.it_ways,
            self.gen_bits,
            self.count_bits,
            self.lisp_entries,
            self.lisp_ways,
            self.pipeline_depth,
        )
    }

    /// Applies a (possibly partial) JSON object: present keys overwrite,
    /// omitted keys keep their current value, unknown keys are rejected
    /// with an error naming them.
    pub fn apply_json(&mut self, v: &Json) -> Result<(), String> {
        use rix_isa::json::{expect_bool, expect_str, expect_u64};
        let Json::Obj(fields) = v else {
            return Err("integration config must be a JSON object".to_string());
        };
        for (k, val) in fields {
            match k.as_str() {
                "enabled" => self.enabled = expect_bool(k, val)?,
                "general_reuse" => self.general_reuse = expect_bool(k, val)?,
                "index" => self.index = IndexScheme::parse(&expect_str(k, val)?)?,
                "reverse" => self.reverse = ReverseScope::parse(&expect_str(k, val)?)?,
                "suppression" => self.suppression = Suppression::parse(&expect_str(k, val)?)?,
                "it_entries" => self.it_entries = expect_u64(k, val)? as usize,
                "it_ways" => self.it_ways = expect_u64(k, val)? as usize,
                "gen_bits" => self.gen_bits = expect_u64(k, val)? as u32,
                "count_bits" => self.count_bits = expect_u64(k, val)? as u32,
                "lisp_entries" => self.lisp_entries = expect_u64(k, val)? as usize,
                "lisp_ways" => self.lisp_ways = expect_u64(k, val)? as usize,
                "pipeline_depth" => self.pipeline_depth = expect_u64(k, val)?,
                other => return Err(rix_isa::json::unknown_key(other, Self::KEYS)),
            }
        }
        Ok(())
    }

    /// The four extension arms of Figure 4, in order, with their paper
    /// labels.
    #[must_use]
    pub fn figure4_arms() -> Vec<(&'static str, Self)> {
        vec![
            ("squash", Self::squash_reuse()),
            ("+general", Self::plus_general()),
            ("+opcode", Self::plus_opcode()),
            ("+reverse", Self::plus_reverse()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_headline_config() {
        let c = IntegrationConfig::default();
        assert!(c.enabled);
        assert!(c.general_reuse);
        assert_eq!(c.index, IndexScheme::OpcodeDepth);
        assert_eq!(c.reverse, ReverseScope::StackPointer);
        assert_eq!(c.it_entries, 1024);
        assert_eq!(c.it_ways, 4);
        assert_eq!(c.gen_bits, 4);
    }

    #[test]
    fn arms_are_cumulative() {
        let arms = IntegrationConfig::figure4_arms();
        assert_eq!(arms.len(), 4);
        assert!(!arms[0].1.general_reuse);
        assert!(arms[1].1.general_reuse);
        assert_eq!(arms[1].1.index, IndexScheme::Pc);
        assert_eq!(arms[2].1.index, IndexScheme::OpcodeDepth);
        assert_eq!(arms[2].1.reverse, ReverseScope::Off);
        assert_eq!(arms[3].1.reverse, ReverseScope::StackPointer);
    }

    #[test]
    fn ablation_builders() {
        let c = IntegrationConfig::default().with_pipeline_depth(4).with_gen_bits(1);
        assert_eq!(c.pipeline_depth, 4);
        assert_eq!(c.gen_bits, 1);
        assert_eq!(IntegrationConfig::default().pipeline_depth, 0);
    }

    #[test]
    fn builders_compose() {
        let c = IntegrationConfig::plus_reverse()
            .with_oracle()
            .with_it_geometry(256, 256);
        assert_eq!(c.suppression, Suppression::Oracle);
        assert_eq!(c.it_entries, 256);
        assert_eq!(c.it_ways, 256);
        let f = IntegrationConfig::default().fully_associative();
        assert_eq!(f.it_ways, f.it_entries);
    }
}
