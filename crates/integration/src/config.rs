//! Integration configuration and the paper's experiment presets.

/// How the integration table is indexed (§2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexScheme {
    /// PC indexing: instructions only integrate results of older dynamic
    /// instances of *themselves* (squash-reuse style).
    Pc,
    /// Opcode ⊕ immediate ⊕ call-depth indexing: different static
    /// instructions with the same operation can integrate each other's
    /// results, and save/restore pairs land in conflict-free sets.
    OpcodeDepth,
}

/// Which operations create reverse IT entries (§2.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReverseScope {
    /// No reverse entries.
    Off,
    /// The paper's design point: stack-pointer-based stores (register
    /// saves) and stack-pointer adds (frame pushes/pops) only.
    StackPointer,
    /// Every store and every invertible immediate add — a generalisation
    /// the paper sketches (more IT pressure, more coverage).
    AllInvertible,
}

/// How load mis-integrations are suppressed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suppression {
    /// The realistic predictor: a 1K-entry 2-way PC-indexed tag cache
    /// where a hit suppresses integration (overbiased: any past
    /// mis-integration of this PC suppresses all its future
    /// integrations).
    Lisp,
    /// Oracle suppression: an integration is allowed only if its value
    /// will verify at DIVA (the paper's dark-bar configurations).
    Oracle,
}

/// Full configuration of the integration machinery.
///
/// `IntegrationConfig::default()` is the paper's headline configuration:
/// general reuse + opcode indexing + stack-pointer reverse integration,
/// a 1K-entry 4-way IT, 4-bit generation counters, 4-bit reference
/// counters, and a realistic LISP.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntegrationConfig {
    /// Master switch; `false` gives the no-integration baseline renamer.
    pub enabled: bool,
    /// `true` = general reuse (reference counting); `false` = squash
    /// reuse only (only squashed registers integrate).
    pub general_reuse: bool,
    /// IT index function.
    pub index: IndexScheme,
    /// Reverse-entry creation policy.
    pub reverse: ReverseScope,
    /// Mis-integration suppression.
    pub suppression: Suppression,
    /// Total IT entries (power of two).
    pub it_entries: usize,
    /// IT associativity; use [`IntegrationConfig::fully_associative`] or
    /// set `it_ways == it_entries` for a fully-associative table.
    pub it_ways: usize,
    /// Generation counter width in bits (paper: 4).
    pub gen_bits: u32,
    /// Reference counter width in bits (paper: 4).
    pub count_bits: u32,
    /// LISP entries (power of two).
    pub lisp_entries: usize,
    /// LISP associativity.
    pub lisp_ways: usize,
    /// Emulated integration-pipeline depth (§3.3): an IT entry becomes
    /// visible to lookups only this many renamed instructions after its
    /// creation. 0 models the atomic (single-stage) integration circuit;
    /// 4 models integration pipelined over four stages on a 4-wide
    /// machine. Squash reuse is naturally impervious (the squash
    /// separates creator and integrator by a pipeline flush).
    pub pipeline_depth: u64,
}

impl Default for IntegrationConfig {
    fn default() -> Self {
        Self::plus_reverse()
    }
}

impl IntegrationConfig {
    fn base() -> Self {
        Self {
            enabled: true,
            general_reuse: true,
            index: IndexScheme::OpcodeDepth,
            reverse: ReverseScope::StackPointer,
            suppression: Suppression::Lisp,
            it_entries: 1024,
            it_ways: 4,
            gen_bits: 4,
            count_bits: 4,
            lisp_entries: 1024,
            lisp_ways: 2,
            pipeline_depth: 0,
        }
    }

    /// Integration disabled: the baseline processor.
    #[must_use]
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::base() }
    }

    /// The paper's first experiment arm: PC-indexed squash reuse only.
    #[must_use]
    pub fn squash_reuse() -> Self {
        Self {
            general_reuse: false,
            index: IndexScheme::Pc,
            reverse: ReverseScope::Off,
            ..Self::base()
        }
    }

    /// Second arm: + general reuse via reference counting.
    #[must_use]
    pub fn plus_general() -> Self {
        Self {
            general_reuse: true,
            index: IndexScheme::Pc,
            reverse: ReverseScope::Off,
            ..Self::base()
        }
    }

    /// Third arm: + opcode ⊕ immediate ⊕ call-depth indexing.
    #[must_use]
    pub fn plus_opcode() -> Self {
        Self {
            general_reuse: true,
            index: IndexScheme::OpcodeDepth,
            reverse: ReverseScope::Off,
            ..Self::base()
        }
    }

    /// Final arm (the paper's headline configuration): + reverse
    /// integration for stack saves/restores.
    #[must_use]
    pub fn plus_reverse() -> Self {
        Self::base()
    }

    /// Switches this configuration to oracle mis-integration suppression.
    #[must_use]
    pub fn with_oracle(self) -> Self {
        Self { suppression: Suppression::Oracle, ..self }
    }

    /// Sets IT geometry (entries must be a power of two and a multiple of
    /// ways).
    #[must_use]
    pub fn with_it_geometry(self, entries: usize, ways: usize) -> Self {
        Self { it_entries: entries, it_ways: ways, ..self }
    }

    /// Makes the IT fully associative at its current size.
    #[must_use]
    pub fn fully_associative(self) -> Self {
        Self { it_ways: self.it_entries, ..self }
    }

    /// Sets the emulated integration-pipeline depth (§3.3).
    #[must_use]
    pub fn with_pipeline_depth(self, depth: u64) -> Self {
        Self { pipeline_depth: depth, ..self }
    }

    /// Sets the generation-counter width (§2.2's register
    /// mis-integration defence; the paper uses 4 bits).
    #[must_use]
    pub fn with_gen_bits(self, bits: u32) -> Self {
        Self { gen_bits: bits, ..self }
    }

    /// The four extension arms of Figure 4, in order, with their paper
    /// labels.
    #[must_use]
    pub fn figure4_arms() -> Vec<(&'static str, Self)> {
        vec![
            ("squash", Self::squash_reuse()),
            ("+general", Self::plus_general()),
            ("+opcode", Self::plus_opcode()),
            ("+reverse", Self::plus_reverse()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_headline_config() {
        let c = IntegrationConfig::default();
        assert!(c.enabled);
        assert!(c.general_reuse);
        assert_eq!(c.index, IndexScheme::OpcodeDepth);
        assert_eq!(c.reverse, ReverseScope::StackPointer);
        assert_eq!(c.it_entries, 1024);
        assert_eq!(c.it_ways, 4);
        assert_eq!(c.gen_bits, 4);
    }

    #[test]
    fn arms_are_cumulative() {
        let arms = IntegrationConfig::figure4_arms();
        assert_eq!(arms.len(), 4);
        assert!(!arms[0].1.general_reuse);
        assert!(arms[1].1.general_reuse);
        assert_eq!(arms[1].1.index, IndexScheme::Pc);
        assert_eq!(arms[2].1.index, IndexScheme::OpcodeDepth);
        assert_eq!(arms[2].1.reverse, ReverseScope::Off);
        assert_eq!(arms[3].1.reverse, ReverseScope::StackPointer);
    }

    #[test]
    fn ablation_builders() {
        let c = IntegrationConfig::default().with_pipeline_depth(4).with_gen_bits(1);
        assert_eq!(c.pipeline_depth, 4);
        assert_eq!(c.gen_bits, 1);
        assert_eq!(IntegrationConfig::default().pipeline_depth, 0);
    }

    #[test]
    fn builders_compose() {
        let c = IntegrationConfig::plus_reverse()
            .with_oracle()
            .with_it_geometry(256, 256);
        assert_eq!(c.suppression, Suppression::Oracle);
        assert_eq!(c.it_entries, 256);
        assert_eq!(c.it_ways, 256);
        let f = IntegrationConfig::default().fully_associative();
        assert_eq!(f.it_ways, f.it_entries);
    }
}
