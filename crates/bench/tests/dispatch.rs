//! The distributed dispatcher, end to end against the real `exp`
//! binary: worker-count invariance (byte-identical result documents for
//! `--workers {1,2,4}` vs in-process), cache semantics (warm re-runs
//! simulate nothing, a one-field spec change invalidates exactly the
//! affected arm's cells, corrupt entries are misses), fault tolerance
//! (an aborted or stalled worker's cells are retried and the merged
//! document converges to the no-failure bytes), checkpoint-seeded
//! warm-up hand-off, and the `--dry-run` missing-checkpoint report.

use rix_bench::{checkpoint_path, Harness};
use rix_isa::json::Json;
use rix_sim::{SimConfig, Simulator, StopWhen};
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const EXP: &str = env!("CARGO_BIN_EXE_exp");

/// A 2-benchmark × 2-arm spec — 4 cells, small budgets, fast runs.
const SPEC: &str = r#"{
    "schema": "rix-exp/1",
    "name": "dispatch-e2e",
    "benchmarks": ["gcc", "vortex"],
    "instructions": 2000,
    "seed": 7,
    "arms": [
        {"label": "base", "preset": "base"},
        {"label": "integration", "preset": "plus_reverse",
         "overrides": {"integration": {"it_entries": 1024}}}
    ]
}"#;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rix-dispatch-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write_spec(dir: &Path, text: &str) -> String {
    let path = dir.join("spec.json");
    std::fs::write(&path, text).expect("write spec");
    path.to_str().expect("utf-8 path").to_string()
}

fn exp(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(EXP);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("exp spawns")
}

/// Runs `exp run … --json` expecting success; returns stdout.
fn run_json(extra: &[&str], envs: &[(&str, &str)], spec: &str) -> String {
    let mut args = vec!["run", spec, "--json"];
    args.extend_from_slice(extra);
    let out = exp(&args, envs);
    assert!(
        out.status.success(),
        "exp {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 result doc")
}

fn cache_counts(doc: &str) -> (u64, u64) {
    let v = Json::parse(doc).expect("result doc parses");
    let c = v.req("cache").expect("cache section present");
    (
        c.req_u64("hits").expect("hits"),
        c.req_u64("misses").expect("misses"),
    )
}

fn trials_of(doc: &str) -> String {
    Json::parse(doc).expect("parses").req("trials").expect("trials").dump()
}

#[test]
fn worker_counts_are_byte_identical_to_in_process() {
    let dir = scratch("identity");
    let spec = write_spec(&dir, SPEC);
    let reference = run_json(&[], &[], &spec);
    assert!(!reference.contains("\"cache\""), "no cache section without --cache");
    for workers in ["1", "2", "4"] {
        let doc = run_json(&["--workers", workers], &[], &spec);
        assert_eq!(doc, reference, "--workers {workers} changed the result document");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_rerun_simulates_zero_cells() {
    let dir = scratch("cache-warm");
    let spec = write_spec(&dir, SPEC);
    let cache = dir.join("cache");
    let cache = cache.to_str().expect("utf-8");

    let cold = run_json(&["--workers", "2", "--cache", cache], &[], &spec);
    assert_eq!(cache_counts(&cold), (0, 4), "cold run misses everything");
    // Second run — in-process, proving the cache is execution-mode
    // agnostic — reuses all four cells.
    let warm = run_json(&["--cache", cache], &[], &spec);
    assert_eq!(cache_counts(&warm), (4, 0), "warm re-run simulates nothing");
    assert_eq!(trials_of(&cold), trials_of(&warm), "reused trials are byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_field_change_invalidates_exactly_the_affected_arm() {
    let dir = scratch("cache-invalidate");
    let spec = write_spec(&dir, SPEC);
    let cache = dir.join("cache");
    let cache = cache.to_str().expect("utf-8");

    let cold = run_json(&["--cache", cache], &[], &spec);
    assert_eq!(cache_counts(&cold), (0, 4));
    // Change one config field of one arm: both benchmarks' cells of
    // that arm miss, the untouched arm's cells still hit.
    let tweaked = write_spec(&dir, &SPEC.replace("1024", "4096"));
    let doc = run_json(&["--cache", cache], &[], &tweaked);
    assert_eq!(cache_counts(&doc), (2, 2), "exactly the changed arm re-simulates");
    // The unchanged arm's trials are bit-for-bit the cached originals.
    let (a, b) = (trials_of(&cold), trials_of(&doc));
    let pick = |t: &str| {
        Json::parse(&format!("{{\"trials\":{t}}}"))
            .expect("parses")
            .req("trials")
            .expect("trials")
            .as_arr()
            .expect("array")
            .iter()
            .filter(|t| t.get("config").and_then(Json::as_str) == Some("base"))
            .map(Json::dump)
            .collect::<Vec<_>>()
    };
    assert_eq!(pick(&a), pick(&b), "untouched arm came from the cache unchanged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_are_misses_not_crashes() {
    let dir = scratch("cache-corrupt");
    let spec = write_spec(&dir, SPEC);
    let cache_dir = dir.join("cache");
    let cache = cache_dir.to_str().expect("utf-8");

    let cold = run_json(&["--cache", cache], &[], &spec);
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&cache_dir)
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 4, "one entry per cell");
    // Truncate one entry mid-document and garbage another.
    std::fs::write(&entries[0], &std::fs::read(&entries[0]).expect("read")[..20])
        .expect("truncate");
    std::fs::write(&entries[1], b"not json at all").expect("garbage");

    let doc = run_json(&["--cache", cache], &[], &spec);
    assert_eq!(cache_counts(&doc), (2, 2), "corrupt entries read as misses");
    assert_eq!(trials_of(&cold), trials_of(&doc), "and re-simulation heals them");
    let healed = run_json(&["--cache", cache], &[], &spec);
    assert_eq!(cache_counts(&healed), (4, 0), "the rewritten entries hit again");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aborted_worker_cells_are_retried_and_converge() {
    let dir = scratch("fault-abort");
    let spec = write_spec(&dir, SPEC);
    let reference = run_json(&["--workers", "2"], &[], &spec);
    // Worker 1 aborts before its first cell; its work lands on worker 0.
    let out = exp(
        &["run", &spec, "--json", "--workers", "2"],
        &[("RIX_DISPATCH_FAULT", "abort:1")],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "faulted run still succeeds:\n{stderr}");
    assert!(stderr.contains("injected abort"), "the fault actually fired:\n{stderr}");
    assert!(stderr.contains("1 lost"), "the loss is reported:\n{stderr}");
    let doc = String::from_utf8(out.stdout).expect("utf-8");
    assert_eq!(doc, reference, "retried cells merge to the no-failure bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_worker_hits_the_deadline_and_cells_converge() {
    let dir = scratch("fault-stall");
    let spec = write_spec(&dir, SPEC);
    let reference = run_json(&["--workers", "2"], &[], &spec);
    let out = exp(
        &["run", &spec, "--json", "--workers", "2"],
        &[("RIX_DISPATCH_FAULT", "stall:1"), ("RIX_DISPATCH_TIMEOUT_SECS", "1")],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stalled run still succeeds:\n{stderr}");
    assert!(stderr.contains("injected stall"), "the fault actually fired:\n{stderr}");
    let doc = String::from_utf8(out.stdout).expect("utf-8");
    assert_eq!(doc, reference, "timed-out cells merge to the no-failure bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

fn checkpoint_spec(dir: &str) -> String {
    SPEC.replace(
        "\"seed\": 7,",
        &format!("\"seed\": 7,\n    \"warmup_mode\": {{\"checkpoint\": {{\"dir\": \"{dir}\"}}}},"),
    )
}

#[test]
fn checkpoint_warmup_hands_off_to_workers() {
    let dir = scratch("ckpt");
    let ckpt_dir = dir.join("snapshots");
    std::fs::create_dir_all(&ckpt_dir).expect("snapshot dir");
    let ckpt = ckpt_dir.to_str().expect("utf-8");
    for name in ["gcc", "vortex"] {
        let program = rix_workloads::lookup(name).expect("benchmark").build(7);
        let mut sim = Simulator::new(&program, SimConfig::default());
        sim.run_until(&StopWhen::RetiredAtLeast(5_000));
        sim.checkpoint().save(checkpoint_path(ckpt, name, 7)).expect("save snapshot");
    }
    let spec = write_spec(&dir, &checkpoint_spec(ckpt));
    let reference = run_json(&[], &[], &spec);
    let doc = run_json(&["--workers", "2"], &[], &spec);
    assert_eq!(doc, reference, "workers fork the same snapshots to the same bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dry_run_names_missing_checkpoint_files() {
    let dir = scratch("dry");
    let empty = dir.join("no-snapshots");
    std::fs::create_dir_all(&empty).expect("dir");
    let empty = empty.to_str().expect("utf-8");
    let spec = write_spec(&dir, &checkpoint_spec(empty));
    let out = exp(&["run", &spec, "--dry-run"], &[]);
    assert!(!out.status.success(), "a dry run with missing snapshots fails");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2 warm-up checkpoint file(s) missing"), "{stderr}");
    for name in ["gcc", "vortex"] {
        let path = checkpoint_path(empty, name, 7);
        assert!(
            stderr.contains(path.to_str().expect("utf-8")),
            "missing path {} is named:\n{stderr}",
            path.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn harness_parses_the_dispatch_flags() {
    let args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
    let h = Harness::try_parse(args("--workers 4 --cache /tmp/c")).expect("parses");
    assert_eq!(h.workers, 4);
    assert_eq!(h.cache.as_deref(), Some("/tmp/c"));
    let h = Harness::try_parse(args("--instructions 500")).expect("parses");
    assert_eq!(h.workers, 0, "default is in-process");
    assert_eq!(h.cache, None);
    let err = Harness::try_parse(args("--workers 0")).expect_err("rejects zero");
    assert!(err.contains("--workers"), "{err}");
}
