//! The distributed dispatcher, end to end against the real `exp`
//! binary: worker-count invariance (byte-identical result documents for
//! `--workers {1,2,4}` vs in-process), cache semantics (warm re-runs
//! simulate nothing, a one-field spec change invalidates exactly the
//! affected arm's cells, corrupt entries are misses), fault tolerance
//! (an aborted or stalled worker's cells are retried and the merged
//! document converges to the no-failure bytes), checkpoint-seeded
//! warm-up hand-off, and the `--dry-run` missing-checkpoint report.
//!
//! Plus the multi-host (TCP) transport: `exp serve` + `exp worker
//! --connect` byte-identity, mid-cell worker kills (requeue on a
//! healthy peer), reconnect after a dropped connection, half-open
//! stall detection via heartbeat liveness, quarantine of a repeat
//! offender, graceful degradation with no workers at all, the remote
//! cache dance, and `exp workers --status`. Network faults are injected
//! with `RIX_DISPATCH_FAULT=net-{exit,drop,stall}:N` in the *worker's*
//! environment — the coordinator's own environment carries the budget
//! knobs (`RIX_DISPATCH_{HEARTBEAT_MS,QUARANTINE,WAIT_SECS,RETRIES}`).

use rix_bench::{checkpoint_path, Harness};
use rix_isa::json::Json;
use rix_sim::{SimConfig, Simulator, StopWhen};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const EXP: &str = env!("CARGO_BIN_EXE_exp");

/// A 2-benchmark × 2-arm spec — 4 cells, small budgets, fast runs.
const SPEC: &str = r#"{
    "schema": "rix-exp/1",
    "name": "dispatch-e2e",
    "benchmarks": ["gcc", "vortex"],
    "instructions": 2000,
    "seed": 7,
    "arms": [
        {"label": "base", "preset": "base"},
        {"label": "integration", "preset": "plus_reverse",
         "overrides": {"integration": {"it_entries": 1024}}}
    ]
}"#;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rix-dispatch-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write_spec(dir: &Path, text: &str) -> String {
    let path = dir.join("spec.json");
    std::fs::write(&path, text).expect("write spec");
    path.to_str().expect("utf-8 path").to_string()
}

fn exp(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(EXP);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("exp spawns")
}

/// Runs `exp run … --json` expecting success; returns stdout.
fn run_json(extra: &[&str], envs: &[(&str, &str)], spec: &str) -> String {
    let mut args = vec!["run", spec, "--json"];
    args.extend_from_slice(extra);
    let out = exp(&args, envs);
    assert!(
        out.status.success(),
        "exp {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 result doc")
}

fn cache_counts(doc: &str) -> (u64, u64) {
    let v = Json::parse(doc).expect("result doc parses");
    let c = v.req("cache").expect("cache section present");
    (
        c.req_u64("hits").expect("hits"),
        c.req_u64("misses").expect("misses"),
    )
}

fn trials_of(doc: &str) -> String {
    Json::parse(doc).expect("parses").req("trials").expect("trials").dump()
}

// ----- multi-host helpers -----------------------------------------------

/// A serving coordinator (`exp serve … --listen 127.0.0.1:0`): its
/// bound address parsed from the `dispatch: listening on …` stderr
/// line, the rest of its stderr drained into a shared buffer so tests
/// can both sequence on it (wait for a worker to connect) and assert on
/// it after the fact.
struct Serve {
    child: Child,
    addr: String,
    stderr: Arc<Mutex<String>>,
    drain: Option<std::thread::JoinHandle<()>>,
}

fn spawn_serve(spec: &str, extra: &[&str], envs: &[(&str, &str)]) -> Serve {
    let mut cmd = Command::new(EXP);
    cmd.args(["serve", spec, "--json", "--listen", "127.0.0.1:0"]);
    cmd.args(extra);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("serve spawns");
    let mut reader = std::io::BufReader::new(child.stderr.take().expect("stderr piped"));
    let stderr = Arc::new(Mutex::new(String::new()));
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read serve stderr") == 0 {
            panic!("serve exited before listening:\n{}", stderr.lock().expect("lock"));
        }
        stderr.lock().expect("lock").push_str(&line);
        if let Some(rest) = line.trim().strip_prefix("dispatch: listening on ") {
            break rest.to_string();
        }
    };
    let acc = Arc::clone(&stderr);
    let drain = std::thread::spawn(move || {
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            acc.lock().expect("lock").push_str(&line);
            line.clear();
        }
    });
    Serve { child, addr, stderr, drain: Some(drain) }
}

impl Serve {
    /// Blocks until the coordinator's stderr contains `needle` (e.g. a
    /// `worker NAME connected` line) — how tests sequence "this worker
    /// holds a cell" without sleeping blind.
    fn wait_stderr_contains(&self, needle: &str) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while Instant::now() < deadline {
            if self.stderr.lock().expect("lock").contains(needle) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("serve stderr never contained `{needle}`:\n{}", self.stderr.lock().expect("lock"));
    }

    /// Waits for the run to end; returns `(stdout, stderr, success)`.
    fn finish(mut self) -> (String, String, bool) {
        let out = self.child.wait_with_output().expect("serve waits");
        if let Some(drain) = self.drain.take() {
            let _ = drain.join();
        }
        let stderr = self.stderr.lock().expect("lock").clone();
        (String::from_utf8(out.stdout).expect("utf-8 result doc"), stderr, out.status.success())
    }
}

/// A remote worker (`exp worker --connect ADDR --name NAME`) with a
/// fast, bounded reconnect schedule so tests never sleep long and
/// orphans die on their own once the coordinator is gone.
fn spawn_worker(addr: &str, name: &str, envs: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(EXP);
    cmd.args(["worker", "--connect", addr, "--name", name]);
    cmd.env("RIX_DISPATCH_BACKOFF_MS", "20");
    cmd.env("RIX_DISPATCH_BACKOFF_ATTEMPTS", "40");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd.spawn().expect("worker spawns")
}

#[test]
fn worker_counts_are_byte_identical_to_in_process() {
    let dir = scratch("identity");
    let spec = write_spec(&dir, SPEC);
    let reference = run_json(&[], &[], &spec);
    assert!(!reference.contains("\"cache\""), "no cache section without --cache");
    for workers in ["1", "2", "4"] {
        let doc = run_json(&["--workers", workers], &[], &spec);
        assert_eq!(doc, reference, "--workers {workers} changed the result document");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_rerun_simulates_zero_cells() {
    let dir = scratch("cache-warm");
    let spec = write_spec(&dir, SPEC);
    let cache = dir.join("cache");
    let cache = cache.to_str().expect("utf-8");

    let cold = run_json(&["--workers", "2", "--cache", cache], &[], &spec);
    assert_eq!(cache_counts(&cold), (0, 4), "cold run misses everything");
    // Second run — in-process, proving the cache is execution-mode
    // agnostic — reuses all four cells.
    let warm = run_json(&["--cache", cache], &[], &spec);
    assert_eq!(cache_counts(&warm), (4, 0), "warm re-run simulates nothing");
    assert_eq!(trials_of(&cold), trials_of(&warm), "reused trials are byte-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_field_change_invalidates_exactly_the_affected_arm() {
    let dir = scratch("cache-invalidate");
    let spec = write_spec(&dir, SPEC);
    let cache = dir.join("cache");
    let cache = cache.to_str().expect("utf-8");

    let cold = run_json(&["--cache", cache], &[], &spec);
    assert_eq!(cache_counts(&cold), (0, 4));
    // Change one config field of one arm: both benchmarks' cells of
    // that arm miss, the untouched arm's cells still hit.
    let tweaked = write_spec(&dir, &SPEC.replace("1024", "4096"));
    let doc = run_json(&["--cache", cache], &[], &tweaked);
    assert_eq!(cache_counts(&doc), (2, 2), "exactly the changed arm re-simulates");
    // The unchanged arm's trials are bit-for-bit the cached originals.
    let (a, b) = (trials_of(&cold), trials_of(&doc));
    let pick = |t: &str| {
        Json::parse(&format!("{{\"trials\":{t}}}"))
            .expect("parses")
            .req("trials")
            .expect("trials")
            .as_arr()
            .expect("array")
            .iter()
            .filter(|t| t.get("config").and_then(Json::as_str) == Some("base"))
            .map(Json::dump)
            .collect::<Vec<_>>()
    };
    assert_eq!(pick(&a), pick(&b), "untouched arm came from the cache unchanged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_are_misses_not_crashes() {
    let dir = scratch("cache-corrupt");
    let spec = write_spec(&dir, SPEC);
    let cache_dir = dir.join("cache");
    let cache = cache_dir.to_str().expect("utf-8");

    let cold = run_json(&["--cache", cache], &[], &spec);
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&cache_dir)
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 4, "one entry per cell");
    // Truncate one entry mid-document and garbage another.
    std::fs::write(&entries[0], &std::fs::read(&entries[0]).expect("read")[..20])
        .expect("truncate");
    std::fs::write(&entries[1], b"not json at all").expect("garbage");

    let doc = run_json(&["--cache", cache], &[], &spec);
    assert_eq!(cache_counts(&doc), (2, 2), "corrupt entries read as misses");
    assert_eq!(trials_of(&cold), trials_of(&doc), "and re-simulation heals them");
    let healed = run_json(&["--cache", cache], &[], &spec);
    assert_eq!(cache_counts(&healed), (4, 0), "the rewritten entries hit again");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn aborted_worker_cells_are_retried_and_converge() {
    let dir = scratch("fault-abort");
    let spec = write_spec(&dir, SPEC);
    let reference = run_json(&["--workers", "2"], &[], &spec);
    // Worker 1 aborts before its first cell; its work lands on worker 0.
    let out = exp(
        &["run", &spec, "--json", "--workers", "2"],
        &[("RIX_DISPATCH_FAULT", "abort:1")],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "faulted run still succeeds:\n{stderr}");
    assert!(stderr.contains("injected abort"), "the fault actually fired:\n{stderr}");
    assert!(stderr.contains("1 lost"), "the loss is reported:\n{stderr}");
    let doc = String::from_utf8(out.stdout).expect("utf-8");
    assert_eq!(doc, reference, "retried cells merge to the no-failure bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_worker_hits_the_deadline_and_cells_converge() {
    let dir = scratch("fault-stall");
    let spec = write_spec(&dir, SPEC);
    let reference = run_json(&["--workers", "2"], &[], &spec);
    let out = exp(
        &["run", &spec, "--json", "--workers", "2"],
        &[("RIX_DISPATCH_FAULT", "stall:1"), ("RIX_DISPATCH_TIMEOUT_SECS", "1")],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stalled run still succeeds:\n{stderr}");
    assert!(stderr.contains("injected stall"), "the fault actually fired:\n{stderr}");
    let doc = String::from_utf8(out.stdout).expect("utf-8");
    assert_eq!(doc, reference, "timed-out cells merge to the no-failure bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

fn checkpoint_spec(dir: &str) -> String {
    SPEC.replace(
        "\"seed\": 7,",
        &format!("\"seed\": 7,\n    \"warmup_mode\": {{\"checkpoint\": {{\"dir\": \"{dir}\"}}}},"),
    )
}

#[test]
fn checkpoint_warmup_hands_off_to_workers() {
    let dir = scratch("ckpt");
    let ckpt_dir = dir.join("snapshots");
    std::fs::create_dir_all(&ckpt_dir).expect("snapshot dir");
    let ckpt = ckpt_dir.to_str().expect("utf-8");
    for name in ["gcc", "vortex"] {
        let program = rix_workloads::lookup(name).expect("benchmark").build(7);
        let mut sim = Simulator::new(&program, SimConfig::default());
        sim.run_until(&StopWhen::RetiredAtLeast(5_000));
        sim.checkpoint().save(checkpoint_path(ckpt, name, 7)).expect("save snapshot");
    }
    let spec = write_spec(&dir, &checkpoint_spec(ckpt));
    let reference = run_json(&[], &[], &spec);
    let doc = run_json(&["--workers", "2"], &[], &spec);
    assert_eq!(doc, reference, "workers fork the same snapshots to the same bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dry_run_names_missing_checkpoint_files() {
    let dir = scratch("dry");
    let empty = dir.join("no-snapshots");
    std::fs::create_dir_all(&empty).expect("dir");
    let empty = empty.to_str().expect("utf-8");
    let spec = write_spec(&dir, &checkpoint_spec(empty));
    let out = exp(&["run", &spec, "--dry-run"], &[]);
    assert!(!out.status.success(), "a dry run with missing snapshots fails");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2 warm-up checkpoint file(s) missing"), "{stderr}");
    for name in ["gcc", "vortex"] {
        let path = checkpoint_path(empty, name, 7);
        assert!(
            stderr.contains(path.to_str().expect("utf-8")),
            "missing path {} is named:\n{stderr}",
            path.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn harness_parses_the_dispatch_flags() {
    let args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
    let h = Harness::try_parse(args("--workers 4 --cache /tmp/c")).expect("parses");
    assert_eq!(h.workers, 4);
    assert_eq!(h.cache.as_deref(), Some("/tmp/c"));
    let h = Harness::try_parse(args("--instructions 500")).expect("parses");
    assert_eq!(h.workers, 0, "default is in-process");
    assert_eq!(h.cache, None);
    let err = Harness::try_parse(args("--workers 0")).expect_err("rejects zero");
    assert!(err.contains("--workers"), "{err}");
    let h = Harness::try_parse(args("--listen 0.0.0.0:7777 --verbose")).expect("parses");
    assert_eq!(h.listen.as_deref(), Some("0.0.0.0:7777"));
    assert!(h.verbose);
    let err = Harness::try_parse(args("--listen :0 --workers 2")).expect_err("exclusive");
    assert!(err.contains("mutually exclusive"), "{err}");
}

#[test]
fn retry_exhaustion_names_the_failing_cell() {
    // A one-worker pool whose only worker stalls on its first cell,
    // with no retry budget: the run must fail, and the error must name
    // the cell in grid terms (bench/arm and seed) plus its fault
    // history — not just an opaque cell number.
    let dir = scratch("budget-error");
    let spec = write_spec(&dir, SPEC);
    let out = exp(
        &["run", &spec, "--json", "--workers", "1"],
        &[
            ("RIX_DISPATCH_FAULT", "stall:0"),
            ("RIX_DISPATCH_TIMEOUT_SECS", "1"),
            ("RIX_DISPATCH_RETRIES", "0"),
        ],
    );
    assert!(!out.status.success(), "a spent retry budget fails the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("gcc/base (seed 7)"), "the cell is named in grid terms:\n{stderr}");
    assert!(stderr.contains("fault history"), "the cell's history is included:\n{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

// ----- the multi-host transport -----------------------------------------

#[test]
fn tcp_workers_are_byte_identical_to_in_process() {
    let dir = scratch("tcp-identity");
    let spec = write_spec(&dir, SPEC);
    let reference = run_json(&[], &[], &spec);
    let serve = spawn_serve(&spec, &[], &[]);
    let mut w1 = spawn_worker(&serve.addr, "alpha", &[]);
    let mut w2 = spawn_worker(&serve.addr, "beta", &[]);
    let (doc, stderr, ok) = serve.finish();
    assert!(ok, "served run succeeds:\n{stderr}");
    assert_eq!(doc, reference, "TCP trials merge to the in-process bytes");
    assert!(stderr.contains("workers"), "peers counted:\n{stderr}");
    // 0 = clean shutdown; 2 = the grid drained before this peer got in
    // and its reconnect budget spent against the closed listener.
    for (name, w) in [("alpha", &mut w1), ("beta", &mut w2)] {
        let code = w.wait().expect("worker exits").code();
        assert!(matches!(code, Some(0 | 2)), "{name} exit {code:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_tcp_worker_mid_cell_requeues_and_converges() {
    let dir = scratch("tcp-kill");
    let spec = write_spec(&dir, SPEC);
    let reference = run_json(&[], &[], &spec);
    let serve = spawn_serve(&spec, &["--verbose"], &[]);
    // The victim dies at its 2nd actionable frame — init is the 1st, so
    // it exits holding its first cell; a healthy peer finishes it.
    let mut victim =
        spawn_worker(&serve.addr, "victim", &[("RIX_DISPATCH_FAULT", "net-exit:2")]);
    serve.wait_stderr_contains("worker victim connected");
    let mut steady = spawn_worker(&serve.addr, "steady", &[]);
    let (doc, stderr, ok) = serve.finish();
    assert!(ok, "the kill does not fail the run:\n{stderr}");
    assert_eq!(doc, reference, "requeued cells merge to the no-failure bytes");
    assert!(stderr.contains("1 lost"), "the loss lands in the summary:\n{stderr}");
    assert!(stderr.contains("cell retries"), "so does the requeue:\n{stderr}");
    // --verbose: the per-worker table names both peers and their fates.
    assert!(stderr.contains("victim"), "table names the lost peer:\n{stderr}");
    assert!(stderr.contains("steady"), "and the healthy one:\n{stderr}");
    assert_eq!(victim.wait().expect("victim exits").code(), Some(86), "injected exit");
    let _ = steady.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dropped_connection_reconnects_with_backoff_and_converges() {
    let dir = scratch("tcp-drop");
    let spec = write_spec(&dir, SPEC);
    let reference = run_json(&[], &[], &spec);
    let serve = spawn_serve(&spec, &["--verbose"], &[]);
    // One worker, one injected drop: it loses its first cell, comes
    // back through the backoff schedule, and finishes the whole grid.
    let mut w = spawn_worker(&serve.addr, "flaky", &[("RIX_DISPATCH_FAULT", "net-drop:2")]);
    let (doc, stderr, ok) = serve.finish();
    assert!(ok, "the drop does not fail the run:\n{stderr}");
    assert_eq!(doc, reference);
    assert!(stderr.contains("1 lost"), "{stderr}");
    let _ = w.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_tcp_worker_is_declared_lost_by_liveness() {
    let dir = scratch("tcp-stall");
    let spec = write_spec(&dir, SPEC);
    let reference = run_json(&[], &[], &spec);
    // A half-open peer sends nothing — no result, no EOF, no pings. The
    // 4×heartbeat liveness deadline is the only thing that can catch
    // it; shrink the heartbeat so it catches quickly.
    let serve = spawn_serve(&spec, &[], &[("RIX_DISPATCH_HEARTBEAT_MS", "100")]);
    let mut sleepy =
        spawn_worker(&serve.addr, "sleepy", &[("RIX_DISPATCH_FAULT", "net-stall:2")]);
    serve.wait_stderr_contains("worker sleepy connected");
    std::thread::sleep(Duration::from_millis(150)); // let its cell land
    let mut steady = spawn_worker(&serve.addr, "steady", &[]);
    let (doc, stderr, ok) = serve.finish();
    assert!(ok, "the stall does not fail the run:\n{stderr}");
    assert_eq!(doc, reference, "the stalled cell re-ran elsewhere to the same bytes");
    assert!(stderr.contains("1 lost"), "liveness expiry is a loss:\n{stderr}");
    // The stalled process sleeps forever by design; reap it.
    let _ = sleepy.kill();
    let _ = sleepy.wait();
    let _ = steady.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeat_offender_is_quarantined_and_the_run_converges() {
    let dir = scratch("tcp-quarantine");
    let spec = write_spec(&dir, SPEC);
    let reference = run_json(&[], &[], &spec);
    let serve = spawn_serve(
        &spec,
        &["--verbose"],
        &[("RIX_DISPATCH_QUARANTINE", "1"), ("RIX_DISPATCH_RETRIES", "4")],
    );
    // `badpeer` drops every connection on its first cell (`:repeat`);
    // one attributed failure quarantines it, so its reconnects are
    // refused work and the grid drains to the healthy peer.
    let mut bad =
        spawn_worker(&serve.addr, "badpeer", &[("RIX_DISPATCH_FAULT", "net-drop:2:repeat")]);
    serve.wait_stderr_contains("worker badpeer connected");
    let mut steady = spawn_worker(&serve.addr, "steady", &[]);
    let (doc, stderr, ok) = serve.finish();
    assert!(ok, "quarantine does not fail the run:\n{stderr}");
    assert_eq!(doc, reference);
    assert!(stderr.contains("1 quarantined"), "{stderr}");
    assert!(stderr.contains("quarantined"), "table shows the state:\n{stderr}");
    // Exit 3 when its reconnect was told `quarantine`; exit 2 when the
    // run ended (listener gone) before it got back in.
    let code = bad.wait().expect("badpeer exits").code();
    assert!(matches!(code, Some(2 | 3)), "badpeer exit {code:?}");
    let _ = steady.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_workers_lost_degrades_to_in_process_and_completes() {
    let dir = scratch("tcp-degrade");
    let spec = write_spec(&dir, SPEC);
    let reference = run_json(&[], &[], &spec);
    // Nobody ever connects: after the (shortened) zero-capacity grace
    // period every cell degrades to the coordinator's own process and
    // the run still exits 0 with identical bytes.
    let serve = spawn_serve(&spec, &[], &[("RIX_DISPATCH_WAIT_SECS", "1")]);
    let (doc, stderr, ok) = serve.finish();
    assert!(ok, "graceful degradation completes the run:\n{stderr}");
    assert_eq!(doc, reference, "degraded cells produce the same bytes");
    assert!(stderr.contains("4 degraded to in-process"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn remote_cache_dance_round_trips_over_the_wire() {
    let dir = scratch("tcp-cache");
    let spec = write_spec(&dir, SPEC);
    let cache = dir.join("cache");
    let cache = cache.to_str().expect("utf-8");

    // Cold served run: the worker's lookups all miss, it stores
    // everything back over the wire into the coordinator's cache.
    let serve = spawn_serve(&spec, &["--cache", cache], &[]);
    let mut w = spawn_worker(&serve.addr, "first", &[]);
    let (cold, stderr, ok) = serve.finish();
    assert!(ok, "{stderr}");
    assert_eq!(cache_counts(&cold), (0, 4), "cold served run misses everything");
    let _ = w.wait();

    // Warm served run: the (diskless) worker is served four hits and
    // simulates nothing.
    let serve = spawn_serve(&spec, &["--cache", cache], &[]);
    let mut w = spawn_worker(&serve.addr, "second", &[]);
    let (warm, stderr, ok) = serve.finish();
    assert!(ok, "{stderr}");
    assert_eq!(cache_counts(&warm), (4, 0), "warm served run is all remote hits");
    assert_eq!(trials_of(&cold), trials_of(&warm), "reused trials are byte-identical");
    let _ = w.wait();

    // And the cache is transport-agnostic: an in-process --cache run
    // reuses what the TCP run stored.
    let local = run_json(&["--cache", cache], &[], &spec);
    assert_eq!(cache_counts(&local), (4, 0), "stdio and TCP share entries");
    assert_eq!(trials_of(&cold), trials_of(&local));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workers_status_reports_queue_and_liveness() {
    let dir = scratch("tcp-status");
    let spec = write_spec(&dir, SPEC);
    // Hold the run open (nothing connected, generous grace period) and
    // query it from outside.
    let serve = spawn_serve(&spec, &[], &[("RIX_DISPATCH_WAIT_SECS", "30")]);
    let out = exp(&["workers", "--status", "--connect", &serve.addr], &[]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let table = String::from_utf8(out.stdout).expect("utf-8");
    assert!(table.contains("0/4 cells done"), "{table}");
    assert!(table.contains("4 queued"), "{table}");

    // Let a worker in, then finish; a `--json` status query mid-run
    // parses as the documented schema.
    let mut w = spawn_worker(&serve.addr, "probe", &[]);
    serve.wait_stderr_contains("worker probe connected");
    let out = exp(&["workers", "--status", "--json", "--connect", &serve.addr], &[]);
    if out.status.success() {
        // (The run may already have finished; only assert when it was
        // actually answered.)
        let doc = Json::parse(String::from_utf8(out.stdout).expect("utf-8").trim())
            .expect("status document parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("rix-dispatch-status/1"),
            "documented schema"
        );
    }
    let (_, stderr, ok) = serve.finish();
    assert!(ok, "{stderr}");
    let _ = w.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dispatch_stats_flag_adds_worker_stats_to_the_document() {
    let dir = scratch("dispatch-stats");
    let spec = write_spec(&dir, SPEC);
    let plain = run_json(&["--workers", "2"], &[], &spec);
    assert!(
        Json::parse(&plain).expect("parses").get("dispatch").is_none(),
        "no dispatch section without the flag"
    );

    let stats = run_json(&["--workers", "2", "--dispatch-stats"], &[], &spec);
    let doc = Json::parse(&stats).expect("parses");
    let dispatch = doc.req("dispatch").expect("dispatch section present");
    assert_eq!(dispatch.req_u64("cells").expect("cells"), 4);
    assert_eq!(dispatch.req_u64("workers_spawned").expect("workers_spawned"), 2);
    let workers = dispatch.req("workers").expect("per-worker stats").as_arr().expect("array");
    assert_eq!(workers.len(), 2, "one entry per worker");
    for w in workers {
        assert!(w.get("name").and_then(Json::as_str).is_some());
        assert!(w.get("state").and_then(Json::as_str).is_some());
        assert!(w.get("cells_completed").and_then(Json::as_u64).is_some());
    }

    // The section is additive: trials (and thus the science) unchanged.
    assert_eq!(trials_of(&plain), trials_of(&stats));
    let _ = std::fs::remove_dir_all(&dir);
}
