//! The experiment API service, end to end against the real `exp`
//! binary: `exp serve-api` + the `submit`/`status`/`fetch`/`runs`
//! client subcommands. Proves the tentpole guarantees at the CLI layer:
//! a fetched result document is byte-identical to a direct `exp run
//! --json`, identical submissions join the same run (one simulation,
//! live or after completion), a restarted server re-serves completed
//! results warm, the bearer token gates the HTTP surface, and `exp
//! cache stats/gc` manage a trial-cache directory.

use rix_isa::json::Json;
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

const EXP: &str = env!("CARGO_BIN_EXE_exp");

/// A 2-benchmark × 2-arm spec — 4 cells, small budgets, fast runs.
const SPEC: &str = r#"{
    "schema": "rix-exp/1",
    "name": "serve-api-e2e",
    "benchmarks": ["gcc", "vortex"],
    "instructions": 2000,
    "seed": 11,
    "arms": [
        {"label": "base", "preset": "base"},
        {"label": "integration", "preset": "plus_reverse",
         "overrides": {"integration": {"it_entries": 1024}}}
    ]
}"#;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rix-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn write_spec(dir: &Path, text: &str) -> String {
    let path = dir.join("spec.json");
    std::fs::write(&path, text).expect("write spec");
    path.to_str().expect("utf-8 path").to_string()
}

fn exp(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(EXP);
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("exp spawns")
}

/// Runs `exp …` expecting success; returns stdout.
fn exp_ok(args: &[&str], envs: &[(&str, &str)]) -> String {
    let out = exp(args, envs);
    assert!(
        out.status.success(),
        "exp {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// An `exp serve-api` child: bound address parsed from its
/// `serve-api: listening on …` stderr line; killed on drop so a failed
/// assertion doesn't leak a server.
struct Api {
    child: Child,
    addr: String,
}

fn spawn_api(data_dir: &Path, extra: &[&str], envs: &[(&str, &str)]) -> Api {
    let mut cmd = Command::new(EXP);
    cmd.args(["serve-api", "--listen", "127.0.0.1:0", "--data-dir"]);
    cmd.arg(data_dir);
    cmd.args(extra);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("serve-api spawns");
    let mut reader = std::io::BufReader::new(child.stderr.take().expect("stderr piped"));
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read serve-api stderr") == 0 {
            panic!("serve-api exited before listening");
        }
        if let Some(rest) = line.trim().strip_prefix("serve-api: listening on ") {
            break rest.to_string();
        }
    };
    Api { child, addr }
}

impl Drop for Api {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn field<'a>(doc: &'a Json, name: &str) -> &'a Json {
    doc.get(name).unwrap_or_else(|| panic!("reply has `{name}`: {}", doc.dump()))
}

/// The tentpole acceptance check: a document fetched from the service
/// is byte-identical to `exp run --json` on the same spec, and a second
/// identical submission joins the completed run instead of
/// re-simulating.
#[test]
fn fetched_result_is_byte_identical_to_direct_run() {
    let dir = scratch("bytes");
    let spec = write_spec(&dir, SPEC);
    let direct = exp_ok(&["run", &spec, "--json"], &[]);

    let api = spawn_api(&dir.join("data"), &[], &[]);
    let reply = exp_ok(&["submit", &spec, "--connect", &api.addr, "--json"], &[]);
    let reply = Json::parse(&reply).expect("submit reply parses");
    let id = field(&reply, "id").as_str().expect("id is a string").to_string();
    assert!(id.starts_with("0x"), "run id is the spec fingerprint, got {id}");
    assert_eq!(field(&reply, "joined").as_bool(), Some(false));

    let fetched = exp_ok(&["fetch", &id, "--connect", &api.addr, "--wait"], &[]);
    assert_eq!(fetched, direct, "service result must match `exp run --json` byte-for-byte");

    // Identical re-submission joins the completed run: same id, joined
    // flag set, still exactly one simulation behind it (the status
    // dispatch report shows every cell ran in the single execution).
    let again = exp_ok(&["submit", &spec, "--connect", &api.addr, "--json"], &[]);
    let again = Json::parse(&again).expect("second reply parses");
    assert_eq!(field(&again, "id").as_str(), Some(id.as_str()));
    assert_eq!(field(&again, "joined").as_bool(), Some(true));
    assert_eq!(field(&again, "state").as_str(), Some("done"));

    let status = exp_ok(&["status", &id, "--connect", &api.addr, "--json"], &[]);
    let status = Json::parse(&status).expect("status parses");
    let progress = field(&status, "progress");
    assert_eq!(progress.req_u64("total").expect("total"), 4);
    assert_eq!(progress.req_u64("done").expect("done"), 4);
    let dispatch = field(&status, "dispatch");
    assert_eq!(dispatch.req_u64("cells").expect("cells"), 4);

    // `--output` writes the same bytes it would print.
    let out_path = dir.join("fetched.json");
    let out_str = out_path.to_str().expect("utf-8 path");
    exp_ok(&["fetch", &id, "--connect", &api.addr, "--output", out_str], &[]);
    assert_eq!(std::fs::read_to_string(&out_path).expect("fetched file"), direct);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Many clients racing the same spec: every submission resolves to the
/// same run id, exactly one creates it, and every fetch returns the
/// same bytes.
#[test]
fn concurrent_submissions_share_one_run() {
    let dir = scratch("race");
    let spec = write_spec(&dir, SPEC);
    let api = spawn_api(&dir.join("data"), &[], &[]);

    let replies: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let (addr, spec) = (api.addr.clone(), spec.clone());
                scope.spawn(move || {
                    let out = exp_ok(&["submit", &spec, "--connect", &addr, "--json"], &[]);
                    Json::parse(&out).expect("submit reply parses")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("submitter")).collect()
    });

    let ids: Vec<&str> =
        replies.iter().map(|r| field(r, "id").as_str().expect("id")).collect();
    assert!(ids.windows(2).all(|w| w[0] == w[1]), "all submissions share one run: {ids:?}");
    let created =
        replies.iter().filter(|r| field(r, "joined").as_bool() == Some(false)).count();
    assert_eq!(created, 1, "exactly one submission created the run");

    let reference = exp_ok(&["fetch", ids[0], "--connect", &api.addr, "--wait"], &[]);
    for _ in 0..3 {
        assert_eq!(exp_ok(&["fetch", ids[0], "--connect", &api.addr], &[]), reference);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Restart-warm at the CLI layer: kill the server after a run
/// completes, restart it on the same data-dir, and the run is listed
/// done and its result re-served byte-identical — no re-simulation
/// (the second server never executes anything).
#[test]
fn restarted_server_serves_completed_runs_warm() {
    let dir = scratch("restart");
    let spec = write_spec(&dir, SPEC);
    let data = dir.join("data");

    let first = spawn_api(&data, &[], &[]);
    let reply = exp_ok(&["submit", &spec, "--connect", &first.addr, "--json"], &[]);
    let id = field(&Json::parse(&reply).expect("parses"), "id")
        .as_str()
        .expect("id")
        .to_string();
    let fetched = exp_ok(&["fetch", &id, "--connect", &first.addr, "--wait"], &[]);
    drop(first);

    // `--executors 0` so the restarted server *cannot* simulate: the
    // bytes it serves are necessarily the stored ones.
    let second = spawn_api(&data, &["--executors", "0"], &[]);
    let runs = exp_ok(&["runs", "--connect", &second.addr, "--json"], &[]);
    let runs = Json::parse(&runs).expect("runs parses");
    let listed = field(&runs, "runs").as_arr().expect("runs array");
    assert_eq!(listed.len(), 1);
    assert_eq!(field(&listed[0], "id").as_str(), Some(id.as_str()));
    assert_eq!(field(&listed[0], "state").as_str(), Some("done"));

    let warm = exp_ok(&["fetch", &id, "--connect", &second.addr], &[]);
    assert_eq!(warm, fetched, "restarted server re-serves stored bytes");

    // A duplicate submission joins the completed run even though this
    // server has no executors at all.
    let again = exp_ok(&["submit", &spec, "--connect", &second.addr, "--json"], &[]);
    let again = Json::parse(&again).expect("parses");
    assert_eq!(field(&again, "joined").as_bool(), Some(true));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The bearer token gates every client subcommand; `RIX_DISPATCH_TOKEN`
/// in the client's environment is the flagless spelling.
#[test]
fn http_token_gates_the_client_commands() {
    let dir = scratch("auth");
    let spec = write_spec(&dir, SPEC);
    let api = spawn_api(&dir.join("data"), &["--token", "hush", "--executors", "0"], &[]);

    let refused = exp(&["submit", &spec, "--connect", &api.addr], &[]);
    assert!(!refused.status.success(), "tokenless submit must fail");
    assert_eq!(refused.status.code(), Some(1), "a 401 is a runtime error, not a usage error");
    let stderr = String::from_utf8_lossy(&refused.stderr);
    assert!(stderr.contains("401"), "names the refusal: {stderr}");

    let wrong = exp(&["runs", "--connect", &api.addr, "--token", "open"], &[]);
    assert!(!wrong.status.success(), "wrong token must fail");

    let reply =
        exp_ok(&["submit", &spec, "--connect", &api.addr, "--token", "hush", "--json"], &[]);
    let id = field(&Json::parse(&reply).expect("parses"), "id")
        .as_str()
        .expect("id")
        .to_string();
    let status = exp_ok(
        &["status", &id, "--connect", &api.addr, "--json"],
        &[("RIX_DISPATCH_TOKEN", "hush")],
    );
    let status = Json::parse(&status).expect("status parses");
    assert_eq!(field(&status, "state").as_str(), Some("queued"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `exp cache stats` and `exp cache gc --older-than` over the directory
/// a cached run populated.
#[test]
fn cache_subcommand_reports_and_prunes() {
    let dir = scratch("cache");
    let spec = write_spec(&dir, SPEC);
    let cache_dir = dir.join("cache");
    let cache_str = cache_dir.to_str().expect("utf-8 path");
    exp_ok(&["run", &spec, "--json", "--cache", cache_str], &[]);

    let stats = exp_ok(&["cache", "stats", cache_str, "--json"], &[]);
    let stats = Json::parse(&stats).expect("stats parses");
    assert_eq!(field(&stats, "entries").as_u64(), Some(4));
    assert_eq!(field(&stats, "corrupt").as_u64(), Some(0));
    assert!(field(&stats, "bytes").as_u64().unwrap_or(0) > 0);

    // A corrupt entry is counted, not fatal.
    std::fs::write(cache_dir.join("deadbeef.json"), "not json").expect("plant corrupt entry");
    let stats = exp_ok(&["cache", "stats", cache_str, "--json"], &[]);
    let stats = Json::parse(&stats).expect("stats parses");
    assert_eq!(field(&stats, "corrupt").as_u64(), Some(1));

    // Age 0 prunes everything; a long horizon prunes nothing.
    let kept = exp_ok(&["cache", "gc", cache_str, "--older-than", "7d"], &[]);
    assert!(kept.contains("removed 0"), "nothing is a week old: {kept}");
    let swept = exp_ok(&["cache", "gc", cache_str, "--older-than", "0s"], &[]);
    assert!(swept.contains("removed 5"), "4 entries + 1 corrupt: {swept}");
    let stats = exp_ok(&["cache", "stats", cache_str, "--json"], &[]);
    let stats = Json::parse(&stats).expect("stats parses");
    assert_eq!(field(&stats, "entries").as_u64(), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Structured client-side failures: unknown run ids and unfinished
/// results exit 1 with the server's error message, not a usage dump.
#[test]
fn client_failures_are_runtime_errors() {
    let dir = scratch("errors");
    let spec = write_spec(&dir, SPEC);
    let api = spawn_api(&dir.join("data"), &["--executors", "0"], &[]);

    let missing = exp(&["status", "0xdoesnotexist", "--connect", &api.addr], &[]);
    assert_eq!(missing.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&missing.stderr).contains("404"));

    // Submitted but never executed (no executors): fetch without --wait
    // reports the 409 instead of blocking.
    let reply = exp_ok(&["submit", &spec, "--connect", &api.addr, "--json"], &[]);
    let id = field(&Json::parse(&reply).expect("parses"), "id")
        .as_str()
        .expect("id")
        .to_string();
    let unfinished = exp(&["fetch", &id, "--connect", &api.addr], &[]);
    assert_eq!(unfinished.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&unfinished.stderr).contains("409"));

    // An invalid spec is refused by validation with a 400.
    let bad = dir.join("bad.json");
    std::fs::write(&bad, r#"{"schema":"rix-exp/1","benchmarks":[]}"#).expect("write bad spec");
    let refused = exp(&["submit", bad.to_str().expect("utf-8 path"), "--connect", &api.addr], &[]);
    assert_eq!(refused.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&refused.stderr).contains("400"));
    let _ = std::fs::remove_dir_all(&dir);
}
