//! Multi-process sweep execution and the trial cache — the bench-side
//! glue over the generic [`rix_dispatch`] pool.
//!
//! A [`crate::Sweep`] serialises to a `rix-dispatch-plan/1` document
//! (benchmark names, labelled configs as full canonical JSON, budgets,
//! seed, warm-up policy); the coordinator ships the plan to every
//! worker in the `init` message and assigns **cells** — bench-major
//! grid indices, `cell = bench_idx * narms + arm_idx`, exactly
//! [`crate::Sweep`]'s trial order. Workers rebuild programs and warm-up
//! state lazily per benchmark row (including loading the same
//! `rix-ckpt/1` snapshot files under [`crate::WarmupMode::Checkpoint`],
//! program-hash-verified like the in-process path) and send back
//! losslessly-serialised [`rix_sim::RunResult`]s, so the merged trials
//! are **byte-identical** to a single-process [`crate::Sweep::try_run`]
//! for every worker count.
//!
//! ## The cache (`--cache DIR`)
//!
//! With a cache directory set, every cell is first looked up by the
//! 128-bit content hash of its `rix-cell/1` descriptor: benchmark,
//! seed, arm label, the arm's **full canonical config JSON**, budgets,
//! warm-up policy and stop condition — plus the checkpoint *file
//! content hash* under checkpoint warm-up, so re-saving a snapshot
//! invalidates the cells that forked from it. Keying each cell by its
//! own content (rather than the whole spec's fingerprint) is what makes
//! invalidation exact: editing one arm re-simulates only that arm's
//! cells, and unrelated specs sharing identical cells share entries.
//! Entry writes are atomic (temp file + rename) and corrupt entries
//! read as misses — see [`rix_dispatch::cache`].
//!
//! Wall-clock time is not cached (a reused trial reports zero), which
//! is why [`crate::Trial::to_json`] — and therefore every result
//! document — deliberately excludes it.
//!
//! ## Multi-host (`--listen` / `exp serve` + `exp worker --connect`)
//!
//! With `--listen ADDR` the coordinator spawns nothing: it binds a TCP
//! listener and serves the *whole* grid to remote workers over
//! `rix-dispatch/2` ([`rix_dispatch::net`]), heartbeats and all. Served
//! runs do not prefilter against the cache — every cell ships with its
//! key and the workers run the cache dance over the wire, so diskless
//! remote hosts still dedup against the coordinator's local cache.
//! Cells the network cannot finish (retry budgets spent, or all remote
//! capacity lost past the grace period) **degrade** to in-process
//! execution here, so a distributed sweep completes with a slower tail
//! rather than failing; the degradation is visible in the
//! [`DispatchReport`]. Merged trials stay byte-identical to a
//! single-process run under any fault history.
//!
//! ## Fault injection (tests)
//!
//! `RIX_DISPATCH_FAULT=abort:K` makes worker `K` abort before running
//! its first cell; `stall:K` makes it hang (exercising the per-cell
//! deadline, tunable via `RIX_DISPATCH_TIMEOUT_SECS`; the retry budget
//! via `RIX_DISPATCH_RETRIES`). TCP workers additionally honour the
//! network-level specs `net-drop:N[:repeat]` / `net-stall:N` /
//! `net-exit:N` (see [`rix_dispatch::transport::NetFault`]), and their
//! reconnect schedule is tunable via `RIX_DISPATCH_BACKOFF_MS` /
//! `RIX_DISPATCH_BACKOFF_ATTEMPTS`; the served coordinator reads
//! `RIX_DISPATCH_HEARTBEAT_MS`, `RIX_DISPATCH_QUARANTINE` and
//! `RIX_DISPATCH_WAIT_SECS`. The variables only affect the processes
//! they are set for (spawned stdio workers inherit the coordinator's
//! environment; remote workers have their own).

use crate::{measure_cell, Harness, Sweep, Trial, WarmupMode};
use rix_dispatch::{ResultCache, WorkerStat, WORKER_ARG};
use rix_isa::interp::Interp;
use rix_isa::json::Json;
use rix_isa::{ArchState, Program};
use rix_sim::{Checkpoint, RunResult, SimConfig, StopWhen};
use rix_workloads::Benchmark;
use std::time::Duration;

/// The plan document schema shipped to workers.
pub const PLAN_SCHEMA: &str = "rix-dispatch-plan/1";
/// The cache-key descriptor schema (hashed, never stored).
pub const CELL_SCHEMA: &str = "rix-cell/1";

/// How a distributed run executes: worker processes, cache, fault
/// tolerance budgets.
#[derive(Clone, Debug)]
pub struct DispatchOptions {
    /// Worker processes (0 = execute misses in this process).
    pub workers: usize,
    /// Trial cache directory (`None` = simulate everything).
    pub cache: Option<String>,
    /// Serve the grid to remote TCP workers on this address instead of
    /// spawning local processes (mutually exclusive with `workers`).
    pub listen: Option<String>,
    /// Per-cell deadline before a worker is presumed hung.
    pub cell_timeout: Duration,
    /// Retries per cell after a worker death or timeout.
    pub retries: u32,
    /// Heartbeat interval on served (TCP) runs; the liveness deadline
    /// is 4× this.
    pub heartbeat: Duration,
    /// Consecutive attributed failures that quarantine a remote peer.
    pub quarantine_after: u32,
    /// How long a served run waits with zero connected capacity before
    /// degrading the remaining cells to in-process execution.
    pub worker_wait: Duration,
    /// Shared secret for served (TCP) runs: when set, every remote
    /// hello must carry a matching token (see [`rix_dispatch::net`]).
    pub token: Option<String>,
}

impl Default for DispatchOptions {
    fn default() -> Self {
        Self {
            workers: 0,
            cache: None,
            listen: None,
            cell_timeout: Duration::from_secs(300),
            retries: 2,
            heartbeat: Duration::from_secs(2),
            quarantine_after: 3,
            worker_wait: Duration::from_secs(60),
            token: None,
        }
    }
}

impl DispatchOptions {
    /// The options a [`Harness`] command line implies: `--workers`,
    /// `--cache` and `--listen`, with the fault-tolerance budgets
    /// overridable via environment variables (primarily for tests that
    /// need short deadlines): `RIX_DISPATCH_TIMEOUT_SECS` (cell
    /// deadline), `RIX_DISPATCH_RETRIES` (retry budget),
    /// `RIX_DISPATCH_HEARTBEAT_MS` (served-run heartbeat),
    /// `RIX_DISPATCH_QUARANTINE` (consecutive-failure threshold) and
    /// `RIX_DISPATCH_WAIT_SECS` (zero-capacity grace period).
    #[must_use]
    pub fn from_harness(h: &Harness) -> Self {
        let mut opts = Self {
            workers: h.workers,
            cache: h.cache.clone(),
            listen: h.listen.clone(),
            token: h.token.clone().or_else(|| std::env::var("RIX_DISPATCH_TOKEN").ok()),
            ..Self::default()
        };
        if let Some(secs) = env_u64("RIX_DISPATCH_TIMEOUT_SECS") {
            opts.cell_timeout = Duration::from_secs(secs.max(1));
        }
        if let Some(r) = env_u64("RIX_DISPATCH_RETRIES") {
            opts.retries = u32::try_from(r).unwrap_or(u32::MAX);
        }
        if let Some(ms) = env_u64("RIX_DISPATCH_HEARTBEAT_MS") {
            opts.heartbeat = Duration::from_millis(ms.max(1));
        }
        if let Some(k) = env_u64("RIX_DISPATCH_QUARANTINE") {
            opts.quarantine_after = u32::try_from(k.max(1)).unwrap_or(u32::MAX);
        }
        if let Some(secs) = env_u64("RIX_DISPATCH_WAIT_SECS") {
            opts.worker_wait = Duration::from_secs(secs);
        }
        opts
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

/// What a distributed run did: the split between simulated and reused
/// cells, and the pool's fault history. Reported on stderr (and in the
/// `exp` result document's `cache` section when a cache is in use) —
/// never inside trial records, which stay byte-stable across worker
/// counts and fault histories.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DispatchReport {
    /// Grid cells in the run.
    pub cells: usize,
    /// Cells actually simulated (cache misses, or everything without a
    /// cache).
    pub simulated: usize,
    /// Cells reused from the cache.
    pub cache_hits: usize,
    /// Worker processes spawned, or distinct remote peers that
    /// connected (0 for an in-process run).
    pub workers_spawned: usize,
    /// Workers lost to death, deadline, or liveness expiry.
    pub workers_lost: usize,
    /// Cell assignments retried after a loss.
    pub retries: u64,
    /// Cells that degraded from remote workers to in-process execution
    /// (served runs only).
    pub degraded: u64,
    /// Remote peers quarantined for consecutive failures.
    pub quarantined: usize,
    /// Per-worker detail for `--verbose` (empty for in-process runs).
    pub workers: Vec<WorkerStat>,
}

impl DispatchReport {
    /// One-line summary for stderr progress reporting.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} cells: {} simulated, {} cache hits",
            self.cells, self.simulated, self.cache_hits
        );
        if self.workers_spawned > 0 {
            s.push_str(&format!(", {} workers", self.workers_spawned));
        }
        if self.workers_lost > 0 {
            s.push_str(&format!(
                " ({} lost, {} cell retries)",
                self.workers_lost, self.retries
            ));
        }
        if self.degraded > 0 {
            s.push_str(&format!(", {} degraded to in-process", self.degraded));
        }
        if self.quarantined > 0 {
            s.push_str(&format!(", {} quarantined", self.quarantined));
        }
        s
    }

    /// The report as JSON — the `dispatch` section of a result document
    /// under `--dispatch-stats`, and the service's per-run stats. The
    /// per-worker detail that used to exist only as the `--verbose`
    /// table is included structurally, so machine consumers never
    /// re-parse tables.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let workers = self
            .workers
            .iter()
            .map(|w| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(w.name.clone())),
                    ("state".into(), Json::Str(w.state().into())),
                    ("cells_completed".into(), Json::Num(w.cells_completed.to_string())),
                    ("failures".into(), Json::Num(w.failures.to_string())),
                    ("reconnects".into(), Json::Num(w.reconnects.to_string())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("cells".into(), Json::Num(self.cells.to_string())),
            ("simulated".into(), Json::Num(self.simulated.to_string())),
            ("cache_hits".into(), Json::Num(self.cache_hits.to_string())),
            ("workers_spawned".into(), Json::Num(self.workers_spawned.to_string())),
            ("workers_lost".into(), Json::Num(self.workers_lost.to_string())),
            ("retries".into(), Json::Num(self.retries.to_string())),
            ("degraded".into(), Json::Num(self.degraded.to_string())),
            ("quarantined".into(), Json::Num(self.quarantined.to_string())),
            ("workers".into(), Json::Arr(workers)),
        ])
    }

    /// Multi-line per-worker table (liveness, completions, failures,
    /// reconnects, quarantine) for `--verbose`. Empty string when the
    /// run had no workers.
    #[must_use]
    pub fn worker_table(&self) -> String {
        if self.workers.is_empty() {
            return String::new();
        }
        let mut s = format!(
            "{:<16} {:<12} {:>6} {:>9} {:>11}\n",
            "worker", "state", "cells", "failures", "reconnects"
        );
        for w in &self.workers {
            s.push_str(&format!(
                "{:<16} {:<12} {:>6} {:>9} {:>11}\n",
                w.name,
                w.state(),
                w.cells_completed,
                w.failures,
                w.reconnects
            ));
        }
        s
    }
}

// ----- progress hooks ---------------------------------------------------

/// A point-in-time snapshot of a distributed run's cell accounting,
/// delivered to the observer installed by [`with_cell_progress`]. The
/// long-lived experiment service surfaces these counts in run status.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellProgress {
    /// Grid cells in the run.
    pub total: usize,
    /// Cells finished so far (simulated or reused).
    pub done: usize,
    /// Of `done`, cells reused from the cache.
    pub cached: usize,
    /// Of `done`, cells that degraded from remote workers to in-process
    /// execution.
    pub degraded: usize,
}

/// The installed progress observer (see [`with_cell_progress`]).
pub type ProgressHook = Box<dyn FnMut(CellProgress)>;

thread_local! {
    static PROGRESS_HOOK: std::cell::RefCell<Option<ProgressHook>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs `hook` as the calling thread's cell-progress observer for
/// the duration of `f`. Progress is per-cell on in-process execution
/// and coarser on pooled/served runs (the external pool reports only at
/// completion). Thread-local, so concurrent runs on different threads
/// (the service's executor pool) never see each other's progress.
pub fn with_cell_progress<R>(hook: Box<dyn FnMut(CellProgress)>, f: impl FnOnce() -> R) -> R {
    struct Uninstall;
    impl Drop for Uninstall {
        fn drop(&mut self) {
            PROGRESS_HOOK.with(|h| *h.borrow_mut() = None);
        }
    }
    PROGRESS_HOOK.with(|h| *h.borrow_mut() = Some(hook));
    let _uninstall = Uninstall;
    f()
}

fn emit_progress(p: CellProgress) {
    PROGRESS_HOOK.with(|h| {
        if let Some(hook) = h.borrow_mut().as_mut() {
            hook(p);
        }
    });
}

// ----- the worker-side plan ---------------------------------------------

/// A parsed `rix-dispatch-plan/1`: everything a worker needs to run any
/// cell of the grid.
struct Plan {
    benchmarks: Vec<Benchmark>,
    arms: Vec<(String, SimConfig)>,
    instructions: u64,
    warmup: u64,
    warmup_mode: WarmupMode,
    seed: u64,
    stop: Option<StopWhen>,
}

fn plan_json(sweep: &Sweep) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        ("schema".into(), Json::Str(PLAN_SCHEMA.into())),
        (
            "benchmarks".into(),
            Json::Arr(sweep.benchmarks.iter().map(|b| Json::Str(b.name.into())).collect()),
        ),
        ("seed".into(), Json::Num(sweep.seed.to_string())),
        ("instructions".into(), Json::Num(sweep.instructions.to_string())),
        ("warmup".into(), Json::Num(sweep.warmup.to_string())),
        ("warmup_mode".into(), crate::spec::warmup_mode_json(&sweep.warmup_mode)),
    ];
    if let Some(stop) = &sweep.stop {
        let parsed = Json::parse(&stop.to_json()).expect("StopWhen::to_json is well-formed");
        fields.push(("stop".into(), parsed));
    }
    let arms = sweep
        .configs
        .iter()
        .map(|(label, cfg)| {
            let config =
                Json::parse(&cfg.to_json()).expect("SimConfig::to_json is well-formed");
            Json::Obj(vec![
                ("label".into(), Json::Str(label.clone())),
                ("config".into(), config),
            ])
        })
        .collect();
    fields.push(("arms".into(), Json::Arr(arms)));
    Json::Obj(fields)
}

fn plan_from_json(v: &Json) -> Result<Plan, String> {
    match v.get("schema").and_then(Json::as_str) {
        Some(PLAN_SCHEMA) => {}
        other => return Err(format!("unsupported dispatch plan schema {other:?}")),
    }
    let benchmarks = v
        .req("benchmarks")?
        .as_arr()
        .ok_or("plan `benchmarks` must be an array")?
        .iter()
        .map(|b| {
            let name = b.as_str().ok_or("plan benchmark names must be strings")?;
            rix_workloads::lookup(name)
        })
        .collect::<Result<Vec<_>, _>>()?;
    let warmup_mode = crate::spec::parse_warmup_mode(v.req("warmup_mode")?)?;
    let stop = v
        .get("stop")
        .map(|s| StopWhen::from_json_value(s).map_err(|e| format!("plan stop: {e}")))
        .transpose()?;
    let arms = v
        .req("arms")?
        .as_arr()
        .ok_or("plan `arms` must be an array")?
        .iter()
        .map(|a| {
            let label =
                a.req("label")?.as_str().ok_or("arm `label` must be a string")?.to_string();
            let cfg = SimConfig::from_json_value(a.req("config")?)
                .map_err(|e| format!("arm `{label}`: {e}"))?;
            Ok((label, cfg))
        })
        .collect::<Result<Vec<(String, SimConfig)>, String>>()?;
    if arms.is_empty() || benchmarks.is_empty() {
        return Err("dispatch plan has an empty grid".to_string());
    }
    Ok(Plan {
        benchmarks,
        arms,
        instructions: v.req_u64("instructions")?,
        warmup: v.req_u64("warmup")?,
        warmup_mode,
        seed: v.req_u64("seed")?,
        stop,
    })
}

/// Executes plan cells with per-benchmark lazy state: the program is
/// built — and the warm-up provenance (checkpoint load + program-hash
/// verification, or one functional fast-forward) prepared — on the
/// first cell of each row, then shared by the row's other cells. Kept
/// outside the wall-clock timer, exactly like [`Sweep::try_run`]'s
/// shared row work, so per-cell `wall` means the same thing in both.
struct CellRunner {
    plan: Plan,
    programs: Vec<Option<Program>>,
    ckpts: Vec<Option<Checkpoint>>,
    warms: Vec<Option<ArchState>>,
}

impl CellRunner {
    fn new(plan: Plan) -> Self {
        let n = plan.benchmarks.len();
        Self { plan, programs: vec![None; n], ckpts: vec![None; n], warms: vec![None; n] }
    }

    fn run(&mut self, cell: u64) -> Result<(RunResult, Duration), String> {
        let narms = self.plan.arms.len();
        let total = self.plan.benchmarks.len() * narms;
        let i = usize::try_from(cell).ok().filter(|&i| i < total).ok_or_else(|| {
            format!("cell {cell} is outside the plan's {total}-cell grid")
        })?;
        let (bi, ai) = (i / narms, i % narms);
        let bench = self.plan.benchmarks[bi];
        if self.programs[bi].is_none() {
            self.programs[bi] = Some(bench.build(self.plan.seed));
        }
        let program = self.programs[bi].as_ref().ok_or("program slot just filled")?;
        match &self.plan.warmup_mode {
            WarmupMode::Checkpoint { dir } if self.ckpts[bi].is_none() => {
                let path = crate::checkpoint_path(dir, bench.name, self.plan.seed);
                let ck = Checkpoint::load(&path)
                    .map_err(|e| format!("warm-up checkpoint for `{}`: {e}", bench.name))?;
                if rix_sim::checkpoint::fingerprint(program) != ck.program_hash {
                    return Err(format!(
                        "warm-up checkpoint {} belongs to a different program than `{}` at \
                         seed {} (wrong benchmark, or saved at another seed)",
                        path.display(),
                        bench.name,
                        self.plan.seed,
                    ));
                }
                self.ckpts[bi] = Some(ck);
            }
            WarmupMode::Functional if self.plan.warmup > 0 && self.warms[bi].is_none() => {
                let stack_top = self.plan.arms[0].1.stack_top;
                self.warms[bi] =
                    Some(Interp::new(program, stack_top).fast_forward(self.plan.warmup));
            }
            _ => {}
        }
        let (_, cfg) = &self.plan.arms[ai];
        let start = std::time::Instant::now();
        let result = measure_cell(
            program,
            *cfg,
            self.ckpts[bi].as_ref(),
            self.warms[bi].as_ref(),
            self.plan.warmup,
            self.plan.stop.as_ref(),
            self.plan.instructions,
        );
        Ok((result, start.elapsed()))
    }
}

// ----- payloads ---------------------------------------------------------

fn payload_json(result: &RunResult, wall: Duration) -> Result<Json, String> {
    let r = Json::parse(&rix_sim::checkpoint::result_to_json(result))?;
    let wall_us = u64::try_from(wall.as_micros()).unwrap_or(u64::MAX);
    Ok(Json::Obj(vec![
        ("wall_us".into(), Json::Num(wall_us.to_string())),
        ("result".into(), r),
    ]))
}

fn trial_from_payload(
    bench: &'static str,
    label: &str,
    payload: &Json,
) -> Result<Trial, String> {
    let result = rix_sim::checkpoint::result_from_json(payload.req("result")?)?;
    // Cache entries carry no wall clock (host timing is not content);
    // a reused trial reports zero.
    let wall = payload
        .get("wall_us")
        .and_then(Json::as_u64)
        .map_or(Duration::ZERO, Duration::from_micros);
    Ok(Trial { bench, config_label: label.to_string(), result, wall })
}

// ----- cache keys -------------------------------------------------------

/// The `rix-cell/1` descriptor whose 128-bit FNV-1a is the cell's cache
/// key: every input that determines the cell's result, nothing that
/// does not (thread/worker counts, directory paths, spec names). Under
/// checkpoint warm-up the *content hash of the snapshot file* stands in
/// for the mode, so the same snapshot moved to another directory still
/// hits while a re-saved one misses.
fn cell_descriptor(
    sweep: &Sweep,
    bench: &Benchmark,
    label: &str,
    cfg: &SimConfig,
    ckpt_hash: Option<&str>,
) -> Result<String, String> {
    let mode = match (&sweep.warmup_mode, ckpt_hash) {
        (WarmupMode::Checkpoint { .. }, Some(h)) => {
            Json::Obj(vec![("checkpoint".into(), Json::Str(h.into()))])
        }
        (m, _) => Json::Str(m.name().into()),
    };
    let mut fields: Vec<(String, Json)> = vec![
        ("schema".into(), Json::Str(CELL_SCHEMA.into())),
        ("bench".into(), Json::Str(bench.name.into())),
        ("seed".into(), Json::Num(sweep.seed.to_string())),
        ("instructions".into(), Json::Num(sweep.instructions.to_string())),
        ("warmup".into(), Json::Num(sweep.warmup.to_string())),
        ("warmup_mode".into(), mode),
        ("label".into(), Json::Str(label.into())),
        ("config".into(), Json::parse(&cfg.to_json())?),
    ];
    if let Some(stop) = &sweep.stop {
        fields.push(("stop".into(), Json::parse(&stop.to_json())?));
    }
    Ok(Json::Obj(fields).dump())
}

// ----- the coordinator --------------------------------------------------

/// Runs `sweep` under `opts`: consult the cache, simulate the misses
/// (in worker processes, or in-process when `opts.workers == 0`), store
/// fresh results back, and return the full trial grid in
/// [`Sweep::try_run`] order. See the [module docs](self).
pub(crate) fn run_sweep_distributed(
    sweep: &Sweep,
    opts: &DispatchOptions,
) -> Result<(Vec<Trial>, DispatchReport), String> {
    if let Some(addr) = &opts.listen {
        if opts.workers > 0 {
            return Err("--listen and --workers are mutually exclusive".to_string());
        }
        return run_sweep_served(sweep, opts, addr);
    }
    sweep.validate()?;
    sweep.validate_checkpoint_files()?;
    let narms = sweep.configs.len();
    let total = sweep.benchmarks.len() * narms;
    let cache = opts.cache.as_ref().map(ResultCache::open).transpose()?;
    let ckpt_hashes = checkpoint_hashes(sweep, cache.is_some())?;

    let mut trials: Vec<Option<Trial>> = (0..total).map(|_| None).collect();
    let mut keys: Vec<Option<String>> = vec![None; total];
    let mut hits = 0usize;
    let mut misses: Vec<u64> = Vec::new();
    for i in 0..total {
        let (bi, ai) = (i / narms, i % narms);
        let bench = &sweep.benchmarks[bi];
        let (label, cfg) = &sweep.configs[ai];
        if let Some(cache) = &cache {
            let desc = cell_descriptor(sweep, bench, label, cfg, ckpt_hashes[bi].as_deref())?;
            let key = ResultCache::key(&desc);
            let hit = cache
                .load(&key)
                .and_then(|payload| trial_from_payload(bench.name, label, &payload).ok());
            keys[i] = Some(key);
            if let Some(trial) = hit {
                trials[i] = Some(trial);
                hits += 1;
                continue;
            }
        }
        misses.push(i as u64);
    }
    emit_progress(CellProgress { total, done: hits, cached: hits, degraded: 0 });

    let simulated = misses.len();
    let mut pool_summary = rix_dispatch::PoolSummary::default();
    if !misses.is_empty() {
        let plan = plan_json(sweep);
        let payloads: Vec<Json> = if opts.workers == 0 {
            // In-process execution still goes through the plan's JSON
            // round trip, so the single code path is the one the
            // process boundary exercises.
            let mut runner = CellRunner::new(
                plan_from_json(&plan).map_err(|e| format!("internal dispatch plan: {e}"))?,
            );
            let mut payloads = Vec::with_capacity(misses.len());
            for &cell in &misses {
                let (result, wall) = runner.run(cell)?;
                payloads.push(payload_json(&result, wall)?);
                emit_progress(CellProgress {
                    total,
                    done: hits + payloads.len(),
                    cached: hits,
                    degraded: 0,
                });
            }
            payloads
        } else {
            let pool = rix_dispatch::PoolConfig {
                workers: opts.workers,
                cell_timeout: opts.cell_timeout,
                retries: opts.retries,
                worker_cmd: None,
            };
            let (payloads, summary) = rix_dispatch::dispatch_cells(&plan, &misses, &pool)
                .map_err(|e| describe_pool_error(e, sweep, narms))?;
            pool_summary = summary;
            emit_progress(CellProgress { total, done: total, cached: hits, degraded: 0 });
            payloads
        };
        for (&cell, payload) in misses.iter().zip(&payloads) {
            let i = cell as usize;
            let (bi, ai) = (i / narms, i % narms);
            let trial =
                trial_from_payload(sweep.benchmarks[bi].name, &sweep.configs[ai].0, payload)?;
            if let (Some(cache), Some(key)) = (&cache, &keys[i]) {
                let entry = Json::Obj(vec![("result".into(), payload.req("result")?.clone())]);
                cache.store(key, &entry)?;
            }
            trials[i] = Some(trial);
        }
    }

    let trials = trials
        .into_iter()
        .map(|t| t.ok_or_else(|| "internal: unfilled trial slot".to_string()))
        .collect::<Result<Vec<Trial>, String>>()?;
    Ok((
        trials,
        DispatchReport {
            cells: total,
            simulated,
            cache_hits: hits,
            workers_spawned: pool_summary.workers_spawned,
            workers_lost: pool_summary.workers_lost,
            retries: pool_summary.retries,
            degraded: pool_summary.degraded_cells,
            quarantined: pool_summary.quarantined,
            workers: pool_summary.workers,
        },
    ))
}

/// Under checkpoint warm-up with a cache, each snapshot file's content
/// hash goes into its row's cache keys (file existence was validated by
/// the caller).
fn checkpoint_hashes(sweep: &Sweep, caching: bool) -> Result<Vec<Option<String>>, String> {
    match &sweep.warmup_mode {
        WarmupMode::Checkpoint { dir } if caching => sweep
            .benchmarks
            .iter()
            .map(|b| {
                let path = crate::checkpoint_path(dir, b.name, sweep.seed);
                std::fs::read(&path)
                    .map(|bytes| Some(rix_dispatch::hash::fnv128_hex(&bytes)))
                    .map_err(|e| {
                        format!("cannot read warm-up checkpoint {}: {e}", path.display())
                    })
            })
            .collect(),
        _ => Ok(vec![None; sweep.benchmarks.len()]),
    }
}

/// Renders a pool error with the failing cell named in grid terms —
/// `gcc/integration (seed 7)`, not `cell 5` — plus the cell's fault
/// history, so a retry-budget exhaustion tells the user exactly which
/// benchmark/arm to investigate.
fn describe_pool_error(e: rix_dispatch::PoolError, sweep: &Sweep, narms: usize) -> String {
    e.with_cell_description(|cell| {
        let i = usize::try_from(cell).ok()?;
        let bench = sweep.benchmarks.get(i / narms)?;
        let (label, _) = sweep.configs.get(i % narms)?;
        Some(format!("{}/{} (seed {})", bench.name, label, sweep.seed))
    })
    .to_string()
}

/// A served (TCP) run: bind the listener, hand the whole grid to
/// [`rix_dispatch::serve_cells`] — no cache prefilter; keyed cells let
/// remote workers run the cache dance against our local cache — and
/// finish whatever degraded back to us in-process. See the
/// [module docs](self).
fn run_sweep_served(
    sweep: &Sweep,
    opts: &DispatchOptions,
    addr: &str,
) -> Result<(Vec<Trial>, DispatchReport), String> {
    sweep.validate()?;
    sweep.validate_checkpoint_files()?;
    let narms = sweep.configs.len();
    let total = sweep.benchmarks.len() * narms;
    let cache = opts.cache.as_ref().map(ResultCache::open).transpose()?;
    let ckpt_hashes = checkpoint_hashes(sweep, cache.is_some())?;
    let keys: Option<Vec<String>> = if cache.is_some() {
        let mut keys = Vec::with_capacity(total);
        for i in 0..total {
            let (bi, ai) = (i / narms, i % narms);
            let (label, cfg) = &sweep.configs[ai];
            let desc = cell_descriptor(
                sweep,
                &sweep.benchmarks[bi],
                label,
                cfg,
                ckpt_hashes[bi].as_deref(),
            )?;
            keys.push(ResultCache::key(&desc));
        }
        Some(keys)
    } else {
        None
    };

    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve listen address: {e}"))?;
    eprintln!("dispatch: listening on {local}");

    let cfg = rix_dispatch::NetPoolConfig {
        cell_timeout: opts.cell_timeout,
        retries: opts.retries,
        heartbeat: opts.heartbeat,
        quarantine_after: opts.quarantine_after,
        worker_wait: opts.worker_wait,
        token: opts.token.clone(),
    };
    let plan = plan_json(sweep);
    let cells: Vec<u64> = (0..total as u64).collect();
    let outcome =
        rix_dispatch::serve_cells(listener, &plan, &cells, keys.as_deref(), cache.as_ref(), &cfg)
            .map_err(|e| describe_pool_error(e, sweep, narms))?;
    let summary = outcome.summary;
    let mut hits = usize::try_from(summary.cache_hits).unwrap_or(usize::MAX);

    let mut trials: Vec<Option<Trial>> = (0..total).map(|_| None).collect();
    for (i, payload) in outcome.payloads.iter().enumerate() {
        if let Some(payload) = payload {
            let (bi, ai) = (i / narms, i % narms);
            trials[i] = Some(trial_from_payload(
                sweep.benchmarks[bi].name,
                &sweep.configs[ai].0,
                payload,
            )?);
        }
    }
    let mut progress = CellProgress {
        total,
        done: total - outcome.unfinished.len(),
        cached: hits,
        degraded: 0,
    };
    emit_progress(progress);

    // Graceful degradation: whatever the network could not finish runs
    // here, through the same plan round trip as every other path.
    if !outcome.unfinished.is_empty() {
        eprintln!(
            "dispatch: finishing {} degraded cell(s) in-process",
            outcome.unfinished.len()
        );
        let mut runner = CellRunner::new(
            plan_from_json(&plan).map_err(|e| format!("internal dispatch plan: {e}"))?,
        );
        for &i in &outcome.unfinished {
            let (bi, ai) = (i / narms, i % narms);
            let (bench, label) = (sweep.benchmarks[bi].name, &sweep.configs[ai].0);
            let key = keys.as_ref().map(|k| k[i].as_str());
            if let (Some(cache), Some(key)) = (&cache, key) {
                let hit = cache
                    .load(key)
                    .and_then(|payload| trial_from_payload(bench, label, &payload).ok());
                if let Some(trial) = hit {
                    trials[i] = Some(trial);
                    hits += 1;
                    progress.done += 1;
                    progress.cached += 1;
                    emit_progress(progress);
                    continue;
                }
            }
            let (result, wall) = runner.run(i as u64)?;
            let payload = payload_json(&result, wall)?;
            if let (Some(cache), Some(key)) = (&cache, key) {
                let entry = Json::Obj(vec![("result".into(), payload.req("result")?.clone())]);
                cache.store(key, &entry)?;
            }
            trials[i] = Some(trial_from_payload(bench, label, &payload)?);
            progress.done += 1;
            progress.degraded += 1;
            emit_progress(progress);
        }
    }

    let trials = trials
        .into_iter()
        .map(|t| t.ok_or_else(|| "internal: unfilled trial slot".to_string()))
        .collect::<Result<Vec<Trial>, String>>()?;
    Ok((
        trials,
        DispatchReport {
            cells: total,
            simulated: total - hits,
            cache_hits: hits,
            workers_spawned: summary.workers_spawned,
            workers_lost: summary.workers_lost,
            retries: summary.retries,
            degraded: summary.degraded_cells,
            quarantined: summary.quarantined,
            workers: summary.workers,
        },
    ))
}

// ----- the worker entry points ------------------------------------------

/// The first line of every binary that can be dispatched to: when the
/// process was spawned as a worker (`argv[1]` is
/// [`rix_dispatch::WORKER_ARG`]), enter the serve loop and never
/// return; otherwise do nothing. Must run before any other argument
/// parsing — the worker argument is not a user-facing flag.
pub fn maybe_worker() {
    if std::env::args().nth(1).as_deref() == Some(WORKER_ARG) {
        worker_main();
    }
}

/// The worker serve loop over stdin/stdout (also reachable as the
/// `exp worker` subcommand). Parses the plan from the `init` message on
/// the first cell, executes every assigned cell via the shared
/// [`measure_cell`] path, and reports lossless results.
pub fn worker_main() -> ! {
    let mut state: Option<(u64, CellRunner)> = None;
    rix_dispatch::serve(move |init, cell| {
        if state.is_none() {
            let worker = init.req_u64("worker")?;
            let plan = plan_from_json(init.req("plan")?)?;
            state = Some((worker, CellRunner::new(plan)));
        }
        let (worker, runner) = state.as_mut().ok_or("worker state just initialised")?;
        inject_fault(*worker);
        let (result, wall) = runner.run(cell)?;
        payload_json(&result, wall)
    })
}

/// The remote worker entry point (`exp worker --connect ADDR`):
/// connect to a served coordinator, reconnecting with exponential
/// backoff + jitter under a capped attempt budget, and execute assigned
/// cells until told to shut down. Exits 0 on a clean `shutdown`, 1 on a
/// fatal executor error, 2 when the reconnect budget is spent, 3 when
/// quarantined.
pub fn worker_connect_main(addr: &str, name: Option<&str>) -> ! {
    let name = name.map_or_else(default_worker_name, str::to_string);
    let backoff = backoff_from_env();
    let mut state: Option<(u64, CellRunner)> = None;
    let code = rix_dispatch::connect_worker(addr, &name, &backoff, move |init, cell| {
        if state.is_none() {
            let worker = init.req_u64("worker")?;
            let plan = plan_from_json(init.req("plan")?)?;
            state = Some((worker, CellRunner::new(plan)));
        }
        let (worker, runner) = state.as_mut().ok_or("worker state just initialised")?;
        inject_fault(*worker);
        let (result, _wall) = runner.run(cell)?;
        // No wall clock in remote payloads: the coordinator writes
        // cache entries straight from them, and host timing is not
        // content — a cell simulated remotely must produce the same
        // bytes as one simulated anywhere else.
        let r = Json::parse(&rix_sim::checkpoint::result_to_json(&result))?;
        Ok(Json::Obj(vec![("result".into(), r)]))
    });
    std::process::exit(code)
}

/// The default hello name for a remote worker: `w{pid}`, unique enough
/// per host and stable across that worker's reconnects (which is what
/// quarantine accounting keys on).
fn default_worker_name() -> String {
    format!("w{}", std::process::id())
}

/// The reconnect schedule, tunable for tests: `RIX_DISPATCH_BACKOFF_MS`
/// scales the base delay (the cap scales with it so short schedules
/// stay short), `RIX_DISPATCH_BACKOFF_ATTEMPTS` bounds the budget. The
/// jitter seed is the pid, so a fleet restarting together spreads out.
fn backoff_from_env() -> rix_dispatch::Backoff {
    let mut b =
        rix_dispatch::Backoff { seed: u64::from(std::process::id()), ..Default::default() };
    if let Some(ms) = env_u64("RIX_DISPATCH_BACKOFF_MS") {
        b.base = Duration::from_millis(ms.max(1));
        b.cap = b.base.saturating_mul(8).min(b.cap.max(b.base));
    }
    if let Some(n) = env_u64("RIX_DISPATCH_BACKOFF_ATTEMPTS") {
        b.max_attempts = u32::try_from(n).unwrap_or(u32::MAX);
    }
    b
}

/// Test-only fault injection, keyed by worker id so tests are
/// deterministic about *which* process dies (see the module docs).
fn inject_fault(worker: u64) {
    let Ok(spec) = std::env::var("RIX_DISPATCH_FAULT") else { return };
    let matches = |id: &str| id.parse() == Ok(worker);
    match spec.split_once(':') {
        Some(("abort", id)) if matches(id) => {
            eprintln!("rix worker {worker}: injected abort (RIX_DISPATCH_FAULT={spec})");
            std::process::abort();
        }
        Some(("stall", id)) if matches(id) => {
            eprintln!("rix worker {worker}: injected stall (RIX_DISPATCH_FAULT={spec})");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep() -> Sweep {
        Sweep::new()
            .benchmarks(rix_workloads::all_benchmarks().into_iter().take(2))
            .config("base", SimConfig::baseline())
            .config("integration", SimConfig::default())
            .instructions(1_500)
    }

    #[test]
    fn plan_round_trips_and_runner_matches_sweep() {
        let sweep = small_sweep();
        let reference = sweep.try_run().expect("sweep runs");
        let plan = plan_from_json(&plan_json(&sweep)).expect("round trip");
        assert_eq!(plan.arms.len(), 2);
        assert_eq!(plan.benchmarks.len(), 2);
        let mut runner = CellRunner::new(plan);
        for (i, t) in reference.iter().enumerate() {
            let (result, _) = runner.run(i as u64).expect("cell runs");
            assert_eq!(result, t.result, "cell {i} ({}/{})", t.bench, t.config_label);
        }
        let err = runner.run(99).unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn in_process_distributed_run_is_byte_identical() {
        let sweep = small_sweep();
        let reference = sweep.try_run().expect("sweep runs");
        let (trials, report) =
            sweep.run_distributed(&DispatchOptions::default()).expect("dispatch runs");
        assert_eq!(trials.len(), reference.len());
        for (a, b) in reference.iter().zip(&trials) {
            assert_eq!(a.to_json(), b.to_json(), "{}/{}", a.bench, a.config_label);
        }
        assert_eq!(report.cells, 4);
        assert_eq!(report.simulated, 4);
        assert_eq!(report.cache_hits, 0);
        assert_eq!(report.workers_spawned, 0, "in-process run spawns nothing");
    }

    #[test]
    fn payload_round_trip_is_lossless() {
        let sweep = small_sweep();
        let trials = sweep.try_run().expect("sweep runs");
        let payload = payload_json(&trials[0].result, trials[0].wall).expect("serialises");
        let back = trial_from_payload(trials[0].bench, &trials[0].config_label, &payload)
            .expect("parses");
        assert_eq!(back.result, trials[0].result);
        assert_eq!(back.to_json(), trials[0].to_json());
    }

    #[test]
    fn descriptors_differ_exactly_where_content_differs() {
        let sweep = small_sweep();
        let b = &sweep.benchmarks[0];
        let (label, cfg) = &sweep.configs[0];
        let base = cell_descriptor(&sweep, b, label, cfg, None).unwrap();
        assert!(base.contains(CELL_SCHEMA));
        // Same inputs, same descriptor.
        assert_eq!(base, cell_descriptor(&sweep, b, label, cfg, None).unwrap());
        // Any differing input, different descriptor.
        let other_bench = cell_descriptor(&sweep, &sweep.benchmarks[1], label, cfg, None);
        assert_ne!(base, other_bench.unwrap());
        let seeded = sweep.clone().seed(8);
        assert_ne!(base, cell_descriptor(&seeded, b, label, cfg, None).unwrap());
        let mut tweaked = *cfg;
        tweaked.num_pregs += 64;
        assert_ne!(base, cell_descriptor(&sweep, b, label, &tweaked, None).unwrap());
    }

    #[test]
    fn cache_hits_skip_simulation_and_misses_are_exact() {
        let dir = std::env::temp_dir()
            .join(format!("rix-dispatch-unit-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache_dir = dir.to_str().expect("utf-8 temp dir").to_string();
        let opts = DispatchOptions { cache: Some(cache_dir), ..DispatchOptions::default() };

        let sweep = small_sweep();
        let (cold, r1) = sweep.run_distributed(&opts).expect("cold run");
        assert_eq!((r1.cache_hits, r1.simulated), (0, 4));
        let (warm, r2) = sweep.run_distributed(&opts).expect("warm run");
        assert_eq!((r2.cache_hits, r2.simulated), (4, 0), "identical re-run is all hits");
        for (a, b) in cold.iter().zip(&warm) {
            assert_eq!(a.to_json(), b.to_json());
        }

        // A one-field change invalidates exactly the affected arm's
        // cells: 2 benchmarks × the changed arm = 2 misses, 2 hits.
        let mut tweaked_cfg = SimConfig::default();
        tweaked_cfg.integration.it_entries *= 2;
        let tweaked = Sweep::new()
            .benchmarks(rix_workloads::all_benchmarks().into_iter().take(2))
            .config("base", SimConfig::baseline())
            .config("integration", tweaked_cfg)
            .instructions(1_500);
        let (_, r3) = tweaked.run_distributed(&opts).expect("tweaked run");
        assert_eq!((r3.cache_hits, r3.simulated), (2, 2), "only the changed arm re-runs");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
