//! # rix-bench: the evaluation harness
//!
//! One binary per figure in the paper's evaluation (§3):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `fig4` | Figure 4 — speedup and integration rate per extension arm (squash / +general / +opcode / +reverse), realistic LISP and oracle suppression, mis-integrations per million; `--diagnostics` adds the §3.2 secondary metrics |
//! | `fig5` | Figure 5 — integration-stream breakdowns: Type, Distance, Status, Refcount |
//! | `fig6` | Figure 6 — IT associativity (1/2/4/full) and size (64/256/1K/4K) sweeps |
//! | `fig7` | Figure 7 — reduced-complexity execution engines (base / RS / IW / IW+RS) with and without integration |
//! | `perf` | Simulator-throughput harness — simulated KIPS per workload under the base and integration configs, written as a `BENCH_*.json` perf record (`--baseline` chains records into a trajectory) |
//!
//! Shared flags: `--instructions N` (retired instructions per run,
//! default 100 000), `--seed S`, `--bench NAME` (filter to one
//! benchmark, case-insensitive), `--threads N` (parallel trials),
//! `--warmup N` (instructions discarded before measuring) with
//! `--warmup-mode detailed|functional` (per-cell detailed warm-up vs
//! one shared interpreter fast-forward per benchmark — see
//! [`WarmupMode`]), `--json` (machine-readable trial records instead of
//! tables). All
//! binaries print aligned text tables whose rows/series match the
//! paper's figures; trial order — and therefore every table — is
//! independent of the thread count.
//!
//! The experiment layer is the [`Sweep`] builder: declare a
//! (benchmark × config) grid, an instruction budget, an optional
//! warm-up, and a thread count, and get back ordered [`Trial`] records.
//!
//! The Criterion benches (`cargo bench -p rix-bench`) measure the
//! simulator's own throughput per subsystem and end-to-end, so
//! performance regressions in the simulator itself are visible.

use rix_integration::IntegrationConfig;
use rix_isa::interp::Interp;
use rix_isa::{ArchState, Program};
use rix_sim::{RunResult, SimConfig, Simulator, StopWhen};
use rix_workloads::Benchmark;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a [`Sweep`] executes its warm-up phase.
///
/// The default, [`WarmupMode::Detailed`], is the historical behaviour:
/// every (benchmark × config) cell runs its own warm-up on the detailed
/// machine and measures with warm caches, predictors and integration
/// table. [`WarmupMode::Functional`] instead **fast-forwards each
/// (benchmark, seed) once** through the reference interpreter and boots
/// every config arm of that row from the shared [`ArchState`]
/// (`Simulator::from_arch_state`), so an N-config sweep pays one cheap
/// functional warm-up instead of N detailed ones.
///
/// The trade-off is methodological, which is why functional warm-up is
/// opt-in: a functionally fast-forwarded cell starts its measurement
/// with **cold** microarchitectural structures (the architectural state
/// is mid-program, the caches are not), so its absolute numbers are not
/// comparable with detailed-warm-up numbers — but its *relative*
/// comparisons across config arms share identical starting conditions,
/// and the sweep's wall-clock drops by roughly the per-arm warm-up cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WarmupMode {
    /// Per-cell warm-up on the detailed machine (the default; byte-
    /// identical to sweeps before functional warm-up existed).
    #[default]
    Detailed,
    /// One interpreter fast-forward per (benchmark, seed), forked across
    /// every config arm.
    Functional,
}

/// Common command-line options for the figure binaries.
#[derive(Clone, Debug)]
pub struct Harness {
    /// Retired instructions per simulation run.
    pub instructions: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Restrict to one benchmark by name.
    pub filter: Option<String>,
    /// Print the extra §3.2 diagnostics (fig4 only).
    pub diagnostics: bool,
    /// Worker threads for the (benchmark × config) sweep.
    pub threads: usize,
    /// Emit trial records as JSON instead of text tables.
    pub json: bool,
    /// Warm-up instructions discarded before measuring (0 = cold).
    pub warmup: u64,
    /// How the warm-up executes (per-cell detailed vs shared
    /// functional fast-forward).
    pub warmup_mode: WarmupMode,
}

impl Default for Harness {
    fn default() -> Self {
        Self {
            instructions: 100_000,
            seed: 7,
            filter: None,
            diagnostics: false,
            threads: 1,
            json: false,
            warmup: 0,
            warmup_mode: WarmupMode::Detailed,
        }
    }
}

impl Harness {
    /// The usage string printed on a flag error (exit status 2).
    #[must_use]
    pub fn usage() -> &'static str {
        "usage: <figure binary> [flags]\n\
         \n\
         flags:\n\
         \x20 --instructions N, -n N  retired instructions per run (default 100000)\n\
         \x20 --seed S                workload generator seed (default 7)\n\
         \x20 --bench NAME            restrict to one benchmark (case-insensitive)\n\
         \x20 --threads N             worker threads for the sweep (default 1)\n\
         \x20 --warmup N              warm-up instructions discarded before measuring (default 0)\n\
         \x20 --warmup-mode MODE      `detailed` (per cell, default) or `functional`\n\
         \x20                         (one interpreter fast-forward shared by all config arms)\n\
         \x20 --json                  print trial records as JSON, not tables\n\
         \x20 --diagnostics           extra §3.2 metrics (fig4 only)\n\
         \x20 --help, -h              this message"
    }

    /// Parses the shared flags from `std::env::args`. On an unknown or
    /// malformed flag, prints the error and [`Harness::usage`] to
    /// stderr and exits with status 2 (`--help` prints usage to stdout
    /// and exits 0).
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", Self::usage());
            std::process::exit(0);
        }
        match Self::try_parse(args) {
            Ok(h) => h,
            Err(msg) => {
                eprintln!("error: {msg}\n\n{}", Self::usage());
                std::process::exit(2);
            }
        }
    }

    /// The fallible core of [`Harness::from_args`].
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let args: Vec<String> = args.into_iter().collect();
        let mut h = Self::default();
        let mut i = 0;
        let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{flag} is missing its value"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--instructions" | "-n" => {
                    let v = value(&args, &mut i, "--instructions")?;
                    h.instructions = v
                        .parse()
                        .map_err(|_| format!("--instructions takes a number, got `{v}`"))?;
                }
                "--seed" => {
                    let v = value(&args, &mut i, "--seed")?;
                    h.seed =
                        v.parse().map_err(|_| format!("--seed takes a number, got `{v}`"))?;
                }
                "--bench" => {
                    let v = value(&args, &mut i, "--bench")?;
                    // Validate eagerly so a typo reports the closest
                    // benchmark names instead of an empty sweep.
                    h.filter = Some(rix_workloads::lookup(&v)?.name.to_string());
                }
                "--threads" => {
                    let v = value(&args, &mut i, "--threads")?;
                    h.threads = v
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--threads takes a count >= 1, got `{v}`"))?;
                }
                "--warmup" => {
                    let v = value(&args, &mut i, "--warmup")?;
                    h.warmup = v
                        .parse()
                        .map_err(|_| format!("--warmup takes a number, got `{v}`"))?;
                }
                "--warmup-mode" => {
                    let v = value(&args, &mut i, "--warmup-mode")?;
                    h.warmup_mode = match v.as_str() {
                        "detailed" => WarmupMode::Detailed,
                        "functional" => WarmupMode::Functional,
                        _ => {
                            return Err(format!(
                                "--warmup-mode takes `detailed` or `functional`, got `{v}`"
                            ))
                        }
                    };
                }
                "--json" => h.json = true,
                "--diagnostics" => h.diagnostics = true,
                other => return Err(format!("unknown argument `{other}`")),
            }
            i += 1;
        }
        Ok(h)
    }

    /// The benchmarks selected by the filter.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        rix_workloads::all_benchmarks()
            .into_iter()
            .filter(|b| {
                self.filter.as_deref().is_none_or(|f| f.eq_ignore_ascii_case(b.name))
            })
            .collect()
    }

    /// Runs `program` under `cfg` for the configured instruction budget.
    #[must_use]
    pub fn run(&self, program: &Program, cfg: SimConfig) -> RunResult {
        Simulator::new(program, cfg).run(self.instructions)
    }

    /// A [`Sweep`] over the selected benchmarks with this harness's
    /// instruction budget, seed, thread count and warm-up settings; add
    /// configs and run.
    #[must_use]
    pub fn sweep(&self) -> Sweep {
        Sweep::new()
            .benchmarks(self.benchmarks())
            .instructions(self.instructions)
            .seed(self.seed)
            .threads(self.threads)
            .warmup(self.warmup)
            .warmup_mode(self.warmup_mode)
    }
}

/// One completed (benchmark × config) run from a [`Sweep`].
#[derive(Clone, Debug)]
pub struct Trial {
    /// Benchmark name.
    pub bench: &'static str,
    /// Label of the configuration that produced this trial.
    pub config_label: String,
    /// The simulation outcome.
    pub result: RunResult,
    /// Wall-clock time this cell's simulation took (construction, warm-up
    /// and measurement; excludes work shared across a grid row — program
    /// generation, and the per-benchmark interpreter fast-forward under
    /// [`WarmupMode::Functional`]). Deliberately excluded from
    /// [`Trial::to_json`] so the `--json` figure output stays
    /// deterministic.
    pub wall: std::time::Duration,
}

impl Trial {
    /// Simulated KIPS: thousands of retired instructions per wall-clock
    /// second of host time for this cell.
    #[must_use]
    pub fn kips(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.result.stats.retired as f64 / 1_000.0 / secs
        }
    }

    /// JSON object for this trial record.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"bench":"{}","config":"{}","result":{}}}"#,
            json_escape(self.bench),
            json_escape(&self.config_label),
            self.result.to_json()
        )
    }
}

/// JSON array over trial records (the `--json` output of every figure
/// binary).
#[must_use]
pub fn trials_json(trials: &[Trial]) -> String {
    let body: Vec<String> = trials.iter().map(Trial::to_json).collect();
    format!("[\n{}\n]", body.join(",\n"))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A declarative experiment over the (benchmark × config) grid,
/// fanned out over a `std::thread` worker pool.
///
/// Workers pull grid cells from a shared queue, so a slow cell (a big
/// benchmark under an expensive config) does not hold up the rest of
/// its row. Results come back as [`Trial`] records in deterministic
/// bench-major grid order — identical for every thread count, because
/// each cell's simulation is independent and seeded.
///
/// ```
/// use rix_bench::Sweep;
/// use rix_sim::SimConfig;
///
/// let trials = Sweep::new()
///     .benchmarks(rix_workloads::all_benchmarks().into_iter().take(2))
///     .config("base", SimConfig::baseline())
///     .config("integration", SimConfig::default())
///     .instructions(2_000)
///     .warmup(500)
///     .threads(2)
///     .run();
/// assert_eq!(trials.len(), 4);
/// assert_eq!(trials[0].config_label, "base");
/// assert!(trials.iter().all(|t| t.result.stats.retired >= 2_000));
/// ```
#[derive(Clone, Debug)]
pub struct Sweep {
    benchmarks: Vec<Benchmark>,
    configs: Vec<(String, SimConfig)>,
    instructions: u64,
    warmup: u64,
    warmup_mode: WarmupMode,
    seed: u64,
    threads: usize,
}

impl Default for Sweep {
    fn default() -> Self {
        Self::new()
    }
}

impl Sweep {
    /// An empty sweep: 100k instructions, no warm-up, seed 7, 1 thread.
    #[must_use]
    pub fn new() -> Self {
        Self {
            benchmarks: Vec::new(),
            configs: Vec::new(),
            instructions: 100_000,
            warmup: 0,
            warmup_mode: WarmupMode::Detailed,
            seed: 7,
            threads: 1,
        }
    }

    /// Sets the benchmarks (grid rows).
    #[must_use]
    pub fn benchmarks(mut self, benchmarks: impl IntoIterator<Item = Benchmark>) -> Self {
        self.benchmarks = benchmarks.into_iter().collect();
        self
    }

    /// Sets the labelled configurations (grid columns).
    #[must_use]
    pub fn configs<L: Into<String>>(
        mut self,
        configs: impl IntoIterator<Item = (L, SimConfig)>,
    ) -> Self {
        self.configs = configs.into_iter().map(|(l, c)| (l.into(), c)).collect();
        self
    }

    /// Appends one labelled configuration.
    #[must_use]
    pub fn config(mut self, label: impl Into<String>, cfg: SimConfig) -> Self {
        self.configs.push((label.into(), cfg));
        self
    }

    /// Retired instructions measured per trial.
    #[must_use]
    pub fn instructions(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Retired instructions to run — then discard via
    /// [`Simulator::reset_stats`] — before measuring (0 = cold).
    #[must_use]
    pub fn warmup(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// How the warm-up executes: [`WarmupMode::Detailed`] (per cell, the
    /// default) or [`WarmupMode::Functional`] (one interpreter
    /// fast-forward per benchmark row, shared by every config arm). Has
    /// no effect when [`Sweep::warmup`] is 0.
    #[must_use]
    pub fn warmup_mode(mut self, mode: WarmupMode) -> Self {
        self.warmup_mode = mode;
        self
    }

    /// Workload generator seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads (clamped to at least 1; more threads than grid
    /// cells idle harmlessly).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs every (benchmark × config) cell and returns the trials in
    /// bench-major grid order, independent of the thread count.
    #[must_use]
    pub fn run(&self) -> Vec<Trial> {
        let ncfg = self.configs.len();
        let total = self.benchmarks.len() * ncfg;
        if total == 0 {
            return Vec::new();
        }
        // Build each benchmark's program once; the cells of its grid
        // row share it read-only across workers.
        let programs: Vec<Program> =
            self.benchmarks.iter().map(|b| b.build(self.seed)).collect();
        // Functional warm-up: fast-forward each (benchmark, seed) once
        // through the interpreter; every config arm of the row forks
        // from the shared snapshot. The fast-forward itself is shared
        // work and therefore — like program generation — excluded from
        // the per-cell wall clock.
        let functional = self.warmup > 0 && self.warmup_mode == WarmupMode::Functional;
        let warm_states: Vec<Option<ArchState>> = if functional {
            let stack_top = self.configs[0].1.stack_top;
            assert!(
                self.configs.iter().all(|(_, c)| c.stack_top == stack_top),
                "functional warm-up shares one interpreter run per benchmark, \
                 so every config arm must agree on stack_top"
            );
            // The per-benchmark fast-forwards are independent, so they
            // use the sweep's thread budget too (statically partitioned
            // — interpreter warm-ups are near-uniform in cost): without
            // this, serial warm-up would bound a wide sweep's speedup.
            let mut states: Vec<Option<ArchState>> = vec![None; programs.len()];
            let workers = self.threads.max(1).min(programs.len());
            let chunk = programs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (progs, slots) in programs.chunks(chunk).zip(states.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (p, slot) in progs.iter().zip(slots) {
                            *slot = Some(Interp::new(p, stack_top).fast_forward(self.warmup));
                        }
                    });
                }
            });
            states
        } else {
            vec![None; programs.len()]
        };
        let run_cell = |i: usize| -> Trial {
            let bench = self.benchmarks[i / ncfg];
            let (label, cfg) = &self.configs[i % ncfg];
            let program = &programs[i / ncfg];
            let start = std::time::Instant::now();
            let result = if let Some(state) = &warm_states[i / ncfg] {
                // Boot the detailed machine at the fast-forwarded
                // architectural boundary (cold microarchitecture) and
                // measure from there.
                let mut sim = Simulator::from_arch_state(program, *cfg, state);
                sim.run_budget(self.instructions)
            } else if self.warmup == 0 {
                // The exact one-shot path, so a warm-up-free sweep is
                // byte-identical to the historical serial loops.
                Simulator::new(program, *cfg).run(self.instructions)
            } else {
                let mut sim = Simulator::new(program, *cfg);
                // Budget safety nets on both phases, so a cell that
                // crawls without deadlocking cannot hang the sweep.
                sim.run_until(&StopWhen::budget(self.warmup));
                sim.reset_stats();
                sim.run_budget(self.instructions)
            };
            let wall = start.elapsed();
            Trial { bench: bench.name, config_label: label.clone(), result, wall }
        };
        let threads = self.threads.max(1).min(total);
        if threads == 1 {
            return (0..total).map(run_cell).collect();
        }
        // Shared work queue: an atomic cursor over the grid; each
        // worker claims the next cell and writes its own result slot.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Trial>>> = (0..total).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let trial = run_cell(i);
                    *slots[i].lock().expect("result slot never poisoned") = Some(trial);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot never poisoned")
                    .expect("every cell was claimed and completed")
            })
            .collect()
    }
}

/// The four Figure 4 extension arms (name, config).
#[must_use]
pub fn figure4_arms() -> Vec<(&'static str, IntegrationConfig)> {
    IntegrationConfig::figure4_arms()
}

/// Percentage speedup of `x` over `base` IPC.
#[must_use]
pub fn speedup_pct(x: &RunResult, base: &RunResult) -> f64 {
    if base.ipc() == 0.0 {
        0.0
    } else {
        (x.ipc() / base.ipc() - 1.0) * 100.0
    }
}

/// Arithmetic mean.
#[must_use]
pub fn amean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of (1 + x/100) speedup percentages, returned as a
/// percentage (the paper reports geometric-mean speedups).
#[must_use]
pub fn gmean_speedup(pcts: &[f64]) -> f64 {
    if pcts.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = pcts.iter().map(|p| (1.0 + p / 100.0).max(1e-9).ln()).sum();
    ((log_sum / pcts.len() as f64).exp() - 1.0) * 100.0
}

/// A minimal aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(ToString::to_string).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((amean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(amean(&[]), 0.0);
        // gmean of +10% and -9.0909..% is ~0.
        let g = gmean_speedup(&[10.0, -9.090_909_090_9]);
        assert!(g.abs() < 1e-6, "{g}");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let r = t.render();
        assert!(r.contains("long-name"));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    fn harness_selects_benchmarks() {
        let mut h = Harness::default();
        assert_eq!(h.benchmarks().len(), 16);
        h.filter = Some("mcf".into());
        assert_eq!(h.benchmarks().len(), 1);
        h.filter = Some("MCF".into());
        assert_eq!(h.benchmarks().len(), 1, "filter is case-insensitive");
    }

    #[test]
    fn try_parse_flags() {
        let args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let h = Harness::try_parse(args("-n 5000 --seed 9 --threads 4 --json")).unwrap();
        assert_eq!(h.instructions, 5_000);
        assert_eq!(h.seed, 9);
        assert_eq!(h.threads, 4);
        assert!(h.json);
        let h = Harness::try_parse(args("--bench VORTEX")).unwrap();
        assert_eq!(h.filter.as_deref(), Some("vortex"));

        assert!(Harness::try_parse(args("--frobnicate")).unwrap_err().contains("unknown"));
        assert!(Harness::try_parse(args("--seed")).unwrap_err().contains("missing"));
        assert!(Harness::try_parse(args("-n twelve")).unwrap_err().contains("number"));
        assert!(Harness::try_parse(args("--threads 0")).unwrap_err().contains(">= 1"));
        let err = Harness::try_parse(args("--bench vortx")).unwrap_err();
        assert!(err.contains("vortex"), "suggests the close name: {err}");
    }

    #[test]
    fn try_parse_warmup_flags() {
        let args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let h = Harness::try_parse(args("--warmup 30000")).unwrap();
        assert_eq!(h.warmup, 30_000);
        assert_eq!(h.warmup_mode, WarmupMode::Detailed, "detailed stays the default");
        let h = Harness::try_parse(args("--warmup 1000 --warmup-mode functional")).unwrap();
        assert_eq!(h.warmup_mode, WarmupMode::Functional);
        let h = Harness::try_parse(args("--warmup-mode detailed")).unwrap();
        assert_eq!(h.warmup_mode, WarmupMode::Detailed);
        assert!(Harness::try_parse(args("--warmup-mode sampled"))
            .unwrap_err()
            .contains("detailed"));
        assert!(Harness::try_parse(args("--warmup lots")).unwrap_err().contains("number"));
    }

    #[test]
    fn functional_warmup_forks_one_fast_forward_per_row() {
        let benches: Vec<_> = rix_workloads::all_benchmarks().into_iter().take(2).collect();
        let sweep = Sweep::new()
            .benchmarks(benches.clone())
            .config("base", SimConfig::baseline())
            .config("integration", SimConfig::default())
            .instructions(2_000)
            .warmup(3_000)
            .warmup_mode(WarmupMode::Functional);
        let trials = sweep.clone().run();
        assert_eq!(trials.len(), 4);
        for t in &trials {
            assert!(
                t.result.stats.retired >= 2_000,
                "{}/{} measured a full budget",
                t.bench,
                t.config_label
            );
        }
        // Every arm of a row forks from the same architectural boundary:
        // the measured interval starts at warm-up retirement, so the two
        // arms of one benchmark retire the same instruction stream and
        // the trials are deterministic across thread counts.
        let again = sweep.threads(3).run();
        for (a, b) in trials.iter().zip(&again) {
            assert_eq!(a.result, b.result, "{}/{}", a.bench, a.config_label);
        }
        // And the functional path actually took the fast-forward route:
        // its cells start from a mid-program state, so they differ from
        // a cold (no-warm-up) sweep of the same budget.
        let cold = Sweep::new()
            .benchmarks(benches)
            .config("base", SimConfig::baseline())
            .instructions(2_000)
            .run();
        assert_ne!(cold[0].result, trials[0].result);
    }

    #[test]
    fn functional_warmup_with_empty_grid_is_empty() {
        // The empty-grid early return fires before any warm-up work, in
        // every mode.
        let trials = Sweep::new()
            .benchmarks(rix_workloads::all_benchmarks().into_iter().take(1))
            .warmup(1_000)
            .warmup_mode(WarmupMode::Functional)
            .run();
        assert!(trials.is_empty(), "no configs -> no trials, no panic");
    }

    #[test]
    fn sweep_parallel_matches_serial() {
        let benches: Vec<_> = rix_workloads::all_benchmarks().into_iter().take(3).collect();
        let configs = vec![
            ("base".to_string(), SimConfig::baseline()),
            ("full".to_string(), SimConfig::default()),
        ];
        let sweep = Sweep::new()
            .benchmarks(benches.clone())
            .configs(configs)
            .instructions(2_000);
        let serial = sweep.clone().threads(1).run();
        let parallel = sweep.threads(3).run();
        assert_eq!(serial.len(), 6);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.bench, b.bench);
            assert_eq!(a.config_label, b.config_label);
            assert_eq!(a.result, b.result, "{}/{}", a.bench, a.config_label);
        }
        // Grid order: bench-major, configs in declaration order.
        assert_eq!(serial[0].bench, benches[0].name);
        assert_eq!(serial[0].config_label, "base");
        assert_eq!(serial[1].config_label, "full");
        assert_eq!(serial[2].bench, benches[1].name);
    }

    #[test]
    fn trials_json_is_balanced() {
        let trials = Sweep::new()
            .benchmarks(rix_workloads::all_benchmarks().into_iter().take(1))
            .config("base", SimConfig::baseline())
            .instructions(1_000)
            .run();
        let j = trials_json(&trials);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains(r#""bench":"bzip2""#));
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_checks_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
