//! # rix-bench: the evaluation harness
//!
//! One binary per figure in the paper's evaluation (§3):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `fig4` | Figure 4 — speedup and integration rate per extension arm (squash / +general / +opcode / +reverse), realistic LISP and oracle suppression, mis-integrations per million; `--diagnostics` adds the §3.2 secondary metrics |
//! | `fig5` | Figure 5 — integration-stream breakdowns: Type, Distance, Status, Refcount |
//! | `fig6` | Figure 6 — IT associativity (1/2/4/full) and size (64/256/1K/4K) sweeps |
//! | `fig7` | Figure 7 — reduced-complexity execution engines (base / RS / IW / IW+RS) with and without integration |
//! | `perf` | Simulator-throughput harness — simulated KIPS per workload under the base and integration configs, written as a `BENCH_*.json` perf record (`--baseline` chains records into a trajectory) |
//! | `exp`  | The spec-driven runner: `exp run spec.json` executes any `rix-exp/1` experiment spec ([`ExperimentSpec`]) on the shared engine, with `--dry-run`, `--list-arms`, `--json` and `--output` |
//!
//! The figure binaries are themselves spec-driven: each embeds its
//! committed `specs/<name>.json` and adds only the figure-specific
//! table rendering, so the experiment definition is data shared with
//! `exp`.
//!
//! Shared flags: `--instructions N` (retired instructions per run,
//! default 100 000), `--seed S`, `--bench NAME` (filter to one
//! benchmark, case-insensitive), `--threads N` (parallel trials),
//! `--warmup N` (instructions discarded before measuring) with
//! `--warmup-mode detailed|functional` (per-cell detailed warm-up vs
//! one shared interpreter fast-forward per benchmark — see
//! [`WarmupMode`]), `--json` (machine-readable trial records instead of
//! tables). All
//! binaries print aligned text tables whose rows/series match the
//! paper's figures; trial order — and therefore every table — is
//! independent of the thread count.
//!
//! The experiment layer is the [`Sweep`] builder: declare a
//! (benchmark × config) grid, an instruction budget, an optional
//! warm-up, and a thread count, and get back ordered [`Trial`] records.
//! Config grids are declared as a [`ParamSpace`] (named [`Axis`] values
//! over config fields, crossed/zipped/chained), and whole experiments
//! as serializable [`ExperimentSpec`] documents.
//!
//! The Criterion benches (`cargo bench -p rix-bench`) measure the
//! simulator's own throughput per subsystem and end-to-end, so
//! performance regressions in the simulator itself are visible.

pub mod dispatch;
pub mod service;
pub mod space;
pub mod spec;

pub use dispatch::{CellProgress, DispatchOptions, DispatchReport};
pub use space::{Axis, AxisValue, ParamSpace};
pub use spec::ExperimentSpec;

use rix_integration::IntegrationConfig;
use rix_isa::interp::Interp;
use rix_isa::{ArchState, Program};
use rix_sim::{Checkpoint, RunResult, SimConfig, Simulator, StopWhen};
use rix_workloads::Benchmark;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a [`Sweep`] executes its warm-up phase.
///
/// The default, [`WarmupMode::Detailed`], is the historical behaviour:
/// every (benchmark × config) cell runs its own warm-up on the detailed
/// machine and measures with warm caches, predictors and integration
/// table. [`WarmupMode::Functional`] instead **fast-forwards each
/// (benchmark, seed) once** through the reference interpreter and boots
/// every config arm of that row from the shared [`ArchState`]
/// (`Simulator::from_arch_state`), so an N-config sweep pays one cheap
/// functional warm-up instead of N detailed ones.
///
/// The trade-off is methodological, which is why functional warm-up is
/// opt-in: a functionally fast-forwarded cell starts its measurement
/// with **cold** microarchitectural structures (the architectural state
/// is mid-program, the caches are not), so its absolute numbers are not
/// comparable with detailed-warm-up numbers — but its *relative*
/// comparisons across config arms share identical starting conditions,
/// and the sweep's wall-clock drops by roughly the per-arm warm-up cost.
/// A third mode, [`WarmupMode::Checkpoint`], skips warm-up execution
/// entirely: every config arm of a benchmark row boots from a saved
/// PR-4 [`Checkpoint`] (`<dir>/<bench>-s<seed>.ckpt.json`, see
/// [`checkpoint_path`]), so the warm-up cost is paid **once, offline**
/// and amortised across every sweep that forks from the same snapshots
/// — the building block for checkpoint-seeded sampled grids and
/// multi-process dispatch. Like functional warm-up, the microarchitecture
/// starts cold at the snapshot boundary; the `warmup` instruction count
/// is ignored in this mode (the checkpoint decides the boundary).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum WarmupMode {
    /// Per-cell warm-up on the detailed machine (the default; byte-
    /// identical to sweeps before functional warm-up existed).
    #[default]
    Detailed,
    /// One interpreter fast-forward per (benchmark, seed), forked across
    /// every config arm.
    Functional,
    /// Fork every config arm from a saved checkpoint per benchmark,
    /// loaded from `dir`.
    Checkpoint {
        /// Directory holding one `<bench>-s<seed>.ckpt.json` per
        /// benchmark of the sweep.
        dir: String,
    },
}

impl WarmupMode {
    /// The mode's stable name (CLI value, spec value, perf-record
    /// field). [`WarmupMode::Checkpoint`]'s directory is not part of the
    /// name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::Detailed => "detailed",
            Self::Functional => "functional",
            Self::Checkpoint { .. } => "checkpoint",
        }
    }
}

/// Guard for the figure binaries' renderers: each renders a fixed table
/// shape (hard-coded headers and column offsets), so a committed spec
/// that materialises a different arm count must fail loudly — editing
/// the spec without updating the rendering would otherwise silently
/// drop the new arms from the tables. Exits with status 2 and a message
/// naming both sides; `exp run` renders any arm count generically.
pub fn expect_arm_count(figure: &str, actual: usize, expected: usize) {
    if actual != expected {
        eprintln!(
            "error: {figure}'s committed spec materialises {actual} arms but this binary's \
             tables render exactly {expected}; update the rendering alongside the spec, or \
             use `exp run specs/{figure}.json` for generic output"
        );
        std::process::exit(2);
    }
}

/// The on-disk location of the checkpoint
/// [`WarmupMode::Checkpoint`] expects for `(bench, seed)` under `dir`:
/// `<dir>/<bench>-s<seed>.ckpt.json`.
#[must_use]
pub fn checkpoint_path(dir: &str, bench: &str, seed: u64) -> std::path::PathBuf {
    std::path::Path::new(dir).join(format!("{bench}-s{seed}.ckpt.json"))
}

/// Common command-line options for the figure binaries.
#[derive(Clone, Debug)]
pub struct Harness {
    /// Retired instructions per simulation run.
    pub instructions: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Restrict to one benchmark by name.
    pub filter: Option<String>,
    /// Print the extra §3.2 diagnostics (fig4 only).
    pub diagnostics: bool,
    /// Worker threads for the (benchmark × config) sweep.
    pub threads: usize,
    /// Emit trial records as JSON instead of text tables.
    pub json: bool,
    /// Warm-up instructions discarded before measuring (0 = cold).
    pub warmup: u64,
    /// How the warm-up executes (per-cell detailed vs shared
    /// functional fast-forward vs checkpoint forking).
    pub warmup_mode: WarmupMode,
    /// Also write the run's JSON (trial records, or the perf record) to
    /// this file; the stdout text table is preserved.
    pub output: Option<String>,
    /// Worker **processes** to shard the sweep across (0, the default,
    /// runs in-process; see [`dispatch`]). Orthogonal to
    /// [`Harness::threads`], which parallelises within one process.
    pub workers: usize,
    /// Content-addressed trial cache directory: cells already simulated
    /// under an identical configuration are reused instead of re-run
    /// (see [`dispatch`]).
    pub cache: Option<String>,
    /// Serve the sweep to remote TCP workers on this address instead of
    /// spawning local worker processes (`exp serve`; see
    /// [`dispatch`]). Mutually exclusive with [`Harness::workers`].
    pub listen: Option<String>,
    /// Print the per-worker dispatch table (liveness, completions,
    /// failures, reconnects, quarantine) after a distributed run.
    pub verbose: bool,
    /// Shared secret for served (TCP) runs: when set, remote worker and
    /// status hellos must carry a matching token (workers read theirs
    /// from `RIX_DISPATCH_TOKEN`; see [`dispatch`]).
    pub token: Option<String>,
    /// Include the structured dispatch report (cache split, fault
    /// history, per-worker stats) as a `dispatch` section in JSON
    /// result documents. Off by default so result bytes stay identical
    /// to pre-service releases.
    pub dispatch_stats: bool,
    /// Which flags were given explicitly on the command line (vs left at
    /// their defaults) — what an [`ExperimentSpec`] lets the CLI
    /// override.
    pub given: GivenFlags,
}

/// Tracks which [`Harness`] flags the command line set explicitly.
/// Spec-driven binaries use this to decide precedence: the committed
/// spec provides the experiment's parameters, and only explicitly-given
/// flags override them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GivenFlags {
    /// `--instructions` was given.
    pub instructions: bool,
    /// `--seed` was given.
    pub seed: bool,
    /// `--warmup` was given.
    pub warmup: bool,
    /// `--warmup-mode` was given.
    pub warmup_mode: bool,
}

impl Default for Harness {
    fn default() -> Self {
        Self {
            instructions: 100_000,
            seed: 7,
            filter: None,
            diagnostics: false,
            threads: 1,
            json: false,
            warmup: 0,
            warmup_mode: WarmupMode::Detailed,
            output: None,
            workers: 0,
            cache: None,
            listen: None,
            verbose: false,
            token: None,
            dispatch_stats: false,
            given: GivenFlags::default(),
        }
    }
}

impl Harness {
    /// The usage string printed on a flag error (exit status 2).
    #[must_use]
    pub fn usage() -> &'static str {
        "usage: <figure binary> [flags]\n\
         \n\
         flags:\n\
         \x20 --instructions N, -n N  retired instructions per run (default 100000)\n\
         \x20 --seed S                workload generator seed (default 7)\n\
         \x20 --bench NAME            restrict to one benchmark (case-insensitive)\n\
         \x20 --threads N             worker threads for the sweep (default 1)\n\
         \x20 --warmup N              warm-up instructions discarded before measuring (default 0)\n\
         \x20 --warmup-mode MODE      `detailed` (per cell, default), `functional`\n\
         \x20                         (one interpreter fast-forward shared by all config arms),\n\
         \x20                         or `checkpoint:DIR` (fork every arm from saved checkpoints)\n\
         \x20 --json                  print trial records as JSON, not tables\n\
         \x20 --output FILE           also write the run's JSON to FILE (table stays on stdout)\n\
         \x20 --workers N             shard the sweep across N worker processes (default:\n\
         \x20                         in-process; trials are byte-identical either way)\n\
         \x20 --cache DIR             content-addressed trial cache: reuse every cell already\n\
         \x20                         simulated under an identical configuration, simulate\n\
         \x20                         and store the rest\n\
         \x20 --listen ADDR           serve the sweep to remote TCP workers on ADDR\n\
         \x20                         (e.g. 0.0.0.0:7777; pair with `exp worker --connect`;\n\
         \x20                         mutually exclusive with --workers)\n\
         \x20 --verbose               print the per-worker dispatch table after the run\n\
         \x20 --token SECRET          shared secret for --listen: remote workers must present\n\
         \x20                         it in their hello (they read RIX_DISPATCH_TOKEN)\n\
         \x20 --dispatch-stats        include the structured dispatch report (per-worker\n\
         \x20                         stats) as a `dispatch` section in JSON result documents\n\
         \x20 --diagnostics           extra §3.2 metrics (fig4 only)\n\
         \x20 --help, -h              this message"
    }

    /// Parses the shared flags from `std::env::args`. On an unknown or
    /// malformed flag, prints the error and [`Harness::usage`] to
    /// stderr and exits with status 2 (`--help` prints usage to stdout
    /// and exits 0).
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", Self::usage());
            std::process::exit(0);
        }
        match Self::try_parse(args) {
            Ok(h) => h,
            Err(msg) => {
                eprintln!("error: {msg}\n\n{}", Self::usage());
                std::process::exit(2);
            }
        }
    }

    /// The fallible core of [`Harness::from_args`].
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let args: Vec<String> = args.into_iter().collect();
        let mut h = Self::default();
        let mut i = 0;
        let value = |args: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{flag} is missing its value"))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--instructions" | "-n" => {
                    let v = value(&args, &mut i, "--instructions")?;
                    h.instructions = v
                        .parse()
                        .map_err(|_| format!("--instructions takes a number, got `{v}`"))?;
                    h.given.instructions = true;
                }
                "--seed" => {
                    let v = value(&args, &mut i, "--seed")?;
                    h.seed =
                        v.parse().map_err(|_| format!("--seed takes a number, got `{v}`"))?;
                    h.given.seed = true;
                }
                "--bench" => {
                    let v = value(&args, &mut i, "--bench")?;
                    // Validate eagerly so a typo reports the closest
                    // benchmark names instead of an empty sweep.
                    h.filter = Some(rix_workloads::lookup(&v)?.name.to_string());
                }
                "--threads" => {
                    let v = value(&args, &mut i, "--threads")?;
                    h.threads = v
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--threads takes a count >= 1, got `{v}`"))?;
                }
                "--warmup" => {
                    let v = value(&args, &mut i, "--warmup")?;
                    h.warmup = v
                        .parse()
                        .map_err(|_| format!("--warmup takes a number, got `{v}`"))?;
                    h.given.warmup = true;
                }
                "--warmup-mode" => {
                    let v = value(&args, &mut i, "--warmup-mode")?;
                    h.warmup_mode = match (v.as_str(), v.split_once(':')) {
                        ("detailed", _) => WarmupMode::Detailed,
                        ("functional", _) => WarmupMode::Functional,
                        (_, Some(("checkpoint", dir))) if !dir.is_empty() => {
                            WarmupMode::Checkpoint { dir: dir.to_string() }
                        }
                        _ => {
                            return Err(format!(
                                "--warmup-mode takes `detailed`, `functional` or \
                                 `checkpoint:DIR`, got `{v}`"
                            ))
                        }
                    };
                    h.given.warmup_mode = true;
                }
                "--json" => h.json = true,
                "--output" => h.output = Some(value(&args, &mut i, "--output")?),
                "--workers" => {
                    let v = value(&args, &mut i, "--workers")?;
                    h.workers = v
                        .parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--workers takes a count >= 1, got `{v}`"))?;
                }
                "--cache" => h.cache = Some(value(&args, &mut i, "--cache")?),
                "--listen" => h.listen = Some(value(&args, &mut i, "--listen")?),
                "--verbose" => h.verbose = true,
                "--token" => h.token = Some(value(&args, &mut i, "--token")?),
                "--dispatch-stats" => h.dispatch_stats = true,
                "--diagnostics" => h.diagnostics = true,
                other => return Err(format!("unknown argument `{other}`")),
            }
            i += 1;
        }
        if h.listen.is_some() && h.workers > 0 {
            return Err(
                "--listen and --workers are mutually exclusive (serve to remote workers \
                 OR spawn local ones)"
                    .to_string(),
            );
        }
        Ok(h)
    }

    /// The benchmarks selected by the filter.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        rix_workloads::all_benchmarks()
            .into_iter()
            .filter(|b| {
                self.filter.as_deref().is_none_or(|f| f.eq_ignore_ascii_case(b.name))
            })
            .collect()
    }

    /// Runs `program` under `cfg` for the configured instruction budget.
    #[must_use]
    pub fn run(&self, program: &Program, cfg: SimConfig) -> RunResult {
        Simulator::new(program, cfg).run(self.instructions)
    }

    /// A [`Sweep`] over the selected benchmarks with this harness's
    /// instruction budget, seed, thread count and warm-up settings; add
    /// configs and run.
    #[must_use]
    pub fn sweep(&self) -> Sweep {
        Sweep::new()
            .benchmarks(self.benchmarks())
            .instructions(self.instructions)
            .seed(self.seed)
            .threads(self.threads)
            .warmup(self.warmup)
            .warmup_mode(self.warmup_mode.clone())
    }

    /// The shared JSON output behaviour of the figure binaries: writes
    /// [`trials_json`] to [`Harness::output`] when set (always, so a
    /// file is produced in both table and `--json` mode), prints it to
    /// stdout under `--json`. Returns `true` when the caller should skip
    /// its text tables (`--json` mode).
    ///
    /// Exits with status 1 when the output file cannot be written (the
    /// figure binaries have no recovery path for a failed write).
    pub fn emit_trials(&self, trials: &[Trial]) -> bool {
        let json = trials_json(trials);
        if let Some(path) = &self.output {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("error: cannot write `{path}`: {e}");
                std::process::exit(1);
            }
        }
        if self.json {
            println!("{json}");
        }
        self.json
    }
}

/// One completed (benchmark × config) run from a [`Sweep`].
#[derive(Clone, Debug)]
pub struct Trial {
    /// Benchmark name.
    pub bench: &'static str,
    /// Label of the configuration that produced this trial.
    pub config_label: String,
    /// The simulation outcome.
    pub result: RunResult,
    /// Wall-clock time this cell's simulation took (construction, warm-up
    /// and measurement; excludes work shared across a grid row — program
    /// generation, and the per-benchmark interpreter fast-forward under
    /// [`WarmupMode::Functional`]). Deliberately excluded from
    /// [`Trial::to_json`] so the `--json` figure output stays
    /// deterministic.
    pub wall: std::time::Duration,
}

impl Trial {
    /// Simulated KIPS: thousands of retired instructions per wall-clock
    /// second of host time for this cell.
    #[must_use]
    pub fn kips(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.result.stats.retired as f64 / 1_000.0 / secs
        }
    }

    /// JSON object for this trial record.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"bench":"{}","config":"{}","result":{}}}"#,
            json_escape(self.bench),
            json_escape(&self.config_label),
            self.result.to_json()
        )
    }
}

/// JSON array over trial records (the `--json` output of every figure
/// binary).
#[must_use]
pub fn trials_json(trials: &[Trial]) -> String {
    let body: Vec<String> = trials.iter().map(Trial::to_json).collect();
    format!("[\n{}\n]", body.join(",\n"))
}

/// The `rix-exp-result/1` document: the canonical output of `exp run
/// --json`, and what the experiment service stores and re-serves.
/// `cache` adds a `cache` section (hit/miss split — given only when the
/// run used a trial cache), `dispatch` adds a `dispatch` section with
/// the full structured [`DispatchReport`] (given under
/// `--dispatch-stats`). With both `None` the bytes are identical to
/// pre-service releases, which is what the byte-identity guarantees in
/// the e2e tests — and the service's dedup story — rest on.
#[must_use]
pub fn result_doc(
    spec: &ExperimentSpec,
    trials: &[Trial],
    cache: Option<&DispatchReport>,
    dispatch: Option<&DispatchReport>,
) -> String {
    use rix_isa::json::Json;
    let mut sections = cache.map_or_else(String::new, |r| {
        format!("\n  \"cache\":{{\"hits\":{},\"misses\":{}}},", r.cache_hits, r.simulated)
    });
    if let Some(r) = dispatch {
        sections.push_str(&format!("\n  \"dispatch\":{},", r.to_json().dump()));
    }
    format!(
        "{{\n  \"schema\":\"rix-exp-result/1\",\n  \"name\":{},\n  \
         \"spec_fingerprint\":\"{}\",\n  \"spec_fingerprint_fnv64\":\"{:#018x}\",\n  \
         \"spec\":{},{sections}\n  \"trials\":{}\n}}",
        spec.name.as_ref().map_or_else(|| "null".to_string(), |n| Json::Str(n.clone()).dump()),
        spec.fingerprint_hex(),
        spec.fingerprint(),
        spec.to_json(),
        trials_json(trials),
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One grid cell's construction, warm-up and measurement — the code
/// shared by [`Sweep::try_run`]'s in-process workers and the
/// multi-process [`dispatch`] workers, so a cell's result is
/// byte-identical however it is executed.
///
/// Exactly one warm-up provenance applies, in precedence order:
/// a checkpoint fork (`ckpt`), a functional fast-forward fork (`warm`),
/// a detailed per-cell warm-up (`warmup > 0`), or a cold start.
pub(crate) fn measure_cell(
    program: &Program,
    cfg: SimConfig,
    ckpt: Option<&Checkpoint>,
    warm: Option<&ArchState>,
    warmup: u64,
    stop: Option<&StopWhen>,
    instructions: u64,
) -> RunResult {
    // The per-cell measurement interval: the stop condition when one is
    // set, the canonical instruction budget otherwise.
    let measure = |sim: &mut Simulator| -> RunResult {
        match stop {
            Some(stop) => {
                sim.run_until(stop);
                sim.result()
            }
            None => sim.run_budget(instructions),
        }
    };
    if let Some(ck) = ckpt {
        // Fork the arm from the saved snapshot (cold microarchitecture
        // at the checkpoint boundary) and measure fresh from there.
        let mut sim = Simulator::from_checkpoint(program, cfg, ck);
        sim.reset_stats();
        measure(&mut sim)
    } else if let Some(state) = warm {
        // Boot the detailed machine at the fast-forwarded architectural
        // boundary (cold microarchitecture) and measure from there.
        let mut sim = Simulator::from_arch_state(program, cfg, state);
        measure(&mut sim)
    } else if warmup == 0 {
        if stop.is_none() {
            // The exact one-shot path, so a warm-up-free sweep is
            // byte-identical to the historical serial loops.
            Simulator::new(program, cfg).run(instructions)
        } else {
            measure(&mut Simulator::new(program, cfg))
        }
    } else {
        let mut sim = Simulator::new(program, cfg);
        // Budget safety nets on both phases, so a cell that crawls
        // without deadlocking cannot hang the sweep.
        sim.run_until(&StopWhen::budget(warmup));
        sim.reset_stats();
        measure(&mut sim)
    }
}

/// A declarative experiment over the (benchmark × config) grid,
/// fanned out over a `std::thread` worker pool.
///
/// Workers pull grid cells from a shared queue, so a slow cell (a big
/// benchmark under an expensive config) does not hold up the rest of
/// its row. Results come back as [`Trial`] records in deterministic
/// bench-major grid order — identical for every thread count, because
/// each cell's simulation is independent and seeded.
///
/// ```
/// use rix_bench::Sweep;
/// use rix_sim::SimConfig;
///
/// let trials = Sweep::new()
///     .benchmarks(rix_workloads::all_benchmarks().into_iter().take(2))
///     .config("base", SimConfig::baseline())
///     .config("integration", SimConfig::default())
///     .instructions(2_000)
///     .warmup(500)
///     .threads(2)
///     .run();
/// assert_eq!(trials.len(), 4);
/// assert_eq!(trials[0].config_label, "base");
/// assert!(trials.iter().all(|t| t.result.stats.retired >= 2_000));
/// ```
#[derive(Clone, Debug)]
pub struct Sweep {
    benchmarks: Vec<Benchmark>,
    configs: Vec<(String, SimConfig)>,
    instructions: u64,
    warmup: u64,
    warmup_mode: WarmupMode,
    seed: u64,
    threads: usize,
    stop: Option<StopWhen>,
    err: Option<String>,
}

impl Default for Sweep {
    fn default() -> Self {
        Self::new()
    }
}

impl Sweep {
    /// An empty sweep: 100k instructions, no warm-up, seed 7, 1 thread.
    #[must_use]
    pub fn new() -> Self {
        Self {
            benchmarks: Vec::new(),
            configs: Vec::new(),
            instructions: 100_000,
            warmup: 0,
            warmup_mode: WarmupMode::Detailed,
            seed: 7,
            threads: 1,
            stop: None,
            err: None,
        }
    }

    /// Sets the benchmarks (grid rows).
    #[must_use]
    pub fn benchmarks(mut self, benchmarks: impl IntoIterator<Item = Benchmark>) -> Self {
        self.benchmarks = benchmarks.into_iter().collect();
        self
    }

    /// Sets the labelled configurations (grid columns). Replaces any
    /// earlier `.space()`/`.configs()` arms — including a deferred
    /// space error.
    #[must_use]
    pub fn configs<L: Into<String>>(
        mut self,
        configs: impl IntoIterator<Item = (L, SimConfig)>,
    ) -> Self {
        self.configs = configs.into_iter().map(|(l, c)| (l.into(), c)).collect();
        self.err = None;
        self
    }

    /// Appends one labelled configuration.
    #[must_use]
    pub fn config(mut self, label: impl Into<String>, cfg: SimConfig) -> Self {
        self.configs.push((label.into(), cfg));
        self
    }

    /// Sets the configurations from a [`ParamSpace`]: every labelled arm
    /// of the space becomes a grid column. A malformed space (bad field
    /// path, unknown preset, zip-length mismatch, …) is reported by
    /// [`Sweep::try_run`] rather than here, so builder chains stay
    /// infallible. Replaces any earlier arms — and any earlier deferred
    /// error.
    #[must_use]
    pub fn space(mut self, space: ParamSpace) -> Self {
        match space.into_arms() {
            Ok(arms) => {
                self.configs = arms;
                self.err = None;
            }
            Err(e) => {
                self.configs = Vec::new();
                self.err = Some(e);
            }
        }
        self
    }

    /// Replaces the per-cell measurement condition: instead of the
    /// [`StopWhen::budget`] of [`Sweep::instructions`], each cell runs
    /// until `stop` is satisfied (or the program halts / the machine
    /// deadlocks). The instruction budget is ignored for measurement
    /// when a stop condition is set; warm-up still uses
    /// [`Sweep::warmup`].
    #[must_use]
    pub fn stop(mut self, stop: StopWhen) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Retired instructions measured per trial.
    #[must_use]
    pub fn instructions(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Retired instructions to run — then discard via
    /// [`Simulator::reset_stats`] — before measuring (0 = cold).
    #[must_use]
    pub fn warmup(mut self, n: u64) -> Self {
        self.warmup = n;
        self
    }

    /// How the warm-up executes: [`WarmupMode::Detailed`] (per cell, the
    /// default) or [`WarmupMode::Functional`] (one interpreter
    /// fast-forward per benchmark row, shared by every config arm). Has
    /// no effect when [`Sweep::warmup`] is 0.
    #[must_use]
    pub fn warmup_mode(mut self, mode: WarmupMode) -> Self {
        self.warmup_mode = mode;
        self
    }

    /// Workload generator seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads (clamped to at least 1; more threads than grid
    /// cells idle harmlessly).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates the sweep's shape without running anything: a deferred
    /// [`ParamSpace`] error, an empty benchmark or configuration list,
    /// duplicate configuration labels, an unbuildable configuration
    /// ([`SimConfig::validate`] per arm), a zero-instruction
    /// measurement, and functional-warm-up `stack_top` disagreement are
    /// all reported with a descriptive message instead of panicking or
    /// silently producing an empty run. ([`WarmupMode::Checkpoint`] files are
    /// checked by [`Sweep::validate_checkpoint_files`] and
    /// [`Sweep::try_run`], not here, so a spec can be validated before
    /// its checkpoints exist.)
    pub fn validate(&self) -> Result<(), String> {
        if let Some(e) = &self.err {
            return Err(e.clone());
        }
        if self.benchmarks.is_empty() {
            return Err("sweep has no benchmarks: add .benchmarks(...), or loosen the \
                        benchmark filter that removed them all"
                .to_string());
        }
        if self.configs.is_empty() {
            return Err(
                "sweep has no configurations: add .config(...), .configs(...) or .space(...)"
                    .to_string(),
            );
        }
        let mut seen = std::collections::HashSet::new();
        for (label, cfg) in &self.configs {
            if !seen.insert(label.as_str()) {
                return Err(format!(
                    "duplicate configuration label `{label}`: every arm of a sweep needs a \
                     distinct label"
                ));
            }
            // Well-typed is not buildable: catch constructor panics
            // (register-file floor, cache/IT/LISP geometry, predictor
            // table sizes) here, with the arm named, instead of inside
            // a worker thread.
            cfg.validate().map_err(|e| format!("configuration `{label}`: {e}"))?;
        }
        if self.instructions == 0 && self.stop.is_none() {
            return Err("zero-instruction budget: set .instructions(n) or a .stop(...) \
                        condition, otherwise every trial measures nothing"
                .to_string());
        }
        if self.warmup > 0 && self.warmup_mode == WarmupMode::Functional {
            let stack_top = self.configs[0].1.stack_top;
            if !self.configs.iter().all(|(_, c)| c.stack_top == stack_top) {
                return Err("functional warm-up shares one interpreter run per benchmark, \
                            so every config arm must agree on stack_top"
                    .to_string());
            }
        }
        Ok(())
    }

    /// Checks that every snapshot a [`WarmupMode::Checkpoint`] warm-up
    /// will read actually exists, naming each missing path — a no-op
    /// under the other modes. Separate from [`Sweep::validate`] so a
    /// spec can still be *statically* validated before its checkpoints
    /// are saved; `exp --dry-run` and the [`dispatch`] runner call this
    /// too, so a missing file is reported up front instead of failing
    /// mid-run.
    pub fn validate_checkpoint_files(&self) -> Result<(), String> {
        let WarmupMode::Checkpoint { dir } = &self.warmup_mode else {
            return Ok(());
        };
        let missing: Vec<String> = self
            .benchmarks
            .iter()
            .map(|b| checkpoint_path(dir, b.name, self.seed))
            .filter(|p| !p.is_file())
            .map(|p| p.display().to_string())
            .collect();
        if missing.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} warm-up checkpoint file(s) missing: {} (save each benchmark's snapshot \
                 with Checkpoint::save at checkpoint_path(dir, bench, seed))",
                missing.len(),
                missing.join(", "),
            ))
        }
    }

    /// Runs the sweep through the multi-process [`dispatch`] layer:
    /// cells are sharded across [`DispatchOptions::workers`] worker
    /// processes (0 runs them in this process) after consulting the
    /// content-addressed trial cache when one is configured. The trials
    /// are byte-identical to [`Sweep::try_run`]'s for every worker
    /// count and cache state; the [`DispatchReport`] says what was
    /// simulated versus reused.
    pub fn run_distributed(
        &self,
        opts: &DispatchOptions,
    ) -> Result<(Vec<Trial>, DispatchReport), String> {
        dispatch::run_sweep_distributed(self, opts)
    }

    /// Runs every (benchmark × config) cell and returns the trials in
    /// bench-major grid order, independent of the thread count.
    ///
    /// # Panics
    ///
    /// Panics on an invalid sweep (see [`Sweep::validate`]) or a
    /// missing/mismatched warm-up checkpoint; [`Sweep::try_run`] is the
    /// error-returning form.
    #[must_use]
    pub fn run(&self) -> Vec<Trial> {
        self.try_run().unwrap_or_else(|e| panic!("invalid sweep: {e}"))
    }

    /// As [`Sweep::run`], but an invalid sweep — or a missing or
    /// mismatched [`WarmupMode::Checkpoint`] file — returns a
    /// descriptive error instead of panicking.
    pub fn try_run(&self) -> Result<Vec<Trial>, String> {
        self.validate()?;
        let ncfg = self.configs.len();
        let total = self.benchmarks.len() * ncfg;
        // Build each benchmark's program once; the cells of its grid
        // row share it read-only across workers.
        let programs: Vec<Program> =
            self.benchmarks.iter().map(|b| b.build(self.seed)).collect();
        // Checkpoint warm-up: load one saved snapshot per benchmark row
        // up front (serial — loads are cheap next to simulation), so a
        // missing or mismatched file fails the whole sweep with a
        // nameable error before any cell runs.
        let ckpts: Vec<Option<Checkpoint>> =
            if let WarmupMode::Checkpoint { dir } = &self.warmup_mode {
                self.benchmarks
                    .iter()
                    .zip(&programs)
                    .map(|(b, p)| {
                        let path = checkpoint_path(dir, b.name, self.seed);
                        let ck = Checkpoint::load(&path).map_err(|e| {
                            format!("warm-up checkpoint for `{}`: {e}", b.name)
                        })?;
                        if rix_sim::checkpoint::fingerprint(p) != ck.program_hash {
                            return Err(format!(
                                "warm-up checkpoint {} belongs to a different program than \
                                 `{}` at seed {} (wrong benchmark, or saved at another seed)",
                                path.display(),
                                b.name,
                                self.seed
                            ));
                        }
                        Ok(Some(ck))
                    })
                    .collect::<Result<_, String>>()?
            } else {
                vec![None; programs.len()]
            };
        // Functional warm-up: fast-forward each (benchmark, seed) once
        // through the interpreter; every config arm of the row forks
        // from the shared snapshot. The fast-forward itself is shared
        // work and therefore — like program generation — excluded from
        // the per-cell wall clock.
        let functional = self.warmup > 0 && self.warmup_mode == WarmupMode::Functional;
        let warm_states: Vec<Option<ArchState>> = if functional {
            let stack_top = self.configs[0].1.stack_top;
            // The per-benchmark fast-forwards are independent, so they
            // use the sweep's thread budget too (statically partitioned
            // — interpreter warm-ups are near-uniform in cost): without
            // this, serial warm-up would bound a wide sweep's speedup.
            let mut states: Vec<Option<ArchState>> = vec![None; programs.len()];
            let workers = self.threads.max(1).min(programs.len());
            let chunk = programs.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (progs, slots) in programs.chunks(chunk).zip(states.chunks_mut(chunk)) {
                    scope.spawn(move || {
                        for (p, slot) in progs.iter().zip(slots) {
                            *slot = Some(Interp::new(p, stack_top).fast_forward(self.warmup));
                        }
                    });
                }
            });
            states
        } else {
            vec![None; programs.len()]
        };
        let run_cell = |i: usize| -> Trial {
            let bench = self.benchmarks[i / ncfg];
            let (label, cfg) = &self.configs[i % ncfg];
            let program = &programs[i / ncfg];
            let start = std::time::Instant::now();
            let result = measure_cell(
                program,
                *cfg,
                ckpts[i / ncfg].as_ref(),
                warm_states[i / ncfg].as_ref(),
                self.warmup,
                self.stop.as_ref(),
                self.instructions,
            );
            let wall = start.elapsed();
            Trial { bench: bench.name, config_label: label.clone(), result, wall }
        };
        let threads = self.threads.max(1).min(total);
        if threads == 1 {
            return Ok((0..total).map(run_cell).collect());
        }
        // Shared work queue: an atomic cursor over the grid; each
        // worker claims the next cell and writes its own result slot.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Trial>>> = (0..total).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let trial = run_cell(i);
                    *slots[i].lock().expect("result slot never poisoned") = Some(trial);
                });
            }
        });
        Ok(slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot never poisoned")
                    .expect("every cell was claimed and completed")
            })
            .collect())
    }
}

/// The four Figure 4 extension arms (name, config).
#[must_use]
pub fn figure4_arms() -> Vec<(&'static str, IntegrationConfig)> {
    IntegrationConfig::figure4_arms()
}

/// Percentage speedup of `x` over `base` IPC.
#[must_use]
pub fn speedup_pct(x: &RunResult, base: &RunResult) -> f64 {
    if base.ipc() == 0.0 {
        0.0
    } else {
        (x.ipc() / base.ipc() - 1.0) * 100.0
    }
}

/// Arithmetic mean.
#[must_use]
pub fn amean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of (1 + x/100) speedup percentages, returned as a
/// percentage (the paper reports geometric-mean speedups).
#[must_use]
pub fn gmean_speedup(pcts: &[f64]) -> f64 {
    if pcts.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = pcts.iter().map(|p| (1.0 + p / 100.0).max(1e-9).ln()).sum();
    ((log_sum / pcts.len() as f64).exp() - 1.0) * 100.0
}

/// A minimal aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(ToString::to_string).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((amean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(amean(&[]), 0.0);
        // gmean of +10% and -9.0909..% is ~0.
        let g = gmean_speedup(&[10.0, -9.090_909_090_9]);
        assert!(g.abs() < 1e-6, "{g}");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let r = t.render();
        assert!(r.contains("long-name"));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    fn harness_selects_benchmarks() {
        let mut h = Harness::default();
        assert_eq!(h.benchmarks().len(), 16);
        h.filter = Some("mcf".into());
        assert_eq!(h.benchmarks().len(), 1);
        h.filter = Some("MCF".into());
        assert_eq!(h.benchmarks().len(), 1, "filter is case-insensitive");
    }

    #[test]
    fn try_parse_flags() {
        let args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let h = Harness::try_parse(args("-n 5000 --seed 9 --threads 4 --json")).unwrap();
        assert_eq!(h.instructions, 5_000);
        assert_eq!(h.seed, 9);
        assert_eq!(h.threads, 4);
        assert!(h.json);
        let h = Harness::try_parse(args("--bench VORTEX")).unwrap();
        assert_eq!(h.filter.as_deref(), Some("vortex"));

        assert!(Harness::try_parse(args("--frobnicate")).unwrap_err().contains("unknown"));
        assert!(Harness::try_parse(args("--seed")).unwrap_err().contains("missing"));
        assert!(Harness::try_parse(args("-n twelve")).unwrap_err().contains("number"));
        assert!(Harness::try_parse(args("--threads 0")).unwrap_err().contains(">= 1"));
        let err = Harness::try_parse(args("--bench vortx")).unwrap_err();
        assert!(err.contains("vortex"), "suggests the close name: {err}");
    }

    #[test]
    fn try_parse_warmup_flags() {
        let args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let h = Harness::try_parse(args("--warmup 30000")).unwrap();
        assert_eq!(h.warmup, 30_000);
        assert_eq!(h.warmup_mode, WarmupMode::Detailed, "detailed stays the default");
        let h = Harness::try_parse(args("--warmup 1000 --warmup-mode functional")).unwrap();
        assert_eq!(h.warmup_mode, WarmupMode::Functional);
        let h = Harness::try_parse(args("--warmup-mode detailed")).unwrap();
        assert_eq!(h.warmup_mode, WarmupMode::Detailed);
        let h = Harness::try_parse(args("--warmup-mode checkpoint:ckpts/fig4")).unwrap();
        assert_eq!(h.warmup_mode, WarmupMode::Checkpoint { dir: "ckpts/fig4".into() });
        assert!(Harness::try_parse(args("--warmup-mode sampled"))
            .unwrap_err()
            .contains("detailed"));
        assert!(Harness::try_parse(args("--warmup-mode checkpoint:"))
            .unwrap_err()
            .contains("checkpoint:DIR"));
        assert!(Harness::try_parse(args("--warmup lots")).unwrap_err().contains("number"));
    }

    #[test]
    fn try_parse_output_and_given_flags() {
        let args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let h = Harness::try_parse(args("--output /tmp/fig.json")).unwrap();
        assert_eq!(h.output.as_deref(), Some("/tmp/fig.json"));
        assert_eq!(h.given, GivenFlags::default(), "--output is not a spec override");

        let h = Harness::try_parse(args("-n 5000 --warmup 100")).unwrap();
        assert!(h.given.instructions && h.given.warmup);
        assert!(!h.given.seed && !h.given.warmup_mode);
        let h = Harness::try_parse(args("--seed 9 --warmup-mode functional")).unwrap();
        assert!(h.given.seed && h.given.warmup_mode);
        assert!(!h.given.instructions);
    }

    #[test]
    fn functional_warmup_forks_one_fast_forward_per_row() {
        let benches: Vec<_> = rix_workloads::all_benchmarks().into_iter().take(2).collect();
        let sweep = Sweep::new()
            .benchmarks(benches.clone())
            .config("base", SimConfig::baseline())
            .config("integration", SimConfig::default())
            .instructions(2_000)
            .warmup(3_000)
            .warmup_mode(WarmupMode::Functional);
        let trials = sweep.clone().run();
        assert_eq!(trials.len(), 4);
        for t in &trials {
            assert!(
                t.result.stats.retired >= 2_000,
                "{}/{} measured a full budget",
                t.bench,
                t.config_label
            );
        }
        // Every arm of a row forks from the same architectural boundary:
        // the measured interval starts at warm-up retirement, so the two
        // arms of one benchmark retire the same instruction stream and
        // the trials are deterministic across thread counts.
        let again = sweep.threads(3).run();
        for (a, b) in trials.iter().zip(&again) {
            assert_eq!(a.result, b.result, "{}/{}", a.bench, a.config_label);
        }
        // And the functional path actually took the fast-forward route:
        // its cells start from a mid-program state, so they differ from
        // a cold (no-warm-up) sweep of the same budget.
        let cold = Sweep::new()
            .benchmarks(benches)
            .config("base", SimConfig::baseline())
            .instructions(2_000)
            .run();
        assert_ne!(cold[0].result, trials[0].result);
    }

    #[test]
    fn validation_rejects_degenerate_sweeps_descriptively() {
        let one_bench = || rix_workloads::all_benchmarks().into_iter().take(1);
        // No configurations (the old behaviour silently produced an
        // empty run).
        let err = Sweep::new().benchmarks(one_bench()).try_run().unwrap_err();
        assert!(err.contains("no configurations"), "{err}");
        // No benchmarks.
        let err = Sweep::new().config("base", SimConfig::baseline()).try_run().unwrap_err();
        assert!(err.contains("no benchmarks"), "{err}");
        // Duplicate labels.
        let err = Sweep::new()
            .benchmarks(one_bench())
            .config("base", SimConfig::baseline())
            .config("base", SimConfig::default())
            .try_run()
            .unwrap_err();
        assert!(err.contains("duplicate configuration label `base`"), "{err}");
        // Zero-instruction budget...
        let err = Sweep::new()
            .benchmarks(one_bench())
            .config("base", SimConfig::baseline())
            .instructions(0)
            .try_run()
            .unwrap_err();
        assert!(err.contains("zero-instruction budget"), "{err}");
        // ... unless an explicit stop condition takes over measurement.
        let trials = Sweep::new()
            .benchmarks(one_bench())
            .config("base", SimConfig::baseline())
            .instructions(0)
            .stop(StopWhen::CyclesAtLeast(500))
            .try_run()
            .unwrap();
        assert_eq!(trials.len(), 1);
        assert!(trials[0].result.stats.cycles >= 500);
    }

    #[test]
    fn stop_condition_replaces_the_budget() {
        let sweep = Sweep::new()
            .benchmarks(rix_workloads::all_benchmarks().into_iter().take(1))
            .config("base", SimConfig::baseline())
            .instructions(1_000_000) // would run far longer than the stop
            .stop(StopWhen::CyclesAtLeast(2_000));
        let trials = sweep.run();
        assert!(trials[0].result.stats.cycles >= 2_000);
        assert!(
            trials[0].result.stats.cycles < 100_000,
            "the stop condition, not the budget, ended the cell: {}",
            trials[0].result.stats.cycles
        );
    }

    #[test]
    fn checkpoint_warmup_reports_missing_files() {
        let err = Sweep::new()
            .benchmarks(rix_workloads::all_benchmarks().into_iter().take(1))
            .config("base", SimConfig::baseline())
            .warmup_mode(WarmupMode::Checkpoint { dir: "/nonexistent-ckpt-dir".into() })
            .try_run()
            .unwrap_err();
        assert!(err.contains("warm-up checkpoint for `bzip2`"), "{err}");
        assert!(err.contains("bzip2-s7.ckpt.json"), "names the expected file: {err}");
    }

    #[test]
    fn sweep_parallel_matches_serial() {
        let benches: Vec<_> = rix_workloads::all_benchmarks().into_iter().take(3).collect();
        let configs = vec![
            ("base".to_string(), SimConfig::baseline()),
            ("full".to_string(), SimConfig::default()),
        ];
        let sweep = Sweep::new()
            .benchmarks(benches.clone())
            .configs(configs)
            .instructions(2_000);
        let serial = sweep.clone().threads(1).run();
        let parallel = sweep.threads(3).run();
        assert_eq!(serial.len(), 6);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.bench, b.bench);
            assert_eq!(a.config_label, b.config_label);
            assert_eq!(a.result, b.result, "{}/{}", a.bench, a.config_label);
        }
        // Grid order: bench-major, configs in declaration order.
        assert_eq!(serial[0].bench, benches[0].name);
        assert_eq!(serial[0].config_label, "base");
        assert_eq!(serial[1].config_label, "full");
        assert_eq!(serial[2].bench, benches[1].name);
    }

    #[test]
    fn trials_json_is_balanced() {
        let trials = Sweep::new()
            .benchmarks(rix_workloads::all_benchmarks().into_iter().take(1))
            .config("base", SimConfig::baseline())
            .instructions(1_000)
            .run();
        let j = trials_json(&trials);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains(r#""bench":"bzip2""#));
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_checks_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
