//! # rix-bench: the evaluation harness
//!
//! One binary per figure in the paper's evaluation (§3):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `fig4` | Figure 4 — speedup and integration rate per extension arm (squash / +general / +opcode / +reverse), realistic LISP and oracle suppression, mis-integrations per million; `--diagnostics` adds the §3.2 secondary metrics |
//! | `fig5` | Figure 5 — integration-stream breakdowns: Type, Distance, Status, Refcount |
//! | `fig6` | Figure 6 — IT associativity (1/2/4/full) and size (64/256/1K/4K) sweeps |
//! | `fig7` | Figure 7 — reduced-complexity execution engines (base / RS / IW / IW+RS) with and without integration |
//!
//! Shared flags: `--instructions N` (retired instructions per run,
//! default 100 000), `--seed S`, `--bench NAME` (filter to one
//! benchmark). All binaries print aligned text tables whose rows/series
//! match the paper's figures.
//!
//! The Criterion benches (`cargo bench -p rix-bench`) measure the
//! simulator's own throughput per subsystem and end-to-end, so
//! performance regressions in the simulator itself are visible.

use rix_integration::IntegrationConfig;
use rix_isa::Program;
use rix_sim::{RunResult, SimConfig, Simulator};
use rix_workloads::Benchmark;

/// Common command-line options for the figure binaries.
#[derive(Clone, Debug)]
pub struct Harness {
    /// Retired instructions per simulation run.
    pub instructions: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Restrict to one benchmark by name.
    pub filter: Option<String>,
    /// Print the extra §3.2 diagnostics (fig4 only).
    pub diagnostics: bool,
}

impl Default for Harness {
    fn default() -> Self {
        Self { instructions: 100_000, seed: 7, filter: None, diagnostics: false }
    }
}

impl Harness {
    /// Parses `--instructions N --seed S --bench NAME --diagnostics`
    /// from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    #[must_use]
    pub fn from_args() -> Self {
        let mut h = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--instructions" | "-n" => {
                    i += 1;
                    h.instructions = args[i].parse().expect("--instructions takes a number");
                }
                "--seed" => {
                    i += 1;
                    h.seed = args[i].parse().expect("--seed takes a number");
                }
                "--bench" => {
                    i += 1;
                    h.filter = Some(args[i].clone());
                }
                "--diagnostics" => h.diagnostics = true,
                other => panic!(
                    "unknown argument `{other}` \
                     (expected --instructions N, --seed S, --bench NAME, --diagnostics)"
                ),
            }
            i += 1;
        }
        h
    }

    /// The benchmarks selected by the filter.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        rix_workloads::all_benchmarks()
            .into_iter()
            .filter(|b| self.filter.as_deref().is_none_or(|f| f == b.name))
            .collect()
    }

    /// Runs `program` under `cfg` for the configured instruction budget.
    #[must_use]
    pub fn run(&self, program: &Program, cfg: SimConfig) -> RunResult {
        Simulator::new(program, cfg).run(self.instructions)
    }
}

/// The four Figure 4 extension arms (name, config).
#[must_use]
pub fn figure4_arms() -> Vec<(&'static str, IntegrationConfig)> {
    IntegrationConfig::figure4_arms()
}

/// Percentage speedup of `x` over `base` IPC.
#[must_use]
pub fn speedup_pct(x: &RunResult, base: &RunResult) -> f64 {
    if base.ipc() == 0.0 {
        0.0
    } else {
        (x.ipc() / base.ipc() - 1.0) * 100.0
    }
}

/// Arithmetic mean.
#[must_use]
pub fn amean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Geometric mean of (1 + x/100) speedup percentages, returned as a
/// percentage (the paper reports geometric-mean speedups).
#[must_use]
pub fn gmean_speedup(pcts: &[f64]) -> f64 {
    if pcts.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = pcts.iter().map(|p| (1.0 + p / 100.0).max(1e-9).ln()).sum();
    ((log_sum / pcts.len() as f64).exp() - 1.0) * 100.0
}

/// A minimal aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(ToString::to_string).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means() {
        assert!((amean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(amean(&[]), 0.0);
        // gmean of +10% and -9.0909..% is ~0.
        let g = gmean_speedup(&[10.0, -9.090_909_090_9]);
        assert!(g.abs() < 1e-6, "{g}");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2.5".into()]);
        let r = t.render();
        assert!(r.contains("long-name"));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    fn harness_selects_benchmarks() {
        let mut h = Harness::default();
        assert_eq!(h.benchmarks().len(), 16);
        h.filter = Some("mcf".into());
        assert_eq!(h.benchmarks().len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_checks_width() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
