//! Parameter spaces: named axes over [`SimConfig`] fields.
//!
//! A [`ParamSpace`] is a declarative description of a set of labelled
//! configuration arms — the columns of a [`Sweep`](crate::Sweep) grid.
//! Spaces are built from [`Axis`] values (an axis names a config field
//! and the values to sweep it over) composed by **cross product**
//! ([`ParamSpace::cross`]: every existing arm × every axis point) or
//! **zipping** ([`ParamSpace::zip`]: pairwise, for fields that move
//! together, like Figure 6's 4K-entry IT requiring a 4K-register file),
//! and concatenated with [`ParamSpace::chain`] for irregular grids
//! ("the baseline, then the real arms").
//!
//! ```
//! use rix_bench::{Axis, ParamSpace};
//! use rix_sim::SimConfig;
//!
//! // Figure 6's IT-size axis: fully-associative tables of four sizes,
//! // the register file zipped to grow with the 4K point.
//! let arms = ParamSpace::base(SimConfig::default())
//!     .cross(&Axis::new("it_entries", [64u64, 256, 1024, 4096]))
//!     .zip(&Axis::new("it_ways", [64u64, 256, 1024, 4096]))
//!     .zip(&Axis::new("num_pregs", [1024u64, 1024, 1024, 4096]))
//!     .into_arms()
//!     .unwrap();
//! assert_eq!(arms.len(), 4);
//! assert_eq!(arms[0].0, "it_entries=64");
//! assert_eq!(arms[3].1.integration.it_entries, 4096);
//! assert_eq!(arms[3].1.num_pregs, 4096);
//! assert_eq!(arms[0].1.num_pregs, 1024);
//! ```
//!
//! Field paths resolve exactly like [`SimConfig::set_path`]: a full
//! dotted path (`"integration.it_entries"`) or an unambiguous leaf name
//! (`"it_entries"`). Errors — unknown fields, unknown presets, zip
//! length mismatches, duplicate labels — are deferred to
//! [`ParamSpace::into_arms`] (or the sweep's
//! [`try_run`](crate::Sweep::try_run)), so builder chains stay
//! infallible.

use rix_isa::json::Json;
use rix_sim::SimConfig;

/// One sweepable value: the JSON-typed scalars a config field can take.
#[derive(Clone, Debug, PartialEq)]
pub enum AxisValue {
    /// An unsigned integer (entries, widths, latencies, sizes).
    U64(u64),
    /// A flag (`enabled`, `shared_ldst`, …).
    Bool(bool),
    /// An enum name (`"oracle"`, `"stack_pointer"`, …).
    Str(String),
}

impl AxisValue {
    /// The value as the [`Json`] scalar [`SimConfig::set_path`] expects.
    #[must_use]
    pub fn to_json_value(&self) -> Json {
        match self {
            Self::U64(n) => Json::Num(n.to_string()),
            Self::Bool(b) => Json::Bool(*b),
            Self::Str(s) => Json::Str(s.clone()),
        }
    }

    /// The value as it appears in a default arm label.
    #[must_use]
    pub fn display(&self) -> String {
        match self {
            Self::U64(n) => n.to_string(),
            Self::Bool(b) => b.to_string(),
            Self::Str(s) => s.clone(),
        }
    }
}

impl From<u64> for AxisValue {
    fn from(n: u64) -> Self {
        Self::U64(n)
    }
}

impl From<u32> for AxisValue {
    fn from(n: u32) -> Self {
        Self::U64(u64::from(n))
    }
}

impl From<usize> for AxisValue {
    fn from(n: usize) -> Self {
        Self::U64(n as u64)
    }
}

impl From<bool> for AxisValue {
    fn from(b: bool) -> Self {
        Self::Bool(b)
    }
}

impl From<&str> for AxisValue {
    fn from(s: &str) -> Self {
        Self::Str(s.to_string())
    }
}

impl From<String> for AxisValue {
    fn from(s: String) -> Self {
        Self::Str(s)
    }
}

/// One point of an [`Axis`]: a label fragment plus what it does to the
/// configuration, applied in order — optional preset replacement, then
/// field assignments, then a partial-config JSON patch.
#[derive(Clone, Debug, Default)]
pub struct AxisPoint {
    /// The label fragment this point contributes to the arm label.
    pub label: String,
    /// Replace the whole configuration with this named preset first.
    pub preset: Option<String>,
    /// Then set these fields by path.
    pub sets: Vec<(String, Json)>,
    /// Then apply this partial-config object
    /// ([`SimConfig::apply_json`]).
    pub patch: Option<Json>,
    /// A construction error (e.g. malformed patch text) to surface when
    /// the space materialises.
    pub err: Option<String>,
}

impl AxisPoint {
    /// Applies the point to `cfg`, in preset → sets → patch order.
    fn apply(&self, cfg: &mut SimConfig) -> Result<(), String> {
        if let Some(e) = &self.err {
            return Err(e.clone());
        }
        if let Some(name) = &self.preset {
            *cfg = SimConfig::preset(name)?;
        }
        for (path, value) in &self.sets {
            cfg.set_path(path, value)?;
        }
        if let Some(patch) = &self.patch {
            cfg.apply_json(patch)?;
        }
        Ok(())
    }
}

/// A named axis: one config field (or one richer patch per point) and
/// the points to sweep it over.
#[derive(Clone, Debug)]
pub struct Axis {
    /// The axis name (used in error messages; the field path for
    /// [`Axis::new`] axes).
    pub name: String,
    /// The points, in sweep order.
    pub points: Vec<AxisPoint>,
}

impl Axis {
    /// An axis over one config field. `path` resolves like
    /// [`SimConfig::set_path`] (full dotted path or unambiguous leaf
    /// name); each point's default label fragment is `path=value`
    /// (override with [`Axis::with_labels`]).
    #[must_use]
    pub fn new(path: &str, values: impl IntoIterator<Item = impl Into<AxisValue>>) -> Self {
        let points = values
            .into_iter()
            .map(Into::into)
            .map(|v: AxisValue| AxisPoint {
                label: format!("{path}={}", v.display()),
                sets: vec![(path.to_string(), v.to_json_value())],
                ..AxisPoint::default()
            })
            .collect();
        Self { name: path.to_string(), points }
    }

    /// An axis whose points are named presets: `(label fragment, preset
    /// name)` pairs. Crossing a preset axis *replaces* the configuration
    /// at each point (later axes then modify it), which is how "the four
    /// Figure 4 arms" is one axis.
    #[must_use]
    pub fn presets<L: Into<String>, P: Into<String>>(
        name: &str,
        pairs: impl IntoIterator<Item = (L, P)>,
    ) -> Self {
        let points = pairs
            .into_iter()
            .map(|(l, p)| AxisPoint {
                label: l.into(),
                preset: Some(p.into()),
                ..AxisPoint::default()
            })
            .collect();
        Self { name: name.to_string(), points }
    }

    /// An axis whose points are partial-config JSON patches: `(label
    /// fragment, patch text)` pairs, each patch a (possibly partial)
    /// [`SimConfig`] object. Malformed patch text is reported when the
    /// space materialises.
    #[must_use]
    pub fn patches<L: Into<String>, P: Into<String>>(
        name: &str,
        pairs: impl IntoIterator<Item = (L, P)>,
    ) -> Self {
        let points = pairs
            .into_iter()
            .map(|(l, p)| {
                let text = p.into();
                match Json::parse(&text) {
                    Ok(patch) => AxisPoint {
                        label: l.into(),
                        patch: Some(patch),
                        ..AxisPoint::default()
                    },
                    Err(e) => AxisPoint {
                        label: l.into(),
                        err: Some(format!("malformed patch: {e}")),
                        ..AxisPoint::default()
                    },
                }
            })
            .collect();
        Self { name: name.to_string(), points }
    }

    /// Replaces the label fragments (must match the point count).
    ///
    /// # Panics
    ///
    /// Panics when the label count differs from the point count — a
    /// static construction bug, not a data error.
    #[must_use]
    pub fn with_labels(mut self, labels: impl IntoIterator<Item = impl Into<String>>) -> Self {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        assert_eq!(
            labels.len(),
            self.points.len(),
            "axis `{}`: {} labels for {} points",
            self.name,
            labels.len(),
            self.points.len()
        );
        for (p, l) in self.points.iter_mut().zip(labels) {
            p.label = l;
        }
        self
    }
}

/// Joins two arm-label fragments: empty fragments vanish, fragments
/// opening with punctuation (`"*"`, `"+i"`, `":off"`) glue directly as
/// suffixes, everything else joins with `/`.
#[must_use]
pub fn join_labels(a: &str, b: &str) -> String {
    if a.is_empty() {
        return b.to_string();
    }
    if b.is_empty() {
        return a.to_string();
    }
    if b.starts_with(|c: char| !c.is_ascii_alphanumeric()) {
        format!("{a}{b}")
    } else {
        format!("{a}/{b}")
    }
}

/// A set of labelled [`SimConfig`] arms under construction. See the
/// [module docs](self).
#[derive(Clone, Debug)]
pub struct ParamSpace {
    inner: Result<Vec<(String, SimConfig)>, String>,
}

impl ParamSpace {
    /// A single unlabelled arm: the canvas [`ParamSpace::cross`] draws
    /// on (the first crossed axis's fragments become the labels).
    #[must_use]
    pub fn base(cfg: SimConfig) -> Self {
        Self { inner: Ok(vec![(String::new(), cfg)]) }
    }

    /// A single labelled arm.
    #[must_use]
    pub fn point(label: impl Into<String>, cfg: SimConfig) -> Self {
        Self { inner: Ok(vec![(label.into(), cfg)]) }
    }

    /// A space that reports `err` when it materialises — how fallible
    /// space *construction* (a bad group base in a spec, say) defers
    /// its error to [`ParamSpace::into_arms`] like every other
    /// construction problem.
    #[must_use]
    pub fn invalid(err: impl Into<String>) -> Self {
        Self { inner: Err(err.into()) }
    }

    /// One arm per `(label, preset name)` pair.
    #[must_use]
    pub fn presets<L: Into<String>, P: AsRef<str>>(
        pairs: impl IntoIterator<Item = (L, P)>,
    ) -> Self {
        let mut arms = Vec::new();
        for (label, preset) in pairs {
            match SimConfig::preset(preset.as_ref()) {
                Ok(cfg) => arms.push((label.into(), cfg)),
                Err(e) => return Self::invalid(e),
            }
        }
        Self { inner: Ok(arms) }
    }

    /// Cross product: every current arm × every point of `axis`, in
    /// arm-major order, labels joined by [`join_labels`].
    #[must_use]
    pub fn cross(self, axis: &Axis) -> Self {
        let Ok(arms) = self.inner else { return self };
        let mut out = Vec::with_capacity(arms.len() * axis.points.len());
        for (label, cfg) in &arms {
            for point in &axis.points {
                let mut cfg = *cfg;
                if let Err(e) = point.apply(&mut cfg) {
                    return Self {
                        inner: Err(format!("axis `{}`, point `{}`: {e}", axis.name, point.label)),
                    };
                }
                out.push((join_labels(label, &point.label), cfg));
            }
        }
        Self { inner: Ok(out) }
    }

    /// Zip: applies `axis`'s points to the current arms **pairwise**
    /// (point *i* onto arm *i*), for fields that move together along an
    /// existing axis. The point count must match the arm count; zipped
    /// labels are kept from the existing arms (the zipped field is a
    /// dependent detail, not a new dimension).
    #[must_use]
    pub fn zip(self, axis: &Axis) -> Self {
        let Ok(arms) = self.inner else { return self };
        if arms.len() != axis.points.len() {
            return Self {
                inner: Err(format!(
                    "axis `{}` zips {} points onto {} arms: zip requires equal lengths",
                    axis.name,
                    axis.points.len(),
                    arms.len()
                )),
            };
        }
        let mut out = Vec::with_capacity(arms.len());
        for ((label, cfg), point) in arms.iter().zip(&axis.points) {
            let mut cfg = *cfg;
            if let Err(e) = point.apply(&mut cfg) {
                return Self {
                    inner: Err(format!("axis `{}`, point `{}`: {e}", axis.name, point.label)),
                };
            }
            out.push((label.clone(), cfg));
        }
        Self { inner: Ok(out) }
    }

    /// Concatenates another space's arms after this one's (irregular
    /// grids: "the baseline arm, then the swept arms").
    #[must_use]
    pub fn chain(self, other: ParamSpace) -> Self {
        match (self.inner, other.inner) {
            (Ok(mut a), Ok(b)) => {
                a.extend(b);
                Self { inner: Ok(a) }
            }
            (Err(e), _) | (_, Err(e)) => Self { inner: Err(e) },
        }
    }

    /// Materialises the arms: every `(label, config)` pair in order, or
    /// the first deferred construction error.
    pub fn into_arms(self) -> Result<Vec<(String, SimConfig)>, String> {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rix_integration::Suppression;

    #[test]
    fn scalar_axis_crosses_with_default_labels() {
        let arms = ParamSpace::base(SimConfig::default())
            .cross(&Axis::new("it_entries", [256u64, 1024]))
            .cross(&Axis::new("gen_bits", [1u32, 4]))
            .into_arms()
            .unwrap();
        assert_eq!(arms.len(), 4);
        assert_eq!(arms[0].0, "it_entries=256/gen_bits=1");
        assert_eq!(arms[3].0, "it_entries=1024/gen_bits=4");
        assert_eq!(arms[1].1.integration.it_entries, 256);
        assert_eq!(arms[1].1.integration.gen_bits, 4);
    }

    #[test]
    fn preset_axis_replaces_then_later_axes_modify() {
        let oracle = Axis::patches(
            "suppression",
            [("", "{}"), ("*", r#"{"integration":{"suppression":"oracle"}}"#)],
        );
        let arms = ParamSpace::base(SimConfig::default())
            .cross(&Axis::presets("arm", [("squash", "squash_reuse"), ("+reverse", "plus_reverse")]))
            .cross(&oracle)
            .into_arms()
            .unwrap();
        let labels: Vec<&str> = arms.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["squash", "squash*", "+reverse", "+reverse*"]);
        assert_eq!(arms[1].1.integration.suppression, Suppression::Oracle);
        assert!(!arms[1].1.integration.general_reuse, "preset survived the patch");
        assert_eq!(arms[2].1.integration.suppression, Suppression::Lisp);
    }

    #[test]
    fn zip_requires_matching_lengths() {
        let err = ParamSpace::base(SimConfig::default())
            .cross(&Axis::new("it_entries", [64u64, 256]))
            .zip(&Axis::new("num_pregs", [1024u64, 1024, 4096]))
            .into_arms()
            .unwrap_err();
        assert!(err.contains("zip"), "{err}");
        assert!(err.contains("3 points onto 2 arms"), "{err}");
    }

    #[test]
    fn errors_are_deferred_and_name_the_axis() {
        let err = ParamSpace::base(SimConfig::default())
            .cross(&Axis::new("it_entrees", [64u64]))
            .into_arms()
            .unwrap_err();
        assert!(err.contains("axis `it_entrees`"), "{err}");
        assert!(err.contains("it_entries"), "suggests the real field: {err}");

        let err = ParamSpace::presets([("x", "no_such_preset")]).into_arms().unwrap_err();
        assert!(err.contains("unknown preset"), "{err}");

        let err = ParamSpace::base(SimConfig::default())
            .cross(&Axis::patches("p", [("bad", "{not json")]))
            .into_arms()
            .unwrap_err();
        assert!(err.contains("malformed patch"), "{err}");
    }

    #[test]
    fn chain_concatenates() {
        let arms = ParamSpace::point("base", SimConfig::baseline())
            .chain(
                ParamSpace::base(SimConfig::default())
                    .cross(&Axis::new("pipeline_depth", [0u64, 4])),
            )
            .into_arms()
            .unwrap();
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].0, "base");
        assert!(!arms[0].1.integration.enabled);
        assert_eq!(arms[2].1.integration.pipeline_depth, 4);
    }

    #[test]
    fn join_label_rules() {
        assert_eq!(join_labels("", "base"), "base");
        assert_eq!(join_labels("RS", ""), "RS");
        assert_eq!(join_labels("RS", "+i"), "RS+i");
        assert_eq!(join_labels("squash", "*"), "squash*");
        assert_eq!(join_labels("a", "b"), "a/b");
    }
}
