//! Experiment specs: serializable experiment descriptions (schema
//! `rix-exp/1`) and the engine that runs them.
//!
//! An [`ExperimentSpec`] is the whole experiment as **data**: which
//! benchmarks, a parameter space of labelled configuration arms
//! (presets + overrides + axes — see [`crate::space`]), the
//! warm-up/measurement/seed policy, and an optional stop condition. The
//! five figure binaries are committed spec files under `specs/` driving
//! this one engine; `exp run spec.json` runs any spec from the command
//! line.
//!
//! ```json
//! {
//!   "schema": "rix-exp/1",
//!   "name": "it-size",
//!   "benchmarks": ["gcc", "vortex"],
//!   "instructions": 20000,
//!   "warmup": 30000,
//!   "warmup_mode": "functional",
//!   "seed": 7,
//!   "arms": [
//!     {"label": "base", "preset": "base"},
//!     {"preset": "plus_reverse",
//!      "axes": [{"path": "it_entries", "values": [256, 1024, 4096],
//!                "labels": ["256", "1K", "4K"]}]}
//!   ]
//! }
//! ```
//!
//! Every entry of `"arms"` is a **group**: an optional label, an
//! optional starting `preset` (default: the `default` machine), an
//! optional partial-config `overrides` object, and optional `axes`.
//! Each axis either sweeps one config field (`path` + `values` +
//! optional `labels`) or lists richer `points` (`label` + `preset` +
//! `overrides`); axes compose by cross product, or pairwise with
//! `"zip": true`. Group arms are concatenated in order.
//!
//! Parsing is strict: unknown keys anywhere, unknown presets, unknown
//! config fields and unknown benchmark names are rejected with messages
//! that name the offender (benchmark typos suggest the closest
//! workload, exactly like `--bench`).
//!
//! Reproducibility: [`ExperimentSpec::to_json`] is a canonical
//! re-serialisation (sugar desugared, defaults filled, benchmark list
//! resolved) and [`ExperimentSpec::fingerprint`] hashes it; `exp`'s
//! JSON results embed both, so a result file names exactly the
//! experiment that produced it. Execution details (thread count, output
//! paths) are deliberately **not** part of the spec or the fingerprint.

use crate::space::{Axis, AxisPoint, ParamSpace};
use crate::{Harness, Sweep, Trial, WarmupMode};
use rix_isa::json::{unknown_key, Json};
use rix_sim::{SimConfig, StopWhen};
use rix_workloads::Benchmark;

/// One `"arms"` group: a labelled base configuration and the axes swept
/// over it.
#[derive(Clone, Debug)]
pub struct ArmGroup {
    /// Label prefix for every arm of the group (may be empty).
    pub label: String,
    /// Starting preset (default: the `default` machine).
    pub preset: Option<String>,
    /// Partial-config overrides applied to the base.
    pub overrides: Option<Json>,
    /// Axes composed over the base (cross product, or pairwise when an
    /// axis zips).
    pub axes: Vec<SpecAxis>,
}

/// One axis of an [`ArmGroup`], desugared to labelled points.
#[derive(Clone, Debug)]
pub struct SpecAxis {
    /// Axis name (error messages; defaults to the path for field axes).
    pub name: String,
    /// `true`: apply points pairwise onto the group's current arms
    /// instead of crossing.
    pub zip: bool,
    /// The labelled points.
    pub points: Vec<AxisPoint>,
}

/// A parsed `rix-exp/1` experiment spec. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct ExperimentSpec {
    /// Experiment name (reports, result records).
    pub name: Option<String>,
    /// Free-text description (carried, not interpreted).
    pub description: Option<String>,
    /// The resolved benchmark rows.
    pub benchmarks: Vec<Benchmark>,
    /// Retired instructions measured per cell (ignored when `stop` is
    /// set).
    pub instructions: u64,
    /// Warm-up instructions discarded before measuring.
    pub warmup: u64,
    /// How the warm-up executes.
    pub warmup_mode: WarmupMode,
    /// Workload generator seed.
    pub seed: u64,
    /// Optional measurement stop condition replacing the instruction
    /// budget.
    pub stop: Option<StopWhen>,
    /// The arm groups, in order.
    pub groups: Vec<ArmGroup>,
}

const SPEC_KEYS: &[&str] = &[
    "schema",
    "name",
    "description",
    "benchmarks",
    "instructions",
    "warmup",
    "warmup_mode",
    "seed",
    "stop",
    "arms",
];
const GROUP_KEYS: &[&str] = &["label", "preset", "overrides", "axes"];
const AXIS_KEYS: &[&str] = &["name", "zip", "path", "values", "labels", "points"];
const POINT_KEYS: &[&str] = &["label", "preset", "overrides"];

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("key `{key}` must be a string"))
}

impl ExperimentSpec {
    /// Reads a spec from a file.
    pub fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read spec `{path}`: {e}"))?;
        Self::from_json(&text).map_err(|e| format!("spec `{path}`: {e}"))
    }

    /// Parses a `rix-exp/1` document. Strict: unknown keys, presets,
    /// fields and benchmark names are errors naming the offender.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Json::parse(text)?;
        let Json::Obj(fields) = &v else {
            return Err("an experiment spec must be a JSON object".to_string());
        };
        match v.get("schema").and_then(Json::as_str) {
            Some("rix-exp/1") => {}
            Some(other) => {
                return Err(format!(
                    "unsupported spec schema `{other}` (this build reads `rix-exp/1`)"
                ))
            }
            None => return Err("missing `\"schema\": \"rix-exp/1\"`".to_string()),
        }
        let mut spec = Self {
            name: None,
            description: None,
            benchmarks: rix_workloads::all_benchmarks(),
            instructions: 100_000,
            warmup: 0,
            warmup_mode: WarmupMode::Detailed,
            seed: 7,
            stop: None,
            groups: Vec::new(),
        };
        let mut saw_arms = false;
        for (k, val) in fields {
            match k.as_str() {
                "schema" => {}
                "name" => spec.name = Some(str_field(&v, k)?),
                "description" => spec.description = Some(str_field(&v, k)?),
                "benchmarks" => spec.benchmarks = parse_benchmarks(val)?,
                "instructions" => {
                    spec.instructions =
                        val.as_u64().ok_or("key `instructions` must be an unsigned integer")?;
                }
                "warmup" => {
                    spec.warmup =
                        val.as_u64().ok_or("key `warmup` must be an unsigned integer")?;
                }
                "warmup_mode" => spec.warmup_mode = parse_warmup_mode(val)?,
                "seed" => {
                    spec.seed = val.as_u64().ok_or("key `seed` must be an unsigned integer")?;
                }
                "stop" => {
                    spec.stop = Some(
                        StopWhen::from_json_value(val).map_err(|e| format!("stop: {e}"))?,
                    );
                }
                "arms" => {
                    saw_arms = true;
                    let arr = val.as_arr().ok_or("key `arms` must be an array of groups")?;
                    spec.groups = arr
                        .iter()
                        .enumerate()
                        .map(|(i, g)| parse_group(g).map_err(|e| format!("arms[{i}]: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                other => return Err(unknown_key(other, SPEC_KEYS)),
            }
        }
        if !saw_arms || spec.groups.is_empty() {
            return Err("a spec needs a non-empty `arms` array".to_string());
        }
        // Materialise the arms once so preset/field errors fail the
        // parse, not the run.
        spec.arms()?;
        Ok(spec)
    }

    /// The labelled configuration arms, in order.
    pub fn arms(&self) -> Result<Vec<(String, SimConfig)>, String> {
        self.space().into_arms()
    }

    /// The spec's arms as a composable [`ParamSpace`].
    #[must_use]
    pub fn space(&self) -> ParamSpace {
        let mut groups = self.groups.iter();
        let mut space = match groups.next() {
            Some(g) => group_space(g),
            None => ParamSpace::invalid("a spec needs a non-empty `arms` array"),
        };
        for g in groups {
            space = space.chain(group_space(g));
        }
        space
    }

    /// Canonical re-serialisation: sugar desugared, defaults filled,
    /// benchmarks resolved to an explicit list. Two specs that mean the
    /// same experiment serialise identically; this is what
    /// [`ExperimentSpec::fingerprint`] hashes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, Json)> =
            vec![("schema".into(), Json::Str("rix-exp/1".into()))];
        if let Some(n) = &self.name {
            fields.push(("name".into(), Json::Str(n.clone())));
        }
        if let Some(d) = &self.description {
            fields.push(("description".into(), Json::Str(d.clone())));
        }
        fields.push((
            "benchmarks".into(),
            Json::Arr(self.benchmarks.iter().map(|b| Json::Str(b.name.into())).collect()),
        ));
        fields.push(("instructions".into(), Json::Num(self.instructions.to_string())));
        fields.push(("warmup".into(), Json::Num(self.warmup.to_string())));
        fields.push(("warmup_mode".into(), warmup_mode_json(&self.warmup_mode)));
        fields.push(("seed".into(), Json::Num(self.seed.to_string())));
        if let Some(stop) = &self.stop {
            let parsed =
                Json::parse(&stop.to_json()).expect("StopWhen::to_json is well-formed");
            fields.push(("stop".into(), parsed));
        }
        fields.push(("arms".into(), Json::Arr(self.groups.iter().map(group_json).collect())));
        Json::Obj(fields).dump()
    }

    /// The spec's primary fingerprint: 128-bit FNV-1a (with a trailing
    /// length fold — see [`rix_dispatch::hash`]) over the canonical
    /// serialisation [`ExperimentSpec::to_json`]. Embedded in result
    /// records so a result names the exact experiment (benchmarks,
    /// arms, budgets, seed; not execution details like thread or worker
    /// counts) that produced it.
    ///
    /// 64 bits were enough to *distinguish* experiments by eye but not
    /// to key long-lived artifact stores: with the trial cache keeping
    /// content-addressed results around indefinitely, collision
    /// probability has to stay negligible across every spec anyone ever
    /// writes, hence 128 bits. The legacy 64-bit value remains readable
    /// as [`ExperimentSpec::fingerprint`] (and is still emitted in
    /// result documents as `spec_fingerprint_fnv64`) so result files
    /// written by older builds can be matched during migration.
    #[must_use]
    pub fn fingerprint128(&self) -> u128 {
        rix_dispatch::hash::fnv128(self.to_json().as_bytes())
    }

    /// The **legacy** 64-bit FNV-1a fingerprint of the canonical
    /// serialisation — kept (same algorithm, same values as historical
    /// result files) so old `spec_fingerprint` strings stay matchable.
    /// New consumers should use [`ExperimentSpec::fingerprint128`].
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.to_json().bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// [`ExperimentSpec::fingerprint128`] as the `0x…` string used in
    /// reports and result records (34 characters: `0x` + 32 hex digits).
    #[must_use]
    pub fn fingerprint_hex(&self) -> String {
        format!("{:#034x}", self.fingerprint128())
    }

    /// Overrides the spec's parameters with the harness flags the user
    /// gave **explicitly** (tracked by [`crate::GivenFlags`]); defaults
    /// never override the spec. Execution-side flags (threads, filter,
    /// output) are consumed by [`ExperimentSpec::sweep`] instead.
    ///
    /// An explicit `--instructions` also clears the spec's `stop`
    /// condition: a stop condition takes measurement precedence over
    /// the budget, so leaving it in place would make the flag accepted
    /// but inert.
    pub fn apply_harness(&mut self, h: &Harness) {
        if h.given.instructions {
            self.instructions = h.instructions;
            self.stop = None;
        }
        if h.given.seed {
            self.seed = h.seed;
        }
        if h.given.warmup {
            self.warmup = h.warmup;
        }
        if h.given.warmup_mode {
            self.warmup_mode = h.warmup_mode.clone();
        }
    }

    /// The configured [`Sweep`] for this spec: spec benchmarks (narrowed
    /// by the harness `--bench` filter), spec arms, spec policy, harness
    /// thread count.
    #[must_use]
    pub fn sweep(&self, h: &Harness) -> Sweep {
        let benches = self
            .benchmarks
            .iter()
            .filter(|b| h.filter.as_deref().is_none_or(|f| f.eq_ignore_ascii_case(b.name)))
            .copied();
        let mut sweep = Sweep::new()
            .benchmarks(benches)
            .space(self.space())
            .instructions(self.instructions)
            .warmup(self.warmup)
            .warmup_mode(self.warmup_mode.clone())
            .seed(self.seed)
            .threads(h.threads);
        if let Some(stop) = &self.stop {
            sweep = sweep.stop(stop.clone());
        }
        sweep
    }

    /// Parses an embedded spec, applies the harness overrides, and runs
    /// it on the shared engine — the whole body of a spec-driven figure
    /// binary. `--workers`/`--cache`/`--listen` route through the
    /// distributed dispatcher (trials stay byte-identical; the dispatch
    /// summary goes to stderr). Prints the error and exits with status
    /// 2 when the spec is invalid (a broken committed spec) or the
    /// sweep fails.
    #[must_use]
    pub fn run_embedded(text: &str, h: &Harness) -> (Self, Vec<Trial>) {
        let run = || -> Result<(Self, Vec<Trial>), String> {
            let mut spec = Self::from_json(text)?;
            spec.apply_harness(h);
            let sweep = spec.sweep(h);
            let trials = if h.workers > 0 || h.cache.is_some() || h.listen.is_some() {
                let (trials, report) =
                    sweep.run_distributed(&crate::DispatchOptions::from_harness(h))?;
                eprintln!("dispatch: {}", report.summary());
                if h.verbose {
                    eprint!("{}", report.worker_table());
                }
                trials
            } else {
                sweep.try_run()?
            };
            Ok((spec, trials))
        };
        match run() {
            Ok(out) => out,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }
}

fn parse_benchmarks(v: &Json) -> Result<Vec<Benchmark>, String> {
    match v {
        Json::Str(s) if s == "all" => Ok(rix_workloads::all_benchmarks()),
        Json::Arr(items) => {
            if items.is_empty() {
                return Err("benchmarks: the list must not be empty (use \"all\" for every \
                            workload)"
                    .to_string());
            }
            items
                .iter()
                .map(|item| {
                    let name = item
                        .as_str()
                        .ok_or_else(|| "benchmarks: entries must be strings".to_string())?;
                    rix_workloads::lookup(name).map_err(|e| format!("benchmarks: {e}"))
                })
                .collect()
        }
        _ => Err("key `benchmarks` must be \"all\" or an array of names".to_string()),
    }
}

/// The canonical JSON encoding of a warm-up mode (`"detailed"`,
/// `"functional"`, or `{"checkpoint":{"dir":…}}`) — shared by spec
/// serialisation and the dispatch plan; [`parse_warmup_mode`] is its
/// inverse.
pub(crate) fn warmup_mode_json(mode: &WarmupMode) -> Json {
    match mode {
        WarmupMode::Checkpoint { dir } => Json::Obj(vec![(
            "checkpoint".into(),
            Json::Obj(vec![("dir".into(), Json::Str(dir.clone()))]),
        )]),
        other => Json::Str(other.name().into()),
    }
}

pub(crate) fn parse_warmup_mode(v: &Json) -> Result<WarmupMode, String> {
    match v {
        Json::Str(s) => match s.as_str() {
            "detailed" => Ok(WarmupMode::Detailed),
            "functional" => Ok(WarmupMode::Functional),
            other => Err(format!(
                "unknown warmup_mode `{other}` (expected `detailed`, `functional` or \
                 {{\"checkpoint\":{{\"dir\":…}}}})"
            )),
        },
        Json::Obj(fields) => {
            let ck = v.req("checkpoint").map_err(|_| {
                "warmup_mode object form must be {\"checkpoint\":{\"dir\":…}}".to_string()
            })?;
            if fields.len() != 1 {
                return Err("warmup_mode object form must have exactly the `checkpoint` key"
                    .to_string());
            }
            if let Json::Obj(ck_fields) = ck {
                for (k, _) in ck_fields {
                    if k != "dir" {
                        return Err(format!(
                            "warmup_mode.checkpoint: {}",
                            unknown_key(k, &["dir"])
                        ));
                    }
                }
            }
            let dir =
                str_field(ck, "dir").map_err(|e| format!("warmup_mode.checkpoint: {e}"))?;
            Ok(WarmupMode::Checkpoint { dir })
        }
        _ => Err("key `warmup_mode` must be a string or a {\"checkpoint\":…} object"
            .to_string()),
    }
}

fn parse_group(v: &Json) -> Result<ArmGroup, String> {
    let Json::Obj(fields) = v else {
        return Err("each arms entry must be a JSON object".to_string());
    };
    let mut group =
        ArmGroup { label: String::new(), preset: None, overrides: None, axes: Vec::new() };
    for (k, val) in fields {
        match k.as_str() {
            "label" => group.label = str_field(v, k)?,
            "preset" => {
                let name = str_field(v, k)?;
                SimConfig::preset(&name)?; // fail at parse, with the full message
                group.preset = Some(name);
            }
            "overrides" => {
                // Validate eagerly against a scratch config so unknown
                // fields are named at parse time.
                SimConfig::default().apply_json(val).map_err(|e| format!("overrides: {e}"))?;
                group.overrides = Some(val.clone());
            }
            "axes" => {
                let arr = val.as_arr().ok_or("key `axes` must be an array")?;
                group.axes = arr
                    .iter()
                    .enumerate()
                    .map(|(i, a)| parse_axis(a).map_err(|e| format!("axes[{i}]: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(unknown_key(other, GROUP_KEYS)),
        }
    }
    Ok(group)
}

fn parse_axis(v: &Json) -> Result<SpecAxis, String> {
    let Json::Obj(fields) = v else {
        return Err("each axis must be a JSON object".to_string());
    };
    for (k, _) in fields {
        if !AXIS_KEYS.contains(&k.as_str()) {
            return Err(unknown_key(k, AXIS_KEYS));
        }
    }
    let zip = match v.get("zip") {
        None => false,
        Some(z) => z.as_bool().ok_or("key `zip` must be a boolean")?,
    };
    let explicit_name = v.get("name").map(|_| str_field(v, "name")).transpose()?;

    if let Some(path_v) = v.get("path") {
        let path = path_v.as_str().ok_or("key `path` must be a string")?.to_string();
        // Resolve now: a typo in a committed spec should fail its parse.
        let full = SimConfig::resolve_path(&path)?;
        let values = v
            .get("values")
            .and_then(Json::as_arr)
            .ok_or("a `path` axis needs a `values` array")?;
        if values.is_empty() {
            return Err(format!("axis over `{path}` has no values"));
        }
        let labels: Option<Vec<String>> = match v.get("labels") {
            None => None,
            Some(l) => Some(
                l.as_arr()
                    .ok_or("key `labels` must be an array of strings")?
                    .iter()
                    .map(|s| {
                        s.as_str().map(str::to_string).ok_or_else(|| {
                            "key `labels` must be an array of strings".to_string()
                        })
                    })
                    .collect::<Result<_, _>>()?,
            ),
        };
        if let Some(labels) = &labels {
            if labels.len() != values.len() {
                return Err(format!(
                    "axis over `{path}`: {} labels for {} values",
                    labels.len(),
                    values.len()
                ));
            }
        }
        if zip && labels.is_some() {
            return Err(format!(
                "axis over `{path}`: a zipped axis keeps the existing arms' labels, so \
                 `labels` would be ignored — remove it"
            ));
        }
        let points = values
            .iter()
            .enumerate()
            .map(|(i, value)| {
                if !matches!(value, Json::Num(_) | Json::Bool(_) | Json::Str(_)) {
                    return Err(format!("axis over `{path}`: values must be scalars"));
                }
                let label = if zip {
                    String::new()
                } else {
                    labels.as_ref().map_or_else(
                        || format!("{path}={}", value.dump().trim_matches('"')),
                        |l| l[i].clone(),
                    )
                };
                Ok(AxisPoint {
                    label,
                    sets: vec![(full.to_string(), value.clone())],
                    ..AxisPoint::default()
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        return Ok(SpecAxis { name: explicit_name.unwrap_or(path), zip, points });
    }

    let points_v = v
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("an axis needs either `path`+`values` or a `points` array")?;
    if points_v.is_empty() {
        return Err("an axis `points` array must not be empty".to_string());
    }
    let points = points_v
        .iter()
        .enumerate()
        .map(|(i, p)| parse_point(p).map_err(|e| format!("points[{i}]: {e}")))
        .collect::<Result<Vec<_>, _>>()?;
    if zip && points.iter().any(|p| !p.label.is_empty()) {
        return Err("a zipped axis keeps the existing arms' labels, so point `label`s would \
                    be ignored — remove them"
            .to_string());
    }
    Ok(SpecAxis { name: explicit_name.unwrap_or_else(|| "points".to_string()), zip, points })
}

fn parse_point(v: &Json) -> Result<AxisPoint, String> {
    let Json::Obj(fields) = v else {
        return Err("each point must be a JSON object".to_string());
    };
    let mut point = AxisPoint::default();
    for (k, val) in fields {
        match k.as_str() {
            "label" => point.label = str_field(v, k)?,
            "preset" => {
                let name = str_field(v, k)?;
                SimConfig::preset(&name)?;
                point.preset = Some(name);
            }
            "overrides" => {
                SimConfig::default().apply_json(val).map_err(|e| format!("overrides: {e}"))?;
                point.patch = Some(val.clone());
            }
            other => return Err(unknown_key(other, POINT_KEYS)),
        }
    }
    Ok(point)
}

fn group_space(g: &ArmGroup) -> ParamSpace {
    let base = match &g.preset {
        Some(name) => SimConfig::preset(name),
        None => Ok(SimConfig::default()),
    };
    let base = base.and_then(|mut cfg| {
        if let Some(ov) = &g.overrides {
            cfg.apply_json(ov)?;
        }
        Ok(cfg)
    });
    let mut space = match base {
        Ok(cfg) => {
            if g.label.is_empty() {
                ParamSpace::base(cfg)
            } else {
                ParamSpace::point(g.label.clone(), cfg)
            }
        }
        // Propagate the base-config error (an unknown preset name or a
        // bad override reports with its own message).
        Err(e) => return ParamSpace::invalid(e),
    };
    for axis in &g.axes {
        let a = Axis { name: axis.name.clone(), points: axis.points.clone() };
        space = if axis.zip { space.zip(&a) } else { space.cross(&a) };
    }
    space
}

/// Recursively sorts object keys (stable, so duplicate keys keep their
/// last-wins apply order), making the canonical serialisation — and
/// therefore the fingerprint — independent of the key order an author
/// happened to write inside an overrides block.
fn sort_keys(v: &mut Json) {
    match v {
        Json::Obj(fields) => {
            fields.sort_by(|(a, _), (b, _)| a.cmp(b));
            for (_, val) in fields {
                sort_keys(val);
            }
        }
        Json::Arr(items) => {
            for item in items {
                sort_keys(item);
            }
        }
        _ => {}
    }
}

/// Deep-merges JSON object `b` into `acc` (objects merge key-wise and
/// recursively, anything else overwrites) — how a point's field
/// assignments and patch collapse into one canonical overrides object.
fn merge_into(acc: &mut Option<Json>, b: &Json) {
    match acc {
        None => *acc = Some(b.clone()),
        Some(a) => merge_json(a, b),
    }
}

fn merge_json(a: &mut Json, b: &Json) {
    if let (Json::Obj(af), Json::Obj(bf)) = (&mut *a, b) {
        for (bk, bv) in bf {
            match af.iter_mut().find(|(ak, _)| ak == bk) {
                Some((_, av)) => merge_json(av, bv),
                None => af.push((bk.clone(), bv.clone())),
            }
        }
    } else {
        *a = b.clone();
    }
}

fn group_json(g: &ArmGroup) -> Json {
    let mut fields = Vec::new();
    if !g.label.is_empty() {
        fields.push(("label".to_string(), Json::Str(g.label.clone())));
    }
    if let Some(p) = &g.preset {
        fields.push(("preset".to_string(), Json::Str(p.clone())));
    }
    if let Some(o) = &g.overrides {
        let mut o = o.clone();
        sort_keys(&mut o);
        fields.push(("overrides".to_string(), o));
    }
    if !g.axes.is_empty() {
        let axes = g
            .axes
            .iter()
            .map(|a| {
                let mut f = vec![("name".to_string(), Json::Str(a.name.clone()))];
                if a.zip {
                    f.push(("zip".to_string(), Json::Bool(true)));
                }
                let points = a
                    .points
                    .iter()
                    .map(|p| {
                        let mut pf = vec![("label".to_string(), Json::Str(p.label.clone()))];
                        if let Some(pr) = &p.preset {
                            pf.push(("preset".to_string(), Json::Str(pr.clone())));
                        }
                        // Canonical form carries everything a point does
                        // to the config as one overrides object: field
                        // assignments (`sets`, possibly built
                        // programmatically via `Axis::new`) wrapped to
                        // their full paths, then the patch on top —
                        // the same order `AxisPoint::apply` uses.
                        let mut overrides: Option<Json> = None;
                        for (path, value) in &p.sets {
                            let full = SimConfig::resolve_path(path).unwrap_or(path.as_str());
                            let mut wrapped = value.clone();
                            for seg in full.rsplit('.') {
                                wrapped = Json::Obj(vec![(seg.to_string(), wrapped)]);
                            }
                            merge_into(&mut overrides, &wrapped);
                        }
                        if let Some(patch) = &p.patch {
                            merge_into(&mut overrides, patch);
                        }
                        if let Some(mut ov) = overrides {
                            sort_keys(&mut ov);
                            pf.push(("overrides".to_string(), ov));
                        }
                        Json::Obj(pf)
                    })
                    .collect();
                f.push(("points".to_string(), Json::Arr(points)));
                Json::Obj(f)
            })
            .collect();
        fields.push(("axes".to_string(), Json::Arr(axes)));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r#"{
        "schema": "rix-exp/1",
        "name": "mini",
        "benchmarks": ["gcc", "vortex"],
        "instructions": 2000,
        "seed": 7,
        "arms": [
            {"label": "base", "preset": "base"},
            {"preset": "plus_reverse",
             "axes": [{"path": "it_entries", "values": [256, 1024],
                       "labels": ["256", "1K"]}]}
        ]
    }"#;

    #[test]
    fn parses_and_materialises_arms() {
        let spec = ExperimentSpec::from_json(MINI).unwrap();
        assert_eq!(spec.name.as_deref(), Some("mini"));
        assert_eq!(spec.benchmarks.len(), 2);
        assert_eq!(spec.instructions, 2000);
        let arms = spec.arms().unwrap();
        let labels: Vec<&str> = arms.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["base", "256", "1K"]);
        assert!(!arms[0].1.integration.enabled);
        assert_eq!(arms[1].1.integration.it_entries, 256);
        assert_eq!(arms[2].1.integration.it_entries, 1024);
    }

    #[test]
    fn canonical_json_and_fingerprint_are_stable() {
        let spec = ExperimentSpec::from_json(MINI).unwrap();
        let canon = spec.to_json();
        // Reparsing the canonical form is a fixed point.
        let again = ExperimentSpec::from_json(&canon).unwrap();
        assert_eq!(again.to_json(), canon);
        assert_eq!(again.fingerprint(), spec.fingerprint());
        // Whitespace does not change the experiment's identity...
        let squashed = MINI.replace("\n        ", "");
        let same = ExperimentSpec::from_json(&squashed).unwrap();
        assert_eq!(same.fingerprint(), spec.fingerprint());
        // ...but any parameter does.
        let other = ExperimentSpec::from_json(&MINI.replace("2000", "2001")).unwrap();
        assert_ne!(other.fingerprint(), spec.fingerprint());
        assert!(spec.fingerprint_hex().starts_with("0x"));
    }

    #[test]
    fn unknown_keys_are_named_at_every_level() {
        let err =
            ExperimentSpec::from_json(&MINI.replace("\"seed\"", "\"sede\"")).unwrap_err();
        assert!(err.contains("unknown key `sede`"), "{err}");
        assert!(err.contains("did you mean `seed`?"), "{err}");

        let err = ExperimentSpec::from_json(
            &MINI.replace("\"preset\": \"base\"", "\"prest\": \"base\""),
        )
        .unwrap_err();
        assert!(err.contains("arms[0]"), "{err}");
        assert!(err.contains("unknown key `prest`"), "{err}");

        let err =
            ExperimentSpec::from_json(&MINI.replace("\"path\"", "\"paht\"")).unwrap_err();
        assert!(err.contains("axes[0]"), "{err}");
        assert!(err.contains("unknown key `paht`"), "{err}");
    }

    #[test]
    fn bad_preset_and_bad_benchmark_are_actionable() {
        let err = ExperimentSpec::from_json(&MINI.replace("plus_reverse", "plus_revers"))
            .unwrap_err();
        assert!(err.contains("unknown preset `plus_revers`"), "{err}");
        assert!(err.contains("did you mean `plus_reverse`?"), "{err}");

        // The `--bench`-style suggestion path fires from spec benchmark
        // lists too.
        let err = ExperimentSpec::from_json(&MINI.replace("vortex", "vortx")).unwrap_err();
        assert!(err.contains("benchmarks:"), "{err}");
        assert!(err.contains("unknown benchmark `vortx`"), "{err}");
        assert!(err.contains("vortex"), "suggests the close name: {err}");
    }

    #[test]
    fn bad_config_field_in_overrides_fails_parse() {
        let with_overrides = MINI.replace(
            r#""preset": "plus_reverse","#,
            r#""preset": "plus_reverse", "overrides": {"integration": {"it_entrys": 3}},"#,
        );
        let err = ExperimentSpec::from_json(&with_overrides).unwrap_err();
        assert!(err.contains("overrides:"), "{err}");
        assert!(err.contains("it_entrys"), "{err}");
        assert!(err.contains("it_entries"), "{err}");
    }

    #[test]
    fn schema_is_required() {
        assert!(ExperimentSpec::from_json("{}").unwrap_err().contains("schema"));
        let err =
            ExperimentSpec::from_json(&MINI.replace("rix-exp/1", "rix-exp/9")).unwrap_err();
        assert!(err.contains("rix-exp/9"), "{err}");
    }

    #[test]
    fn zip_axis_parses() {
        let spec = ExperimentSpec::from_json(
            r#"{
                "schema": "rix-exp/1",
                "benchmarks": ["gcc"],
                "arms": [{
                    "preset": "plus_reverse",
                    "axes": [
                        {"path": "it_entries", "values": [1024, 4096], "labels": ["1K", "4K"]},
                        {"zip": true, "path": "num_pregs", "values": [1024, 4096]}
                    ]
                }]
            }"#,
        )
        .unwrap();
        let arms = spec.arms().unwrap();
        assert_eq!(arms.len(), 2, "zip does not multiply");
        assert_eq!(arms[0].0, "1K");
        assert_eq!(arms[1].1.num_pregs, 4096);
        assert_eq!(arms[0].1.num_pregs, 1024);
    }

    #[test]
    fn programmatic_field_assignments_survive_canonicalisation() {
        // AxisPoint is shared with `space`: points built by `Axis::new`
        // carry `sets` (field assignments), which the canonical form
        // must serialise as overrides, not drop.
        let mut spec = ExperimentSpec::from_json(MINI).unwrap();
        spec.groups[1].axes[0].points = crate::Axis::new("it_entries", [64u64, 512]).points;
        let arms = spec.arms().unwrap();
        assert_eq!(arms[1].1.integration.it_entries, 64);

        let again = ExperimentSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(again.fingerprint(), spec.fingerprint());
        let again_arms = again.arms().unwrap();
        assert_eq!(again_arms[1].0, "it_entries=64");
        assert_eq!(again_arms[1].1.integration.it_entries, 64);
        assert_eq!(again_arms[2].1.integration.it_entries, 512);
        assert_eq!(again.to_json(), spec.to_json(), "fixed point");
    }

    #[test]
    fn fingerprint_ignores_override_key_order() {
        let a = ExperimentSpec::from_json(
            r#"{"schema": "rix-exp/1", "benchmarks": ["gcc"], "arms": [
                {"label": "x", "preset": "plus_reverse",
                 "overrides": {"integration": {"it_entries": 1024, "it_ways": 4}}}
            ]}"#,
        )
        .unwrap();
        let b = ExperimentSpec::from_json(
            r#"{"schema": "rix-exp/1", "benchmarks": ["gcc"], "arms": [
                {"label": "x", "preset": "plus_reverse",
                 "overrides": {"integration": {"it_ways": 4, "it_entries": 1024}}}
            ]}"#,
        )
        .unwrap();
        assert_eq!(a.arms().unwrap(), b.arms().unwrap(), "same experiment");
        assert_eq!(a.fingerprint(), b.fingerprint(), "same identity");
    }

    #[test]
    fn unbuildable_configs_fail_validation_with_the_arm_named() {
        // Well-typed but unbuildable: dry-run validation must catch
        // what would otherwise panic inside a worker thread.
        let spec = ExperimentSpec::from_json(
            r#"{"schema": "rix-exp/1", "benchmarks": ["gcc"], "arms": [
                {"label": "bad-predictor", "preset": "base",
                 "overrides": {"predictor": {"gshare_entries": 1000}}}
            ]}"#,
        )
        .unwrap();
        let err = spec.sweep(&Harness::default()).validate().unwrap_err();
        assert!(err.contains("configuration `bad-predictor`"), "{err}");
        assert!(err.contains("power of two"), "{err}");

        for (overrides, msg) in [
            (r#"{"num_pregs": 100}"#, "num_pregs"),
            (r#"{"mem": {"l1d": {"ways": 0}}}"#, "way"),
            (r#"{"integration": {"it_entries": 96}}"#, "IT"),
            (r#"{"integration": {"gen_bits": 11}}"#, "gen_bits"),
        ] {
            let spec = ExperimentSpec::from_json(&format!(
                r#"{{"schema": "rix-exp/1", "benchmarks": ["gcc"], "arms": [
                    {{"label": "x", "preset": "base", "overrides": {overrides}}}
                ]}}"#,
            ))
            .unwrap();
            let err = spec.sweep(&Harness::default()).validate().unwrap_err();
            assert!(err.contains(msg), "{overrides}: {err}");
        }
    }

    #[test]
    fn explicit_instructions_override_a_spec_stop_condition() {
        let mut spec = ExperimentSpec::from_json(
            r#"{"schema": "rix-exp/1", "benchmarks": ["gcc"],
                "stop": {"cycles_at_least": 10000000},
                "arms": [{"label": "base", "preset": "base"}]}"#,
        )
        .unwrap();
        let args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let h = Harness::try_parse(args("--instructions 2000")).unwrap();
        spec.apply_harness(&h);
        assert_eq!(spec.instructions, 2000);
        assert!(spec.stop.is_none(), "the flag governs measurement, not the stale stop");
    }

    #[test]
    fn zip_axis_rejects_ignored_labels() {
        let err = ExperimentSpec::from_json(
            r#"{
                "schema": "rix-exp/1",
                "benchmarks": ["gcc"],
                "arms": [{
                    "preset": "plus_reverse",
                    "axes": [
                        {"path": "it_entries", "values": [1024, 4096]},
                        {"zip": true, "path": "num_pregs", "values": [1024, 4096],
                         "labels": ["small", "big"]}
                    ]
                }]
            }"#,
        )
        .unwrap_err();
        assert!(err.contains("zipped axis"), "{err}");
        assert!(err.contains("labels"), "{err}");
    }

    #[test]
    fn harness_overrides_only_given_flags() {
        let mut spec = ExperimentSpec::from_json(MINI).unwrap();
        let args = |s: &str| s.split_whitespace().map(String::from).collect::<Vec<_>>();
        let h = Harness::try_parse(args("--seed 11 --threads 4")).unwrap();
        spec.apply_harness(&h);
        assert_eq!(spec.seed, 11, "given flag overrides");
        assert_eq!(spec.instructions, 2000, "default flag does not");
    }
}
