//! The [`rix_serve::Engine`] implementation over the real experiment
//! engine — the glue that turns `exp serve-api` into a long-lived
//! service wrapping [`crate::Sweep`].
//!
//! Validation is exactly as strict as `exp run --dry-run`: spec parse,
//! sweep-shape validation, checkpoint-file checks, and the
//! [`rix_analysis`] program lints over every benchmark the spec would
//! measure. The run id is the spec's canonical `fingerprint128` hex, so
//! the service's dedup key is the same identity the result document
//! embeds.
//!
//! Execution always routes through the distributed dispatcher with the
//! store's trial cache, so identical *cells* (not just identical specs)
//! dedup across runs and across restarts. The stored result document is
//! built with **no** `cache` or `dispatch` sections — byte-identical to
//! `exp run --json` on the same spec, which is the service's
//! re-serve-exactly guarantee; the structured [`DispatchReport`] is
//! returned separately for the run-status endpoint.

use crate::dispatch::{with_cell_progress, CellProgress};
use crate::{result_doc, DispatchOptions, ExperimentSpec, Harness};
use rix_serve::{Engine, Progress, RunOutput, SpecInfo};

/// How the service executes accepted specs. All knobs are per-server
/// (`exp serve-api` flags), not per-run: every run on one server shares
/// the same execution resources.
#[derive(Clone, Debug, Default)]
pub struct ExpEngine {
    /// Worker threads per run (in-process sweep parallelism; 0 or 1 =
    /// serial).
    pub threads: usize,
    /// Worker processes per run (0 = in-process execution).
    pub workers: usize,
    /// Serve each run's cells to remote TCP workers on this address
    /// (mutually exclusive with `workers`).
    pub cell_listen: Option<String>,
    /// Shared dispatch secret for `cell_listen` workers.
    pub token: Option<String>,
}

impl ExpEngine {
    /// The harness equivalent of this engine's knobs — what
    /// [`ExperimentSpec::sweep`] and [`DispatchOptions::from_harness`]
    /// consume. No `given` flags are set, so the submitted spec is
    /// never overridden.
    fn harness(&self) -> Harness {
        Harness {
            threads: self.threads.max(1),
            workers: self.workers,
            listen: self.cell_listen.clone(),
            token: self.token.clone(),
            ..Harness::default()
        }
    }
}

impl Engine for ExpEngine {
    fn validate(&self, spec_text: &str) -> Result<SpecInfo, String> {
        let spec = ExperimentSpec::from_json(spec_text)?;
        let h = self.harness();
        let sweep = spec.sweep(&h);
        sweep.validate()?;
        sweep.validate_checkpoint_files()?;
        let arms = spec.arms()?;
        let mut findings = Vec::new();
        for b in &spec.benchmarks {
            for d in rix_analysis::lint_program(&b.build(spec.seed)) {
                findings.push(format!("{}: {d}", b.name));
            }
        }
        if !findings.is_empty() {
            return Err(format!(
                "{} lint findings in the spec's benchmarks (seed {}): {}",
                findings.len(),
                spec.seed,
                findings.join("; "),
            ));
        }
        Ok(SpecInfo {
            id: spec.fingerprint_hex(),
            name: spec.name.clone(),
            canonical_spec: spec.to_json(),
            cells: spec.benchmarks.len() * arms.len(),
        })
    }

    fn execute(
        &self,
        spec_text: &str,
        cache_dir: &str,
        progress: &mut dyn FnMut(Progress),
    ) -> Result<RunOutput, String> {
        let spec = ExperimentSpec::from_json(spec_text)?;
        let h = self.harness();
        let sweep = spec.sweep(&h);
        let mut opts = DispatchOptions::from_harness(&h);
        opts.cache = Some(cache_dir.to_string());

        // The progress hook must be `'static` (it lives in a
        // thread-local), but `progress` is a borrow — so the sweep runs
        // on a scoped thread feeding a channel, and this thread relays
        // snapshots to the caller until the hook is dropped.
        let (tx, rx) = std::sync::mpsc::channel::<CellProgress>();
        let outcome = std::thread::scope(|scope| {
            let sweep = &sweep;
            let opts = &opts;
            let worker = scope.spawn(move || {
                with_cell_progress(
                    Box::new(move |p| {
                        let _ = tx.send(p);
                    }),
                    || sweep.run_distributed(opts),
                )
            });
            for p in rx {
                progress(Progress {
                    total: p.total,
                    done: p.done,
                    cached: p.cached,
                    degraded: p.degraded,
                });
            }
            worker.join().map_err(|_| "the sweep panicked".to_string())
        })?;
        let (trials, report) = outcome?;

        // No cache/dispatch sections in the stored document: the bytes
        // must match `exp run --json` (which has neither by default) —
        // the report travels separately, for run status.
        let doc = format!("{}\n", result_doc(&spec, &trials, None, None));
        Ok(RunOutput { doc, dispatch: Some(report.to_json().dump()) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "schema": "rix-exp/1",
        "name": "svc-unit",
        "benchmarks": ["gcc", "vortex"],
        "instructions": 1500,
        "seed": 7,
        "arms": [
            {"label": "base", "preset": "base"},
            {"label": "integration", "preset": "plus_reverse"}
        ]
    }"#;

    fn scratch(tag: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("rix-svc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_str().unwrap().to_string()
    }

    #[test]
    fn validate_reports_ids_and_rejects_junk() {
        let engine = ExpEngine::default();
        let info = engine.validate(SPEC).unwrap();
        let spec = ExperimentSpec::from_json(SPEC).unwrap();
        assert_eq!(info.id, spec.fingerprint_hex());
        assert_eq!(info.name.as_deref(), Some("svc-unit"));
        assert_eq!(info.cells, 4);
        assert_eq!(info.canonical_spec, spec.to_json());
        assert!(engine.validate("{").is_err());
        assert!(engine.validate(r#"{"schema":"rix-exp/1","benchmarks":[],"arms":[]}"#).is_err());
    }

    #[test]
    fn execute_matches_exp_run_bytes_and_reports_progress() {
        let engine = ExpEngine::default();
        let dir = scratch("exec");
        let mut snapshots: Vec<Progress> = Vec::new();
        let out = engine.execute(SPEC, &dir, &mut |p| snapshots.push(p)).unwrap();

        // The stored doc is byte-identical to the sections-free result
        // document of a direct run.
        let spec = ExperimentSpec::from_json(SPEC).unwrap();
        let trials = spec.sweep(&Harness::default()).try_run().unwrap();
        assert_eq!(out.doc, format!("{}\n", result_doc(&spec, &trials, None, None)));
        assert!(out.dispatch.is_some());

        // Progress arrived monotonically and finished complete.
        assert!(!snapshots.is_empty());
        assert!(snapshots.windows(2).all(|w| w[0].done <= w[1].done));
        let last = snapshots.last().unwrap();
        assert_eq!((last.total, last.done), (4, 4));
        assert_eq!(last.cached, 0, "cold cache");

        // A second execution is all cache hits — and the doc is still
        // byte-identical (the cache never leaks into stored bytes).
        let mut warm: Vec<Progress> = Vec::new();
        let again = engine.execute(SPEC, &dir, &mut |p| warm.push(p)).unwrap();
        assert_eq!(again.doc, out.doc);
        assert_eq!(warm.last().unwrap().cached, 4);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
