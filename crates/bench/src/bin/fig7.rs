//! Figure 7: trading integration complexity for execution-core
//! complexity (§3.5).
//!
//! Four machines — `base` (4-way issue, 40 RS), `RS` (20 RS), `IW`
//! (3-way issue, single load/store port), `IW+RS` (both) — each run
//! without integration, with the realistic default integration, and with
//! oracle suppression. Speedups are relative to `base` *without*
//! integration, and the base IPC row is printed below the table, exactly
//! as the paper annotates the figure.
//!
//! The paper's claim to check: integration (a ~17% execution-stream
//! reduction) recovers most of the loss from a 25% issue-width cut or a
//! 50% buffering cut.

use rix_bench::{gmean_speedup, speedup_pct, ExperimentSpec, Harness, Table};

/// The committed experiment this binary drives: the reference machine,
/// then (none, integration, oracle) per core design point.
const SPEC: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig7.json"));

/// Core design points (the spec's core axis).
const N_CORES: usize = 4;

fn main() {
    rix_bench::dispatch::maybe_worker();
    let h = Harness::from_args();
    let (spec, trials) = ExperimentSpec::run_embedded(SPEC, &h);
    let ncfg = spec.arms().expect("spec parsed").len();
    rix_bench::expect_arm_count("fig7", ncfg, 1 + 3 * N_CORES);
    if h.emit_trials(&trials) {
        return;
    }

    let mut t = Table::new(&[
        "bench", "base", "base+i", "base*", "RS", "RS+i", "RS*", "IW", "IW+i", "IW*", "IW+RS",
        "IW+RS+i", "IW+RS*",
    ]);
    let mut means: Vec<Vec<f64>> = vec![Vec::new(); N_CORES * 3];
    let mut base_ipcs: Vec<String> = Vec::new();

    for row_trials in trials.chunks(ncfg) {
        let bench = row_trials[0].bench;
        let reference = &row_trials[0].result;
        base_ipcs.push(format!("{}={:.2}", bench, reference.ipc()));
        let mut row = vec![bench.to_string()];
        for ci in 0..N_CORES {
            for k in 0..3 {
                let r = &row_trials[1 + ci * 3 + k].result;
                let sp = speedup_pct(r, reference);
                row.push(format!("{sp:+.1}%"));
                means[ci * 3 + k].push(sp);
            }
        }
        t.row(row);
    }

    let mut mrow = vec!["GMean".to_string()];
    for v in &means {
        mrow.push(format!("{:+.1}%", gmean_speedup(v)));
    }
    t.row(mrow);

    println!(
        "Figure 7: reduced-complexity engines, speedup vs base-without-integration"
    );
    println!("(+i = realistic integration, * = oracle suppression)\n");
    println!("{}", t.render());
    println!("Base IPC per benchmark (printed under the paper's figure):");
    println!("{}", base_ipcs.join("  "));
}
