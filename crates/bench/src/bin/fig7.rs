//! Figure 7: trading integration complexity for execution-core
//! complexity (§3.5).
//!
//! Four machines — `base` (4-way issue, 40 RS), `RS` (20 RS), `IW`
//! (3-way issue, single load/store port), `IW+RS` (both) — each run
//! without integration, with the realistic default integration, and with
//! oracle suppression. Speedups are relative to `base` *without*
//! integration, and the base IPC row is printed below the table, exactly
//! as the paper annotates the figure.
//!
//! The paper's claim to check: integration (a ~17% execution-stream
//! reduction) recovers most of the loss from a 25% issue-width cut or a
//! 50% buffering cut.

use rix_bench::{gmean_speedup, speedup_pct, Harness, Table};
use rix_sim::{CoreConfig, SimConfig};

fn main() {
    let h = Harness::from_args();
    let cores: Vec<(&str, CoreConfig)> = vec![
        ("base", CoreConfig::default()),
        ("RS", CoreConfig::rs20()),
        ("IW", CoreConfig::iw3()),
        ("IW+RS", CoreConfig::iw3_rs20()),
    ];

    let mut t = Table::new(&[
        "bench", "base", "base+i", "base*", "RS", "RS+i", "RS*", "IW", "IW+i", "IW*", "IW+RS",
        "IW+RS+i", "IW+RS*",
    ]);
    let mut means: Vec<Vec<f64>> = vec![Vec::new(); cores.len() * 3];
    let mut base_ipcs: Vec<String> = Vec::new();

    for b in h.benchmarks() {
        let program = b.build(h.seed);
        let reference = h.run(&program, SimConfig::baseline());
        base_ipcs.push(format!("{}={:.2}", b.name, reference.ipc()));
        let mut row = vec![b.name.to_string()];
        for (ci, (_, core)) in cores.iter().enumerate() {
            let none = h.run(&program, SimConfig::baseline().with_core(*core));
            let integ = h.run(&program, SimConfig::default().with_core(*core));
            let oracle = h.run(
                &program,
                SimConfig::default()
                    .with_integration(rix_integration::IntegrationConfig::default().with_oracle())
                    .with_core(*core),
            );
            for (k, r) in [&none, &integ, &oracle].into_iter().enumerate() {
                let sp = speedup_pct(r, &reference);
                row.push(format!("{sp:+.1}%"));
                means[ci * 3 + k].push(sp);
            }
        }
        t.row(row);
    }

    let mut mrow = vec!["GMean".to_string()];
    for v in &means {
        mrow.push(format!("{:+.1}%", gmean_speedup(v)));
    }
    t.row(mrow);

    println!(
        "Figure 7: reduced-complexity engines, speedup vs base-without-integration"
    );
    println!("(+i = realistic integration, * = oracle suppression)\n");
    println!("{}", t.render());
    println!("Base IPC per benchmark (printed under the paper's figure):");
    println!("{}", base_ipcs.join("  "));
}
