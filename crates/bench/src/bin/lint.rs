//! `lint` — static analysis over workload programs.
//!
//! Runs every [`rix_analysis`] lint (CFG reachability, definite
//! assignment, constant-address bounds — the stable `RIXnnn` codes)
//! plus the integration-opportunity oracle over named workloads or
//! whole experiment specs, and fails the exit status when anything is
//! found. The generator's programs are the repo's experimental inputs:
//! a program that reads uninitialised registers or runs off its end
//! produces numbers that *look* fine, so CI lints every committed spec
//! and workload with this binary before anything is measured.
//!
//! ```text
//! lint [--json] [--seed N] <workload|spec.json>...
//! ```
//!
//! * a **workload name** lints that generated program (at `--seed`,
//!   default 7); unknown names suggest the closest benchmarks,
//! * a **spec file** (`rix-exp/1`) lints every benchmark the spec
//!   names, at the spec's own seed,
//! * `--json` prints a `rix-lint/1` document (findings keyed by stable
//!   code, plus the oracle summary) instead of the table.
//!
//! Exit status: 0 all clean, 1 findings, 2 usage or resolution error.

use rix_analysis::{analyze_program, lint_program, Opportunity};
use rix_bench::ExperimentSpec;
use rix_isa::json::Json;
use rix_isa::Program;

const USAGE: &str = "\
usage: lint [--json] [--seed N] <workload|spec.json>...\n\
\n\
targets:\n\
\x20 a benchmark name        lint that generated workload (at --seed)\n\
\x20 a rix-exp/1 spec file   lint every benchmark it names, at its seed\n\
\n\
flags:\n\
\x20 --seed N   generator seed for named workloads (default 7)\n\
\x20 --json     machine-readable rix-lint/1 output\n\
\n\
exit status: 0 all clean, 1 findings, 2 usage or resolution error";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// One program to lint: display label, generator seed, built program.
struct Target {
    label: String,
    seed: u64,
    program: Program,
}

fn resolve(arg: &str, seed: u64) -> Vec<Target> {
    if arg.ends_with(".json") {
        let spec = match ExperimentSpec::load(arg) {
            Ok(s) => s,
            Err(msg) => fail(&msg),
        };
        spec.benchmarks
            .iter()
            .map(|b| Target {
                label: format!("{arg}:{}", b.name),
                seed: spec.seed,
                program: b.build(spec.seed),
            })
            .collect()
    } else {
        match rix_workloads::lookup(arg) {
            Ok(b) => vec![Target { label: b.name.to_string(), seed, program: b.build(seed) }],
            Err(msg) => fail(&msg),
        }
    }
}

fn oracle_json(opp: &Opportunity) -> Json {
    let num = |n: usize| Json::Num(n.to_string());
    Json::Obj(vec![
        ("total_instrs".into(), num(opp.total_instrs)),
        ("integrable".into(), num(opp.integrable)),
        ("acyclic_integrable".into(), num(opp.acyclic_integrable)),
        ("cyclic_integrable".into(), num(opp.cyclic_integrable)),
        ("reverse_sources".into(), num(opp.reverse_sources)),
        ("reverse_pairs".into(), num(opp.reverse_pairs)),
        ("opportunity_fraction".into(), Json::Num(format!("{:.4}", opp.opportunity_fraction()))),
    ])
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let mut json = false;
    let mut seed = 7u64;
    let mut targets = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--seed" => {
                let v = it.next().unwrap_or_default();
                seed = match v.parse() {
                    Ok(s) => s,
                    Err(_) => fail(&format!("--seed needs an integer, got `{v}`")),
                };
            }
            flag if flag.starts_with("--") => fail(&format!("unknown flag `{flag}`")),
            name => targets.push(name.to_string()),
        }
    }
    if targets.is_empty() {
        fail("no targets given");
    }

    let programs: Vec<Target> = targets.iter().flat_map(|t| resolve(t, seed)).collect();
    let mut total_findings = 0usize;
    let mut docs = Vec::new();
    for t in &programs {
        let findings = lint_program(&t.program);
        let opp = analyze_program(&t.program);
        total_findings += findings.len();
        if json {
            docs.push(Json::Obj(vec![
                ("name".into(), Json::Str(t.label.clone())),
                ("seed".into(), Json::Num(t.seed.to_string())),
                ("instructions".into(), Json::Num(t.program.len().to_string())),
                (
                    "findings".into(),
                    Json::Arr(
                        findings
                            .iter()
                            .map(|d| {
                                Json::Obj(vec![
                                    ("code".into(), Json::Str(d.code.code().into())),
                                    ("name".into(), Json::Str(d.code.name().into())),
                                    ("pc".into(), Json::Num(d.pc.to_string())),
                                    ("message".into(), Json::Str(d.message.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("oracle".into(), oracle_json(&opp)),
            ]));
        } else if findings.is_empty() {
            println!(
                "{} (seed {}): clean — {} instrs, {}/{} integration-eligible ({:.1}%), \
                 {} reverse pairs",
                t.label,
                t.seed,
                opp.total_instrs,
                opp.integrable,
                opp.total_instrs,
                100.0 * opp.opportunity_fraction(),
                opp.reverse_pairs,
            );
        } else {
            println!("{} (seed {}): {} findings", t.label, t.seed, findings.len());
            for d in &findings {
                println!("  {d}");
            }
        }
    }

    if json {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("rix-lint/1".into())),
            ("programs".into(), Json::Arr(docs)),
            ("total_findings".into(), Json::Num(total_findings.to_string())),
        ]);
        println!("{}", doc.dump());
    } else if total_findings > 0 {
        println!("{total_findings} findings across {} programs", programs.len());
    }
    if total_findings > 0 {
        std::process::exit(1);
    }
}
