//! Figure 4: impact of general reuse, opcode indexing, and speculative
//! memory bypassing.
//!
//! Top graph — speedups over the no-integration baseline for the four
//! cumulative extension arms, each with a realistic LISP and with oracle
//! mis-integration suppression. Bottom graph — integration rates split
//! into direct and reverse, with mis-integrations per million retired
//! instructions (the number printed atop each bar in the paper).
//!
//! `--diagnostics` appends the §3.2 secondary metrics: mis-prediction
//! resolution latency, fetched-instruction delta, and reservation-station
//! occupancy.

use rix_bench::{amean, gmean_speedup, speedup_pct, ExperimentSpec, Harness, Table};

/// The committed experiment this binary drives: baseline, then
/// (realistic, oracle) per extension arm. Edit the spec (and rebuild)
/// to change the experiment; `exp run specs/fig4.json` runs the same
/// grid without the figure rendering.
const SPEC: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig4.json"));

fn main() {
    rix_bench::dispatch::maybe_worker();
    let h = Harness::from_args();
    let (spec, trials) = ExperimentSpec::run_embedded(SPEC, &h);
    let ncfg = spec.arms().expect("spec parsed").len();
    rix_bench::expect_arm_count("fig4", ncfg, 9);
    let narms = (ncfg - 1) / 2; // baseline + (realistic, oracle) pairs
    if h.emit_trials(&trials) {
        return;
    }

    let mut speedup = Table::new(&[
        "bench", "squash", "squash*", "+general", "+general*", "+opcode", "+opcode*",
        "+reverse", "+reverse*",
    ]);
    let mut rates = Table::new(&[
        "bench", "squash", "+general", "+opcode", "+reverse(dir+rev)", "mis/M",
    ]);
    let mut diag = Table::new(&[
        "bench", "baseIPC", "IPC", "resolve0", "resolve1", "fetch%", "RS0", "RS1",
    ]);

    let mut per_arm_speedups: Vec<Vec<f64>> = vec![Vec::new(); narms * 2];
    let mut per_arm_rates: Vec<Vec<f64>> = vec![Vec::new(); narms];
    let mut reverse_rates: Vec<f64> = Vec::new();
    let mut mis_rates: Vec<f64> = Vec::new();

    for row_trials in trials.chunks(ncfg) {
        let bench = row_trials[0].bench;
        let base = &row_trials[0].result;
        let mut srow = vec![bench.to_string()];
        let mut rrow = vec![bench.to_string()];
        let mut final_run = None;
        for ai in 0..narms {
            let real = &row_trials[1 + 2 * ai].result;
            let oracle = &row_trials[2 + 2 * ai].result;
            let sp_real = speedup_pct(real, base);
            let sp_orac = speedup_pct(oracle, base);
            srow.push(format!("{sp_real:+.1}%"));
            srow.push(format!("{sp_orac:+.1}%"));
            per_arm_speedups[ai * 2].push(sp_real);
            per_arm_speedups[ai * 2 + 1].push(sp_orac);
            let rate = real.stats.integration.rate() * 100.0;
            per_arm_rates[ai].push(rate);
            if ai < narms - 1 {
                rrow.push(format!("{rate:.1}%"));
            } else {
                rrow.push(format!(
                    "{:.1}% ({:.1}+{:.1})",
                    rate,
                    real.stats.integration.direct_rate() * 100.0,
                    real.stats.integration.reverse_rate() * 100.0
                ));
                reverse_rates.push(real.stats.integration.reverse_rate() * 100.0);
                mis_rates.push(real.stats.integration.mis_per_million());
                rrow.push(format!("{:.0}", real.stats.integration.mis_per_million()));
                final_run = Some(real);
            }
        }
        speedup.row(srow);
        rates.row(rrow);
        if h.diagnostics {
            let f = final_run.expect("arms are non-empty");
            diag.row(vec![
                bench.to_string(),
                format!("{:.2}", base.ipc()),
                format!("{:.2}", f.ipc()),
                format!("{:.1}", base.stats.branch_resolution_latency()),
                format!("{:.1}", f.stats.branch_resolution_latency()),
                format!(
                    "{:+.1}",
                    (f.stats.fetched as f64 / base.stats.fetched.max(1) as f64 - 1.0) * 100.0
                ),
                format!("{:.1}", base.stats.avg_rs_occupancy()),
                format!("{:.1}", f.stats.avg_rs_occupancy()),
            ]);
        }
    }

    // Means row (geometric for speedups, arithmetic for rates — §3.2).
    let mut mean_s = vec!["GMean".to_string()];
    for v in &per_arm_speedups {
        mean_s.push(format!("{:+.1}%", gmean_speedup(v)));
    }
    speedup.row(mean_s);
    let mut mean_r = vec!["AMean".to_string()];
    for (ai, v) in per_arm_rates.iter().enumerate() {
        if ai < per_arm_rates.len() - 1 {
            mean_r.push(format!("{:.1}%", amean(v)));
        } else {
            let total = amean(v);
            let rev = amean(&reverse_rates);
            mean_r.push(format!("{:.1}% ({:.1}+{:.1})", total, total - rev, rev));
            mean_r.push(format!("{:.0}", amean(&mis_rates)));
        }
    }
    rates.row(mean_r);

    println!("Figure 4 (top): speedup per extension arm ('*' = oracle suppression)");
    println!("{}", speedup.render());
    println!("Figure 4 (bottom): integration rate at retirement, realistic LISP");
    println!("{}", rates.render());
    if h.diagnostics {
        println!("§3.2 diagnostics (baseline vs +reverse): resolution latency, fetched delta, RS occupancy");
        println!("{}", diag.render());
    }
}
