//! `exp` — the spec-driven experiment runner.
//!
//! One entry point for every experiment the repo can express as a
//! `rix-exp/1` spec file (see [`rix_bench::spec`]): the committed figure
//! specs under `specs/`, and any spec you write yourself.
//!
//! ```text
//! exp run <spec.json> [--dry-run | --list-arms] [harness flags]
//! exp serve <spec.json> --listen ADDR [harness flags]
//! exp worker [--connect ADDR [--name NAME]]
//! exp workers --status --connect ADDR [--json]
//! ```
//!
//! * `exp run spec.json` — run the experiment; print a long-form result
//!   table (bench × arm, IPC and counts).
//! * `exp serve spec.json --listen ADDR` — the same run, but served to
//!   remote TCP workers (`exp worker --connect ADDR` on any host that
//!   can reach the coordinator). The listener's bound address goes to
//!   stderr as `dispatch: listening on …`. Cells the network cannot
//!   finish degrade to in-process execution, so the run completes.
//! * `exp worker --connect ADDR` — a remote worker: reconnects with
//!   backoff, heartbeats, and executes cells until shut down.
//! * `exp workers --status --connect ADDR` — one-shot liveness query
//!   against a serving coordinator: per-worker state, completions,
//!   failures, reconnects.
//! * `--dry-run` — parse and validate the spec (arms materialised,
//!   benchmarks resolved, sweep shape checked, checkpoint warm-up files
//!   present — missing snapshots are named), print its summary and
//!   fingerprint, run nothing.
//! * `--list-arms` — print every materialised arm label in grid order.
//! * `--workers N` — shard the grid across N worker processes
//!   (re-execing this binary); trials are byte-identical to an
//!   in-process run.
//! * `--cache DIR` — content-addressed trial cache: re-runs simulate
//!   only cells whose inputs changed; the result document grows a
//!   `cache` section.
//! * `--json` — print the `rix-exp-result/1` document (canonical spec +
//!   fingerprint + trial records) instead of the table.
//! * `--output FILE` — also write that document to FILE (the table
//!   stays on stdout).
//!
//! The spec owns the experiment's parameters; explicitly-given harness
//! flags (`--instructions`, `--seed`, `--warmup`, `--warmup-mode`)
//! override it, and `--bench`/`--threads` narrow and parallelise the
//! run. Results embed the spec fingerprint, so a record names exactly
//! the experiment that produced it.

use rix_bench::{
    trials_json, DispatchOptions, DispatchReport, ExperimentSpec, Harness, Table, Trial,
};

const EXP_USAGE: &str = "\
usage: exp run <spec.json> [flags]\n\
\x20      exp serve <spec.json> --listen ADDR [flags]   (coordinator for remote workers)\n\
\x20      exp worker [--connect ADDR [--name NAME]]     (remote worker; bare = stdio)\n\
\x20      exp workers --status --connect ADDR [--json]  (query a serving coordinator)\n\
\n\
exp-specific flags:\n\
\x20 --dry-run               validate the spec (incl. checkpoint files) and print\n\
\x20                         its summary; run nothing\n\
\x20 --list-arms             print the materialised arm labels; run nothing\n\
\n\
plus the shared harness flags (see below); explicitly-given\n\
--instructions/--seed/--warmup/--warmup-mode override the spec's values.";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{EXP_USAGE}\n\n{}", Harness::usage());
    std::process::exit(2);
}

fn result_doc(spec: &ExperimentSpec, trials: &[Trial], report: Option<&DispatchReport>) -> String {
    use rix_isa::json::Json;
    // The `cache` section appears only when a cache is in use, so the
    // document stays byte-identical across worker counts (and across
    // fault histories) whenever no cache directory is given.
    let cache = report.map_or_else(String::new, |r| {
        format!(
            "\n  \"cache\":{{\"hits\":{},\"misses\":{}}},",
            r.cache_hits, r.simulated
        )
    });
    format!(
        "{{\n  \"schema\":\"rix-exp-result/1\",\n  \"name\":{},\n  \
         \"spec_fingerprint\":\"{}\",\n  \"spec_fingerprint_fnv64\":\"{:#018x}\",\n  \
         \"spec\":{},{}\n  \"trials\":{}\n}}",
        spec.name
            .as_ref()
            .map_or_else(|| "null".to_string(), |n| Json::Str(n.clone()).dump()),
        spec.fingerprint_hex(),
        spec.fingerprint(),
        spec.to_json(),
        cache,
        trials_json(trials),
    )
}

/// `exp workers --status --connect ADDR [--json]`: one status hello to
/// a serving coordinator, rendered as a table (or the raw
/// `rix-dispatch-status/1` document with `--json`).
fn workers_command(args: &[String]) -> ! {
    use rix_isa::json::Json;
    let mut connect: Option<String> = None;
    let mut status = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--status" => status = true,
            "--json" => json = true,
            "--connect" => {
                i += 1;
                connect = Some(
                    args.get(i).cloned().unwrap_or_else(|| fail("--connect needs an address")),
                );
            }
            other => fail(&format!("unknown `exp workers` argument `{other}`")),
        }
        i += 1;
    }
    if !status {
        fail("`exp workers` supports exactly one query: --status");
    }
    let Some(addr) = connect else {
        fail("`exp workers --status` needs --connect ADDR");
    };
    let doc = match rix_dispatch::query_status(&addr) {
        Ok(doc) => doc,
        Err(msg) => fail(&msg),
    };
    if json {
        println!("{}", doc.dump());
        std::process::exit(0);
    }
    let n = |name: &str| doc.get(name).and_then(Json::as_u64).unwrap_or(0);
    println!(
        "dispatch @ {addr}: {}/{} cells done, {} queued, {} retries",
        n("cells_done"),
        n("cells_total"),
        n("queued"),
        n("retries"),
    );
    let mut table = Table::new(&["worker", "state", "cells", "failures", "reconnects"]);
    for w in doc.get("workers").and_then(Json::as_arr).unwrap_or(&Vec::new()) {
        let s = |name: &str| w.get(name).and_then(Json::as_str).unwrap_or("?").to_string();
        let u = |name: &str| w.get(name).and_then(Json::as_u64).unwrap_or(0).to_string();
        table.row(vec![
            s("name"),
            s("state"),
            u("cells_completed"),
            u("failures"),
            u("reconnects"),
        ]);
    }
    println!("{}", table.render());
    std::process::exit(0);
}

fn main() {
    // A coordinator re-execs this binary with the internal worker
    // argument; check before any user-facing parsing.
    rix_bench::dispatch::maybe_worker();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("{EXP_USAGE}\n\n{}", Harness::usage());
        std::process::exit(0);
    }
    if raw.is_empty() {
        fail("no command given");
    }
    if raw[0] == "worker" {
        // The documented spelling of the worker entry points: bare for
        // stdio (the coordinator itself uses the internal argv[1]
        // marker), `--connect` for a remote TCP worker.
        let mut connect: Option<String> = None;
        let mut name: Option<String> = None;
        let mut i = 1;
        while i < raw.len() {
            let value = |i: &mut usize, flag: &str| -> String {
                *i += 1;
                raw.get(*i).cloned().unwrap_or_else(|| fail(&format!("{flag} needs a value")))
            };
            match raw[i].as_str() {
                "--connect" => connect = Some(value(&mut i, "--connect")),
                "--name" => name = Some(value(&mut i, "--name")),
                other => fail(&format!("unknown `exp worker` argument `{other}`")),
            }
            i += 1;
        }
        match connect {
            Some(addr) => rix_bench::dispatch::worker_connect_main(&addr, name.as_deref()),
            None => rix_bench::dispatch::worker_main(),
        }
    }
    if raw[0] == "workers" {
        workers_command(&raw[1..]);
    }
    let serve = raw[0] == "serve";
    if !serve && raw[0] != "run" {
        fail(&format!(
            "unknown command `{}` (expected `run`, `serve`, `worker` or `workers`)",
            raw[0]
        ));
    }
    let Some(path) = raw.get(1).filter(|p| !p.starts_with("--")) else {
        fail(&format!("`exp {}` needs a spec file path", raw[0]));
    };
    let mut dry_run = false;
    let mut list_arms = false;
    let mut rest = Vec::new();
    for a in &raw[2..] {
        match a.as_str() {
            "--dry-run" => dry_run = true,
            "--list-arms" => list_arms = true,
            other => rest.push(other.to_string()),
        }
    }
    let h = match Harness::try_parse(rest) {
        Ok(h) => h,
        Err(msg) => fail(&msg),
    };
    if serve && h.listen.is_none() {
        fail("`exp serve` needs --listen ADDR");
    }

    let mut spec = match ExperimentSpec::load(path) {
        Ok(s) => s,
        Err(msg) => fail(&msg),
    };
    spec.apply_harness(&h);
    let arms = match spec.arms() {
        Ok(a) => a,
        Err(msg) => fail(&msg),
    };
    let sweep = spec.sweep(&h);

    if list_arms {
        println!(
            "{} arms of `{}` ({}):",
            arms.len(),
            spec.name.as_deref().unwrap_or(path),
            spec.fingerprint_hex()
        );
        for (i, (label, _)) in arms.iter().enumerate() {
            println!("  [{i:>2}] {label}");
        }
        return;
    }
    if dry_run {
        // Validate the static sweep shape too (duplicate labels, empty
        // grids, …) and — under checkpoint warm-up — that every
        // benchmark's snapshot file actually exists, naming any missing
        // paths, so a scheduled run cannot fail hours in on a typo'd
        // checkpoint directory.
        if let Err(msg) = sweep.validate() {
            fail(&msg);
        }
        if let Err(msg) = sweep.validate_checkpoint_files() {
            fail(&msg);
        }
        // Count what this invocation would actually run: the spec's
        // benchmarks narrowed by the `--bench` filter, like the sweep.
        let benches: Vec<_> = spec
            .benchmarks
            .iter()
            .filter(|b| h.filter.as_deref().is_none_or(|f| f.eq_ignore_ascii_case(b.name)))
            .collect();
        // Lint every program the run would measure: a generator bug
        // (an uninitialised read, a block that can run off the end)
        // silently becomes a bogus data point, so a dry run rejects it
        // here rather than validating the spec around it.
        let mut findings = 0usize;
        for b in &benches {
            for d in rix_analysis::lint_program(&b.build(spec.seed)) {
                eprintln!("  {}: {d}", b.name);
                findings += 1;
            }
        }
        if findings > 0 {
            fail(&format!("{findings} lint findings in the spec's benchmarks (seed {})", spec.seed));
        }
        println!(
            "spec OK: {} ({})",
            spec.name.as_deref().unwrap_or(path),
            spec.fingerprint_hex()
        );
        println!(
            "  benchmarks: {}  arms: {}  cells: {}  instructions: {}  warmup: {} ({})  seed: {}",
            benches.len(),
            arms.len(),
            benches.len() * arms.len(),
            spec.instructions,
            spec.warmup,
            spec.warmup_mode.name(),
            spec.seed,
        );
        println!("  lint: clean ({} benchmarks at seed {})", benches.len(), spec.seed);
        return;
    }

    let (trials, report) = if h.workers > 0 || h.cache.is_some() || h.listen.is_some() {
        match sweep.run_distributed(&DispatchOptions::from_harness(&h)) {
            Ok((t, r)) => {
                eprintln!("dispatch: {}", r.summary());
                if h.verbose {
                    eprint!("{}", r.worker_table());
                }
                (t, Some(r))
            }
            Err(msg) => fail(&msg),
        }
    } else {
        match sweep.try_run() {
            Ok(t) => (t, None),
            Err(msg) => fail(&msg),
        }
    };
    // The cache section only exists when a cache is in use.
    let cache_report = report.filter(|_| h.cache.is_some());
    let doc = result_doc(&spec, &trials, cache_report.as_ref());
    if let Some(out) = &h.output {
        if let Err(e) = std::fs::write(out, format!("{doc}\n")) {
            fail(&format!("cannot write `{out}`: {e}"));
        }
    }
    if h.json {
        println!("{doc}");
        return;
    }

    println!(
        "experiment: {} ({})",
        spec.name.as_deref().unwrap_or(path),
        spec.fingerprint_hex()
    );
    let mut table = Table::new(&["bench", "config", "IPC", "retired", "cycles"]);
    for t in &trials {
        table.row(vec![
            t.bench.to_string(),
            t.config_label.clone(),
            format!("{:.3}", t.result.ipc()),
            t.result.stats.retired.to_string(),
            t.result.stats.cycles.to_string(),
        ]);
    }
    println!("{}", table.render());
}
