//! `exp` — the spec-driven experiment runner.
//!
//! One entry point for every experiment the repo can express as a
//! `rix-exp/1` spec file (see [`rix_bench::spec`]): the committed figure
//! specs under `specs/`, and any spec you write yourself.
//!
//! ```text
//! exp run <spec.json> [--dry-run | --list-arms] [harness flags]
//! exp worker            (internal: dispatch worker over stdin/stdout)
//! ```
//!
//! * `exp run spec.json` — run the experiment; print a long-form result
//!   table (bench × arm, IPC and counts).
//! * `--dry-run` — parse and validate the spec (arms materialised,
//!   benchmarks resolved, sweep shape checked, checkpoint warm-up files
//!   present — missing snapshots are named), print its summary and
//!   fingerprint, run nothing.
//! * `--list-arms` — print every materialised arm label in grid order.
//! * `--workers N` — shard the grid across N worker processes
//!   (re-execing this binary); trials are byte-identical to an
//!   in-process run.
//! * `--cache DIR` — content-addressed trial cache: re-runs simulate
//!   only cells whose inputs changed; the result document grows a
//!   `cache` section.
//! * `--json` — print the `rix-exp-result/1` document (canonical spec +
//!   fingerprint + trial records) instead of the table.
//! * `--output FILE` — also write that document to FILE (the table
//!   stays on stdout).
//!
//! The spec owns the experiment's parameters; explicitly-given harness
//! flags (`--instructions`, `--seed`, `--warmup`, `--warmup-mode`)
//! override it, and `--bench`/`--threads` narrow and parallelise the
//! run. Results embed the spec fingerprint, so a record names exactly
//! the experiment that produced it.

use rix_bench::{
    trials_json, DispatchOptions, DispatchReport, ExperimentSpec, Harness, Table, Trial,
};

const EXP_USAGE: &str = "\
usage: exp run <spec.json> [flags]\n\
\x20      exp worker   (internal: dispatch worker, speaks rix-dispatch/1 on stdio)\n\
\n\
exp-specific flags:\n\
\x20 --dry-run               validate the spec (incl. checkpoint files) and print\n\
\x20                         its summary; run nothing\n\
\x20 --list-arms             print the materialised arm labels; run nothing\n\
\n\
plus the shared harness flags (see below); explicitly-given\n\
--instructions/--seed/--warmup/--warmup-mode override the spec's values.";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{EXP_USAGE}\n\n{}", Harness::usage());
    std::process::exit(2);
}

fn result_doc(spec: &ExperimentSpec, trials: &[Trial], report: Option<&DispatchReport>) -> String {
    use rix_isa::json::Json;
    // The `cache` section appears only when a cache is in use, so the
    // document stays byte-identical across worker counts (and across
    // fault histories) whenever no cache directory is given.
    let cache = report.map_or_else(String::new, |r| {
        format!(
            "\n  \"cache\":{{\"hits\":{},\"misses\":{}}},",
            r.cache_hits, r.simulated
        )
    });
    format!(
        "{{\n  \"schema\":\"rix-exp-result/1\",\n  \"name\":{},\n  \
         \"spec_fingerprint\":\"{}\",\n  \"spec_fingerprint_fnv64\":\"{:#018x}\",\n  \
         \"spec\":{},{}\n  \"trials\":{}\n}}",
        spec.name
            .as_ref()
            .map_or_else(|| "null".to_string(), |n| Json::Str(n.clone()).dump()),
        spec.fingerprint_hex(),
        spec.fingerprint(),
        spec.to_json(),
        cache,
        trials_json(trials),
    )
}

fn main() {
    // A coordinator re-execs this binary with the internal worker
    // argument; check before any user-facing parsing.
    rix_bench::dispatch::maybe_worker();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("{EXP_USAGE}\n\n{}", Harness::usage());
        std::process::exit(0);
    }
    if raw.is_empty() {
        fail("no command given");
    }
    if raw[0] == "worker" {
        // The documented spelling of the worker entry point (the
        // coordinator itself uses the internal argv[1] marker).
        rix_bench::dispatch::worker_main();
    }
    if raw[0] != "run" {
        fail(&format!("unknown command `{}` (expected `run` or `worker`)", raw[0]));
    }
    let Some(path) = raw.get(1).filter(|p| !p.starts_with("--")) else {
        fail("`exp run` needs a spec file path");
    };
    let mut dry_run = false;
    let mut list_arms = false;
    let mut rest = Vec::new();
    for a in &raw[2..] {
        match a.as_str() {
            "--dry-run" => dry_run = true,
            "--list-arms" => list_arms = true,
            other => rest.push(other.to_string()),
        }
    }
    let h = match Harness::try_parse(rest) {
        Ok(h) => h,
        Err(msg) => fail(&msg),
    };

    let mut spec = match ExperimentSpec::load(path) {
        Ok(s) => s,
        Err(msg) => fail(&msg),
    };
    spec.apply_harness(&h);
    let arms = match spec.arms() {
        Ok(a) => a,
        Err(msg) => fail(&msg),
    };
    let sweep = spec.sweep(&h);

    if list_arms {
        println!(
            "{} arms of `{}` ({}):",
            arms.len(),
            spec.name.as_deref().unwrap_or(path),
            spec.fingerprint_hex()
        );
        for (i, (label, _)) in arms.iter().enumerate() {
            println!("  [{i:>2}] {label}");
        }
        return;
    }
    if dry_run {
        // Validate the static sweep shape too (duplicate labels, empty
        // grids, …) and — under checkpoint warm-up — that every
        // benchmark's snapshot file actually exists, naming any missing
        // paths, so a scheduled run cannot fail hours in on a typo'd
        // checkpoint directory.
        if let Err(msg) = sweep.validate() {
            fail(&msg);
        }
        if let Err(msg) = sweep.validate_checkpoint_files() {
            fail(&msg);
        }
        // Count what this invocation would actually run: the spec's
        // benchmarks narrowed by the `--bench` filter, like the sweep.
        let benches: Vec<_> = spec
            .benchmarks
            .iter()
            .filter(|b| h.filter.as_deref().is_none_or(|f| f.eq_ignore_ascii_case(b.name)))
            .collect();
        // Lint every program the run would measure: a generator bug
        // (an uninitialised read, a block that can run off the end)
        // silently becomes a bogus data point, so a dry run rejects it
        // here rather than validating the spec around it.
        let mut findings = 0usize;
        for b in &benches {
            for d in rix_analysis::lint_program(&b.build(spec.seed)) {
                eprintln!("  {}: {d}", b.name);
                findings += 1;
            }
        }
        if findings > 0 {
            fail(&format!("{findings} lint findings in the spec's benchmarks (seed {})", spec.seed));
        }
        println!(
            "spec OK: {} ({})",
            spec.name.as_deref().unwrap_or(path),
            spec.fingerprint_hex()
        );
        println!(
            "  benchmarks: {}  arms: {}  cells: {}  instructions: {}  warmup: {} ({})  seed: {}",
            benches.len(),
            arms.len(),
            benches.len() * arms.len(),
            spec.instructions,
            spec.warmup,
            spec.warmup_mode.name(),
            spec.seed,
        );
        println!("  lint: clean ({} benchmarks at seed {})", benches.len(), spec.seed);
        return;
    }

    let (trials, report) = if h.workers > 0 || h.cache.is_some() {
        match sweep.run_distributed(&DispatchOptions::from_harness(&h)) {
            Ok((t, r)) => {
                eprintln!("dispatch: {}", r.summary());
                (t, Some(r))
            }
            Err(msg) => fail(&msg),
        }
    } else {
        match sweep.try_run() {
            Ok(t) => (t, None),
            Err(msg) => fail(&msg),
        }
    };
    // The cache section only exists when a cache is in use.
    let cache_report = report.filter(|_| h.cache.is_some());
    let doc = result_doc(&spec, &trials, cache_report.as_ref());
    if let Some(out) = &h.output {
        if let Err(e) = std::fs::write(out, format!("{doc}\n")) {
            fail(&format!("cannot write `{out}`: {e}"));
        }
    }
    if h.json {
        println!("{doc}");
        return;
    }

    println!(
        "experiment: {} ({})",
        spec.name.as_deref().unwrap_or(path),
        spec.fingerprint_hex()
    );
    let mut table = Table::new(&["bench", "config", "IPC", "retired", "cycles"]);
    for t in &trials {
        table.row(vec![
            t.bench.to_string(),
            t.config_label.clone(),
            format!("{:.3}", t.result.ipc()),
            t.result.stats.retired.to_string(),
            t.result.stats.cycles.to_string(),
        ]);
    }
    println!("{}", table.render());
}
