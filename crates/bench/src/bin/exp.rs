//! `exp` — the spec-driven experiment runner.
//!
//! One entry point for every experiment the repo can express as a
//! `rix-exp/1` spec file (see [`rix_bench::spec`]): the committed figure
//! specs under `specs/`, and any spec you write yourself.
//!
//! ```text
//! exp run <spec.json> [--dry-run | --list-arms] [harness flags]
//! exp serve <spec.json> --listen ADDR [harness flags]
//! exp worker [--connect ADDR [--name NAME]]
//! exp workers --status --connect ADDR [--json]
//! exp serve-api --listen ADDR --data-dir DIR [service flags]
//! exp submit <spec.json> --connect HOST:PORT [--token T] [--json]
//! exp status <id> --connect HOST:PORT [--token T] [--json]
//! exp fetch <id> --connect HOST:PORT [--wait] [--output FILE] [--token T]
//! exp runs --connect HOST:PORT [--token T] [--json]
//! exp cache stats <DIR> | exp cache gc <DIR> --older-than AGE
//! ```
//!
//! * `exp run spec.json` — run the experiment; print a long-form result
//!   table (bench × arm, IPC and counts).
//! * `exp serve spec.json --listen ADDR` — the same run, but served to
//!   remote TCP workers (`exp worker --connect ADDR` on any host that
//!   can reach the coordinator). The listener's bound address goes to
//!   stderr as `dispatch: listening on …`. Cells the network cannot
//!   finish degrade to in-process execution, so the run completes.
//! * `exp worker --connect ADDR` — a remote worker: reconnects with
//!   backoff, heartbeats, and executes cells until shut down.
//! * `exp workers --status --connect ADDR` — one-shot liveness query
//!   against a serving coordinator: per-worker state, completions,
//!   failures, reconnects.
//! * `exp serve-api --listen ADDR --data-dir DIR` — the long-lived
//!   experiment API service ([`rix_serve`]): clients POST specs,
//!   identical submissions join the in-flight or completed run, and
//!   results persist across restarts.
//! * `exp submit`/`status`/`fetch`/`runs` — the thin HTTP client of
//!   that service (`rix-serve/1` schema). `fetch` emits the stored
//!   result document byte-for-byte.
//! * `exp cache stats|gc` — inspect or prune a trial-cache directory.
//! * `--dry-run` — parse and validate the spec (arms materialised,
//!   benchmarks resolved, sweep shape checked, checkpoint warm-up files
//!   present — missing snapshots are named), print its summary and
//!   fingerprint, run nothing.
//! * `--list-arms` — print every materialised arm label in grid order.
//! * `--workers N` — shard the grid across N worker processes
//!   (re-execing this binary); trials are byte-identical to an
//!   in-process run.
//! * `--cache DIR` — content-addressed trial cache: re-runs simulate
//!   only cells whose inputs changed; the result document grows a
//!   `cache` section.
//! * `--json` — print the `rix-exp-result/1` document (canonical spec +
//!   fingerprint + trial records) instead of the table.
//! * `--output FILE` — also write that document to FILE (the table
//!   stays on stdout).
//!
//! The spec owns the experiment's parameters; explicitly-given harness
//! flags (`--instructions`, `--seed`, `--warmup`, `--warmup-mode`)
//! override it, and `--bench`/`--threads` narrow and parallelise the
//! run. Results embed the spec fingerprint, so a record names exactly
//! the experiment that produced it.

use rix_bench::{result_doc, DispatchOptions, ExperimentSpec, Harness, Table};

const EXP_USAGE: &str = "\
usage: exp run <spec.json> [flags]\n\
\x20      exp serve <spec.json> --listen ADDR [flags]   (coordinator for remote workers)\n\
\x20      exp worker [--connect ADDR [--name NAME]]     (remote worker; bare = stdio)\n\
\x20      exp workers --status --connect ADDR [--json]  (query a serving coordinator)\n\
\x20      exp serve-api --listen ADDR --data-dir DIR    (long-lived experiment service)\n\
\x20                    [--queue N] [--executors N] [--token T]\n\
\x20                    [--threads N] [--workers N] [--cell-listen ADDR]\n\
\x20      exp submit <spec.json> --connect HOST:PORT [--token T] [--json]\n\
\x20      exp status <id> --connect HOST:PORT [--token T] [--json]\n\
\x20      exp fetch <id> --connect HOST:PORT [--wait] [--output FILE] [--token T]\n\
\x20      exp runs --connect HOST:PORT [--token T] [--json]\n\
\x20      exp cache stats <DIR> [--json]\n\
\x20      exp cache gc <DIR> --older-than AGE           (AGE: 30, 45s, 10m, 2h, 7d)\n\
\n\
exp-specific flags:\n\
\x20 --dry-run               validate the spec (incl. checkpoint files) and print\n\
\x20                         its summary; run nothing\n\
\x20 --list-arms             print the materialised arm labels; run nothing\n\
\n\
plus the shared harness flags (see below); explicitly-given\n\
--instructions/--seed/--warmup/--warmup-mode override the spec's values.";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{EXP_USAGE}\n\n{}", Harness::usage());
    std::process::exit(2);
}

/// A runtime (non-usage) failure: network errors, server-side
/// rejections. Exit 1 without re-printing usage.
fn run_fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// `exp workers --status --connect ADDR [--json]`: one status hello to
/// a serving coordinator, rendered as a table (or the raw
/// `rix-dispatch-status/1` document with `--json`).
fn workers_command(args: &[String]) -> ! {
    use rix_isa::json::Json;
    let mut connect: Option<String> = None;
    let mut status = false;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--status" => status = true,
            "--json" => json = true,
            "--connect" => {
                i += 1;
                connect = Some(
                    args.get(i).cloned().unwrap_or_else(|| fail("--connect needs an address")),
                );
            }
            other => fail(&format!("unknown `exp workers` argument `{other}`")),
        }
        i += 1;
    }
    if !status {
        fail("`exp workers` supports exactly one query: --status");
    }
    let Some(addr) = connect else {
        fail("`exp workers --status` needs --connect ADDR");
    };
    let doc = match rix_dispatch::query_status(&addr) {
        Ok(doc) => doc,
        Err(msg) => fail(&msg),
    };
    if json {
        println!("{}", doc.dump());
        std::process::exit(0);
    }
    let n = |name: &str| doc.get(name).and_then(Json::as_u64).unwrap_or(0);
    println!(
        "dispatch @ {addr}: {}/{} cells done, {} queued, {} retries",
        n("cells_done"),
        n("cells_total"),
        n("queued"),
        n("retries"),
    );
    let mut table = Table::new(&["worker", "state", "cells", "failures", "reconnects"]);
    for w in doc.get("workers").and_then(Json::as_arr).unwrap_or(&Vec::new()) {
        let s = |name: &str| w.get(name).and_then(Json::as_str).unwrap_or("?").to_string();
        let u = |name: &str| w.get(name).and_then(Json::as_u64).unwrap_or(0).to_string();
        table.row(vec![
            s("name"),
            s("state"),
            u("cells_completed"),
            u("failures"),
            u("reconnects"),
        ]);
    }
    println!("{}", table.render());
    std::process::exit(0);
}

/// `exp serve-api --listen ADDR --data-dir DIR …`: the long-lived
/// experiment API service (see [`rix_serve`]). Runs until killed.
fn serve_api_command(args: &[String]) -> ! {
    let mut listen: Option<String> = None;
    let mut cfg = rix_serve::ServerConfig::default();
    let mut engine = rix_bench::service::ExpEngine::default();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        let number = |i: &mut usize, flag: &str| -> usize {
            let v = value(i, flag);
            v.parse().unwrap_or_else(|_| fail(&format!("{flag} needs a number, got `{v}`")))
        };
        match args[i].as_str() {
            "--listen" => listen = Some(value(&mut i, "--listen")),
            "--data-dir" => cfg.data_dir = value(&mut i, "--data-dir"),
            "--queue" => cfg.queue_cap = number(&mut i, "--queue"),
            "--executors" => cfg.executors = number(&mut i, "--executors"),
            "--token" => cfg.token = Some(value(&mut i, "--token")),
            "--threads" => engine.threads = number(&mut i, "--threads"),
            "--workers" => engine.workers = number(&mut i, "--workers"),
            "--cell-listen" => engine.cell_listen = Some(value(&mut i, "--cell-listen")),
            other => fail(&format!("unknown `exp serve-api` argument `{other}`")),
        }
        i += 1;
    }
    let Some(listen) = listen else {
        fail("`exp serve-api` needs --listen ADDR");
    };
    if cfg.data_dir.is_empty() {
        fail("`exp serve-api` needs --data-dir DIR");
    }
    if engine.workers > 0 && engine.cell_listen.is_some() {
        fail("--workers and --cell-listen are mutually exclusive");
    }
    if cfg.token.is_none() {
        cfg.token = std::env::var("RIX_DISPATCH_TOKEN").ok().filter(|t| !t.is_empty());
    }
    // The one token guards both doors: HTTP bearer auth here, and the
    // dispatch hello when runs are served to remote cell workers.
    engine.token = cfg.token.clone();
    match rix_serve::Server::bind(&listen, cfg, Box::new(engine)) {
        Ok(server) => server.run(),
        Err(msg) => run_fail(&msg),
    }
}

/// One API exchange, with transport errors fatal (exit 1). Server-side
/// rejections come back to the caller as `(status, body)`.
fn api(addr: &str, method: &str, path: &str, token: Option<&str>, body: Option<&str>) -> (u16, String) {
    match rix_serve::client::request(addr, method, path, token, body) {
        Ok(reply) => reply,
        Err(msg) => run_fail(&msg),
    }
}

/// The server's `"error"` field, or the raw body when it isn't the
/// JSON shape we expect.
fn api_error(body: &str) -> String {
    use rix_isa::json::Json;
    Json::parse(body)
        .ok()
        .and_then(|doc| doc.get("error").and_then(Json::as_str).map(ToString::to_string))
        .unwrap_or_else(|| body.trim_end().to_string())
}

/// `(positional, connect, token, json, extras)` from [`client_args`].
type ClientArgs = (Option<String>, String, Option<String>, bool, Vec<(String, String)>);

/// Shared `--connect/--token/--json` parsing for the client
/// subcommands. Returns `(positional, connect, token, json, extras)`
/// where `extras` collects flags from `extra_flags` that were present.
fn client_args(
    cmd: &str,
    args: &[String],
    extra_value_flags: &[&str],
    extra_bool_flags: &[&str],
) -> ClientArgs {
    let mut positional: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut token: Option<String> = None;
    let mut json = false;
    let mut extras: Vec<(String, String)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        let a = args[i].as_str();
        match a {
            "--connect" => connect = Some(value(&mut i, "--connect")),
            "--token" => token = Some(value(&mut i, "--token")),
            "--json" => json = true,
            _ if extra_value_flags.contains(&a) => {
                let flag = a.to_string();
                let v = value(&mut i, &flag);
                extras.push((flag, v));
            }
            _ if extra_bool_flags.contains(&a) => extras.push((a.to_string(), String::new())),
            _ if !a.starts_with("--") && positional.is_none() => positional = Some(a.to_string()),
            other => fail(&format!("unknown `exp {cmd}` argument `{other}`")),
        }
        i += 1;
    }
    let Some(connect) = connect else {
        fail(&format!("`exp {cmd}` needs --connect HOST:PORT"));
    };
    if token.is_none() {
        token = std::env::var("RIX_DISPATCH_TOKEN").ok().filter(|t| !t.is_empty());
    }
    (positional, connect, token, json, extras)
}

/// `exp submit <spec.json> --connect HOST:PORT`: POST the spec file and
/// report the run id (and whether we joined an existing run).
fn submit_command(args: &[String]) -> ! {
    use rix_isa::json::Json;
    let (path, connect, token, json, _) = client_args("submit", args, &[], &[]);
    let Some(path) = path else {
        fail("`exp submit` needs a spec file path");
    };
    let spec = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => fail(&format!("cannot read `{path}`: {e}")),
    };
    let (status, body) = api(&connect, "POST", "/v1/runs", token.as_deref(), Some(&spec));
    if status != 200 && status != 201 {
        run_fail(&format!("submit refused ({status}): {}", api_error(&body)));
    }
    if json {
        println!("{body}");
        std::process::exit(0);
    }
    let doc = Json::parse(&body).unwrap_or(Json::Null);
    let s = |name: &str| doc.get(name).and_then(Json::as_str).unwrap_or("?").to_string();
    let joined = doc.get("joined").and_then(Json::as_bool).unwrap_or(false);
    println!(
        "run {}: {}{}",
        s("id"),
        s("state"),
        if joined { " (joined existing run)" } else { "" },
    );
    std::process::exit(0);
}

/// `exp status <id> --connect HOST:PORT`: one run's state and progress.
fn status_command(args: &[String]) -> ! {
    use rix_isa::json::Json;
    let (id, connect, token, json, _) = client_args("status", args, &[], &[]);
    let Some(id) = id else {
        fail("`exp status` needs a run id");
    };
    let (status, body) = api(&connect, "GET", &format!("/v1/runs/{id}"), token.as_deref(), None);
    if status != 200 {
        run_fail(&format!("status failed ({status}): {}", api_error(&body)));
    }
    if json {
        println!("{body}");
        std::process::exit(0);
    }
    let doc = Json::parse(&body).unwrap_or(Json::Null);
    let s = |name: &str| doc.get(name).and_then(Json::as_str).unwrap_or("?").to_string();
    let p = |name: &str| {
        doc.get("progress").and_then(|p| p.get(name)).and_then(Json::as_u64).unwrap_or(0)
    };
    println!(
        "run {}: {} — {}/{} cells ({} cached, {} degraded)",
        s("id"),
        s("state"),
        p("done"),
        p("total"),
        p("cached"),
        p("degraded"),
    );
    if let Some(err) = doc.get("error").and_then(Json::as_str) {
        println!("  error: {err}");
    }
    std::process::exit(0);
}

/// `exp fetch <id> --connect HOST:PORT [--wait] [--output FILE]`: the
/// stored result document, byte-for-byte. `--wait` polls through `409`
/// (not finished yet) until the run completes or fails.
fn fetch_command(args: &[String]) -> ! {
    let (id, connect, token, _, extras) =
        client_args("fetch", args, &["--output"], &["--wait"]);
    let Some(id) = id else {
        fail("`exp fetch` needs a run id");
    };
    let wait = extras.iter().any(|(f, _)| f == "--wait");
    let output = extras.iter().find(|(f, _)| f == "--output").map(|(_, v)| v.clone());
    let path = format!("/v1/runs/{id}/result");
    let body = loop {
        let (status, body) = api(&connect, "GET", &path, token.as_deref(), None);
        match status {
            200 => break body,
            409 if wait => std::thread::sleep(std::time::Duration::from_millis(300)),
            _ => run_fail(&format!("fetch failed ({status}): {}", api_error(&body))),
        }
    };
    match output {
        Some(out) => {
            if let Err(e) = std::fs::write(&out, &body) {
                run_fail(&format!("cannot write `{out}`: {e}"));
            }
        }
        // The stored document already ends in a newline; print it
        // verbatim so piped bytes match the stored bytes.
        None => print!("{body}"),
    }
    std::process::exit(0);
}

/// `exp runs --connect HOST:PORT`: every run the server knows.
fn runs_command(args: &[String]) -> ! {
    use rix_isa::json::Json;
    let (extra, connect, token, json, _) = client_args("runs", args, &[], &[]);
    if let Some(extra) = extra {
        fail(&format!("unknown `exp runs` argument `{extra}`"));
    }
    let (status, body) = api(&connect, "GET", "/v1/runs", token.as_deref(), None);
    if status != 200 {
        run_fail(&format!("listing runs failed ({status}): {}", api_error(&body)));
    }
    if json {
        println!("{body}");
        std::process::exit(0);
    }
    let doc = Json::parse(&body).unwrap_or(Json::Null);
    let mut table = Table::new(&["id", "name", "state", "cells"]);
    for run in doc.get("runs").and_then(Json::as_arr).unwrap_or(&Vec::new()) {
        let s = |name: &str| run.get(name).and_then(Json::as_str).unwrap_or("-").to_string();
        let cells = run.get("cells").and_then(Json::as_u64).unwrap_or(0);
        table.row(vec![s("id"), s("name"), s("state"), cells.to_string()]);
    }
    println!("{}", table.render());
    std::process::exit(0);
}

/// Parses a `--older-than` age: plain seconds, or a number with an
/// `s`/`m`/`h`/`d` suffix.
fn parse_age(text: &str) -> Result<std::time::Duration, String> {
    let (digits, unit) = match text.chars().last() {
        Some(u @ ('s' | 'm' | 'h' | 'd')) => (&text[..text.len() - 1], u),
        _ => (text, 's'),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad age `{text}` (want e.g. 30, 45s, 10m, 2h, 7d)"))?;
    let secs = match unit {
        's' => n,
        'm' => n * 60,
        'h' => n * 3600,
        _ => n * 86_400,
    };
    Ok(std::time::Duration::from_secs(secs))
}

/// `exp cache stats <DIR>` / `exp cache gc <DIR> --older-than AGE`:
/// inspect or prune a content-addressed trial-cache directory (the
/// `--cache DIR` of runs, or a service data-dir's `cache/`).
fn cache_command(args: &[String]) -> ! {
    let Some(verb) = args.first().map(String::as_str) else {
        fail("`exp cache` needs a subcommand: stats or gc");
    };
    let mut dir: Option<String> = None;
    let mut older_than: Option<std::time::Duration> = None;
    let mut json = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--older-than" => {
                i += 1;
                let v = args
                    .get(i)
                    .unwrap_or_else(|| fail("--older-than needs a value"));
                older_than = Some(parse_age(v).unwrap_or_else(|msg| fail(&msg)));
            }
            a if !a.starts_with("--") && dir.is_none() => dir = Some(a.to_string()),
            other => fail(&format!("unknown `exp cache` argument `{other}`")),
        }
        i += 1;
    }
    let Some(dir) = dir else {
        fail(&format!("`exp cache {verb}` needs a cache directory"));
    };
    let cache = match rix_dispatch::ResultCache::open(&dir) {
        Ok(c) => c,
        Err(msg) => run_fail(&msg),
    };
    match verb {
        "stats" => {
            let stats = match cache.stats() {
                Ok(s) => s,
                Err(msg) => run_fail(&msg),
            };
            if json {
                println!(
                    "{{\"schema\":\"rix-trial-cache-stats/1\",\"dir\":{},\
                     \"entries\":{},\"corrupt\":{},\"bytes\":{}}}",
                    rix_isa::json::Json::Str(dir).dump(),
                    stats.entries,
                    stats.corrupt,
                    stats.bytes,
                );
            } else {
                println!(
                    "cache {dir}: {} entries ({} bytes), {} corrupt",
                    stats.entries, stats.bytes, stats.corrupt,
                );
            }
        }
        "gc" => {
            let Some(age) = older_than else {
                fail("`exp cache gc` needs --older-than AGE");
            };
            match cache.gc(age) {
                Ok(removed) => println!("cache {dir}: removed {removed} entries"),
                Err(msg) => run_fail(&msg),
            }
        }
        other => fail(&format!("unknown `exp cache` subcommand `{other}` (want stats or gc)")),
    }
    std::process::exit(0);
}

fn main() {
    // A coordinator re-execs this binary with the internal worker
    // argument; check before any user-facing parsing.
    rix_bench::dispatch::maybe_worker();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("{EXP_USAGE}\n\n{}", Harness::usage());
        std::process::exit(0);
    }
    if raw.is_empty() {
        fail("no command given");
    }
    if raw[0] == "worker" {
        // The documented spelling of the worker entry points: bare for
        // stdio (the coordinator itself uses the internal argv[1]
        // marker), `--connect` for a remote TCP worker.
        let mut connect: Option<String> = None;
        let mut name: Option<String> = None;
        let mut i = 1;
        while i < raw.len() {
            let value = |i: &mut usize, flag: &str| -> String {
                *i += 1;
                raw.get(*i).cloned().unwrap_or_else(|| fail(&format!("{flag} needs a value")))
            };
            match raw[i].as_str() {
                "--connect" => connect = Some(value(&mut i, "--connect")),
                "--name" => name = Some(value(&mut i, "--name")),
                other => fail(&format!("unknown `exp worker` argument `{other}`")),
            }
            i += 1;
        }
        match connect {
            Some(addr) => rix_bench::dispatch::worker_connect_main(&addr, name.as_deref()),
            None => rix_bench::dispatch::worker_main(),
        }
    }
    if raw[0] == "workers" {
        workers_command(&raw[1..]);
    }
    match raw[0].as_str() {
        "serve-api" => serve_api_command(&raw[1..]),
        "submit" => submit_command(&raw[1..]),
        "status" => status_command(&raw[1..]),
        "fetch" => fetch_command(&raw[1..]),
        "runs" => runs_command(&raw[1..]),
        "cache" => cache_command(&raw[1..]),
        _ => {}
    }
    let serve = raw[0] == "serve";
    if !serve && raw[0] != "run" {
        fail(&format!(
            "unknown command `{}` (expected `run`, `serve`, `worker`, `workers`, \
             `serve-api`, `submit`, `status`, `fetch`, `runs` or `cache`)",
            raw[0]
        ));
    }
    let Some(path) = raw.get(1).filter(|p| !p.starts_with("--")) else {
        fail(&format!("`exp {}` needs a spec file path", raw[0]));
    };
    let mut dry_run = false;
    let mut list_arms = false;
    let mut rest = Vec::new();
    for a in &raw[2..] {
        match a.as_str() {
            "--dry-run" => dry_run = true,
            "--list-arms" => list_arms = true,
            other => rest.push(other.to_string()),
        }
    }
    let h = match Harness::try_parse(rest) {
        Ok(h) => h,
        Err(msg) => fail(&msg),
    };
    if serve && h.listen.is_none() {
        fail("`exp serve` needs --listen ADDR");
    }

    let mut spec = match ExperimentSpec::load(path) {
        Ok(s) => s,
        Err(msg) => fail(&msg),
    };
    spec.apply_harness(&h);
    let arms = match spec.arms() {
        Ok(a) => a,
        Err(msg) => fail(&msg),
    };
    let sweep = spec.sweep(&h);

    if list_arms {
        println!(
            "{} arms of `{}` ({}):",
            arms.len(),
            spec.name.as_deref().unwrap_or(path),
            spec.fingerprint_hex()
        );
        for (i, (label, _)) in arms.iter().enumerate() {
            println!("  [{i:>2}] {label}");
        }
        return;
    }
    if dry_run {
        // Validate the static sweep shape too (duplicate labels, empty
        // grids, …) and — under checkpoint warm-up — that every
        // benchmark's snapshot file actually exists, naming any missing
        // paths, so a scheduled run cannot fail hours in on a typo'd
        // checkpoint directory.
        if let Err(msg) = sweep.validate() {
            fail(&msg);
        }
        if let Err(msg) = sweep.validate_checkpoint_files() {
            fail(&msg);
        }
        // Count what this invocation would actually run: the spec's
        // benchmarks narrowed by the `--bench` filter, like the sweep.
        let benches: Vec<_> = spec
            .benchmarks
            .iter()
            .filter(|b| h.filter.as_deref().is_none_or(|f| f.eq_ignore_ascii_case(b.name)))
            .collect();
        // Lint every program the run would measure: a generator bug
        // (an uninitialised read, a block that can run off the end)
        // silently becomes a bogus data point, so a dry run rejects it
        // here rather than validating the spec around it.
        let mut findings = 0usize;
        for b in &benches {
            for d in rix_analysis::lint_program(&b.build(spec.seed)) {
                eprintln!("  {}: {d}", b.name);
                findings += 1;
            }
        }
        if findings > 0 {
            fail(&format!("{findings} lint findings in the spec's benchmarks (seed {})", spec.seed));
        }
        println!(
            "spec OK: {} ({})",
            spec.name.as_deref().unwrap_or(path),
            spec.fingerprint_hex()
        );
        println!(
            "  benchmarks: {}  arms: {}  cells: {}  instructions: {}  warmup: {} ({})  seed: {}",
            benches.len(),
            arms.len(),
            benches.len() * arms.len(),
            spec.instructions,
            spec.warmup,
            spec.warmup_mode.name(),
            spec.seed,
        );
        println!("  lint: clean ({} benchmarks at seed {})", benches.len(), spec.seed);
        return;
    }

    let (trials, report) = if h.workers > 0 || h.cache.is_some() || h.listen.is_some() {
        match sweep.run_distributed(&DispatchOptions::from_harness(&h)) {
            Ok((t, r)) => {
                eprintln!("dispatch: {}", r.summary());
                if h.verbose {
                    eprint!("{}", r.worker_table());
                }
                (t, Some(r))
            }
            Err(msg) => fail(&msg),
        }
    } else {
        match sweep.try_run() {
            Ok(t) => (t, None),
            Err(msg) => fail(&msg),
        }
    };
    // The cache section only exists when a cache is in use; the
    // dispatch section (per-worker stats) only under --dispatch-stats —
    // neither --verbose nor worker counts may change the doc's bytes.
    let cache_report = report.clone().filter(|_| h.cache.is_some());
    let dispatch_report = report.filter(|_| h.dispatch_stats);
    let doc = result_doc(&spec, &trials, cache_report.as_ref(), dispatch_report.as_ref());
    if let Some(out) = &h.output {
        if let Err(e) = std::fs::write(out, format!("{doc}\n")) {
            fail(&format!("cannot write `{out}`: {e}"));
        }
    }
    if h.json {
        println!("{doc}");
        return;
    }

    println!(
        "experiment: {} ({})",
        spec.name.as_deref().unwrap_or(path),
        spec.fingerprint_hex()
    );
    let mut table = Table::new(&["bench", "config", "IPC", "retired", "cycles"]);
    for t in &trials {
        table.row(vec![
            t.bench.to_string(),
            t.config_label.clone(),
            format!("{:.3}", t.result.ipc()),
            t.result.stats.retired.to_string(),
            t.result.stats.cycles.to_string(),
        ]);
    }
    println!("{}", table.render());
}
