//! Simulator-throughput harness: simulated KIPS per workload.
//!
//! Times every named workload under the no-integration baseline and the
//! full-integration configuration (the two ends of the fig4 sweep) with
//! `std::time::Instant` (the vendored criterion is a smoke-test stub)
//! and reports **simulated KIPS** — thousands of retired instructions
//! per wall-clock second. Results are written as a machine-readable
//! JSON perf record (default `BENCH_3.json`) so every PR can extend the
//! repo's performance trajectory; pass a previous record as
//! `--baseline` to get per-cell and geometric-mean speedups embedded in
//! the new record.
//!
//! ```text
//! perf [harness flags] [--workloads a,b,c] [--repeat K] [--out FILE] [--baseline FILE]
//! ```
//!
//! `--workloads` restricts the measurement to a comma-separated list of
//! benchmarks (validated with close-name suggestions), so a
//! single-workload measurement does not pay for the full suite; warm-up
//! is the shared harness `--warmup N` / `--warmup-mode` pair.
//!
//! Build with the fully-optimized profile when the numbers matter:
//! `cargo run --profile release-lto -p rix-bench --bin perf`.

use rix_bench::{Harness, Table, Trial};
use rix_sim::SimConfig;
use rix_workloads::Benchmark;

struct PerfArgs {
    harness: Harness,
    workloads: Option<Vec<Benchmark>>,
    repeat: usize,
    out: String,
    baseline: Option<String>,
}

const PERF_USAGE: &str = "\
perf-specific flags:\n\
\x20 --workloads a,b,c       measure only these benchmarks (comma-separated names)\n\
\x20 --repeat K              timing repetitions per cell, best-of-K (default 3)\n\
\x20 --out FILE              alias of the shared --output (default BENCH_3.json)\n\
\x20 --baseline FILE         previous perf record to compare against";

fn parse_args() -> Result<PerfArgs, String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}\n\n{PERF_USAGE}", Harness::usage());
        std::process::exit(0);
    }
    let mut rest = Vec::new();
    let mut workloads = None;
    let mut repeat = 3usize;
    let mut out = None;
    let mut baseline = None;
    let mut i = 0;
    let value = |raw: &[String], i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        raw.get(*i).cloned().ok_or_else(|| format!("{flag} is missing its value"))
    };
    while i < raw.len() {
        match raw[i].as_str() {
            "--workloads" => {
                let v = value(&raw, &mut i, "--workloads")?;
                let list = v
                    .split(',')
                    .map(str::trim)
                    .filter(|n| !n.is_empty())
                    .map(rix_workloads::lookup)
                    .collect::<Result<Vec<_>, _>>()?;
                if list.is_empty() {
                    return Err("--workloads takes a comma-separated list of names".into());
                }
                workloads = Some(list);
            }
            "--repeat" => {
                let v = value(&raw, &mut i, "--repeat")?;
                repeat = v
                    .parse()
                    .ok()
                    .filter(|&k| k >= 1)
                    .ok_or_else(|| format!("--repeat takes a count >= 1, got `{v}`"))?;
            }
            "--out" => out = Some(value(&raw, &mut i, "--out")?),
            "--baseline" => baseline = Some(value(&raw, &mut i, "--baseline")?),
            other => rest.push(other.to_string()),
        }
        i += 1;
    }
    let harness = Harness::try_parse(rest)?;
    if workloads.is_some() && harness.filter.is_some() {
        return Err("--workloads and --bench are mutually exclusive filters".into());
    }
    if harness.workers > 0 || harness.cache.is_some() || harness.listen.is_some() {
        return Err("perf times the simulator in-process; --workers/--cache/--listen would \
                    measure dispatch overhead instead of simulation speed"
            .into());
    }
    // The record path is the shared `--output` flag; `--out` remains as
    // the historical alias. Giving both would silently drop one, so it
    // is an error instead.
    if out.is_some() && harness.output.is_some() {
        return Err("--out is an alias of --output; give only one of them".into());
    }
    let out = out
        .or_else(|| harness.output.clone())
        .unwrap_or_else(|| "BENCH_3.json".to_string());
    Ok(PerfArgs { harness, workloads, repeat, out, baseline })
}

/// Geometric mean of strictly positive samples (0 when empty).
fn gmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// A previous perf record, reduced to its per-cell KIPS numbers.
struct BaselineRecord {
    file: String,
    /// The record's `warmup_mode` field ("detailed" when absent —
    /// records predating the field were all detailed).
    warmup_mode: String,
    cells: Vec<(String, String, f64)>, // (bench, config, kips)
}

impl BaselineRecord {
    /// Minimal extraction from a `rix-perf/1` record (this binary's own
    /// output format): walks the objects of the `"results"` array and
    /// pulls the `bench`/`config`/`kips` fields. No general JSON parser
    /// is needed (or available offline) for a format we emit ourselves.
    fn load(path: &str) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline `{path}`: {e}"))?;
        let results = text
            .split_once("\"results\"")
            .ok_or_else(|| format!("baseline `{path}` has no \"results\" array"))?
            .1;
        let mut cells = Vec::new();
        for obj in results.split('{').skip(1) {
            let Some(obj) = obj.split('}').next() else { continue };
            let (Some(bench), Some(config), Some(kips)) = (
                extract_str(obj, "bench"),
                extract_str(obj, "config"),
                extract_num(obj, "kips"),
            ) else {
                // The trailing summary objects lack the cell fields.
                continue;
            };
            cells.push((bench, config, kips));
        }
        if cells.is_empty() {
            return Err(format!("baseline `{path}` contains no perf cells"));
        }
        let header = text.split("\"results\"").next().unwrap_or("");
        let warmup_mode =
            extract_str(header, "warmup_mode").unwrap_or_else(|| "detailed".to_string());
        Ok(Self { file: path.to_string(), warmup_mode, cells })
    }

    fn kips(&self, bench: &str, config: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|(b, c, _)| b == bench && c == config)
            .map(|&(_, _, k)| k)
    }
}

fn extract_str(obj: &str, key: &str) -> Option<String> {
    let rest = obj.split_once(&format!("\"{key}\":\""))?.1;
    Some(rest.split('"').next()?.to_string())
}

fn extract_num(obj: &str, key: &str) -> Option<f64> {
    let rest = obj.split_once(&format!("\"{key}\":"))?.1;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}\n\n{PERF_USAGE}", Harness::usage());
            std::process::exit(2);
        }
    };
    let baseline = args.baseline.as_deref().map(|p| match BaselineRecord::load(p) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    });
    let h = &args.harness;
    let warmup_mode = h.warmup_mode.name();
    if let Some(b) = &baseline {
        if b.warmup_mode != warmup_mode {
            eprintln!(
                "warning: baseline `{}` was measured with {} warm-up, this run uses {} — \
                 the KIPS comparison mixes methodologies",
                b.file, b.warmup_mode, warmup_mode
            );
        }
    }
    let configs = [
        ("base".to_string(), SimConfig::baseline()),
        ("integration".to_string(), SimConfig::default()),
    ];

    // Time the sweep `repeat` times and keep, per cell, the fastest
    // repetition: simulated results are deterministic across
    // repetitions (asserted below), so best-of-K only de-noises the
    // host-side timing.
    let mut sweep = h.sweep().configs(configs.to_vec());
    if let Some(list) = &args.workloads {
        sweep = sweep.benchmarks(list.iter().copied());
    }
    let mut best: Vec<Trial> = sweep.run();
    for _ in 1..args.repeat {
        let again = sweep.run();
        for (b, a) in best.iter_mut().zip(again) {
            assert_eq!(b.result, a.result, "simulation must be deterministic");
            if a.wall < b.wall {
                *b = a;
            }
        }
    }

    // Text report.
    let has_base = baseline.is_some();
    let header: &[&str] = if has_base {
        &["bench", "base KIPS", "integ KIPS", "base x", "integ x"]
    } else {
        &["bench", "base KIPS", "integ KIPS"]
    };
    let mut table = Table::new(header);
    let mut per_config_kips = vec![Vec::new(); configs.len()];
    let mut per_config_speedups = vec![Vec::new(); configs.len()];
    let mut speedups = Vec::new();
    for row in best.chunks(configs.len()) {
        let mut cells = vec![row[0].bench.to_string()];
        for (ci, t) in row.iter().enumerate() {
            per_config_kips[ci].push(t.kips());
            cells.push(format!("{:.0}", t.kips()));
        }
        if let Some(b) = &baseline {
            for (ci, t) in row.iter().enumerate() {
                let x = b
                    .kips(t.bench, &t.config_label)
                    .map_or(f64::NAN, |before| t.kips() / before);
                if x.is_finite() {
                    speedups.push(x);
                    per_config_speedups[ci].push(x);
                }
                cells.push(if x.is_finite() {
                    format!("{x:.2}x")
                } else {
                    "-".to_string()
                });
            }
        }
        table.row(cells);
    }
    let mut mean_row = vec!["GMean".to_string()];
    for kips in &per_config_kips {
        mean_row.push(format!("{:.0}", gmean(kips)));
    }
    if has_base {
        for spd in &per_config_speedups {
            mean_row.push(format!("{:.2}x", gmean(spd)));
        }
    }
    table.row(mean_row);
    println!("Simulator throughput (simulated KIPS, best of {} runs)", args.repeat);
    println!("{}", table.render());

    // JSON perf record.
    let mut cells_json = Vec::new();
    for t in &best {
        cells_json.push(format!(
            concat!(
                r#"    {{"bench":"{}","config":"{}","retired":{},"cycles":{},"#,
                r#""wall_s":{:.6},"kips":{}}}"#
            ),
            t.bench,
            t.config_label,
            t.result.stats.retired,
            t.result.stats.cycles,
            t.wall.as_secs_f64(),
            json_f64(t.kips()),
        ));
    }
    let gmeans = format!(
        r#"{{"base":{},"integration":{},"all":{}}}"#,
        json_f64(gmean(&per_config_kips[0])),
        json_f64(gmean(&per_config_kips[1])),
        json_f64(gmean(&per_config_kips.concat())),
    );
    let baseline_json = baseline.as_ref().map(|b| {
        format!(
            "  \"baseline\":{{\"file\":\"{}\",\"gmean_speedup\":{}}},\n",
            b.file,
            json_f64(gmean(&speedups)),
        )
    });
    // The warm-up mode is part of the measurement methodology (a
    // functional warm-up measures a differently-prepared interval than
    // a detailed one), so the record carries it: trajectory comparisons
    // across modes are visible in the files, not silent.
    let record = format!(
        "{{\n  \"schema\":\"rix-perf/1\",\n  \"instructions\":{},\n  \"warmup\":{},\n  \
         \"warmup_mode\":\"{}\",\n  \
         \"seed\":{},\n  \"threads\":{},\n  \"repeat\":{},\n{}  \"gmean_kips\":{},\n  \
         \"results\":[\n{}\n  ]\n}}\n",
        h.instructions,
        h.warmup,
        warmup_mode,
        h.seed,
        h.threads,
        args.repeat,
        baseline_json.unwrap_or_default(),
        gmeans,
        cells_json.join(",\n"),
    );
    if let Err(e) = std::fs::write(&args.out, &record) {
        eprintln!("error: cannot write `{}`: {e}", args.out);
        std::process::exit(1);
    }
    println!("perf record written to {}", args.out);
    if let Some(b) = &baseline {
        println!(
            "geometric-mean speedup vs {}: {:.2}x",
            b.file,
            gmean(&speedups)
        );
    }
}
