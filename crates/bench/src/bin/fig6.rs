//! Figure 6: impact of integration-table associativity and size.
//!
//! Left — 1K-entry IT at associativities 1, 2, 4 and full, each with a
//! realistic LISP and with oracle suppression; the paper's finding is
//! that low associativity degrades integration gracefully (mis-
//! integrations dampen the benefit of more ways).
//!
//! Right — fully-associative, LRU-managed ITs of 64, 256, 1K and 4K
//! entries (the 4K point also uses 4K physical registers), measuring the
//! temporal locality of integration.

use rix_bench::{gmean_speedup, speedup_pct, trials_json, Harness, Table};
use rix_integration::IntegrationConfig;
use rix_sim::SimConfig;

fn main() {
    let h = Harness::from_args();

    let assoc_points: Vec<(&str, usize, usize)> =
        vec![("1-way", 1024, 1), ("2-way", 1024, 2), ("4-way", 1024, 4), ("full", 1024, 1024)];
    let size_points: Vec<(&str, usize, usize)> =
        vec![("64", 64, 64), ("256", 256, 256), ("1K", 1024, 1024), ("4K", 4096, 4096)];

    // Grid columns: baseline, (real, oracle) per associativity point,
    // then (real, oracle) per size point.
    let mut cfgs: Vec<(String, SimConfig)> = vec![("base".into(), SimConfig::baseline())];
    for (name, entries, ways) in &assoc_points {
        let ic = IntegrationConfig::plus_reverse().with_it_geometry(*entries, *ways);
        cfgs.push(((*name).to_string(), SimConfig::default().with_integration(ic)));
        cfgs.push((format!("{name}*"), SimConfig::default().with_integration(ic.with_oracle())));
    }
    for (name, entries, ways) in &size_points {
        let ic = IntegrationConfig::plus_reverse().with_it_geometry(*entries, *ways);
        // The 4K-entry point uses a 4K-register file (§3.4).
        let pregs = if *entries >= 4096 { 4096 } else { 1024 };
        cfgs.push((
            format!("sz{name}"),
            SimConfig::default().with_integration(ic).with_pregs(pregs),
        ));
        cfgs.push((
            format!("sz{name}*"),
            SimConfig::default().with_integration(ic.with_oracle()).with_pregs(pregs),
        ));
    }
    let ncfg = cfgs.len();
    let trials = h.sweep().configs(cfgs).run();
    if h.json {
        println!("{}", trials_json(&trials));
        return;
    }

    let mut assoc = Table::new(&[
        "bench", "1-way", "1-way*", "2-way", "2-way*", "4-way", "4-way*", "full", "full*",
    ]);
    let mut size = Table::new(&["bench", "64", "64*", "256", "256*", "1K", "1K*", "4K", "4K*"]);
    let mut assoc_means = vec![Vec::new(); assoc_points.len() * 2];
    let mut size_means = vec![Vec::new(); size_points.len() * 2];

    for row_trials in trials.chunks(ncfg) {
        let bench = row_trials[0].bench;
        let base = &row_trials[0].result;

        let mut arow = vec![bench.to_string()];
        for i in 0..assoc_points.len() {
            let real = &row_trials[1 + 2 * i].result;
            let orac = &row_trials[2 + 2 * i].result;
            let (sr, so) = (speedup_pct(real, base), speedup_pct(orac, base));
            arow.push(format!("{sr:+.1}%"));
            arow.push(format!("{so:+.1}%"));
            assoc_means[2 * i].push(sr);
            assoc_means[2 * i + 1].push(so);
        }
        assoc.row(arow);

        let size_off = 1 + 2 * assoc_points.len();
        let mut srow = vec![bench.to_string()];
        for i in 0..size_points.len() {
            let real = &row_trials[size_off + 2 * i].result;
            let orac = &row_trials[size_off + 2 * i + 1].result;
            let (sr, so) = (speedup_pct(real, base), speedup_pct(orac, base));
            srow.push(format!("{sr:+.1}%"));
            srow.push(format!("{so:+.1}%"));
            size_means[2 * i].push(sr);
            size_means[2 * i + 1].push(so);
        }
        size.row(srow);
    }

    let mut mrow = vec!["GMean".to_string()];
    for v in &assoc_means {
        mrow.push(format!("{:+.1}%", gmean_speedup(v)));
    }
    assoc.row(mrow);
    let mut mrow = vec!["GMean".to_string()];
    for v in &size_means {
        mrow.push(format!("{:+.1}%", gmean_speedup(v)));
    }
    size.row(mrow);

    println!("Figure 6 (left): IT associativity at 1K entries ('*' = oracle)");
    println!("{}", assoc.render());
    println!("Figure 6 (right): fully-associative IT size ('*' = oracle; 4K uses 4K pregs)");
    println!("{}", size.render());
}
