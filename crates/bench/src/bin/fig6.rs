//! Figure 6: impact of integration-table associativity and size.
//!
//! Left — 1K-entry IT at associativities 1, 2, 4 and full, each with a
//! realistic LISP and with oracle suppression; the paper's finding is
//! that low associativity degrades integration gracefully (mis-
//! integrations dampen the benefit of more ways).
//!
//! Right — fully-associative, LRU-managed ITs of 64, 256, 1K and 4K
//! entries (the 4K point also uses 4K physical registers), measuring the
//! temporal locality of integration.

use rix_bench::{gmean_speedup, speedup_pct, ExperimentSpec, Harness, Table};

/// The committed experiment this binary drives: baseline, then (real,
/// oracle) per associativity point, then (real, oracle) per size point
/// (the 4K-entry size point zips in a 4K-register file, §3.4).
const SPEC: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig6.json"));

/// Associativity and size points per sweep (the spec's two groups).
const N_ASSOC: usize = 4;
const N_SIZE: usize = 4;

fn main() {
    rix_bench::dispatch::maybe_worker();
    let h = Harness::from_args();
    let (spec, trials) = ExperimentSpec::run_embedded(SPEC, &h);
    let ncfg = spec.arms().expect("spec parsed").len();
    rix_bench::expect_arm_count("fig6", ncfg, 1 + 2 * N_ASSOC + 2 * N_SIZE);
    if h.emit_trials(&trials) {
        return;
    }

    let mut assoc = Table::new(&[
        "bench", "1-way", "1-way*", "2-way", "2-way*", "4-way", "4-way*", "full", "full*",
    ]);
    let mut size = Table::new(&["bench", "64", "64*", "256", "256*", "1K", "1K*", "4K", "4K*"]);
    let mut assoc_means = vec![Vec::new(); N_ASSOC * 2];
    let mut size_means = vec![Vec::new(); N_SIZE * 2];

    for row_trials in trials.chunks(ncfg) {
        let bench = row_trials[0].bench;
        let base = &row_trials[0].result;

        let mut arow = vec![bench.to_string()];
        for i in 0..N_ASSOC {
            let real = &row_trials[1 + 2 * i].result;
            let orac = &row_trials[2 + 2 * i].result;
            let (sr, so) = (speedup_pct(real, base), speedup_pct(orac, base));
            arow.push(format!("{sr:+.1}%"));
            arow.push(format!("{so:+.1}%"));
            assoc_means[2 * i].push(sr);
            assoc_means[2 * i + 1].push(so);
        }
        assoc.row(arow);

        let size_off = 1 + 2 * N_ASSOC;
        let mut srow = vec![bench.to_string()];
        for i in 0..N_SIZE {
            let real = &row_trials[size_off + 2 * i].result;
            let orac = &row_trials[size_off + 2 * i + 1].result;
            let (sr, so) = (speedup_pct(real, base), speedup_pct(orac, base));
            srow.push(format!("{sr:+.1}%"));
            srow.push(format!("{so:+.1}%"));
            size_means[2 * i].push(sr);
            size_means[2 * i + 1].push(so);
        }
        size.row(srow);
    }

    let mut mrow = vec!["GMean".to_string()];
    for v in &assoc_means {
        mrow.push(format!("{:+.1}%", gmean_speedup(v)));
    }
    assoc.row(mrow);
    let mut mrow = vec!["GMean".to_string()];
    for v in &size_means {
        mrow.push(format!("{:+.1}%", gmean_speedup(v)));
    }
    size.row(mrow);

    println!("Figure 6 (left): IT associativity at 1K entries ('*' = oracle)");
    println!("{}", assoc.render());
    println!("Figure 6 (right): fully-associative IT size ('*' = oracle; 4K uses 4K pregs)");
    println!("{}", size.render());
}
