//! Figure 6: impact of integration-table associativity and size.
//!
//! Left — 1K-entry IT at associativities 1, 2, 4 and full, each with a
//! realistic LISP and with oracle suppression; the paper's finding is
//! that low associativity degrades integration gracefully (mis-
//! integrations dampen the benefit of more ways).
//!
//! Right — fully-associative, LRU-managed ITs of 64, 256, 1K and 4K
//! entries (the 4K point also uses 4K physical registers), measuring the
//! temporal locality of integration.

use rix_bench::{gmean_speedup, speedup_pct, Harness, Table};
use rix_integration::IntegrationConfig;
use rix_sim::SimConfig;

fn main() {
    let h = Harness::from_args();

    let assoc_points: Vec<(&str, usize, usize)> =
        vec![("1-way", 1024, 1), ("2-way", 1024, 2), ("4-way", 1024, 4), ("full", 1024, 1024)];
    let size_points: Vec<(&str, usize, usize)> =
        vec![("64", 64, 64), ("256", 256, 256), ("1K", 1024, 1024), ("4K", 4096, 4096)];

    let mut assoc = Table::new(&[
        "bench", "1-way", "1-way*", "2-way", "2-way*", "4-way", "4-way*", "full", "full*",
    ]);
    let mut size = Table::new(&["bench", "64", "64*", "256", "256*", "1K", "1K*", "4K", "4K*"]);
    let mut assoc_means = vec![Vec::new(); assoc_points.len() * 2];
    let mut size_means = vec![Vec::new(); size_points.len() * 2];

    for b in h.benchmarks() {
        let program = b.build(h.seed);
        let base = h.run(&program, SimConfig::baseline());

        let mut arow = vec![b.name.to_string()];
        for (i, (_, entries, ways)) in assoc_points.iter().enumerate() {
            let ic = IntegrationConfig::plus_reverse().with_it_geometry(*entries, *ways);
            let real = h.run(&program, SimConfig::default().with_integration(ic));
            let orac =
                h.run(&program, SimConfig::default().with_integration(ic.with_oracle()));
            let (sr, so) = (speedup_pct(&real, &base), speedup_pct(&orac, &base));
            arow.push(format!("{sr:+.1}%"));
            arow.push(format!("{so:+.1}%"));
            assoc_means[2 * i].push(sr);
            assoc_means[2 * i + 1].push(so);
        }
        assoc.row(arow);

        let mut srow = vec![b.name.to_string()];
        for (i, (_, entries, ways)) in size_points.iter().enumerate() {
            let ic = IntegrationConfig::plus_reverse().with_it_geometry(*entries, *ways);
            // The 4K-entry point uses a 4K-register file (§3.4).
            let pregs = if *entries >= 4096 { 4096 } else { 1024 };
            let cfg = SimConfig::default().with_integration(ic).with_pregs(pregs);
            let ocfg = SimConfig::default()
                .with_integration(ic.with_oracle())
                .with_pregs(pregs);
            let real = h.run(&program, cfg);
            let orac = h.run(&program, ocfg);
            let (sr, so) = (speedup_pct(&real, &base), speedup_pct(&orac, &base));
            srow.push(format!("{sr:+.1}%"));
            srow.push(format!("{so:+.1}%"));
            size_means[2 * i].push(sr);
            size_means[2 * i + 1].push(so);
        }
        size.row(srow);
    }

    let mut mrow = vec!["GMean".to_string()];
    for v in &assoc_means {
        mrow.push(format!("{:+.1}%", gmean_speedup(v)));
    }
    assoc.row(mrow);
    let mut mrow = vec!["GMean".to_string()];
    for v in &size_means {
        mrow.push(format!("{:+.1}%", gmean_speedup(v)));
    }
    size.row(mrow);

    println!("Figure 6 (left): IT associativity at 1K entries ('*' = oracle)");
    println!("{}", assoc.render());
    println!("Figure 6 (right): fully-associative IT size ('*' = oracle; 4K uses 4K pregs)");
    println!("{}", size.render());
}
