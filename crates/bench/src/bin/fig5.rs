//! Figure 5: breakdowns of the integration retirement stream under the
//! default configuration (1K-entry 4-way IT, realistic LISP).
//!
//! Four stacked-bar breakdowns, printed as percentage tables with the
//! paper's direct/reverse split (`d+r`):
//!
//! * **Type** — stack-pointer loads, other loads, ALU, branches, FP,
//! * **Distance** — renamed instructions between entry creator and
//!   integrator (pipelinability of integration),
//! * **Status** — result state when the integrating instruction renamed
//!   (rename / issue / retire / shadow-squash),
//! * **Refcount** — reference count after integration (sharing degree,
//!   i.e. how many counter bits matter).

use rix_bench::{ExperimentSpec, Harness, Table};
use rix_integration::{stats, IntegrationType, ResultStatus};

/// The committed experiment this binary drives: the single default-
/// configuration arm whose retirement stream the tables break down.
const SPEC: &str = include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/fig5.json"));

fn pct(n: u64, d: u64) -> String {
    if d == 0 {
        "-".into()
    } else {
        format!("{:.1}", n as f64 / d as f64 * 100.0)
    }
}

fn main() {
    rix_bench::dispatch::maybe_worker();
    let h = Harness::from_args();
    let (spec, trials) = ExperimentSpec::run_embedded(SPEC, &h);
    rix_bench::expect_arm_count("fig5", spec.arms().expect("spec parsed").len(), 1);
    if h.emit_trials(&trials) {
        return;
    }

    let mut ty = Table::new(&["bench", "rate%", "load sp", "load", "ALU", "branch", "FP"]);
    let mut dist = Table::new(&["bench", "<=4", "<=16", "<=64", "<=256", "<=1024", ">1024"]);
    let mut status =
        Table::new(&["bench", "rename", "issue", "retire", "shadow/squash"]);
    let mut refc = Table::new(&["bench", "1", "<=3", "<=7", "<=15"]);

    for t in &trials {
        let s = &t.result.stats.integration;
        let total = s.integrations();

        let mut row = vec![t.bench.to_string(), format!("{:.1}", s.rate() * 100.0)];
        for ity in IntegrationType::ALL {
            let d = s.by_type[ity.index()][0];
            let rv = s.by_type[ity.index()][1];
            row.push(format!("{}+{}", pct(d, total), pct(rv, total)));
        }
        ty.row(row);

        let mut row = vec![t.bench.to_string()];
        for i in 0..stats::DISTANCE_BUCKETS.len() {
            row.push(format!(
                "{}+{}",
                pct(s.by_distance[i][0], total),
                pct(s.by_distance[i][1], total)
            ));
        }
        dist.row(row);

        let mut row = vec![t.bench.to_string()];
        for st in ResultStatus::ALL {
            row.push(format!(
                "{}+{}",
                pct(s.by_status[st.index()][0], total),
                pct(s.by_status[st.index()][1], total)
            ));
        }
        status.row(row);

        let value_total: u64 = s.by_refcount.iter().map(|b| b[0] + b[1]).sum();
        let mut row = vec![t.bench.to_string()];
        for i in 0..stats::REFCOUNT_BUCKETS.len() {
            row.push(format!(
                "{}+{}",
                pct(s.by_refcount[i][0], value_total),
                pct(s.by_refcount[i][1], value_total)
            ));
        }
        refc.row(row);
    }

    println!("Figure 5 breakdowns (each cell: direct+reverse, % of integrations)\n");
    println!("Type:");
    println!("{}", ty.render());
    println!("Distance (renamed instructions creator→integrator):");
    println!("{}", dist.render());
    println!("Status (result state at integration):");
    println!("{}", status.render());
    println!("Refcount (count after integration; value integrations only):");
    println!("{}", refc.render());
}
