//! Ablations of the design choices the paper calls out in prose:
//!
//! 1. **Generation-counter width** (§2.2): N-bit counters cut register
//!    mis-integrations by 2^N (one input) / 2^2N (two inputs); "four-bit
//!    counters eliminate virtually all register mis-integrations".
//! 2. **Reference-counter width** (§3.3): saturation makes narrow
//!    counters degrade gracefully — a saturated register simply spawns a
//!    fresh copy that subsequent instructions integrate instead.
//! 3. **Integration pipelining** (§3.3): separating the IT read and
//!    write stages by 4 instructions (a 4-wide machine's pipelined
//!    integration circuit) should cost at most ~20% of integrations.
//! 4. **Reverse-entry scope** (§2.4): the paper restricts reverse entries
//!    to stack-pointer stores/adjusts to save IT capacity; the
//!    generalised all-invertible scope trades capacity for coverage.

use rix_bench::{amean, ExperimentSpec, Harness, Table, Trial};

/// The committed experiment this binary drives: one group (one axis)
/// per ablation study, every point over the headline `plus_reverse`
/// configuration.
const SPEC: &str =
    include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/ablations.json"));

const GEN_BITS: [u32; 4] = [1, 2, 3, 4];
const COUNT_BITS: [u32; 4] = [1, 2, 3, 4];
const PIPE_DEPTHS: [u64; 4] = [0, 2, 4, 8];
const REV_SCOPES: [&str; 3] = ["off", "stack pointer", "all invertible"];

fn main() {
    rix_bench::dispatch::maybe_worker();
    let h = Harness::from_args();
    let (spec, trials) = ExperimentSpec::run_embedded(SPEC, &h);
    let ncfg = spec.arms().expect("spec parsed").len();
    rix_bench::expect_arm_count(
        "ablations",
        ncfg,
        GEN_BITS.len() + COUNT_BITS.len() + PIPE_DEPTHS.len() + REV_SCOPES.len(),
    );
    if h.emit_trials(&trials) {
        return;
    }

    // `column(j)` = that config's trials across all benchmarks.
    let column = |j: usize| -> Vec<&Trial> { trials.iter().skip(j).step_by(ncfg).collect() };
    let mut col = 0;

    // --- 1. generation-counter width ---------------------------------
    let mut gen_t = Table::new(&["gen bits", "rate%", "register mis/M", "load mis/M"]);
    for bits in GEN_BITS {
        let mut rates = Vec::new();
        let mut reg_mis = Vec::new();
        let mut load_mis = Vec::new();
        for t in column(col) {
            let s = &t.result.stats.integration;
            rates.push(s.rate() * 100.0);
            reg_mis.push(s.register_mis_integrations as f64 * 1e6 / s.retired.max(1) as f64);
            load_mis.push(s.load_mis_integrations as f64 * 1e6 / s.retired.max(1) as f64);
        }
        gen_t.row(vec![
            bits.to_string(),
            format!("{:.1}", amean(&rates)),
            format!("{:.0}", amean(&reg_mis)),
            format!("{:.0}", amean(&load_mis)),
        ]);
        col += 1;
    }

    // --- 2. reference-counter width -----------------------------------
    let mut cnt_t = Table::new(&["count bits", "rate%", "saturation note"]);
    for bits in COUNT_BITS {
        let rates: Vec<f64> =
            column(col).iter().map(|t| t.result.stats.integration.rate() * 100.0).collect();
        cnt_t.row(vec![
            bits.to_string(),
            format!("{:.1}", amean(&rates)),
            "saturated registers respawn (§3.3)".into(),
        ]);
        col += 1;
    }

    // --- 3. integration pipelining ------------------------------------
    let mut pipe_t = Table::new(&["pipeline depth", "rate%", "loss vs atomic"]);
    let mut atomic_rate = 0.0;
    for depth in PIPE_DEPTHS {
        let rates: Vec<f64> =
            column(col).iter().map(|t| t.result.stats.integration.rate() * 100.0).collect();
        let rate = amean(&rates);
        if depth == 0 {
            atomic_rate = rate;
        }
        pipe_t.row(vec![
            depth.to_string(),
            format!("{rate:.1}"),
            if depth == 0 {
                "-".into()
            } else {
                format!("{:.0}%", (1.0 - rate / atomic_rate) * 100.0)
            },
        ]);
        col += 1;
    }

    // --- 4. reverse scope ----------------------------------------------
    let mut rev_t = Table::new(&["reverse scope", "rate%", "reverse%", "mis/M"]);
    for name in REV_SCOPES {
        let mut rates = Vec::new();
        let mut revs = Vec::new();
        let mut mis = Vec::new();
        for t in column(col) {
            let s = &t.result.stats.integration;
            rates.push(s.rate() * 100.0);
            revs.push(s.reverse_rate() * 100.0);
            mis.push(s.mis_per_million());
        }
        rev_t.row(vec![
            name.into(),
            format!("{:.1}", amean(&rates)),
            format!("{:.1}", amean(&revs)),
            format!("{:.0}", amean(&mis)),
        ]);
        col += 1;
    }

    println!("Ablation 1 — generation-counter width (§2.2):");
    println!("{}", gen_t.render());
    println!("Ablation 2 — reference-counter width (§3.3):");
    println!("{}", cnt_t.render());
    println!("Ablation 3 — integration pipelining (§3.3, read/write separation):");
    println!("{}", pipe_t.render());
    println!("Ablation 4 — reverse-entry scope (§2.4):");
    println!("{}", rev_t.render());
}
