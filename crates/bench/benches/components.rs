//! Criterion micro-benchmarks for the integration machinery and
//! substrates: these guard the simulator's own performance, since every
//! figure costs hundreds of millions of simulated cycles.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rix_frontend::HybridPredictor;
use rix_integration::{IndexScheme, It, ItKey, Lisp, PregRef, RefVector};
use rix_isa::{reg, Instr, Opcode};
use rix_mem::{Cache, CacheConfig, MemConfig, MemSystem};
use std::hint::black_box;

fn bench_it(c: &mut Criterion) {
    let mut g = c.benchmark_group("it");
    let add = Instr::alu_ri(Opcode::Addq, reg::R1, reg::R2, 4);
    g.bench_function("lookup_hit", |b| {
        let mut it = It::new(1024, 4, IndexScheme::OpcodeDepth);
        let key = ItKey::new(10, add, 1, Some(PregRef::new(7, 1)), None);
        it.insert_direct(key, PregRef::new(9, 1), 1);
        b.iter(|| black_box(it.lookup(black_box(key))));
    });
    g.bench_function("lookup_miss", |b| {
        let mut it = It::new(1024, 4, IndexScheme::OpcodeDepth);
        let key = ItKey::new(10, add, 1, Some(PregRef::new(7, 1)), None);
        b.iter(|| black_box(it.lookup(black_box(key))));
    });
    g.bench_function("insert_churn", |b| {
        let mut it = It::new(1024, 4, IndexScheme::OpcodeDepth);
        let mut n = 0u16;
        b.iter(|| {
            n = n.wrapping_add(1);
            let key = ItKey::new(
                u64::from(n),
                add,
                n % 8,
                Some(PregRef::new(n % 512, 1)),
                None,
            );
            it.insert_direct(key, PregRef::new(n % 512, 2), u64::from(n));
        });
    });
    g.finish();
}

fn bench_refvec(c: &mut Criterion) {
    let mut g = c.benchmark_group("refvec");
    g.bench_function("alloc_free_cycle", |b| {
        b.iter_batched(
            || RefVector::new(1024, 4, 4),
            |mut v| {
                for _ in 0..64 {
                    let r = v.alloc().expect("free register");
                    v.mark_written(r);
                    v.unmap_squash(r);
                }
                v
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("integrate_unmap", |b| {
        let mut v = RefVector::new(1024, 4, 4);
        let r = v.alloc().expect("free register");
        v.mark_written(r);
        b.iter(|| {
            if v.eligible_general(r) {
                let _ = v.integrate(r);
                v.unmap_shadow(r);
            }
        });
    });
    g.finish();
}

fn bench_caches(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem");
    g.bench_function("l1_hit", |b| {
        let mut cache = Cache::new(CacheConfig::l1d());
        cache.fill(0x1000);
        b.iter(|| black_box(cache.lookup(black_box(0x1000), false)));
    });
    g.bench_function("hierarchy_load_warm", |b| {
        let mut sys = MemSystem::new(MemConfig::default());
        let _ = sys.dload(0, 0x1000);
        let mut now = 1000u64;
        b.iter(|| {
            now += 4;
            black_box(sys.dload(now, 0x1000))
        });
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    g.bench_function("hybrid_predict_train", |b| {
        let mut p = HybridPredictor::new(rix_frontend::PredictorConfig::default());
        let mut pc = 0u64;
        b.iter(|| {
            pc = (pc + 13) & 0xffff;
            let h = p.history();
            let t = p.predict_and_update(pc);
            p.train(pc, h, t);
        });
    });
    g.bench_function("lisp", |b| {
        let mut l = Lisp::new(1024, 2);
        l.train(64);
        b.iter(|| black_box(l.suppress(black_box(64))));
    });
    g.finish();
}

criterion_group!(benches, bench_it, bench_refvec, bench_caches, bench_predictor);
criterion_main!(benches);
