//! End-to-end simulator throughput: simulated instructions per wall
//! second, per machine configuration. Integration adds rename-stage
//! work; this measures its simulation cost next to the baseline renamer.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rix_integration::IntegrationConfig;
use rix_sim::{SimConfig, Simulator};
use std::hint::black_box;

const INSTRS: u64 = 20_000;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(INSTRS));
    for (label, cfg) in [
        ("baseline", SimConfig::baseline()),
        ("squash", SimConfig::default().with_integration(IntegrationConfig::squash_reuse())),
        ("full_integration", SimConfig::default()),
        (
            "oracle",
            SimConfig::default().with_integration(IntegrationConfig::default().with_oracle()),
        ),
    ] {
        for bench in ["gcc", "gzip", "mcf"] {
            let program = rix_workloads::by_name(bench).expect("known benchmark").build(7);
            g.bench_function(format!("{label}/{bench}"), |b| {
                b.iter(|| black_box(Simulator::new(&program, cfg).run(INSTRS)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
