//! Figure-regeneration benches: time one representative data point of
//! each figure, so `cargo bench` exercises every experiment path the
//! `fig4`–`fig7` binaries use (workload generation included).

use criterion::{criterion_group, criterion_main, Criterion};
use rix_integration::IntegrationConfig;
use rix_sim::{CoreConfig, SimConfig, Simulator};
use std::hint::black_box;

const INSTRS: u64 = 10_000;

fn point(program: &rix_isa::Program, cfg: SimConfig) -> f64 {
    Simulator::new(program, cfg).run(INSTRS).ipc()
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let program = rix_workloads::by_name("vortex").expect("known benchmark").build(7);

    g.bench_function("fig4_arm_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (_, ic) in IntegrationConfig::figure4_arms() {
                acc += point(&program, SimConfig::default().with_integration(ic));
            }
            black_box(acc)
        });
    });
    g.bench_function("fig5_breakdowns", |b| {
        b.iter(|| {
            let r = Simulator::new(&program, SimConfig::default()).run(INSTRS);
            black_box(r.stats.integration.by_type)
        });
    });
    g.bench_function("fig6_it_geometry", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (entries, ways) in [(1024, 1), (64, 64)] {
                let ic = IntegrationConfig::plus_reverse().with_it_geometry(entries, ways);
                acc += point(&program, SimConfig::default().with_integration(ic));
            }
            black_box(acc)
        });
    });
    g.bench_function("fig7_reduced_cores", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for core in [CoreConfig::rs20(), CoreConfig::iw3()] {
                acc += point(&program, SimConfig::default().with_core(core));
            }
            black_box(acc)
        });
    });
    g.bench_function("workload_generation", |b| {
        let spec = rix_workloads::by_name("gcc").expect("known benchmark");
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(spec.build(seed))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
