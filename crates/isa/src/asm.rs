//! A small assembler with labels for building [`Program`]s.
//!
//! [`Asm`] is a non-consuming builder: emit instructions with the mnemonic
//! methods, mark positions with [`Asm::label`], and resolve everything with
//! [`Asm::assemble`]. Forward references are allowed.
//!
//! ```
//! use rix_isa::{Asm, reg};
//!
//! let mut a = Asm::new();
//! a.addq_i(reg::R1, reg::ZERO, 3);
//! a.label("loop");
//! a.subq_i(reg::R1, reg::R1, 1);
//! a.bne(reg::R1, "loop");
//! a.halt();
//! let p = a.assemble()?;
//! assert_eq!(p.fetch(2).unwrap().target, 1);
//! # Ok::<(), rix_isa::AsmError>(())
//! ```

use crate::instr::Instr;
use crate::opcode::Opcode;
use crate::program::{DataSegment, Program};
use crate::reg::LogReg;
use crate::{DataAddr, InstAddr};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced by [`Asm::assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl Error for AsmError {}

/// Assembler state: instructions emitted so far, label definitions, and
/// pending fixups.
#[derive(Clone, Debug, Default)]
pub struct Asm {
    instrs: Vec<Instr>,
    labels: HashMap<String, InstAddr>,
    fixups: Vec<(usize, String)>,
    data: Vec<DataSegment>,
    entry: Option<String>,
    duplicate: Option<String>,
}

impl Asm {
    /// Creates an empty assembler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines `name` at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        let here = self.instrs.len() as InstAddr;
        if self.labels.insert(name.clone(), here).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name);
        }
        self
    }

    /// The current position (address of the next emitted instruction).
    #[must_use]
    pub fn here(&self) -> InstAddr {
        self.instrs.len() as InstAddr
    }

    /// Sets the entry point to a label (defaults to address 0).
    pub fn entry(&mut self, label: impl Into<String>) -> &mut Self {
        self.entry = Some(label.into());
        self
    }

    /// Adds an initialised data segment.
    pub fn data(&mut self, base: DataAddr, words: impl Into<Vec<u64>>) -> &mut Self {
        self.data.push(DataSegment { base, words: words.into() });
        self
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    fn emit_fixup(&mut self, i: Instr, label: impl Into<String>) -> &mut Self {
        self.fixups.push((self.instrs.len(), label.into()));
        self.instrs.push(i);
        self
    }

    /// Resolves labels and produces the [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if a branch references an
    /// undefined label, and [`AsmError::DuplicateLabel`] if a label was
    /// defined more than once.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if let Some(name) = &self.duplicate {
            return Err(AsmError::DuplicateLabel(name.clone()));
        }
        let mut instrs = self.instrs.clone();
        for (idx, label) in &self.fixups {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
            instrs[*idx].target = target;
        }
        let entry = match &self.entry {
            Some(label) => *self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?,
            None => 0,
        };
        Ok(Program::from_parts(instrs, entry, self.data.clone()))
    }
}

macro_rules! alu_methods {
    ($( $(#[$meta:meta])* ($rr:ident, $ri:ident, $op:ident) ),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$meta])*
                pub fn $rr(&mut self, d: LogReg, a: LogReg, b: LogReg) -> &mut Self {
                    self.emit(Instr::alu_rr(Opcode::$op, d, a, b))
                }

                /// Immediate form of the same operation.
                pub fn $ri(&mut self, d: LogReg, a: LogReg, imm: i32) -> &mut Self {
                    self.emit(Instr::alu_ri(Opcode::$op, d, a, imm))
                }
            )+
        }
    };
}

alu_methods! {
    /// `addq d, a, b`
    (addq, addq_i, Addq),
    /// `subq d, a, b`
    (subq, subq_i, Subq),
    /// `mulq d, a, b` (complex integer)
    (mulq, mulq_i, Mulq),
    /// `and d, a, b`
    (and_, and_i, And),
    /// `or d, a, b`
    (or_, or_i, Or),
    /// `xor d, a, b`
    (xor_, xor_i, Xor),
    /// `sll d, a, b`
    (sll, sll_i, Sll),
    /// `srl d, a, b`
    (srl, srl_i, Srl),
    /// `sra d, a, b`
    (sra, sra_i, Sra),
    /// `cmpeq d, a, b`
    (cmpeq, cmpeq_i, Cmpeq),
    /// `cmplt d, a, b`
    (cmplt, cmplt_i, Cmplt),
    /// `cmple d, a, b`
    (cmple, cmple_i, Cmple),
    /// `cmpult d, a, b`
    (cmpult, cmpult_i, Cmpult),
    /// `addt d, a, b` (floating point)
    (addt, addt_i, Addt),
    /// `subt d, a, b` (floating point)
    (subt, subt_i, Subt),
    /// `mult d, a, b` (floating point)
    (mult, mult_i, Mult),
    /// `divt d, a, b` (floating point)
    (divt, divt_i, Divt),
}

macro_rules! branch_methods {
    ($( $(#[$meta:meta])* ($name:ident, $op:ident) ),+ $(,)?) => {
        impl Asm {
            $(
                $(#[$meta])*
                pub fn $name(&mut self, cond: LogReg, label: impl Into<String>) -> &mut Self {
                    self.emit_fixup(Instr::cond_branch(Opcode::$op, cond, 0), label)
                }
            )+
        }
    };
}

branch_methods! {
    /// Branch if `cond == 0`.
    (beq, Beq),
    /// Branch if `cond != 0`.
    (bne, Bne),
    /// Branch if `cond < 0` (signed).
    (blt, Blt),
    /// Branch if `cond >= 0` (signed).
    (bge, Bge),
    /// Branch if `cond > 0` (signed).
    (bgt, Bgt),
    /// Branch if `cond <= 0` (signed).
    (ble, Ble),
}

impl Asm {
    /// `lda d, imm(a)` — Alpha's load-address, an alias for `addq_i`. This
    /// is the frame push/pop instruction reverse integration inverts.
    pub fn lda(&mut self, d: LogReg, imm: i32, a: LogReg) -> &mut Self {
        self.addq_i(d, a, imm)
    }

    /// `ldq d, disp(base)` — 64-bit load.
    pub fn ldq(&mut self, d: LogReg, disp: i32, base: LogReg) -> &mut Self {
        self.emit(Instr::load(Opcode::Ldq, d, base, disp))
    }

    /// `ldl d, disp(base)` — 32-bit sign-extending load.
    pub fn ldl(&mut self, d: LogReg, disp: i32, base: LogReg) -> &mut Self {
        self.emit(Instr::load(Opcode::Ldl, d, base, disp))
    }

    /// `stq data, disp(base)` — 64-bit store.
    pub fn stq(&mut self, data: LogReg, disp: i32, base: LogReg) -> &mut Self {
        self.emit(Instr::store(Opcode::Stq, data, base, disp))
    }

    /// `stl data, disp(base)` — 32-bit store.
    pub fn stl(&mut self, data: LogReg, disp: i32, base: LogReg) -> &mut Self {
        self.emit(Instr::store(Opcode::Stl, data, base, disp))
    }

    /// Unconditional branch to `label`.
    pub fn br(&mut self, label: impl Into<String>) -> &mut Self {
        self.emit_fixup(Instr::br(0), label)
    }

    /// Direct call to `label` (writes `ra`).
    pub fn jsr(&mut self, label: impl Into<String>) -> &mut Self {
        self.emit_fixup(Instr::jsr(0), label)
    }

    /// Indirect return through `ra`.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::ret())
    }

    /// System call.
    pub fn syscall(&mut self) -> &mut Self {
        self.emit(Instr::syscall())
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::nop())
    }

    /// Halt.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::halt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new();
        a.br("end"); // forward reference
        a.label("top");
        a.nop();
        a.bne(reg::R1, "top"); // backward reference
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(0).unwrap().target, 3);
        assert_eq!(p.fetch(2).unwrap().target, 1);
    }

    #[test]
    fn undefined_label_errors() {
        let mut a = Asm::new();
        a.br("nowhere");
        assert_eq!(
            a.assemble(),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn entry_label() {
        let mut a = Asm::new();
        a.nop();
        a.label("main");
        a.halt();
        a.entry("main");
        assert_eq!(a.assemble().unwrap().entry(), 1);
    }

    #[test]
    fn lda_is_addq_imm() {
        let mut a = Asm::new();
        a.lda(reg::SP, -32, reg::SP);
        let p = a.assemble().unwrap();
        let i = p.fetch(0).unwrap();
        assert_eq!(i.op, Opcode::Addq);
        assert_eq!(i.alu_imm(), Some(-32));
    }

    #[test]
    fn save_restore_idiom() {
        // The §2.4 working example: save, frame push, body, pop, restore.
        let mut a = Asm::new();
        a.stq(reg::T0, 8, reg::SP);
        a.jsr("f");
        a.halt();
        a.label("f");
        a.lda(reg::SP, -32, reg::SP);
        a.stq(reg::S0, 4, reg::SP);
        a.ldq(reg::S0, 4, reg::SP);
        a.lda(reg::SP, 32, reg::SP);
        a.ret();
        let p = a.assemble().unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p.fetch(1).unwrap().target, 3);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            AsmError::UndefinedLabel("x".into()).to_string(),
            "undefined label `x`"
        );
        assert_eq!(
            AsmError::DuplicateLabel("y".into()).to_string(),
            "duplicate label `y`"
        );
    }

    #[test]
    fn data_segments_pass_through() {
        let mut a = Asm::new();
        a.data(0x2000, vec![9, 8, 7]);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.data_segments()[0].base, 0x2000);
        assert_eq!(p.data_segments()[0].words.len(), 3);
    }
}
