//! Dense 64-bit binary instruction encoding.
//!
//! The simulator operates on decoded [`Instr`] values, but the ISA defines
//! a real machine encoding so programs have a concrete size (8 bytes per
//! instruction — what the instruction cache model charges for a fetch) and
//! so the decoded form can be validated by a lossless round-trip.
//!
//! Word layout (little-endian bit numbering):
//!
//! | bits   | field |
//! |--------|-------|
//! | 0–7    | opcode |
//! | 8–15   | `dst` register (0xFF = none) |
//! | 16–23  | `src1` register (0xFF = none) |
//! | 24–31  | `src2`: register index, 0xFE = immediate form, 0xFF = none |
//! | 32–63  | payload: ALU immediate, memory displacement, or branch target |

use crate::instr::{Instr, Operand};
use crate::opcode::Opcode;
use crate::reg::LogReg;
use std::error::Error;
use std::fmt;

const NONE: u8 = 0xff;
const IMM: u8 = 0xfe;

/// Bytes per encoded instruction.
pub const INSTR_BYTES: u64 = 8;

/// Error produced by [`encode`] / [`decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The opcode byte did not name a RIX opcode.
    BadOpcode(u8),
    /// A register field held an invalid index.
    BadRegister(u8),
    /// A branch target did not fit in the 32-bit payload.
    TargetOverflow(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#x}"),
            CodecError::BadRegister(b) => write!(f, "invalid register field {b:#x}"),
            CodecError::TargetOverflow(t) => write!(f, "branch target {t} exceeds 32 bits"),
        }
    }
}

impl Error for CodecError {}

/// Encodes an instruction into its 64-bit machine word.
///
/// # Errors
///
/// Returns [`CodecError::TargetOverflow`] if a direct branch target does
/// not fit in 32 bits.
pub fn encode(i: Instr) -> Result<u64, CodecError> {
    let payload: u32 = if i.op.is_control() && i.op != Opcode::Ret {
        u32::try_from(i.target).map_err(|_| CodecError::TargetOverflow(i.target))?
    } else if i.op.is_mem() {
        i.disp as u32
    } else {
        match i.src2 {
            Some(Operand::Imm(v)) => v as u32,
            _ => 0,
        }
    };
    let (src2, _imm_in_payload) = match i.src2 {
        None => (NONE, false),
        Some(Operand::Reg(r)) => (r.raw(), false),
        Some(Operand::Imm(_)) => (IMM, true),
    };
    let word = u64::from(i.op.code())
        | (u64::from(i.dst.map_or(NONE, LogReg::raw)) << 8)
        | (u64::from(i.src1.map_or(NONE, LogReg::raw)) << 16)
        | (u64::from(src2) << 24)
        | (u64::from(payload) << 32);
    Ok(word)
}

/// Decodes a 64-bit machine word back into an instruction.
///
/// # Errors
///
/// Returns [`CodecError::BadOpcode`] or [`CodecError::BadRegister`] for
/// malformed words.
pub fn decode(word: u64) -> Result<Instr, CodecError> {
    let op = Opcode::from_code((word & 0xff) as u8)
        .ok_or(CodecError::BadOpcode((word & 0xff) as u8))?;
    let reg_field = |b: u8| -> Result<Option<LogReg>, CodecError> {
        if b == NONE {
            Ok(None)
        } else {
            LogReg::try_new(b).map(Some).ok_or(CodecError::BadRegister(b))
        }
    };
    let dst = reg_field((word >> 8) as u8)?;
    let src1 = reg_field((word >> 16) as u8)?;
    let src2_raw = (word >> 24) as u8;
    let payload = (word >> 32) as u32;
    let src2 = match src2_raw {
        NONE => None,
        IMM => Some(Operand::Imm(payload as i32)),
        b => Some(Operand::Reg(
            LogReg::try_new(b).ok_or(CodecError::BadRegister(b))?,
        )),
    };
    let (disp, target) = if op.is_control() && op != Opcode::Ret {
        (0, u64::from(payload))
    } else if op.is_mem() {
        (payload as i32, 0)
    } else {
        (0, 0)
    };
    Ok(Instr { op, dst, src1, src2, disp, target })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    fn samples() -> Vec<Instr> {
        vec![
            Instr::alu_rr(Opcode::Addq, reg::R1, reg::R2, reg::R3),
            Instr::alu_ri(Opcode::Addq, reg::SP, reg::SP, -32),
            Instr::alu_ri(Opcode::Xor, reg::R4, reg::R5, 0x7fff_ffff),
            Instr::alu_rr(Opcode::Mult, reg::F0, reg::F1, reg::F2),
            Instr::load(Opcode::Ldq, reg::S0, reg::SP, 8),
            Instr::load(Opcode::Ldl, reg::R1, reg::R2, -4),
            Instr::store(Opcode::Stq, reg::T0, reg::SP, 16),
            Instr::cond_branch(Opcode::Bne, reg::R1, 12345),
            Instr::br(7),
            Instr::jsr(42),
            Instr::ret(),
            Instr::syscall(),
            Instr::nop(),
            Instr::halt(),
        ]
    }

    #[test]
    fn roundtrip_samples() {
        for i in samples() {
            let w = encode(i).unwrap();
            assert_eq!(decode(w).unwrap(), i, "{i}");
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(decode(0xff), Err(CodecError::BadOpcode(0xff)));
    }

    #[test]
    fn bad_register_rejected() {
        // addq with dst field 0x90 (>= 64, not NONE/IMM).
        let w = u64::from(Opcode::Addq.code()) | (0x90u64 << 8);
        assert_eq!(decode(w), Err(CodecError::BadRegister(0x90)));
    }

    #[test]
    fn target_overflow_rejected() {
        let i = Instr::br(u64::from(u32::MAX) + 1);
        assert_eq!(encode(i), Err(CodecError::TargetOverflow(1 << 32)));
    }

    #[test]
    fn negative_immediates_roundtrip() {
        let i = Instr::alu_ri(Opcode::Addq, reg::SP, reg::SP, i32::MIN);
        assert_eq!(decode(encode(i).unwrap()).unwrap(), i);
        let i = Instr::load(Opcode::Ldq, reg::R1, reg::R2, i32::MIN);
        assert_eq!(decode(encode(i).unwrap()).unwrap(), i);
    }

    #[test]
    fn error_display() {
        assert!(CodecError::BadOpcode(0xff).to_string().contains("0xff"));
        assert!(CodecError::TargetOverflow(5).to_string().contains('5'));
    }
}
