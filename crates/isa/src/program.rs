//! Assembled programs: instruction memory plus initial data image.

use crate::instr::Instr;
use crate::{DataAddr, InstAddr};

/// An initialised region of data memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataSegment {
    /// Byte address of the first word (8-byte aligned).
    pub base: DataAddr,
    /// Consecutive 64-bit words starting at `base`.
    pub words: Vec<u64>,
}

/// An executable RIX program: a flat instruction memory (word-indexed PCs)
/// and the initial contents of data memory.
///
/// Fetching an address outside the instruction memory returns `None`; the
/// front end treats that as a fetch stall, which is how the simulator
/// models running off the end of a mis-speculated path.
///
/// ```
/// use rix_isa::{Asm, reg};
/// let mut a = Asm::new();
/// a.addq_i(reg::R1, reg::ZERO, 1);
/// a.halt();
/// let p = a.assemble()?;
/// assert!(p.fetch(0).is_some());
/// assert!(p.fetch(10).is_none());
/// # Ok::<(), rix_isa::AsmError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
    entry: InstAddr,
    data: Vec<DataSegment>,
}

impl Program {
    /// Creates a program from raw parts.
    ///
    /// Most callers should use [`crate::Asm`] instead.
    #[must_use]
    pub fn from_parts(instrs: Vec<Instr>, entry: InstAddr, data: Vec<DataSegment>) -> Self {
        Self { instrs, entry, data }
    }

    /// Fetches the instruction at `pc`, or `None` when `pc` is outside the
    /// program.
    #[must_use]
    pub fn fetch(&self, pc: InstAddr) -> Option<Instr> {
        self.instrs.get(usize::try_from(pc).ok()?).copied()
    }

    /// The program's entry point.
    #[must_use]
    pub fn entry(&self) -> InstAddr {
        self.entry
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The static instruction stream.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The initial data image.
    #[must_use]
    pub fn data_segments(&self) -> &[DataSegment] {
        &self.data
    }

    /// Disassembles the whole program, one instruction per line.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (pc, i) in self.instrs.iter().enumerate() {
            let _ = writeln!(out, "{pc:6}: {i}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcode::Opcode;
    use crate::reg;

    fn tiny() -> Program {
        Program::from_parts(
            vec![
                Instr::alu_ri(Opcode::Addq, reg::R1, reg::ZERO, 5),
                Instr::halt(),
            ],
            0,
            vec![DataSegment { base: 0x1000, words: vec![1, 2, 3] }],
        )
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = tiny();
        assert_eq!(p.fetch(0).unwrap().op, Opcode::Addq);
        assert_eq!(p.fetch(1).unwrap().op, Opcode::Halt);
        assert_eq!(p.fetch(2), None);
        assert_eq!(p.fetch(u64::MAX), None);
    }

    #[test]
    fn accessors() {
        let p = tiny();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.entry(), 0);
        assert_eq!(p.data_segments().len(), 1);
        assert_eq!(p.data_segments()[0].words, vec![1, 2, 3]);
    }

    #[test]
    fn disassembly_lists_every_instruction() {
        let d = tiny().disassemble();
        assert!(d.contains("addq r1, zero, #5"));
        assert!(d.contains("halt"));
        assert_eq!(d.lines().count(), 2);
    }
}
