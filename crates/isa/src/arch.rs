//! Architectural state: the portable truth shared by every execution
//! engine.
//!
//! [`ArchState`] is the complete architectural snapshot of a program at a
//! retirement boundary — program counter, the 64 logical registers, the
//! memory image, and the retired-instruction position. The reference
//! interpreter ([`crate::interp::Interp`]) *is* a thin stepper over one;
//! the out-of-order simulator retires into one and can boot from one
//! mid-program (`Simulator::from_arch_state`); checkpoints serialise one
//! to disk; and the sweep layer forks one warm-up across config arms.
//!
//! Two engines agree architecturally **iff** their `ArchState`s compare
//! equal — equality covers the memory image word-for-word, not just the
//! registers.
//!
//! ```
//! use rix_isa::{ArchState, Asm, reg};
//! use rix_isa::interp::Interp;
//!
//! let mut a = Asm::new();
//! a.addq_i(reg::R1, reg::ZERO, 7);
//! a.halt();
//! let p = a.assemble()?;
//! let mut i = Interp::new(&p, 0x8000);
//! let state: ArchState = i.fast_forward(1); // run 1 instruction
//! assert_eq!(state.reg(reg::R1), 7);
//! assert_eq!(state.retired, 1);
//! // The snapshot round-trips through its hand-rolled JSON form.
//! assert_eq!(ArchState::from_json(&state.to_json())?, state);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::json::Json;
use crate::program::Program;
use crate::reg::{LogReg, NUM_LOG_REGS, SP};
use crate::{DataAddr, InstAddr};
use std::collections::BTreeMap;

/// Words per 4 KB page.
pub const WORDS_PER_PAGE: usize = 512;
/// Page number = byte address >> this.
pub const PAGE_SHIFT: u32 = 12;

/// A sparse, page-granular memory image of 64-bit words. Uninitialised
/// words read as zero; two images are equal **iff** every word reads
/// equal (an explicitly written zero is indistinguishable from an
/// untouched word, so equality and serialisation consider non-zero
/// words only).
///
/// Pages are kept in a `BTreeMap`, so iteration — and therefore the
/// serialised form — is deterministic regardless of write order.
#[derive(Clone, Debug, Default)]
pub struct MemImage {
    pages: BTreeMap<u64, Box<[u64; WORDS_PER_PAGE]>>,
}

impl MemImage {
    /// An empty (all-zero) image.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the naturally-aligned word containing `addr`.
    #[must_use]
    pub fn read_word(&self, addr: DataAddr) -> u64 {
        let idx = ((addr >> 3) as usize) & (WORDS_PER_PAGE - 1);
        self.pages.get(&(addr >> PAGE_SHIFT)).map_or(0, |p| p[idx])
    }

    /// Writes the naturally-aligned word containing `addr`.
    pub fn write_word(&mut self, addr: DataAddr, value: u64) {
        let idx = ((addr >> 3) as usize) & (WORDS_PER_PAGE - 1);
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0; WORDS_PER_PAGE]))[idx] = value;
    }

    /// Seeds the image from an assembled program's data segments.
    pub fn load_segments(&mut self, segments: &[crate::program::DataSegment]) {
        for seg in segments {
            for (i, &w) in seg.words.iter().enumerate() {
                self.write_word(seg.base + 8 * i as u64, w);
            }
        }
    }

    /// Iterates the non-zero words as `(byte address, word)`, in
    /// ascending address order.
    pub fn words(&self) -> impl Iterator<Item = (DataAddr, u64)> + '_ {
        self.pages.iter().flat_map(|(&page, words)| {
            words
                .iter()
                .enumerate()
                .filter(|&(_, &w)| w != 0)
                .map(move |(i, &w)| ((page << PAGE_SHIFT) | (i as u64) << 3, w))
        })
    }

    /// Iterates the resident pages as `(page number, words)`, in
    /// ascending page order — the bulk-copy path used to seed a
    /// simulator `DataStore` without going word-by-word.
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[u64; WORDS_PER_PAGE])> {
        self.pages.iter().map(|(&page, words)| (page, &**words))
    }

    /// Installs a whole page at once (the bulk path back *from* a
    /// `DataStore` dump).
    pub fn set_page(&mut self, page: u64, words: [u64; WORDS_PER_PAGE]) {
        self.pages.insert(page, Box::new(words));
    }

    /// Number of resident pages (all-zero pages may count).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

impl PartialEq for MemImage {
    fn eq(&self, other: &Self) -> bool {
        // Word-for-word over the non-zero words: resident-but-zero pages
        // (a zero stored over a fresh page) must not break equality.
        self.words().eq(other.words())
    }
}

impl Eq for MemImage {}

impl FromIterator<(DataAddr, u64)> for MemImage {
    fn from_iter<T: IntoIterator<Item = (DataAddr, u64)>>(iter: T) -> Self {
        let mut img = Self::new();
        for (addr, word) in iter {
            img.write_word(addr, word);
        }
        img
    }
}

/// A complete architectural snapshot at a retirement boundary.
///
/// See the [module docs](self) for the role this plays across the
/// workspace. Serialises with [`ArchState::to_json`] /
/// [`ArchState::from_json`] (hand-rolled, dependency-free, exact-`u64`
/// round trip).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchState {
    /// The next instruction to execute (for a halted state: the
    /// instruction after the `halt`).
    pub pc: InstAddr,
    /// The 64 logical registers, by flat index.
    pub regs: [u64; NUM_LOG_REGS],
    /// Instructions retired to reach this state, counted from program
    /// entry.
    pub retired: u64,
    /// Whether a `halt` has retired.
    pub halted: bool,
    /// The memory image (initial data segments plus every retired
    /// store).
    pub mem: MemImage,
}

impl ArchState {
    /// The state of `program` before any instruction executes: PC at the
    /// entry point, registers zero except the stack pointer, memory
    /// seeded from the data segments.
    #[must_use]
    pub fn initial(program: &Program, stack_top: u64) -> Self {
        let mut regs = [0u64; NUM_LOG_REGS];
        regs[SP.index()] = stack_top;
        let mut mem = MemImage::new();
        mem.load_segments(program.data_segments());
        Self { pc: program.entry(), regs, retired: 0, halted: false, mem }
    }

    /// Register value by name.
    #[must_use]
    pub fn reg(&self, r: LogReg) -> u64 {
        self.regs[r.index()]
    }

    /// Memory word containing `addr` (zero when untouched).
    #[must_use]
    pub fn mem_word(&self, addr: DataAddr) -> u64 {
        self.mem.read_word(addr)
    }

    /// Serialises the snapshot as a JSON object: scalars, the full
    /// register file, and the non-zero memory words as `[address, word]`
    /// pairs in ascending address order (so equal states serialise to
    /// identical bytes).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            r#"{{"pc":{},"retired":{},"halted":{},"regs":["#,
            self.pc, self.retired, self.halted
        );
        for (i, r) in self.regs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{r}");
        }
        out.push_str("],\"mem\":[");
        for (i, (addr, word)) in self.mem.words().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{addr},{word}]");
        }
        out.push_str("]}");
        out
    }

    /// Parses a snapshot serialised by [`ArchState::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// Reads a snapshot out of an already-parsed [`Json`] value (e.g. a
    /// field of an enclosing document, like a checkpoint's `"arch"`).
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let pc = v.req_u64("pc")?;
        let retired = v.req_u64("retired")?;
        let halted = v
            .req("halted")?
            .as_bool()
            .ok_or_else(|| "key `halted` is not a bool".to_string())?;
        let regs_json = v
            .req("regs")?
            .as_arr()
            .ok_or_else(|| "key `regs` is not an array".to_string())?;
        if regs_json.len() != NUM_LOG_REGS {
            return Err(format!("expected {NUM_LOG_REGS} registers, got {}", regs_json.len()));
        }
        let mut regs = [0u64; NUM_LOG_REGS];
        for (i, r) in regs_json.iter().enumerate() {
            regs[i] = r.as_u64().ok_or_else(|| format!("register {i} is not a u64"))?;
        }
        let mut mem = MemImage::new();
        for (i, cell) in v
            .req("mem")?
            .as_arr()
            .ok_or_else(|| "key `mem` is not an array".to_string())?
            .iter()
            .enumerate()
        {
            let pair = cell.as_arr().filter(|p| p.len() == 2);
            let (addr, word) = pair
                .and_then(|p| Some((p[0].as_u64()?, p[1].as_u64()?)))
                .ok_or_else(|| format!("mem entry {i} is not an [address, word] pair"))?;
            mem.write_word(addr, word);
        }
        Ok(Self { pc, regs, retired, halted, mem })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg;

    #[test]
    fn image_zero_fill_and_roundtrip() {
        let mut m = MemImage::new();
        assert_eq!(m.read_word(0x1234), 0);
        m.write_word(0x1000, 42);
        m.write_word(0x0ff8, 7);
        assert_eq!(m.read_word(0x1000), 42);
        assert_eq!(m.read_word(0x1004), 42, "word-aligned access");
        assert_eq!(m.resident_pages(), 2);
        let words: Vec<_> = m.words().collect();
        assert_eq!(words, vec![(0x0ff8, 7), (0x1000, 42)], "ascending address order");
    }

    #[test]
    fn image_equality_ignores_explicit_zeros() {
        let mut a = MemImage::new();
        let b = MemImage::new();
        a.write_word(0x9000, 0); // resident page, all-zero
        assert_eq!(a, b);
        a.write_word(0x9000, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn image_from_iterator_and_pages() {
        let img: MemImage = vec![(0x2000u64, 5u64), (0x2008, 6)].into_iter().collect();
        assert_eq!(img.read_word(0x2008), 6);
        let pages: Vec<_> = img.pages().map(|(p, _)| p).collect();
        assert_eq!(pages, vec![2]);
        let mut copy = MemImage::new();
        for (p, words) in img.pages() {
            copy.set_page(p, *words);
        }
        assert_eq!(copy, img);
    }

    #[test]
    fn initial_state_seeds_sp_and_segments() {
        let mut a = Asm::new();
        a.data(0x3000, vec![11, 12]);
        a.halt();
        let p = a.assemble().unwrap();
        let s = ArchState::initial(&p, 0x8000);
        assert_eq!(s.pc, p.entry());
        assert_eq!(s.reg(reg::SP), 0x8000);
        assert_eq!(s.reg(reg::R1), 0);
        assert_eq!(s.mem_word(0x3008), 12);
        assert_eq!(s.retired, 0);
        assert!(!s.halted);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let mut a = Asm::new();
        a.halt();
        let p = a.assemble().unwrap();
        let mut s = ArchState::initial(&p, 0x0800_0000);
        s.regs[5] = u64::MAX;
        s.regs[63] = 0x8000_0000_0000_0001;
        s.mem.write_word(0xffff_ffff_ffff_f000, u64::MAX - 1);
        s.retired = 123_456;
        s.halted = true;
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        let back = ArchState::from_json(&j).expect("parses");
        assert_eq!(back, s);
        assert_eq!(back.to_json(), j, "canonical form is stable");
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(ArchState::from_json("{}").is_err());
        assert!(ArchState::from_json(r#"{"pc":0,"retired":0,"halted":true,"regs":[1],"mem":[]}"#)
            .unwrap_err()
            .contains("64 registers"));
        let mut asm = Asm::new();
        asm.halt();
        let mut ok = ArchState::initial(&asm.assemble().unwrap(), 0).to_json();
        ok.truncate(ok.len() - 1);
        assert!(ArchState::from_json(&ok).is_err());
    }
}
