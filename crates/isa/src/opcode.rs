//! Opcodes and their static properties.
//!
//! Every opcode carries the static attributes the pipeline and the
//! integration machinery need: its execution class (which issue port it
//! uses), execution latency, whether it produces a register value, whether
//! it is *integration eligible*, and — for reverse integration — its
//! inverse opcode.
//!
//! The integration-eligibility rules follow §2.1 of the paper: system
//! calls, stores, and direct jumps are never integrated (system calls
//! execute at retirement, store execution is useful because it enables
//! load bypassing, and direct jumps execute for free at decode).

use std::fmt;

/// The execution class of an instruction, which determines the issue port
/// it contends for and its scheduling priority.
///
/// The modelled machine issues up to 2 [`SimpleInt`](ExecClass::SimpleInt),
/// 2 [`Complex`](ExecClass::Complex) (floating-point or complex-integer),
/// 1 [`Load`](ExecClass::Load) and 1 [`Store`](ExecClass::Store) per cycle
/// (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Single-cycle integer ALU operations.
    SimpleInt,
    /// Complex integer (multiply) and floating-point operations.
    Complex,
    /// Loads (issue on the load port, 1/cycle).
    Load,
    /// Stores (issue on the store port, 1/cycle).
    Store,
    /// Conditional branches (use a simple-int port, scheduling priority).
    CondBranch,
    /// Direct jumps and calls: resolved for free at decode, never issued.
    DirectJump,
    /// Indirect jumps (returns): need an issue slot to read the target.
    IndirectJump,
    /// System calls: expanded by the OS and executed at retirement.
    Syscall,
    /// No-ops and `halt`.
    Nop,
}

macro_rules! opcodes {
    ($( $(#[$meta:meta])* $name:ident = $code:expr ),+ $(,)?) => {
        /// A RIX machine operation.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u8)]
        pub enum Opcode {
            $( $(#[$meta])* $name = $code ),+
        }

        impl Opcode {
            /// All opcodes, in encoding order.
            pub const ALL: &'static [Opcode] = &[ $(Opcode::$name),+ ];

            /// Decodes an opcode from its binary code.
            #[must_use]
            pub fn from_code(code: u8) -> Option<Self> {
                match code {
                    $( $code => Some(Opcode::$name), )+
                    _ => None,
                }
            }
        }
    };
}

opcodes! {
    /// 64-bit add: `rd = ra + rb`.
    Addq = 0,
    /// 64-bit subtract: `rd = ra - rb`.
    Subq = 1,
    /// 64-bit multiply (complex integer): `rd = ra * rb`.
    Mulq = 2,
    /// Bitwise and.
    And = 3,
    /// Bitwise or.
    Or = 4,
    /// Bitwise xor.
    Xor = 5,
    /// Logical shift left (shift amount mod 64).
    Sll = 6,
    /// Logical shift right.
    Srl = 7,
    /// Arithmetic shift right.
    Sra = 8,
    /// Compare equal: `rd = (ra == rb) as u64`.
    Cmpeq = 9,
    /// Compare signed less-than.
    Cmplt = 10,
    /// Compare signed less-or-equal.
    Cmple = 11,
    /// Compare unsigned less-than.
    Cmpult = 12,
    /// Floating-point add (`rd = ra + rb`, IEEE f64).
    Addt = 16,
    /// Floating-point subtract.
    Subt = 17,
    /// Floating-point multiply.
    Mult = 18,
    /// Floating-point divide.
    Divt = 19,
    /// Load 64-bit: `rd = mem[ra + imm]`.
    Ldq = 24,
    /// Load 32-bit sign-extended: `rd = sext(mem32[ra + imm])`.
    Ldl = 25,
    /// Store 64-bit: `mem[ra + imm] = rb`.
    Stq = 26,
    /// Store 32-bit: `mem32[ra + imm] = rb as u32`.
    Stl = 27,
    /// Unconditional direct branch to `target`.
    Br = 32,
    /// Direct call: `ra := pc + 1`, jump to `target`.
    Jsr = 33,
    /// Indirect return: jump to the address in `ra` (source register).
    Ret = 34,
    /// Branch if `ra == 0`.
    Beq = 35,
    /// Branch if `ra != 0`.
    Bne = 36,
    /// Branch if `ra < 0` (signed).
    Blt = 37,
    /// Branch if `ra >= 0` (signed).
    Bge = 38,
    /// Branch if `ra > 0` (signed).
    Bgt = 39,
    /// Branch if `ra <= 0` (signed).
    Ble = 40,
    /// System call (executes at retirement; never integrated).
    Syscall = 48,
    /// No operation.
    Nop = 49,
    /// Stop the machine (used to terminate programs).
    Halt = 50,
}

impl Opcode {
    /// The binary code of this opcode.
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// The execution class (issue port) of this opcode.
    #[must_use]
    pub fn exec_class(self) -> ExecClass {
        use Opcode::*;
        match self {
            Addq | Subq | And | Or | Xor | Sll | Srl | Sra | Cmpeq | Cmplt | Cmple | Cmpult => {
                ExecClass::SimpleInt
            }
            Mulq | Addt | Subt | Mult | Divt => ExecClass::Complex,
            Ldq | Ldl => ExecClass::Load,
            Stq | Stl => ExecClass::Store,
            Beq | Bne | Blt | Bge | Bgt | Ble => ExecClass::CondBranch,
            Br | Jsr => ExecClass::DirectJump,
            Ret => ExecClass::IndirectJump,
            Syscall => ExecClass::Syscall,
            Nop | Halt => ExecClass::Nop,
        }
    }

    /// Execution latency in cycles, measured from execute start to result.
    ///
    /// Loads report only the execute (address-generation) cycle; cache
    /// access latency is added by the memory system.
    #[must_use]
    pub fn latency(self) -> u64 {
        use Opcode::*;
        match self {
            Mulq => 4,
            Addt | Subt | Mult => 4,
            Divt => 12,
            _ => 1,
        }
    }

    /// Whether the opcode writes a destination register.
    #[must_use]
    pub fn writes_reg(self) -> bool {
        use Opcode::*;
        !matches!(
            self,
            Stq | Stl | Br | Ret | Beq | Bne | Blt | Bge | Bgt | Ble | Syscall | Nop | Halt
        )
    }

    /// Whether the opcode is a load.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self.exec_class(), ExecClass::Load)
    }

    /// Whether the opcode is a store.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self.exec_class(), ExecClass::Store)
    }

    /// Whether the opcode is a memory operation (load or store).
    #[must_use]
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }

    /// Whether the opcode is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(self) -> bool {
        matches!(self.exec_class(), ExecClass::CondBranch)
    }

    /// Whether the opcode transfers control (any branch, jump, call, return).
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(
            self.exec_class(),
            ExecClass::CondBranch | ExecClass::DirectJump | ExecClass::IndirectJump
        )
    }

    /// Whether the opcode is floating-point.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, Opcode::Addt | Opcode::Subt | Opcode::Mult | Opcode::Divt)
    }

    /// Whether instances of this opcode may integrate older results (§2.1).
    ///
    /// Stores, direct jumps and system calls are excluded by design;
    /// indirect jumps carry no reusable register result; `nop`/`halt` have
    /// nothing to reuse. Everything else — ALU operations, loads, and
    /// conditional branches — is integration eligible.
    #[must_use]
    pub fn is_integrable(self) -> bool {
        matches!(
            self.exec_class(),
            ExecClass::SimpleInt
                | ExecClass::Complex
                | ExecClass::Load
                | ExecClass::CondBranch
        )
    }

    /// The inverse opcode for reverse integration (§2.4), if one exists.
    ///
    /// Renaming a store creates an IT entry for the complementary load;
    /// renaming an immediate add (Alpha `lda`) creates an entry for the add
    /// of the negated immediate. `Addq`/`Subq` are self-inverse through
    /// immediate negation; a store's inverse is the same-width load.
    #[must_use]
    pub fn inverse(self) -> Option<Opcode> {
        use Opcode::*;
        match self {
            Stq => Some(Ldq),
            Stl => Some(Ldl),
            Addq => Some(Addq),
            Subq => Some(Subq),
            _ => None,
        }
    }

    /// Memory access size in bytes for loads and stores, otherwise 0.
    #[must_use]
    pub fn mem_bytes(self) -> u64 {
        use Opcode::*;
        match self {
            Ldq | Stq => 8,
            Ldl | Stl => 4,
            _ => 0,
        }
    }

    /// Mnemonic, as printed by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Addq => "addq",
            Subq => "subq",
            Mulq => "mulq",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Cmpeq => "cmpeq",
            Cmplt => "cmplt",
            Cmple => "cmple",
            Cmpult => "cmpult",
            Addt => "addt",
            Subt => "subt",
            Mult => "mult",
            Divt => "divt",
            Ldq => "ldq",
            Ldl => "ldl",
            Stq => "stq",
            Stl => "stl",
            Br => "br",
            Jsr => "jsr",
            Ret => "ret",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bgt => "bgt",
            Ble => "ble",
            Syscall => "syscall",
            Nop => "nop",
            Halt => "halt",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip_all() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op.code()), Some(op), "{op}");
        }
    }

    #[test]
    fn from_code_rejects_gaps() {
        assert_eq!(Opcode::from_code(13), None);
        assert_eq!(Opcode::from_code(255), None);
    }

    #[test]
    fn integration_eligibility_follows_paper() {
        assert!(Opcode::Addq.is_integrable());
        assert!(Opcode::Ldq.is_integrable());
        assert!(Opcode::Beq.is_integrable());
        assert!(Opcode::Addt.is_integrable());
        // §2.1: system calls, stores and direct jumps are not integrated.
        assert!(!Opcode::Stq.is_integrable());
        assert!(!Opcode::Br.is_integrable());
        assert!(!Opcode::Jsr.is_integrable());
        assert!(!Opcode::Syscall.is_integrable());
    }

    #[test]
    fn inverses() {
        assert_eq!(Opcode::Stq.inverse(), Some(Opcode::Ldq));
        assert_eq!(Opcode::Stl.inverse(), Some(Opcode::Ldl));
        assert_eq!(Opcode::Addq.inverse(), Some(Opcode::Addq));
        assert_eq!(Opcode::Ldq.inverse(), None);
        assert_eq!(Opcode::Beq.inverse(), None);
    }

    #[test]
    fn exec_classes() {
        assert_eq!(Opcode::Addq.exec_class(), ExecClass::SimpleInt);
        assert_eq!(Opcode::Mulq.exec_class(), ExecClass::Complex);
        assert_eq!(Opcode::Divt.exec_class(), ExecClass::Complex);
        assert_eq!(Opcode::Ldq.exec_class(), ExecClass::Load);
        assert_eq!(Opcode::Stl.exec_class(), ExecClass::Store);
        assert_eq!(Opcode::Ret.exec_class(), ExecClass::IndirectJump);
    }

    #[test]
    fn writes_reg() {
        assert!(Opcode::Addq.writes_reg());
        assert!(Opcode::Ldq.writes_reg());
        assert!(Opcode::Jsr.writes_reg()); // writes the return address
        assert!(!Opcode::Stq.writes_reg());
        assert!(!Opcode::Beq.writes_reg());
        assert!(!Opcode::Ret.writes_reg());
    }

    #[test]
    fn latencies() {
        assert_eq!(Opcode::Addq.latency(), 1);
        assert_eq!(Opcode::Mulq.latency(), 4);
        assert_eq!(Opcode::Divt.latency(), 12);
    }

    #[test]
    fn mem_sizes() {
        assert_eq!(Opcode::Ldq.mem_bytes(), 8);
        assert_eq!(Opcode::Stl.mem_bytes(), 4);
        assert_eq!(Opcode::Addq.mem_bytes(), 0);
    }
}
