//! A simple in-order reference interpreter.
//!
//! [`Interp`] executes a [`Program`] functionally, one instruction at a
//! time, with no microarchitecture at all — it is a thin stepper over an
//! [`ArchState`]. The simulator's test suite cross-validates the
//! out-of-order core against it: whatever speculation, integration, or
//! mis-integration happened along the way, the retired architectural
//! state must match this interpreter exactly.
//!
//! Because the interpreter and the simulator share [`ArchState`], the
//! interpreter doubles as the **functional fast-forward** engine:
//! [`Interp::fast_forward`] advances `n` instructions at interpreter
//! speed and returns a snapshot that `Simulator::from_arch_state` can
//! boot the detailed machine from — one cheap warm-up shared by every
//! config arm of a sweep, instead of one detailed warm-up per arm.

use crate::arch::ArchState;
use crate::instr::Operand;
use crate::opcode::{ExecClass, Opcode};
use crate::program::Program;
use crate::reg::LogReg;
use crate::{semantics, InstAddr};

/// Why the interpreter stopped.
///
/// This is the *functional* stop reason — distinct from the simulator's
/// `rix_sim::StopReason`, which reports why a cycle-level session ended.
/// The facade prelude re-exports this type as `InterpStopReason` to keep
/// the two apart.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Executed a `halt`.
    Halted,
    /// Reached the step limit.
    StepLimit,
    /// Fell off the end of the program.
    FellOffProgram,
}

/// The reference interpreter: a [`Program`] plus the [`ArchState`] it
/// steps.
#[derive(Clone, Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    state: ArchState,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter at the program's initial state, with the
    /// stack pointer initialised to `stack_top` and memory seeded from
    /// the program's data segments.
    #[must_use]
    pub fn new(program: &'p Program, stack_top: u64) -> Self {
        Self { program, state: ArchState::initial(program, stack_top) }
    }

    /// Resumes an interpreter from an existing architectural snapshot
    /// (e.g. one dumped by the detailed simulator or loaded from a
    /// checkpoint).
    #[must_use]
    pub fn from_arch_state(program: &'p Program, state: ArchState) -> Self {
        Self { program, state }
    }

    /// The current architectural state.
    #[must_use]
    pub fn arch_state(&self) -> &ArchState {
        &self.state
    }

    /// Consumes the interpreter into its architectural state.
    #[must_use]
    pub fn into_arch_state(self) -> ArchState {
        self.state
    }

    /// Current register value.
    #[must_use]
    pub fn reg(&self, r: LogReg) -> u64 {
        self.state.regs[r.index()]
    }

    /// Current memory word (zero when untouched).
    #[must_use]
    pub fn mem_word(&self, addr: u64) -> u64 {
        self.state.mem.read_word(addr)
    }

    /// Instructions executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.state.retired
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> InstAddr {
        self.state.pc
    }

    /// Whether a `halt` has executed.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.state.halted
    }

    fn read(&self, r: LogReg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.state.regs[r.index()]
        }
    }

    fn write(&mut self, r: LogReg, v: u64) {
        if !r.is_zero() {
            self.state.regs[r.index()] = v;
        }
    }

    /// Advances up to `n` instructions and returns a snapshot of the
    /// reached architectural state — the functional-warm-up entry point
    /// (see the [module docs](self)).
    ///
    /// Equivalent to [`Interp::run`]`(n)` followed by
    /// [`Interp::arch_state`]`.clone()`; stops early at a `halt` or on
    /// falling off the program, which the snapshot's `halted` flag / `pc`
    /// reflect.
    #[must_use]
    pub fn fast_forward(&mut self, n: u64) -> ArchState {
        let _ = self.run(n);
        self.state.clone()
    }

    /// Runs up to `max_steps` instructions.
    pub fn run(&mut self, max_steps: u64) -> StopReason {
        if self.state.halted {
            return StopReason::Halted;
        }
        for _ in 0..max_steps {
            let Some(i) = self.program.fetch(self.state.pc) else {
                return StopReason::FellOffProgram;
            };
            self.state.retired += 1;
            let mut next = self.state.pc + 1;
            match i.exec_class() {
                ExecClass::SimpleInt | ExecClass::Complex => {
                    let a = self.read(i.src1.expect("ALU src1"));
                    let b = match i.src2 {
                        Some(Operand::Reg(r)) => self.read(r),
                        Some(Operand::Imm(imm)) => imm as i64 as u64,
                        None => 0,
                    };
                    self.write(i.dst.expect("ALU dst"), semantics::alu(i.op, a, b));
                }
                ExecClass::Load => {
                    let base = self.read(i.src1.expect("load base"));
                    let ea = semantics::effective_addr(i.op, base, i.disp);
                    let word = self.state.mem.read_word(ea);
                    self.write(
                        i.dst.expect("load dst"),
                        semantics::load_from_word(i.op, ea, word),
                    );
                }
                ExecClass::Store => {
                    let base = self.read(i.src1.expect("store base"));
                    let data = self.read(i.src2_reg().expect("store data"));
                    let ea = semantics::effective_addr(i.op, base, i.disp);
                    let word = self.state.mem.read_word(ea);
                    self.state
                        .mem
                        .write_word(ea & !7, semantics::merge_store(i.op, ea, word, data));
                }
                ExecClass::CondBranch => {
                    let c = self.read(i.src1.expect("branch cond"));
                    if semantics::branch_taken(i.op, c) {
                        next = i.target;
                    }
                }
                ExecClass::DirectJump => {
                    if i.op == Opcode::Jsr {
                        self.write(i.dst.expect("jsr writes ra"), self.state.pc + 1);
                    }
                    next = i.target;
                }
                ExecClass::IndirectJump => {
                    next = self.read(i.src1.expect("ret reads ra"));
                }
                ExecClass::Syscall | ExecClass::Nop => {}
            }
            // The PC always advances past the executed instruction —
            // including the halt, mirroring how the detailed simulator's
            // architectural PC chain retires it — so snapshots from both
            // engines compare equal.
            self.state.pc = next;
            if i.op == Opcode::Halt {
                self.state.halted = true;
                return StopReason::Halted;
            }
        }
        StopReason::StepLimit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg;

    #[test]
    fn loop_sum() {
        // sum = 1 + 2 + ... + 5 = 15
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 5); // i
        a.addq_i(reg::R2, reg::ZERO, 0); // sum
        a.label("loop");
        a.addq(reg::R2, reg::R2, reg::R1);
        a.subq_i(reg::R1, reg::R1, 1);
        a.bne(reg::R1, "loop");
        a.halt();
        let p = a.assemble().unwrap();
        let mut interp = Interp::new(&p, 0x1000);
        assert_eq!(interp.run(1000), StopReason::Halted);
        assert_eq!(interp.reg(reg::R2), 15);
        assert!(interp.halted());
        assert_eq!(interp.run(1000), StopReason::Halted, "halt is sticky");
    }

    #[test]
    fn call_return_and_stack() {
        let mut a = Asm::new();
        a.addq_i(reg::T0, reg::ZERO, 42);
        a.jsr("f");
        a.halt();
        a.label("f");
        a.lda(reg::SP, -16, reg::SP);
        a.stq(reg::T0, 8, reg::SP);
        a.addq_i(reg::T0, reg::ZERO, 0); // clobber
        a.ldq(reg::T0, 8, reg::SP);
        a.lda(reg::SP, 16, reg::SP);
        a.ret();
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p, 0x8000);
        assert_eq!(i.run(100), StopReason::Halted);
        assert_eq!(i.reg(reg::T0), 42, "restored across the call");
        assert_eq!(i.reg(reg::SP), 0x8000, "stack balanced");
    }

    #[test]
    fn memory_roundtrip() {
        let mut a = Asm::new();
        a.data(0x2000, vec![7]);
        a.ldq(reg::R1, 0, reg::R2); // r2 = 0 → loads word at 0 (0)
        a.addq_i(reg::R2, reg::ZERO, 0x2000);
        a.ldq(reg::R1, 0, reg::R2);
        a.addq_i(reg::R3, reg::R1, 1);
        a.stq(reg::R3, 8, reg::R2);
        a.halt();
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p, 0x8000);
        assert_eq!(i.run(100), StopReason::Halted);
        assert_eq!(i.reg(reg::R1), 7);
        assert_eq!(i.mem_word(0x2008), 8);
    }

    #[test]
    fn fell_off_program() {
        let mut a = Asm::new();
        a.nop();
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p, 0);
        assert_eq!(i.run(10), StopReason::FellOffProgram);
    }

    #[test]
    fn step_limit() {
        let mut a = Asm::new();
        a.label("spin");
        a.br("spin");
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p, 0);
        assert_eq!(i.run(10), StopReason::StepLimit);
        assert_eq!(i.steps(), 10);
    }

    #[test]
    fn fast_forward_snapshots_and_resumes() {
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 5);
        a.label("loop");
        a.addq(reg::R2, reg::R2, reg::R1);
        a.subq_i(reg::R1, reg::R1, 1);
        a.bne(reg::R1, "loop");
        a.halt();
        let p = a.assemble().unwrap();

        // Fast-forward 7 instructions, snapshot, resume from the
        // snapshot in a second interpreter: the final states agree with
        // an uninterrupted run.
        let mut whole = Interp::new(&p, 0x1000);
        assert_eq!(whole.run(1_000), StopReason::Halted);

        let mut first = Interp::new(&p, 0x1000);
        let mid = first.fast_forward(7);
        assert_eq!(mid.retired, 7);
        assert!(!mid.halted);
        let mut second = Interp::from_arch_state(&p, mid);
        assert_eq!(second.run(1_000), StopReason::Halted);
        assert_eq!(second.arch_state(), whole.arch_state());

        // Fast-forwarding the first interpreter to completion also
        // converges, and reports the halt in the snapshot.
        let done = first.fast_forward(1_000);
        assert!(done.halted);
        assert_eq!(&done, whole.arch_state());
        assert_eq!(done.pc, whole.pc(), "pc rests past the halt");
    }

    #[test]
    fn halted_snapshot_retires_the_halt() {
        let mut a = Asm::new();
        a.nop();
        a.halt();
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p, 0);
        let s = i.fast_forward(10);
        assert!(s.halted);
        assert_eq!(s.retired, 2, "nop + halt both count");
        assert_eq!(s.pc, 2, "pc past the halt");
    }
}
