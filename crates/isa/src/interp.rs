//! A simple in-order reference interpreter.
//!
//! [`Interp`] executes a [`Program`] functionally, one instruction at a
//! time, with no microarchitecture at all. The simulator's test suite
//! cross-validates the out-of-order core against it: whatever speculation,
//! integration, or mis-integration happened along the way, the retired
//! architectural state must match this interpreter exactly.

use crate::instr::Operand;
use crate::opcode::{ExecClass, Opcode};
use crate::program::Program;
use crate::reg::{LogReg, NUM_LOG_REGS, SP};
use crate::{semantics, InstAddr};
use std::collections::HashMap;

/// Why the interpreter stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Executed a `halt`.
    Halted,
    /// Reached the step limit.
    StepLimit,
    /// Fell off the end of the program.
    FellOffProgram,
}

/// The reference interpreter.
#[derive(Clone, Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    pc: InstAddr,
    regs: [u64; NUM_LOG_REGS],
    mem: HashMap<u64, u64>,
    steps: u64,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter with the stack pointer initialised to
    /// `stack_top` and memory seeded from the program's data segments.
    #[must_use]
    pub fn new(program: &'p Program, stack_top: u64) -> Self {
        let mut regs = [0u64; NUM_LOG_REGS];
        regs[SP.index()] = stack_top;
        let mut mem = HashMap::new();
        for seg in program.data_segments() {
            for (i, &w) in seg.words.iter().enumerate() {
                mem.insert(seg.base + 8 * i as u64, w);
            }
        }
        Self { program, pc: program.entry(), regs, mem, steps: 0 }
    }

    /// Current register value.
    #[must_use]
    pub fn reg(&self, r: LogReg) -> u64 {
        self.regs[r.index()]
    }

    /// Current memory word (zero when untouched).
    #[must_use]
    pub fn mem_word(&self, addr: u64) -> u64 {
        *self.mem.get(&(addr & !7)).unwrap_or(&0)
    }

    /// Instructions executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> InstAddr {
        self.pc
    }

    fn read(&self, r: LogReg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    fn write(&mut self, r: LogReg, v: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Runs up to `max_steps` instructions.
    pub fn run(&mut self, max_steps: u64) -> StopReason {
        for _ in 0..max_steps {
            let Some(i) = self.program.fetch(self.pc) else {
                return StopReason::FellOffProgram;
            };
            self.steps += 1;
            let mut next = self.pc + 1;
            match i.exec_class() {
                ExecClass::SimpleInt | ExecClass::Complex => {
                    let a = self.read(i.src1.expect("ALU src1"));
                    let b = match i.src2 {
                        Some(Operand::Reg(r)) => self.read(r),
                        Some(Operand::Imm(imm)) => imm as i64 as u64,
                        None => 0,
                    };
                    self.write(i.dst.expect("ALU dst"), semantics::alu(i.op, a, b));
                }
                ExecClass::Load => {
                    let base = self.read(i.src1.expect("load base"));
                    let ea = semantics::effective_addr(i.op, base, i.disp);
                    let word = self.mem_word(ea);
                    self.write(
                        i.dst.expect("load dst"),
                        semantics::load_from_word(i.op, ea, word),
                    );
                }
                ExecClass::Store => {
                    let base = self.read(i.src1.expect("store base"));
                    let data = self.read(i.src2_reg().expect("store data"));
                    let ea = semantics::effective_addr(i.op, base, i.disp);
                    let word = self.mem_word(ea);
                    self.mem
                        .insert(ea & !7, semantics::merge_store(i.op, ea, word, data));
                }
                ExecClass::CondBranch => {
                    let c = self.read(i.src1.expect("branch cond"));
                    if semantics::branch_taken(i.op, c) {
                        next = i.target;
                    }
                }
                ExecClass::DirectJump => {
                    if i.op == Opcode::Jsr {
                        self.write(i.dst.expect("jsr writes ra"), self.pc + 1);
                    }
                    next = i.target;
                }
                ExecClass::IndirectJump => {
                    next = self.read(i.src1.expect("ret reads ra"));
                }
                ExecClass::Syscall | ExecClass::Nop => {}
            }
            if i.op == Opcode::Halt {
                return StopReason::Halted;
            }
            self.pc = next;
        }
        StopReason::StepLimit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg;

    #[test]
    fn loop_sum() {
        // sum = 1 + 2 + ... + 5 = 15
        let mut a = Asm::new();
        a.addq_i(reg::R1, reg::ZERO, 5); // i
        a.addq_i(reg::R2, reg::ZERO, 0); // sum
        a.label("loop");
        a.addq(reg::R2, reg::R2, reg::R1);
        a.subq_i(reg::R1, reg::R1, 1);
        a.bne(reg::R1, "loop");
        a.halt();
        let p = a.assemble().unwrap();
        let mut interp = Interp::new(&p, 0x1000);
        assert_eq!(interp.run(1000), StopReason::Halted);
        assert_eq!(interp.reg(reg::R2), 15);
    }

    #[test]
    fn call_return_and_stack() {
        let mut a = Asm::new();
        a.addq_i(reg::T0, reg::ZERO, 42);
        a.jsr("f");
        a.halt();
        a.label("f");
        a.lda(reg::SP, -16, reg::SP);
        a.stq(reg::T0, 8, reg::SP);
        a.addq_i(reg::T0, reg::ZERO, 0); // clobber
        a.ldq(reg::T0, 8, reg::SP);
        a.lda(reg::SP, 16, reg::SP);
        a.ret();
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p, 0x8000);
        assert_eq!(i.run(100), StopReason::Halted);
        assert_eq!(i.reg(reg::T0), 42, "restored across the call");
        assert_eq!(i.reg(reg::SP), 0x8000, "stack balanced");
    }

    #[test]
    fn memory_roundtrip() {
        let mut a = Asm::new();
        a.data(0x2000, vec![7]);
        a.ldq(reg::R1, 0, reg::R2); // r2 = 0 → loads word at 0 (0)
        a.addq_i(reg::R2, reg::ZERO, 0x2000);
        a.ldq(reg::R1, 0, reg::R2);
        a.addq_i(reg::R3, reg::R1, 1);
        a.stq(reg::R3, 8, reg::R2);
        a.halt();
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p, 0x8000);
        assert_eq!(i.run(100), StopReason::Halted);
        assert_eq!(i.reg(reg::R1), 7);
        assert_eq!(i.mem_word(0x2008), 8);
    }

    #[test]
    fn fell_off_program() {
        let mut a = Asm::new();
        a.nop();
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p, 0);
        assert_eq!(i.run(10), StopReason::FellOffProgram);
    }

    #[test]
    fn step_limit() {
        let mut a = Asm::new();
        a.label("spin");
        a.br("spin");
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p, 0);
        assert_eq!(i.run(10), StopReason::StepLimit);
        assert_eq!(i.steps(), 10);
    }
}
