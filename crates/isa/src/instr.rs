//! The decoded instruction form.

use crate::opcode::{ExecClass, Opcode};
use crate::reg::LogReg;
use crate::InstAddr;
use std::fmt;

/// The second ALU operand: a register or a sign-extended immediate.
///
/// RIX mirrors Alpha's literal form: every integer ALU opcode exists in a
/// register/register and a register/immediate variant. The immediate
/// variant of `addq` doubles as Alpha's `lda` (load address), which is the
/// instruction the paper's reverse-integration extension inverts for
/// stack-pointer pushes and pops.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(LogReg),
    /// Sign-extended immediate operand.
    Imm(i32),
}

/// A decoded RIX instruction.
///
/// Operand roles by class:
///
/// | class         | `dst`      | `src1`     | `src2`        | `imm`       | `target` |
/// |---------------|------------|------------|---------------|-------------|----------|
/// | ALU reg form  | result     | operand a  | `Reg` operand | —           | —        |
/// | ALU imm form  | result     | operand a  | `Imm` operand | (in `src2`) | —        |
/// | load          | result     | base       | —             | disp        | —        |
/// | store         | —          | base       | `Reg` data    | disp        | —        |
/// | cond branch   | —          | condition  | —             | —           | yes      |
/// | `br`          | —          | —          | —             | —           | yes      |
/// | `jsr`         | `ra`       | —          | —             | —           | yes      |
/// | `ret`         | —          | `ra`       | —             | —           | —        |
///
/// Use the constructors ([`Instr::alu_rr`], [`Instr::load`], …) rather than
/// building the struct by hand; they enforce the role table above.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instr {
    /// The operation.
    pub op: Opcode,
    /// Destination register, if the opcode writes one.
    pub dst: Option<LogReg>,
    /// First source register (ALU operand a, memory base, branch condition).
    pub src1: Option<LogReg>,
    /// Second operand (ALU operand b or store data).
    pub src2: Option<Operand>,
    /// Displacement for loads and stores (byte offset from base).
    pub disp: i32,
    /// Direct branch/call target (instruction address).
    pub target: InstAddr,
}

impl Instr {
    /// Register/register ALU instruction: `op dst, a, b`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not an ALU opcode.
    #[must_use]
    pub fn alu_rr(op: Opcode, dst: LogReg, a: LogReg, b: LogReg) -> Self {
        assert!(is_alu(op), "{op} is not an ALU opcode");
        Self {
            op,
            dst: Some(dst),
            src1: Some(a),
            src2: Some(Operand::Reg(b)),
            disp: 0,
            target: 0,
        }
    }

    /// Register/immediate ALU instruction: `op dst, a, #imm`.
    ///
    /// `Instr::alu_ri(Opcode::Addq, sp, sp, -32)` is Alpha's
    /// `lda sp, -32(sp)` — the stack-frame push that reverse integration
    /// pairs with the matching pop.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not an ALU opcode.
    #[must_use]
    pub fn alu_ri(op: Opcode, dst: LogReg, a: LogReg, imm: i32) -> Self {
        assert!(is_alu(op), "{op} is not an ALU opcode");
        Self {
            op,
            dst: Some(dst),
            src1: Some(a),
            src2: Some(Operand::Imm(imm)),
            disp: 0,
            target: 0,
        }
    }

    /// Load instruction: `op dst, disp(base)`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a load opcode.
    #[must_use]
    pub fn load(op: Opcode, dst: LogReg, base: LogReg, disp: i32) -> Self {
        assert!(op.is_load(), "{op} is not a load");
        Self {
            op,
            dst: Some(dst),
            src1: Some(base),
            src2: None,
            disp,
            target: 0,
        }
    }

    /// Store instruction: `op data, disp(base)`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a store opcode.
    #[must_use]
    pub fn store(op: Opcode, data: LogReg, base: LogReg, disp: i32) -> Self {
        assert!(op.is_store(), "{op} is not a store");
        Self {
            op,
            dst: None,
            src1: Some(base),
            src2: Some(Operand::Reg(data)),
            disp,
            target: 0,
        }
    }

    /// Conditional branch: `op cond, target`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a conditional branch.
    #[must_use]
    pub fn cond_branch(op: Opcode, cond: LogReg, target: InstAddr) -> Self {
        assert!(op.is_cond_branch(), "{op} is not a conditional branch");
        Self {
            op,
            dst: None,
            src1: Some(cond),
            src2: None,
            disp: 0,
            target,
        }
    }

    /// Unconditional direct branch to `target`.
    #[must_use]
    pub fn br(target: InstAddr) -> Self {
        Self {
            op: Opcode::Br,
            dst: None,
            src1: None,
            src2: None,
            disp: 0,
            target,
        }
    }

    /// Direct call to `target`, writing the return address to `ra`.
    #[must_use]
    pub fn jsr(target: InstAddr) -> Self {
        Self {
            op: Opcode::Jsr,
            dst: Some(crate::reg::RA),
            src1: None,
            src2: None,
            disp: 0,
            target,
        }
    }

    /// Indirect return through `ra`.
    #[must_use]
    pub fn ret() -> Self {
        Self {
            op: Opcode::Ret,
            dst: None,
            src1: Some(crate::reg::RA),
            src2: None,
            disp: 0,
            target: 0,
        }
    }

    /// System call (executes at retirement, never integrated).
    #[must_use]
    pub fn syscall() -> Self {
        Self::bare(Opcode::Syscall)
    }

    /// No-op.
    #[must_use]
    pub fn nop() -> Self {
        Self::bare(Opcode::Nop)
    }

    /// Machine halt.
    #[must_use]
    pub fn halt() -> Self {
        Self::bare(Opcode::Halt)
    }

    fn bare(op: Opcode) -> Self {
        Self {
            op,
            dst: None,
            src1: None,
            src2: None,
            disp: 0,
            target: 0,
        }
    }

    /// The second source *register*, if any (reg-form ALU operand b or
    /// store data).
    #[must_use]
    pub fn src2_reg(self) -> Option<LogReg> {
        match self.src2 {
            Some(Operand::Reg(r)) => Some(r),
            _ => None,
        }
    }

    /// The immediate operand, if this is an immediate-form ALU instruction.
    #[must_use]
    pub fn alu_imm(self) -> Option<i32> {
        match self.src2 {
            Some(Operand::Imm(i)) => Some(i),
            _ => None,
        }
    }

    /// The immediate the integration table tags and indexes with (§2.3):
    /// the ALU immediate, or the displacement for memory operations.
    ///
    /// Register-form ALU instructions report 0 and are distinguished from
    /// `op rd, ra, #0` by [`Instr::has_immediate`].
    #[must_use]
    pub fn it_imm(self) -> i32 {
        match self.src2 {
            Some(Operand::Imm(i)) => i,
            _ if self.op.is_mem() => self.disp,
            _ => 0,
        }
    }

    /// Whether the instruction carries an immediate/displacement field.
    #[must_use]
    pub fn has_immediate(self) -> bool {
        matches!(self.src2, Some(Operand::Imm(_))) || self.op.is_mem()
    }

    /// The execution class of the opcode (convenience forward).
    #[must_use]
    pub fn exec_class(self) -> ExecClass {
        self.op.exec_class()
    }

    /// The store-data register for store instructions.
    #[must_use]
    pub fn store_data_reg(self) -> Option<LogReg> {
        if self.op.is_store() {
            self.src2_reg()
        } else {
            None
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use ExecClass::*;
        let m = self.op.mnemonic();
        match self.exec_class() {
            SimpleInt | Complex => match (self.dst, self.src1, self.src2) {
                (Some(d), Some(a), Some(Operand::Reg(b))) => write!(f, "{m} {d}, {a}, {b}"),
                (Some(d), Some(a), Some(Operand::Imm(i))) => write!(f, "{m} {d}, {a}, #{i}"),
                _ => write!(f, "{m} <malformed>"),
            },
            Load => match (self.dst, self.src1) {
                (Some(d), Some(b)) => write!(f, "{m} {d}, {}({b})", self.disp),
                _ => write!(f, "{m} <malformed>"),
            },
            Store => match (self.src2_reg(), self.src1) {
                (Some(d), Some(b)) => write!(f, "{m} {d}, {}({b})", self.disp),
                _ => write!(f, "{m} <malformed>"),
            },
            CondBranch => match self.src1 {
                Some(c) => write!(f, "{m} {c}, @{}", self.target),
                None => write!(f, "{m} <malformed>"),
            },
            DirectJump => write!(f, "{m} @{}", self.target),
            IndirectJump | Syscall | Nop => write!(f, "{m}"),
        }
    }
}

fn is_alu(op: Opcode) -> bool {
    matches!(op.exec_class(), ExecClass::SimpleInt | ExecClass::Complex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn constructors_fill_roles() {
        let i = Instr::alu_rr(Opcode::Addq, reg::R1, reg::R2, reg::R3);
        assert_eq!(i.dst, Some(reg::R1));
        assert_eq!(i.src1, Some(reg::R2));
        assert_eq!(i.src2_reg(), Some(reg::R3));
        assert!(!i.has_immediate());

        let i = Instr::alu_ri(Opcode::Addq, reg::SP, reg::SP, -32);
        assert_eq!(i.alu_imm(), Some(-32));
        assert_eq!(i.it_imm(), -32);
        assert!(i.has_immediate());

        let i = Instr::load(Opcode::Ldq, reg::S0, reg::SP, 8);
        assert_eq!(i.it_imm(), 8);
        assert_eq!(i.dst, Some(reg::S0));
        assert!(i.has_immediate());

        let i = Instr::store(Opcode::Stq, reg::S0, reg::SP, 8);
        assert_eq!(i.store_data_reg(), Some(reg::S0));
        assert_eq!(i.src1, Some(reg::SP));
        assert_eq!(i.dst, None);
    }

    #[test]
    fn jsr_writes_ra() {
        let i = Instr::jsr(100);
        assert_eq!(i.dst, Some(reg::RA));
        assert_eq!(i.target, 100);
    }

    #[test]
    fn ret_reads_ra() {
        let i = Instr::ret();
        assert_eq!(i.src1, Some(reg::RA));
        assert_eq!(i.dst, None);
    }

    #[test]
    #[should_panic(expected = "not an ALU opcode")]
    fn alu_rr_rejects_loads() {
        let _ = Instr::alu_rr(Opcode::Ldq, reg::R1, reg::R2, reg::R3);
    }

    #[test]
    fn reg_form_and_imm0_are_distinct() {
        let rr = Instr::alu_rr(Opcode::Addq, reg::R1, reg::R2, reg::ZERO);
        let ri = Instr::alu_ri(Opcode::Addq, reg::R1, reg::R2, 0);
        assert_ne!(rr, ri);
        assert!(!rr.has_immediate());
        assert!(ri.has_immediate());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Instr::alu_ri(Opcode::Addq, reg::SP, reg::SP, -32).to_string(),
            "addq sp, sp, #-32"
        );
        assert_eq!(
            Instr::load(Opcode::Ldq, reg::S0, reg::SP, 8).to_string(),
            "ldq r9, 8(sp)"
        );
        assert_eq!(
            Instr::store(Opcode::Stq, reg::S0, reg::SP, 8).to_string(),
            "stq r9, 8(sp)"
        );
        assert_eq!(
            Instr::cond_branch(Opcode::Bne, reg::R1, 7).to_string(),
            "bne r1, @7"
        );
        assert_eq!(Instr::ret().to_string(), "ret");
    }
}
