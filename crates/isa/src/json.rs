//! A minimal, dependency-free JSON reader for the repo's own formats.
//!
//! Several `rix` types serialise themselves with hand-rolled writers
//! ([`crate::ArchState::to_json`], `RunResult::to_json`, the perf
//! records); this module is the matching reader, used wherever a
//! round-trip back into Rust is needed (checkpoint restore, baseline
//! comparison). It is deliberately small:
//!
//! * numbers keep their **raw text** so `u64` values round-trip exactly
//!   (an `f64` intermediate would corrupt 64-bit memory words above
//!   2^53),
//! * objects preserve key order as a plain `Vec` (our writers never emit
//!   duplicate keys),
//! * errors carry a byte offset, enough to debug a corrupt file.
//!
//! ```
//! use rix_isa::json::Json;
//! let v = Json::parse(r#"{"pc":3,"mem":[[4096,18446744073709551615]]}"#).unwrap();
//! assert_eq!(v.get("pc").and_then(Json::as_u64), Some(3));
//! let cell = &v.get("mem").unwrap().as_arr().unwrap()[0];
//! assert_eq!(cell.as_arr().unwrap()[1].as_u64(), Some(u64::MAX));
//! ```

/// A parsed JSON value. Numbers are kept as raw text (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw text (`"42"`, `"-1.5e3"`).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Looks up `key` in an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Json::get`], but a missing key is an error naming it.
    pub fn req(&self, key: &str) -> Result<&Json, String> {
        self.get(key).ok_or_else(|| format!("missing key `{key}`"))
    }

    /// The value as an exact `u64` (numbers only).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (numbers only).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value back to compact JSON. Numbers are emitted as
    /// their preserved raw text, so `parse` → `dump` round-trips 64-bit
    /// integers exactly; strings re-escape quotes, backslashes and
    /// control characters. `parse(v.dump()) == v` for any parsed `v`.
    #[must_use]
    pub fn dump(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(raw) => raw.clone(),
            Json::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
                out
            }
            Json::Arr(items) => {
                let body: Vec<String> = items.iter().map(Json::dump).collect();
                format!("[{}]", body.join(","))
            }
            Json::Obj(fields) => {
                let body: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{}", Json::Str(k.clone()).dump(), v.dump()))
                    .collect();
                format!("{{{}}}", body.join(","))
            }
        }
    }

    /// Convenience: `self[key]` as an exact `u64`, with an error naming
    /// the key on a miss or a non-number.
    pub fn req_u64(&self, key: &str) -> Result<u64, String> {
        self.req(key)?
            .as_u64()
            .ok_or_else(|| format!("key `{key}` is not a u64"))
    }
}

/// The value at object key `key` as an exact `u64`, with the standard
/// type-mismatch message — the shared scalar reader of every
/// hand-rolled config parser in the workspace.
pub fn expect_u64(key: &str, v: &Json) -> Result<u64, String> {
    v.as_u64().ok_or_else(|| format!("key `{key}` must be an unsigned integer"))
}

/// As [`expect_u64`], for booleans.
pub fn expect_bool(key: &str, v: &Json) -> Result<bool, String> {
    v.as_bool().ok_or_else(|| format!("key `{key}` must be a boolean"))
}

/// As [`expect_u64`], for strings.
pub fn expect_str(key: &str, v: &Json) -> Result<String, String> {
    v.as_str().map(str::to_string).ok_or_else(|| format!("key `{key}` must be a string"))
}

/// The standard error message for a key the reader does not recognise:
/// names the offending key, suggests the closest known key (by edit
/// distance), and lists all known keys. Shared by every hand-rolled
/// config/spec reader in the workspace so unknown-key rejection reads
/// the same everywhere.
#[must_use]
pub fn unknown_key(key: &str, known: &[&str]) -> String {
    let closest = known
        .iter()
        .min_by_key(|k| edit_distance(key, k))
        .filter(|k| edit_distance(key, k) <= key.len().max(k.len()) / 2)
        .map(|k| format!(" (did you mean `{k}`?)"))
        .unwrap_or_default();
    format!("unknown key `{key}`{closest}; known keys: {}", known.join(", "))
}

/// Levenshtein distance, ASCII-case-insensitive (keys are short, the
/// quadratic DP is plenty).
#[must_use]
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<u8> = a.bytes().map(|c| c.to_ascii_lowercase()).collect();
    let b: Vec<u8> = b.bytes().map(|c| c.to_ascii_lowercase()).collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let raw = std::str::from_utf8(&b[start..*pos])
                .map_err(|_| format!("invalid number at byte {start}"))?;
            Ok(Json::Num(raw.to_string()))
        }
        Some(c) => Err(format!("unexpected byte `{}` at byte {pos}", *c as char, pos = *pos)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, "\"")?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}", pos = *pos))?;
                        // Our writers only escape control characters;
                        // surrogate pairs are not produced and map to
                        // the replacement character if encountered.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences are
                // copied verbatim).
                let s = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}", pos = *pos))?;
                let c = s.chars().next().expect("non-empty by the match");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap().as_bool(), Some(false));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("1.5").unwrap().as_f64(), Some(1.5));
        assert_eq!(Json::parse(r#""a\"b""#).unwrap().as_str(), Some("a\"b"));
    }

    #[test]
    fn u64_precision_is_exact() {
        let v = Json::parse(&format!("{}", u64::MAX)).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = Json::parse("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn containers_and_lookup() {
        let v = Json::parse(r#"{"a":[1,2,{"b":false}],"c":"x"}"#).unwrap();
        assert_eq!(v.req_u64("a").unwrap_err(), "key `a` is not a u64");
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert!(v.get("missing").is_none());
        assert!(v.req("missing").unwrap_err().contains("missing"));
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn errors() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").unwrap_err().contains("trailing"));
        assert!(Json::parse("\"abc").unwrap_err().contains("unterminated"));
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn dump_round_trips() {
        for text in [
            "null",
            "true",
            "18446744073709551615",
            r#"{"a":[1,2,{"b":false}],"c":"x\"y\\z"}"#,
            "[]",
            "{}",
            r#""a
b""#,
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.dump()).unwrap(), v, "{text}");
        }
        // Canonical output: compact, escapes re-applied.
        assert_eq!(Json::parse(" { \"a\" : 1 } ").unwrap().dump(), r#"{"a":1}"#);
    }

    #[test]
    fn unknown_key_suggests_closest() {
        let msg = unknown_key("wayz", &["size_bytes", "ways", "hit_latency"]);
        assert!(msg.contains("unknown key `wayz`"), "{msg}");
        assert!(msg.contains("did you mean `ways`?"), "{msg}");
        assert!(msg.contains("size_bytes"), "lists known keys: {msg}");
        // A key nothing like any known one still lists the options.
        let msg = unknown_key("flux_capacitor_coefficient", &["ways"]);
        assert!(msg.contains("known keys: ways"), "{msg}");
        assert!(!msg.contains("did you mean"), "{msg}");
    }

    #[test]
    fn control_escape_roundtrip() {
        // The writers escape control characters as \u00XX.
        let v = Json::parse("\"a\\u000ab\"").unwrap();
        assert_eq!(v.as_str(), Some("a\nb"));
    }
}
