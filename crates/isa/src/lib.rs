//! # rix-isa: the RIX instruction set
//!
//! RIX is a small Alpha-like 64-bit RISC instruction set used by the `rix`
//! register-integration simulator. It is modelled on the Alpha AXP subset
//! that SimpleScalar 3.0 exposes, which is what the paper *"Three Extensions
//! to Register Integration"* (Roth, Bracy, Petric, 2002) evaluates on:
//!
//! * 32 integer registers (`r31` hardwired to zero, `r30` the stack pointer,
//!   `r26` the return address) plus 32 floating-point registers.
//! * three-operand register/immediate ALU forms (`addq r1, r2, r3` /
//!   `addq r1, r2, #8`, the latter doubling as Alpha's `lda`),
//! * displacement-mode loads and stores (`ldq r1, 8(sp)`),
//! * compare-and-branch conditional branches, direct jumps and calls, an
//!   indirect return, and a retirement-time `syscall`.
//!
//! Instruction addresses are *word indexed*: the PC advances by one per
//! instruction and branch targets are instruction indices. Data addresses
//! are byte addresses.
//!
//! The crate provides:
//!
//! * [`Instr`] / [`Opcode`] / [`LogReg`] — the decoded instruction form used
//!   throughout the simulator,
//! * [`semantics`] — pure functional evaluation (ALU results, branch
//!   conditions, effective addresses) shared by the out-of-order core and
//!   the DIVA checker,
//! * [`ArchState`] — the portable architectural snapshot (PC, logical
//!   registers, memory image, retired position) shared by the
//!   interpreter, the out-of-order core, checkpoints and the sweep
//!   layer, with an exact hand-rolled JSON round trip (see [`json`]),
//! * [`Asm`] — a tiny assembler with labels for building [`Program`]s,
//! * [`encode`] — a dense 64-bit binary encoding with lossless round-trip,
//!   used by the encoder/decoder tests and the instruction-cache model
//!   (which only needs instruction *addresses*, but the encoding keeps the
//!   ISA honest).
//!
//! ```
//! use rix_isa::{Asm, reg};
//!
//! let mut a = Asm::new();
//! a.addq_i(reg::R1, reg::ZERO, 10); // r1 = 10
//! a.label("loop");
//! a.subq_i(reg::R1, reg::R1, 1); // r1 -= 1
//! a.bne(reg::R1, "loop");
//! a.halt();
//! let program = a.assemble().expect("labels resolve");
//! assert_eq!(program.len(), 4);
//! ```

pub mod arch;
pub mod asm;
pub mod encode;
pub mod instr;
pub mod interp;
pub mod json;
pub mod opcode;
pub mod program;
pub mod reg;
pub mod semantics;

pub use arch::{ArchState, MemImage};
pub use asm::{Asm, AsmError};
pub use instr::{Instr, Operand};
pub use opcode::{ExecClass, Opcode};
pub use program::Program;
pub use reg::LogReg;

/// An instruction address (word index into a [`Program`]).
pub type InstAddr = u64;

/// A data byte address.
pub type DataAddr = u64;
