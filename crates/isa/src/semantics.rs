//! Pure functional semantics of RIX operations.
//!
//! These functions are the single source of truth for instruction
//! behaviour. The out-of-order core uses them when executing on physical
//! register values, and the DIVA checker uses the *same* functions on
//! architectural values just before retirement — so a value mismatch at
//! DIVA can only come from mis-speculation or mis-integration, never from
//! divergent semantics.
//!
//! Data memory is modelled as an array of naturally-aligned 64-bit words;
//! 32-bit accesses read/write the low or high half of the containing word.

use crate::opcode::Opcode;
use crate::DataAddr;

/// Evaluates an ALU operation on resolved 64-bit operand values.
///
/// Floating-point opcodes interpret operand bits as IEEE `f64` and return
/// the result bits, so evaluation stays deterministic and representable in
/// plain `u64` physical registers.
///
/// # Panics
///
/// Panics if `op` is not an ALU opcode.
#[must_use]
pub fn alu(op: Opcode, a: u64, b: u64) -> u64 {
    use Opcode::*;
    match op {
        Addq => a.wrapping_add(b),
        Subq => a.wrapping_sub(b),
        Mulq => a.wrapping_mul(b),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Sll => a.wrapping_shl((b & 63) as u32),
        Srl => a.wrapping_shr((b & 63) as u32),
        Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        Cmpeq => u64::from(a == b),
        Cmplt => u64::from((a as i64) < (b as i64)),
        Cmple => u64::from((a as i64) <= (b as i64)),
        Cmpult => u64::from(a < b),
        Addt => f64_op(a, b, |x, y| x + y),
        Subt => f64_op(a, b, |x, y| x - y),
        Mult => f64_op(a, b, |x, y| x * y),
        Divt => f64_op(a, b, |x, y| x / y),
        _ => panic!("{op} is not an ALU opcode"),
    }
}

fn f64_op(a: u64, b: u64, f: impl Fn(f64, f64) -> f64) -> u64 {
    let r = f(f64::from_bits(a), f64::from_bits(b));
    // Canonicalise NaNs so reuse comparisons are bit-stable.
    if r.is_nan() {
        f64::NAN.to_bits()
    } else {
        r.to_bits()
    }
}

/// Evaluates a conditional branch condition on the resolved source value.
///
/// # Panics
///
/// Panics if `op` is not a conditional branch.
#[must_use]
pub fn branch_taken(op: Opcode, cond: u64) -> bool {
    use Opcode::*;
    let s = cond as i64;
    match op {
        Beq => cond == 0,
        Bne => cond != 0,
        Blt => s < 0,
        Bge => s >= 0,
        Bgt => s > 0,
        Ble => s <= 0,
        _ => panic!("{op} is not a conditional branch"),
    }
}

/// Computes a memory effective address: `base + disp`, aligned down to the
/// access size (RIX requires natural alignment; the workload generators
/// only emit aligned accesses, and alignment-masking keeps wrong-path
/// garbage addresses harmless).
#[must_use]
pub fn effective_addr(op: Opcode, base: u64, disp: i32) -> DataAddr {
    let raw = base.wrapping_add(disp as i64 as u64);
    raw & !(op.mem_bytes().max(1) - 1)
}

/// Extracts a load result from the naturally-aligned 64-bit word containing
/// `addr`. 32-bit loads sign-extend.
#[must_use]
pub fn load_from_word(op: Opcode, addr: DataAddr, word: u64) -> u64 {
    match op.mem_bytes() {
        8 => word,
        4 => {
            let shift = (addr & 4) * 8;
            let half = (word >> shift) as u32;
            half as i32 as i64 as u64
        }
        _ => panic!("{op} is not a load/store"),
    }
}

/// Merges store data into the naturally-aligned 64-bit word containing
/// `addr`, returning the updated word.
#[must_use]
pub fn merge_store(op: Opcode, addr: DataAddr, word: u64, data: u64) -> u64 {
    match op.mem_bytes() {
        8 => data,
        4 => {
            let shift = (addr & 4) * 8;
            let mask = 0xffff_ffffu64 << shift;
            (word & !mask) | ((data & 0xffff_ffff) << shift)
        }
        _ => panic!("{op} is not a load/store"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn integer_alu() {
        assert_eq!(alu(Opcode::Addq, 2, 3), 5);
        assert_eq!(alu(Opcode::Subq, 2, 3), u64::MAX); // wraps
        assert_eq!(alu(Opcode::Mulq, 7, 6), 42);
        assert_eq!(alu(Opcode::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(alu(Opcode::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(alu(Opcode::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(alu(Opcode::Sll, 1, 8), 256);
        assert_eq!(alu(Opcode::Srl, 256, 8), 1);
        assert_eq!(alu(Opcode::Sra, (-256i64) as u64, 8), (-1i64) as u64);
    }

    #[test]
    fn compares() {
        assert_eq!(alu(Opcode::Cmpeq, 4, 4), 1);
        assert_eq!(alu(Opcode::Cmpeq, 4, 5), 0);
        assert_eq!(alu(Opcode::Cmplt, (-1i64) as u64, 0), 1);
        assert_eq!(alu(Opcode::Cmpult, (-1i64) as u64, 0), 0);
        assert_eq!(alu(Opcode::Cmple, 3, 3), 1);
    }

    #[test]
    fn fp_alu_is_bit_deterministic() {
        let a = 1.5f64.to_bits();
        let b = 2.25f64.to_bits();
        assert_eq!(alu(Opcode::Addt, a, b), 3.75f64.to_bits());
        assert_eq!(alu(Opcode::Mult, a, b), 3.375f64.to_bits());
        // NaN canonicalisation: 0/0 compares bit-equal across evaluations.
        let nan1 = alu(Opcode::Divt, 0, 0);
        let nan2 = alu(Opcode::Divt, 0, 0);
        assert_eq!(nan1, nan2);
    }

    #[test]
    fn branch_conditions() {
        assert!(branch_taken(Opcode::Beq, 0));
        assert!(!branch_taken(Opcode::Beq, 1));
        assert!(branch_taken(Opcode::Bne, 5));
        assert!(branch_taken(Opcode::Blt, (-3i64) as u64));
        assert!(branch_taken(Opcode::Bge, 0));
        assert!(branch_taken(Opcode::Bgt, 1));
        assert!(!branch_taken(Opcode::Bgt, 0));
        assert!(branch_taken(Opcode::Ble, 0));
    }

    #[test]
    fn effective_addresses_align() {
        assert_eq!(effective_addr(Opcode::Ldq, 0x1000, 8), 0x1008);
        assert_eq!(effective_addr(Opcode::Ldq, 0x1003, 0), 0x1000);
        assert_eq!(effective_addr(Opcode::Ldl, 0x1000, 4), 0x1004);
        assert_eq!(effective_addr(Opcode::Ldq, 0x10, -16), 0x0);
    }

    #[test]
    fn word_subaccess() {
        let word = 0x1111_2222_3333_4444u64;
        assert_eq!(load_from_word(Opcode::Ldq, 0x1000, word), word);
        assert_eq!(load_from_word(Opcode::Ldl, 0x1000, word), 0x3333_4444);
        // High half, sign-extended.
        assert_eq!(
            load_from_word(Opcode::Ldl, 0x1004, 0xffff_ffff_0000_0000),
            u64::MAX
        );
        let merged = merge_store(Opcode::Stl, 0x1004, word, 0xdead_beef);
        assert_eq!(merged, 0xdead_beef_3333_4444);
        assert_eq!(merge_store(Opcode::Stq, 0x1000, word, 7), 7);
    }

    proptest! {
        #[test]
        fn store_then_load_roundtrip_64(addr in any::<u64>(), word in any::<u64>(), data in any::<u64>()) {
            let addr = addr & !7;
            let merged = merge_store(Opcode::Stq, addr, word, data);
            prop_assert_eq!(load_from_word(Opcode::Ldq, addr, merged), data);
        }

        #[test]
        fn store_then_load_roundtrip_32(addr in any::<u64>(), word in any::<u64>(), data in any::<u32>()) {
            let addr = addr & !3;
            let merged = merge_store(Opcode::Stl, addr, word, u64::from(data));
            let loaded = load_from_word(Opcode::Ldl, addr, merged);
            prop_assert_eq!(loaded as u32, data);
            // Sign extension holds.
            prop_assert_eq!(loaded, data as i32 as i64 as u64);
        }

        #[test]
        fn stl_preserves_other_half(addr in any::<u64>(), word in any::<u64>(), data in any::<u32>()) {
            let addr = addr & !3;
            let merged = merge_store(Opcode::Stl, addr, word, u64::from(data));
            let other = addr ^ 4;
            prop_assert_eq!(
                load_from_word(Opcode::Ldl, other, merged),
                load_from_word(Opcode::Ldl, other, word)
            );
        }

        #[test]
        fn cmp_results_are_boolean(a in any::<u64>(), b in any::<u64>()) {
            for op in [Opcode::Cmpeq, Opcode::Cmplt, Opcode::Cmple, Opcode::Cmpult] {
                prop_assert!(alu(op, a, b) <= 1);
            }
        }

        #[test]
        fn addq_subq_inverse(a in any::<u64>(), b in any::<u64>()) {
            // The algebraic fact reverse integration relies on (§2.4):
            // add and subtract of the same operand are inverses.
            prop_assert_eq!(alu(Opcode::Subq, alu(Opcode::Addq, a, b), b), a);
        }
    }
}
