//! Logical (architectural) register names.
//!
//! RIX has 64 logical registers renamed as a single flat space: indices
//! 0–31 are the integer registers `r0`–`r31`, indices 32–63 the
//! floating-point registers `f0`–`f31`. Two registers are special:
//!
//! * [`ZERO`] (`r31`) always reads as zero and writes to it are discarded,
//!   exactly as on Alpha;
//! * [`FZERO`] (`f31`) is the floating-point zero register.
//!
//! The software conventions the workload generators follow (and that
//! reverse integration exploits) mirror the Alpha calling standard:
//! [`SP`] (`r30`) is the stack pointer and [`RA`] (`r26`) the return
//! address register.

use std::fmt;

/// Number of logical registers visible to the renamer (32 int + 32 fp).
pub const NUM_LOG_REGS: usize = 64;

/// A logical (architectural) register.
///
/// `LogReg` is a validated newtype: construct one with [`LogReg::new`]
/// (panics on out-of-range indices) or [`LogReg::try_new`].
///
/// ```
/// use rix_isa::LogReg;
/// let r = LogReg::new(4);
/// assert_eq!(r.index(), 4);
/// assert!(r.is_int());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogReg(u8);

impl LogReg {
    /// Creates a register from its flat index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_LOG_REGS`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        Self::try_new(index).expect("logical register index out of range")
    }

    /// Creates a register from its flat index, returning `None` when the
    /// index is out of range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Self> {
        (usize::from(index) < NUM_LOG_REGS).then_some(Self(index))
    }

    /// Integer register `rN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub const fn int(n: u8) -> Self {
        assert!(n < 32, "integer register index out of range");
        Self(n)
    }

    /// Floating-point register `fN`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub const fn fp(n: u8) -> Self {
        assert!(n < 32, "fp register index out of range");
        Self(32 + n)
    }

    /// The flat index (0–63) of this register.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// The flat index as a `u8`.
    #[must_use]
    pub fn raw(self) -> u8 {
        self.0
    }

    /// Whether this is one of the integer registers `r0`–`r31`.
    #[must_use]
    pub fn is_int(self) -> bool {
        self.0 < 32
    }

    /// Whether this is one of the floating-point registers `f0`–`f31`.
    #[must_use]
    pub fn is_fp(self) -> bool {
        self.0 >= 32
    }

    /// Whether this register is a hardwired zero ([`ZERO`] or [`FZERO`]).
    ///
    /// Zero registers are never renamed: reads return the constant zero
    /// physical register and writes are discarded.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == ZERO || self == FZERO
    }
}

impl fmt::Debug for LogReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for LogReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SP => write!(f, "sp"),
            RA => write!(f, "ra"),
            ZERO => write!(f, "zero"),
            r if r.is_int() => write!(f, "r{}", r.0),
            r => write!(f, "f{}", r.0 - 32),
        }
    }
}

/// The hardwired integer zero register (`r31`).
pub const ZERO: LogReg = LogReg(31);
/// The hardwired floating-point zero register (`f31`).
pub const FZERO: LogReg = LogReg(63);
/// The stack pointer (`r30`) — the base register of register saves,
/// restores, and frame pushes/pops targeted by reverse integration.
pub const SP: LogReg = LogReg(30);
/// The return-address register (`r26`), written by `jsr`.
pub const RA: LogReg = LogReg(26);
/// Frame pointer by convention (`r15`).
pub const FP: LogReg = LogReg(15);
/// Conventional first function-argument register (`r16`).
pub const A0: LogReg = LogReg(16);
/// Conventional second function-argument register (`r17`).
pub const A1: LogReg = LogReg(17);
/// Conventional third function-argument register (`r18`).
pub const A2: LogReg = LogReg(18);
/// Conventional return-value register (`r0`).
pub const V0: LogReg = LogReg(0);
/// Caller-saved temporaries `t0`–`t7` (`r1`–`r8`).
pub const T0: LogReg = LogReg(1);
/// Caller-saved temporary `t1`.
pub const T1: LogReg = LogReg(2);
/// Caller-saved temporary `t2`.
pub const T2: LogReg = LogReg(3);
/// Caller-saved temporary `t3`.
pub const T3: LogReg = LogReg(4);
/// Caller-saved temporary `t4`.
pub const T4: LogReg = LogReg(5);
/// Caller-saved temporary `t5`.
pub const T5: LogReg = LogReg(6);
/// Callee-saved registers `s0`–`s5` (`r9`–`r14`).
pub const S0: LogReg = LogReg(9);
/// Callee-saved register `s1`.
pub const S1: LogReg = LogReg(10);
/// Callee-saved register `s2`.
pub const S2: LogReg = LogReg(11);
/// Callee-saved register `s3`.
pub const S3: LogReg = LogReg(12);
/// Callee-saved register `s4`.
pub const S4: LogReg = LogReg(13);
/// General registers for the examples: `r1`..`r8` aliases.
pub const R1: LogReg = LogReg(1);
/// General register alias `r2`.
pub const R2: LogReg = LogReg(2);
/// General register alias `r3`.
pub const R3: LogReg = LogReg(3);
/// General register alias `r4`.
pub const R4: LogReg = LogReg(4);
/// General register alias `r5`.
pub const R5: LogReg = LogReg(5);
/// General register alias `r6`.
pub const R6: LogReg = LogReg(6);
/// Floating-point scratch registers for the examples.
pub const F0: LogReg = LogReg(32);
/// Floating-point scratch register `f1`.
pub const F1: LogReg = LogReg(33);
/// Floating-point scratch register `f2`.
pub const F2: LogReg = LogReg(34);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_ranges() {
        assert!(LogReg::int(0).is_int());
        assert!(!LogReg::int(0).is_fp());
        assert!(LogReg::fp(0).is_fp());
        assert_eq!(LogReg::fp(0).index(), 32);
        assert_eq!(LogReg::fp(31).index(), 63);
    }

    #[test]
    fn zero_registers() {
        assert!(ZERO.is_zero());
        assert!(FZERO.is_zero());
        assert!(!SP.is_zero());
        assert!(!RA.is_zero());
    }

    #[test]
    fn try_new_bounds() {
        assert!(LogReg::try_new(63).is_some());
        assert!(LogReg::try_new(64).is_none());
        assert!(LogReg::try_new(255).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = LogReg::new(64);
    }

    #[test]
    fn display_names() {
        assert_eq!(SP.to_string(), "sp");
        assert_eq!(RA.to_string(), "ra");
        assert_eq!(ZERO.to_string(), "zero");
        assert_eq!(LogReg::int(5).to_string(), "r5");
        assert_eq!(LogReg::fp(3).to_string(), "f3");
    }
}
