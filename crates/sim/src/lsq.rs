//! Load/store queue machinery: the store queue and the collision history
//! table.
//!
//! Loads issue speculatively in the presence of older stores with
//! unresolved addresses (§3.1). The [`StoreQueue`] tracks in-flight
//! stores' addresses and data for store-to-load forwarding and for
//! detecting memory-order violations when a store's address resolves.
//! A 256-entry direct-mapped [`Cht`] (collision history table) learns
//! from past violations and stalls the corresponding loads until all
//! older store addresses are known.
//!
//! Conflict detection is word-granular: two accesses conflict when they
//! touch the same naturally-aligned 8-byte word. This is conservative for
//! mixed 32/64-bit accesses (a false conflict costs an unnecessary
//! squash, never a wrong value — DIVA backstops everything anyway).

use rix_integration::PregRef;
use rix_isa::{semantics, Opcode};
use std::collections::VecDeque;

/// One in-flight store.
#[derive(Clone, Copy, Debug)]
pub struct SqEntry {
    /// Dynamic sequence number (rename order).
    pub seq: u64,
    /// Store opcode (width).
    pub op: Opcode,
    /// Effective (access-aligned) address, once address generation
    /// completes.
    pub addr: Option<u64>,
    /// The renamed data register.
    pub data_preg: PregRef,
    /// The store data value, once available.
    pub data: Option<u64>,
}

impl SqEntry {
    /// The aligned 8-byte word this store writes, if its address is
    /// resolved.
    #[must_use]
    pub fn word_addr(&self) -> Option<u64> {
        self.addr.map(|a| a & !7)
    }
}

/// The in-flight store queue, in rename order.
///
/// Entries are kept sorted by sequence number (rename order), which the
/// hot paths exploit: seq→entry lookups are binary searches, and the
/// age-bounded scans (`spec_word`, `youngest_older_match`,
/// `all_older_resolved`) first bound the "older than `seq`" prefix by
/// binary search instead of comparing sequence numbers per element.
#[derive(Clone, Debug, Default)]
pub struct StoreQueue {
    entries: VecDeque<SqEntry>,
    /// How many entries still have `data: None`; lets the per-cycle
    /// [`StoreQueue::fill_data`] sweep exit immediately once every
    /// in-flight store's value is known.
    missing_data: usize,
    /// Bumped on every content change (push/pop/squash, address or data
    /// resolution); lets the scheduler cache load-stall verdicts that
    /// depend only on queue contents.
    gen: u64,
    /// Bumped only on address resolution — the sole queue event that can
    /// *revoke* a load's readiness (a resolved older store can become a
    /// dataless forwarding match); lets ready verdicts cache harder.
    addr_gen: u64,
    /// Entries whose data is still unknown, as (seq, data preg, wake
    /// cycle). The wake cycle is `u64::MAX` until the producer's ready
    /// time is scheduled; after that the per-cycle check is a single
    /// compare (ready times are immutable while the store is in
    /// flight).
    missing: Vec<(u64, PregRef, u64)>,
}

impl StoreQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of in-flight stores.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sanitizer hook (see `pipeline::sanitize`): the missing-data
    /// bookkeeping the public accessors cannot see, as (counter, wake
    /// list length). Both must equal the number of dataless entries.
    #[cfg(any(debug_assertions, feature = "sanitize"))]
    pub(crate) fn missing_counts(&self) -> (usize, usize) {
        (self.missing_data, self.missing.len())
    }

    /// Appends a renamed store.
    pub fn push(&mut self, seq: u64, op: Opcode, data_preg: PregRef) {
        sanity!(
            self.entries.back().is_none_or(|e| e.seq < seq),
            "store-queue-age-order",
            "pushed store seq {seq} is not younger than the queue tail"
        );
        self.entries.push_back(SqEntry { seq, op, addr: None, data_preg, data: None });
        self.missing_data += 1;
        self.missing.push((seq, data_preg, u64::MAX));
        self.gen += 1;
    }

    /// Content-change generation (see the field docs).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Address-resolution generation (see the field docs).
    #[must_use]
    pub fn addr_generation(&self) -> u64 {
        self.addr_gen
    }

    /// Index of the first entry not older than `seq` — the end of the
    /// "older than `seq`" prefix.
    #[inline]
    fn older_end(&self, seq: u64) -> usize {
        self.entries.partition_point(|e| e.seq < seq)
    }

    fn find_mut(&mut self, seq: u64) -> Option<&mut SqEntry> {
        let idx = self.entries.binary_search_by_key(&seq, |e| e.seq).ok()?;
        self.entries.get_mut(idx)
    }

    /// Records the resolved address of store `seq`.
    pub fn set_addr(&mut self, seq: u64, addr: u64) {
        if let Some(e) = self.find_mut(seq) {
            e.addr = Some(addr);
        }
        self.gen += 1;
        self.addr_gen += 1;
    }

    /// Records the data value of store `seq`.
    pub fn set_data(&mut self, seq: u64, data: u64) {
        let Ok(idx) = self.entries.binary_search_by_key(&seq, |e| e.seq) else { return };
        let e = &mut self.entries[idx];
        if e.data.is_none() {
            self.missing_data -= 1;
            self.missing.retain(|&(s, ..)| s != seq);
        }
        e.data = Some(data);
        self.gen += 1;
    }

    /// Pops the oldest store (must be `seq`) at retirement.
    ///
    /// # Panics
    ///
    /// Panics if the head is missing or has a different sequence number —
    /// stores must retire in order.
    pub fn pop_retire(&mut self, seq: u64) -> SqEntry {
        let head = self.entries.pop_front().expect("retiring store not in queue");
        assert_eq!(head.seq, seq, "stores retire in order");
        if head.data.is_none() {
            self.missing_data -= 1;
            self.missing.retain(|&(s, ..)| s != seq);
        }
        self.gen += 1;
        head
    }

    /// Drops all stores younger than `after_seq` (squash).
    pub fn squash_younger(&mut self, after_seq: u64) {
        let before = self.entries.len();
        while self.entries.back().is_some_and(|e| e.seq > after_seq) {
            let e = self.entries.pop_back().expect("checked non-empty");
            if e.data.is_none() {
                self.missing_data -= 1;
            }
            self.gen += 1;
        }
        if self.entries.len() != before {
            self.missing.retain(|&(s, ..)| s <= after_seq);
        }
    }

    /// Whether every store older than `seq` has a resolved address (the
    /// CHT-stall release condition).
    #[must_use]
    pub fn all_older_resolved(&self, seq: u64) -> bool {
        let end = self.older_end(seq);
        self.entries.range(..end).all(|e| e.addr.is_some())
    }

    /// The youngest store older than `seq` writing the same word, if any.
    #[must_use]
    pub fn youngest_older_match(&self, seq: u64, word_addr: u64) -> Option<&SqEntry> {
        let end = self.older_end(seq);
        self.entries.range(..end).rev().find(|e| e.word_addr() == Some(word_addr))
    }

    /// Builds the speculative memory word a load at `seq` observes:
    /// `arch_word` overlaid, in age order, with every older resolved
    /// store to the same word whose data is available.
    ///
    /// Returns the word and the sequence number of the youngest
    /// contributing store (the load's forwarding source, used for
    /// violation detection).
    #[must_use]
    pub fn spec_word(&self, seq: u64, word_addr: u64, arch_word: u64) -> (u64, Option<u64>) {
        let mut word = arch_word;
        let mut newest = None;
        let end = self.older_end(seq);
        for e in self.entries.range(..end) {
            if e.word_addr() == Some(word_addr) {
                if let (Some(addr), Some(data)) = (e.addr, e.data) {
                    word = semantics::merge_store(e.op, addr, word, data);
                    newest = Some(e.seq);
                }
            }
        }
        (word, newest)
    }

    /// Iterates over in-flight stores, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SqEntry> {
        self.entries.iter()
    }

    /// Fills in data for stores whose value has become available at
    /// `cycle`: `ready_time(preg)` reports when the register's value
    /// arrives (`u64::MAX` = not scheduled yet) and `value(preg)` reads
    /// it. Each missing entry costs one compare per cycle once its
    /// producer's (immutable) ready time is known.
    pub fn fill_data(
        &mut self,
        cycle: u64,
        mut ready_time: impl FnMut(PregRef) -> u64,
        mut value: impl FnMut(PregRef) -> u64,
    ) {
        if self.missing_data == 0 {
            return;
        }
        let mut i = 0;
        while i < self.missing.len() {
            let (seq, preg, mut wake) = self.missing[i];
            if wake == u64::MAX {
                wake = ready_time(preg);
                if wake == u64::MAX {
                    i += 1;
                    continue;
                }
                self.missing[i].2 = wake;
            }
            if wake > cycle {
                i += 1;
                continue;
            }
            let idx = self
                .entries
                .binary_search_by_key(&seq, |e| e.seq)
                .expect("missing list tracks live entries");
            let e = &mut self.entries[idx];
            sanity!(
                e.data.is_none(),
                "store-fill-once",
                "store seq {seq} is on the missing-data list but already has data"
            );
            e.data = Some(value(preg));
            self.missing_data -= 1;
            self.gen += 1;
            self.missing.swap_remove(i);
        }
    }
}

/// The collision history table: a direct-mapped, PC-indexed table of
/// "this load has collided with a store" bits.
#[derive(Clone, Debug)]
pub struct Cht {
    bits: Vec<bool>,
    trainings: u64,
}

impl Cht {
    /// Creates a CHT with `entries` slots (paper: 256, direct-mapped).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "CHT size must be a power of two");
        Self { bits: vec![false; entries], trainings: 0 }
    }

    fn index(&self, pc: u64) -> usize {
        (pc as usize) & (self.bits.len() - 1)
    }

    /// Whether the load at `pc` should wait for older store addresses.
    #[must_use]
    pub fn predicts_conflict(&self, pc: u64) -> bool {
        self.bits[self.index(pc)]
    }

    /// Records a violation by the load at `pc`.
    pub fn train(&mut self, pc: u64) {
        let idx = self.index(pc);
        self.bits[idx] = true;
        self.trainings += 1;
    }

    /// Number of violations recorded.
    #[must_use]
    pub fn trainings(&self) -> u64 {
        self.trainings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preg(n: u16) -> PregRef {
        PregRef::new(n, 1)
    }

    #[test]
    fn forwarding_prefers_youngest_older() {
        let mut sq = StoreQueue::new();
        sq.push(1, Opcode::Stq, preg(1));
        sq.push(5, Opcode::Stq, preg(2));
        sq.push(9, Opcode::Stq, preg(3));
        sq.set_addr(1, 0x100);
        sq.set_addr(5, 0x100);
        sq.set_addr(9, 0x100);
        // A load at seq 7 sees store 5, not 9 (younger) or 1 (older).
        let m = sq.youngest_older_match(7, 0x100).unwrap();
        assert_eq!(m.seq, 5);
        // A load at seq 20 sees store 9.
        assert_eq!(sq.youngest_older_match(20, 0x100).unwrap().seq, 9);
        // Different word: no match.
        assert!(sq.youngest_older_match(20, 0x108).is_none());
    }

    #[test]
    fn spec_word_overlays_in_age_order() {
        let mut sq = StoreQueue::new();
        sq.push(1, Opcode::Stq, preg(1));
        sq.push(2, Opcode::Stl, preg(2));
        sq.set_addr(1, 0x100);
        sq.set_data(1, 0xaaaa_bbbb_cccc_dddd);
        sq.set_addr(2, 0x104); // high half of the same word
        sq.set_data(2, 0x1111_2222);
        let (word, newest) = sq.spec_word(10, 0x100, 0);
        assert_eq!(word, 0x1111_2222_cccc_dddd);
        assert_eq!(newest, Some(2));
        // A load between the stores sees only store 1.
        let (word, newest) = sq.spec_word(2, 0x100, 0);
        assert_eq!(word, 0xaaaa_bbbb_cccc_dddd);
        assert_eq!(newest, Some(1));
    }

    #[test]
    fn spec_word_skips_dataless_stores() {
        let mut sq = StoreQueue::new();
        sq.push(1, Opcode::Stq, preg(1));
        sq.set_addr(1, 0x100); // address known, data not
        let (word, newest) = sq.spec_word(5, 0x100, 42);
        assert_eq!(word, 42);
        assert_eq!(newest, None);
    }

    #[test]
    fn all_older_resolved() {
        let mut sq = StoreQueue::new();
        sq.push(1, Opcode::Stq, preg(1));
        sq.push(5, Opcode::Stq, preg(2));
        assert!(!sq.all_older_resolved(10));
        sq.set_addr(1, 0x100);
        assert!(sq.all_older_resolved(3), "only store 1 is older than 3");
        assert!(!sq.all_older_resolved(10));
        sq.set_addr(5, 0x200);
        assert!(sq.all_older_resolved(10));
    }

    #[test]
    fn retire_and_squash() {
        let mut sq = StoreQueue::new();
        sq.push(1, Opcode::Stq, preg(1));
        sq.push(5, Opcode::Stq, preg(2));
        sq.push(9, Opcode::Stq, preg(3));
        sq.squash_younger(5);
        assert_eq!(sq.len(), 2);
        let e = sq.pop_retire(1);
        assert_eq!(e.seq, 1);
        assert_eq!(sq.len(), 1);
    }

    #[test]
    #[should_panic(expected = "retire in order")]
    fn out_of_order_retire_detected() {
        let mut sq = StoreQueue::new();
        sq.push(1, Opcode::Stq, preg(1));
        sq.push(2, Opcode::Stq, preg(2));
        let _ = sq.pop_retire(2);
    }

    #[test]
    fn fill_data_sweep_skips_known_entries() {
        let mut sq = StoreQueue::new();
        sq.push(1, Opcode::Stq, preg(1));
        sq.push(2, Opcode::Stq, preg(2));
        sq.push(3, Opcode::Stq, preg(3));
        // Preg 1's value arrives at cycle 0; the others are unscheduled.
        sq.fill_data(0, |p| if p.preg == 1 { 0 } else { u64::MAX }, |_| 11);
        let mut probes = 0;
        sq.fill_data(
            0,
            |_| {
                probes += 1;
                0
            },
            |_| 22,
        );
        assert_eq!(probes, 2, "only dataless entries are probed");
        probes = 0;
        sq.fill_data(
            0,
            |_| {
                probes += 1;
                u64::MAX
            },
            |_| 0,
        );
        assert_eq!(probes, 0, "all data known: the sweep is zero work");
        // Squash and retire keep the accounting straight.
        sq.push(4, Opcode::Stq, preg(4));
        sq.squash_younger(3);
        let _ = sq.pop_retire(1);
        probes = 0;
        sq.fill_data(
            0,
            |_| {
                probes += 1;
                u64::MAX
            },
            |_| 0,
        );
        assert_eq!(probes, 0);
        sq.push(5, Opcode::Stq, preg(5));
        probes = 0;
        sq.fill_data(
            0,
            |_| {
                probes += 1;
                u64::MAX
            },
            |_| 0,
        );
        assert_eq!(probes, 1, "the new store is probed again");
        // Once a ready time is memoized, the producer is not re-probed:
        // the value lands when the wake cycle passes.
        sq.fill_data(
            0,
            |_| 5,
            |_| 55,
        );
        probes = 0;
        sq.fill_data(
            5,
            |_| {
                probes += 1;
                u64::MAX
            },
            |_| 55,
        );
        assert_eq!(probes, 0, "memoized wake time needs no probe");
        let (word, newest) = {
            sq.set_addr(5, 0x100);
            sq.spec_word(10, 0x100, 0)
        };
        assert_eq!((word, newest), (55, Some(5)));
    }

    #[test]
    fn set_data_on_unknown_seq_is_ignored() {
        let mut sq = StoreQueue::new();
        sq.push(2, Opcode::Stq, preg(1));
        sq.set_data(7, 99);
        sq.set_addr(7, 0x100);
        let (word, newest) = sq.spec_word(10, 0x100, 0);
        assert_eq!((word, newest), (0, None));
    }

    #[test]
    fn cht_learns() {
        let mut c = Cht::new(256);
        assert!(!c.predicts_conflict(0x30));
        c.train(0x30);
        assert!(c.predicts_conflict(0x30));
        // Direct-mapped aliasing: pc + 256 shares the slot.
        assert!(c.predicts_conflict(0x30 + 256));
        assert!(!c.predicts_conflict(0x31));
        assert_eq!(c.trainings(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cht_size_checked() {
        let _ = Cht::new(100);
    }
}
