//! Simulation statistics.

use rix_integration::IntegrationStats;
use rix_mem::{CacheStats, MemSystemStats};

/// Everything the evaluation section measures, accumulated over a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Elapsed machine cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Instructions fetched (including wrong-path).
    pub fetched: u64,
    /// Instructions that issued to the execution engine (integrating
    /// instructions bypass it and are not counted).
    pub executed: u64,
    /// Loads that executed (accessed the cache/store queue).
    pub loads_executed: u64,
    /// Loads retired (integrated or not).
    pub loads_retired: u64,
    /// Stores retired.
    pub stores_retired: u64,
    /// Integration accounting (Figures 4 and 5).
    pub integration: IntegrationStats,
    /// Conditional branches retired.
    pub cond_branches_retired: u64,
    /// Retired conditional branches that were mispredicted.
    pub branch_mispredicts: u64,
    /// Sum over retired mispredicted branches of (resolution cycle −
    /// prediction cycle); the paper's mis-prediction resolution latency.
    pub resolution_latency_sum: u64,
    /// Squashes triggered by branch/return mispredictions.
    pub squashes_branch: u64,
    /// Full squashes triggered by memory-order violations.
    pub squashes_memorder: u64,
    /// Flushes triggered by DIVA (mis-integration recovery).
    pub squashes_diva: u64,
    /// Per-cycle sum of busy reservation stations (for the §3.5 occupancy
    /// figure).
    pub rs_occupancy_sum: u64,
    /// Per-cycle sum of ROB occupancy.
    pub rob_occupancy_sum: u64,
    /// Rename stalls: no free physical register.
    pub stalls_preg: u64,
    /// Rename stalls: ROB full.
    pub stalls_rob: u64,
    /// Rename stalls: no reservation station.
    pub stalls_rs: u64,
    /// Rename stalls: memory-op window full.
    pub stalls_lsq: u64,
    /// Retirement stalls: write buffer full.
    pub stalls_writebuf: u64,
    /// Memory hierarchy counters.
    pub mem: MemSystemStats,
}

impl SimStats {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Average busy reservation stations per cycle.
    #[must_use]
    pub fn avg_rs_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rs_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Average mis-prediction resolution latency in cycles.
    #[must_use]
    pub fn branch_resolution_latency(&self) -> f64 {
        if self.branch_mispredicts == 0 {
            0.0
        } else {
            self.resolution_latency_sum as f64 / self.branch_mispredicts as f64
        }
    }

    /// Conditional-branch misprediction rate.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_branches_retired == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.cond_branches_retired as f64
        }
    }

    /// Fraction of retired loads that executed (1 − load integration
    /// rate; §3.5 reports a 27% reduction in executed loads).
    #[must_use]
    pub fn load_execution_fraction(&self) -> f64 {
        if self.loads_retired == 0 {
            0.0
        } else {
            self.loads_executed as f64 / self.loads_retired as f64
        }
    }
}

/// The outcome of [`crate::Simulator::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunResult {
    /// Accumulated statistics.
    pub stats: SimStats,
    /// Whether the program executed a `halt`.
    pub halted: bool,
    /// From [`crate::Simulator::run`] / `run_budget`: the instruction
    /// budget was not met (the cycle safety net or deadlock window
    /// fired first — a deadlock or runaway). From a raw
    /// [`crate::Simulator::result`] snapshot: the machine is currently
    /// deadlocked.
    pub timed_out: bool,
}

impl RunResult {
    /// Retired IPC.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Serialises the result as a JSON object. Hand-rolled (no
    /// dependencies); every counter plus the headline derived metrics.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"halted":{},"timed_out":{},"ipc":{},"stats":{}}}"#,
            self.halted,
            self.timed_out,
            json_f64(self.ipc()),
            self.stats.to_json()
        )
    }
}

/// A finite float as a JSON number; NaN/∞ (impossible for ratios of
/// counters, but defended anyway) become `null`.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn cache_json(c: CacheStats) -> String {
    format!(
        r#"{{"hits":{},"misses":{},"writebacks":{}}}"#,
        c.hits, c.misses, c.writebacks
    )
}

impl SimStats {
    /// Serialises the statistics as a JSON object (see
    /// [`RunResult::to_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let integration = format!(
            concat!(
                r#"{{"direct":{},"reverse":{},"rate":{},"suppressed":{},"#,
                r#""mis_integrations":{},"load_mis_integrations":{},"#,
                r#""register_mis_integrations":{},"mis_per_million":{}}}"#
            ),
            self.integration.direct,
            self.integration.reverse,
            json_f64(self.integration.rate()),
            self.integration.suppressed,
            self.integration.mis_integrations,
            self.integration.load_mis_integrations,
            self.integration.register_mis_integrations,
            json_f64(self.integration.mis_per_million()),
        );
        let mem = format!(
            concat!(
                r#"{{"l1i":{},"l1d":{},"l2":{},"itlb_misses":{},"dtlb_misses":{},"#,
                r#""mshr_merges":{},"write_buffer_stalls":{},"backside_busy":{},"#,
                r#""membus_busy":{}}}"#
            ),
            cache_json(self.mem.l1i),
            cache_json(self.mem.l1d),
            cache_json(self.mem.l2),
            self.mem.itlb_misses,
            self.mem.dtlb_misses,
            self.mem.mshr_merges,
            self.mem.write_buffer_stalls,
            self.mem.backside_busy,
            self.mem.membus_busy,
        );
        format!(
            concat!(
                r#"{{"cycles":{},"retired":{},"ipc":{},"fetched":{},"executed":{},"#,
                r#""loads_executed":{},"loads_retired":{},"stores_retired":{},"#,
                r#""cond_branches_retired":{},"branch_mispredicts":{},"#,
                r#""branch_resolution_latency":{},"squashes_branch":{},"#,
                r#""squashes_memorder":{},"squashes_diva":{},"avg_rs_occupancy":{},"#,
                r#""stalls_preg":{},"stalls_rob":{},"stalls_rs":{},"stalls_lsq":{},"#,
                r#""stalls_writebuf":{},"integration":{},"mem":{}}}"#
            ),
            self.cycles,
            self.retired,
            json_f64(self.ipc()),
            self.fetched,
            self.executed,
            self.loads_executed,
            self.loads_retired,
            self.stores_retired,
            self.cond_branches_retired,
            self.branch_mispredicts,
            json_f64(self.branch_resolution_latency()),
            self.squashes_branch,
            self.squashes_memorder,
            self.squashes_diva,
            json_f64(self.avg_rs_occupancy()),
            self.stalls_preg,
            self.stalls_rob,
            self.stalls_rs,
            self.stalls_lsq,
            self.stalls_writebuf,
            integration,
            mem,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = SimStats { cycles: 100, retired: 150, ..SimStats::default() };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        s.rs_occupancy_sum = 3100;
        assert!((s.avg_rs_occupancy() - 31.0).abs() < 1e-12);
        s.branch_mispredicts = 4;
        s.resolution_latency_sum = 104;
        assert!((s.branch_resolution_latency() - 26.0).abs() < 1e-12);
        s.cond_branches_retired = 40;
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        s.loads_retired = 100;
        s.loads_executed = 73;
        assert!((s.load_execution_fraction() - 0.73).abs() < 1e-12);
    }

    #[test]
    fn json_is_well_formed() {
        let r = RunResult {
            stats: SimStats { cycles: 100, retired: 150, ..SimStats::default() },
            halted: true,
            timed_out: false,
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains(r#""halted":true"#));
        assert!(j.contains(r#""retired":150"#));
        assert!(j.contains(r#""ipc":1.5"#));
        assert!(j.contains(r#""l1d":{"hits":0"#));
        assert!(!j.contains("NaN") && !j.contains("inf"), "{j}");
    }

    #[test]
    fn zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.avg_rs_occupancy(), 0.0);
        assert_eq!(s.branch_resolution_latency(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.load_execution_fraction(), 0.0);
    }
}
