//! Simulation statistics.

use rix_integration::IntegrationStats;
use rix_mem::MemSystemStats;

/// Everything the evaluation section measures, accumulated over a run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Elapsed machine cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Instructions fetched (including wrong-path).
    pub fetched: u64,
    /// Instructions that issued to the execution engine (integrating
    /// instructions bypass it and are not counted).
    pub executed: u64,
    /// Loads that executed (accessed the cache/store queue).
    pub loads_executed: u64,
    /// Loads retired (integrated or not).
    pub loads_retired: u64,
    /// Stores retired.
    pub stores_retired: u64,
    /// Integration accounting (Figures 4 and 5).
    pub integration: IntegrationStats,
    /// Conditional branches retired.
    pub cond_branches_retired: u64,
    /// Retired conditional branches that were mispredicted.
    pub branch_mispredicts: u64,
    /// Sum over retired mispredicted branches of (resolution cycle −
    /// prediction cycle); the paper's mis-prediction resolution latency.
    pub resolution_latency_sum: u64,
    /// Squashes triggered by branch/return mispredictions.
    pub squashes_branch: u64,
    /// Full squashes triggered by memory-order violations.
    pub squashes_memorder: u64,
    /// Flushes triggered by DIVA (mis-integration recovery).
    pub squashes_diva: u64,
    /// Per-cycle sum of busy reservation stations (for the §3.5 occupancy
    /// figure).
    pub rs_occupancy_sum: u64,
    /// Per-cycle sum of ROB occupancy.
    pub rob_occupancy_sum: u64,
    /// Rename stalls: no free physical register.
    pub stalls_preg: u64,
    /// Rename stalls: ROB full.
    pub stalls_rob: u64,
    /// Rename stalls: no reservation station.
    pub stalls_rs: u64,
    /// Rename stalls: memory-op window full.
    pub stalls_lsq: u64,
    /// Retirement stalls: write buffer full.
    pub stalls_writebuf: u64,
    /// Memory hierarchy counters.
    pub mem: MemSystemStats,
}

impl SimStats {
    /// Retired instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Average busy reservation stations per cycle.
    #[must_use]
    pub fn avg_rs_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rs_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Average mis-prediction resolution latency in cycles.
    #[must_use]
    pub fn branch_resolution_latency(&self) -> f64 {
        if self.branch_mispredicts == 0 {
            0.0
        } else {
            self.resolution_latency_sum as f64 / self.branch_mispredicts as f64
        }
    }

    /// Conditional-branch misprediction rate.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_branches_retired == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.cond_branches_retired as f64
        }
    }

    /// Fraction of retired loads that executed (1 − load integration
    /// rate; §3.5 reports a 27% reduction in executed loads).
    #[must_use]
    pub fn load_execution_fraction(&self) -> f64 {
        if self.loads_retired == 0 {
            0.0
        } else {
            self.loads_executed as f64 / self.loads_retired as f64
        }
    }
}

/// The outcome of [`crate::Simulator::run`].
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Accumulated statistics.
    pub stats: SimStats,
    /// Whether the program executed a `halt`.
    pub halted: bool,
    /// Whether the run hit the cycle safety limit before retiring the
    /// requested instruction count (indicates a deadlock or runaway).
    pub timed_out: bool,
}

impl RunResult {
    /// Retired IPC.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut s = SimStats { cycles: 100, retired: 150, ..SimStats::default() };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        s.rs_occupancy_sum = 3100;
        assert!((s.avg_rs_occupancy() - 31.0).abs() < 1e-12);
        s.branch_mispredicts = 4;
        s.resolution_latency_sum = 104;
        assert!((s.branch_resolution_latency() - 26.0).abs() < 1e-12);
        s.cond_branches_retired = 40;
        assert!((s.mispredict_rate() - 0.1).abs() < 1e-12);
        s.loads_retired = 100;
        s.loads_executed = 73;
        assert!((s.load_execution_fraction() - 0.73).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.avg_rs_occupancy(), 0.0);
        assert_eq!(s.branch_resolution_latency(), 0.0);
        assert_eq!(s.mispredict_rate(), 0.0);
        assert_eq!(s.load_execution_fraction(), 0.0);
    }
}
