//! The per-cycle pipeline sanitizer: cross-structure invariants the
//! inline `sanity!` checks cannot see from any one call site.
//!
//! The simulator's hot loop is event-driven: the ROB is the source of
//! truth, and the scheduler mirrors slices of it into side structures
//! (the ready set, the wake and completion calendars, per-preg waiter
//! lists, the store queue, the rename map / reference-count vector).
//! Each mirror is updated at several sites, so drift is the failure
//! mode — an instruction parked in no structure never issues, a leaked
//! reference count never frees its register. The checks here audit the
//! mirrors against the ROB after every cycle:
//!
//! * **ROB mirror coherence** — the seq mirror matches each `DynInst`,
//!   absolute positions locate their entries, and every waiting
//!   instruction sits in exactly the side structure its state implies.
//! * **Ready set** — sorted by (rank, seq), and every entry is a live
//!   `WaitRs` instruction (squashes prune the ready set eagerly, so a
//!   stale entry means a lost or duplicated wakeup).
//! * **Calendar liveness** — the cycle's wake and completion buckets
//!   are empty after the step (a leftover would sleep for a full
//!   calendar revolution), and far-scheduled events are in the future.
//! * **Store queue** — entries strictly age-ordered, every in-flight
//!   store is in the ROB, and the missing-data bookkeeping agrees with
//!   the entries themselves.
//! * **Reference counts** — every rename-map entry points at a live
//!   generation with a positive count, and the total reference count
//!   equals mapped registers plus in-flight shadowed mappings
//!   (conservation: a drifting total is a leak or a double-free).
//!
//! Everything here is read-only. Under the `sanitize` feature the full
//! audit runs every cycle in any build profile; in plain debug builds
//! the expensive whole-structure sweeps are sampled (1 cycle in 64) so
//! the test suite stays fast. Plain release builds compile all of this
//! away.

use super::*;

impl Simulator<'_> {
    /// Runs the end-of-cycle audit. Called from [`Simulator::step`]
    /// under `debug_assertions` or the `sanitize` feature.
    pub(super) fn sanitize_step(&self) {
        let full = cfg!(feature = "sanitize") || self.cycle & 63 == 0;
        self.check_rob_mirrors(full);
        if full {
            self.check_ready_set();
            self.check_store_queue();
            self.check_refcounts();
            if !self.halted {
                // A halt stops the cycle mid-step before the issue
                // stage, so the current buckets were never drained.
                self.check_calendar();
            }
        }
    }

    /// The seq mirror and the event-driven scheduler lists never drift
    /// from the `DynInst` source of truth: every in-flight instruction
    /// must sit in exactly the side structure its state implies.
    fn check_rob_mirrors(&self, full: bool) {
        // Membership of waiting instructions across the scheduler
        // structures needs the parked seqs (per-preg waiter lists, wake
        // calendar) collected, which would swamp sampled debug runs —
        // it is part of the full audit only. Sequence numbers are never
        // reused, so matching by seq is exact; stale (squashed) parked
        // entries never collide with a live one.
        let listed: Option<Vec<u64>> = full.then(|| {
            let mut v: Vec<u64> = Vec::new();
            v.extend(self.ready_set.iter().map(|&(k, _)| k & ((1u64 << 62) - 1)));
            v.extend(self.wait_loads.iter().map(|&(s, ..)| s));
            for w in &self.preg_waiters {
                v.extend(w.iter().map(|b| b.seq));
            }
            for bucket in &self.wake_ring {
                v.extend(bucket.iter().map(|b| b.seq));
            }
            v.extend(self.wake_far.iter().map(|&(_, b)| b.seq));
            v
        });
        for i in 0..self.rob_len {
            let d = &rob_entry!(self, i);
            sanity!(
                d.seq == rob_seq_at!(self, i),
                "rob-seq-mirror",
                "seq mirror drifted at rob[{i}]: {} vs {}",
                rob_seq_at!(self, i),
                d.seq
            );
            sanity!(
                self.rob_locate(d.seq, self.rob_base + i as u64) == Some(i),
                "rob-locate-coherent",
                "absolute position must locate rob[{i}] (seq {})",
                d.seq
            );
            match d.state {
                State::WaitRs => {
                    if let Some(listed) = &listed {
                        let n = listed.iter().filter(|&&s| s == d.seq).count();
                        sanity!(
                            n == 1,
                            "waiting-has-one-home",
                            "seq {} sits in {n} issue structures, not exactly one",
                            d.seq
                        );
                    }
                }
                State::WaitInt => {
                    let n = self.pending_int.iter().filter(|&&(s, _)| s == d.seq).count();
                    sanity!(
                        n == 1,
                        "pending-int-has-one-home",
                        "integrated seq {} sits in the pending list {n} times",
                        d.seq
                    );
                }
                State::Issued => {
                    if d.done_at == NO_CYCLE {
                        let n = self
                            .pending_store_data
                            .iter()
                            .filter(|&&(s, _)| s == d.seq)
                            .count();
                        sanity!(
                            n == 1,
                            "dataless-store-has-one-home",
                            "issued dataless store seq {} sits in the pending list {n} times",
                            d.seq
                        );
                    } else {
                        let fire = d.done_at.max(self.cycle);
                        let slot = (fire as usize) & (COMPLETION_RING - 1);
                        let scheduled = self.completions[slot]
                            .iter()
                            .filter(|&&(s, _)| s == d.seq)
                            .count()
                            + self
                                .completions_far
                                .iter()
                                .filter(|&&(_, s, _)| s == d.seq)
                                .count();
                        sanity!(
                            scheduled >= 1,
                            "issued-completion-scheduled",
                            "issued seq {} has no completion event for cycle {fire}",
                            d.seq
                        );
                    }
                }
                State::Done => {}
            }
        }
    }

    /// The ready set is sorted by its (rank, seq) key and contains only
    /// live `WaitRs` instructions (squash prunes it eagerly).
    fn check_ready_set(&self) {
        let mut prev = None;
        for &(key, payload) in &self.ready_set {
            sanity!(
                prev.is_none_or(|p| p < key),
                "ready-set-sorted",
                "ready-set keys out of order: {prev:?} then {key}"
            );
            prev = Some(key);
            let seq = key & ((1u64 << 62) - 1);
            let abs = payload >> 2;
            let Some(idx) = self.rob_locate(seq, abs) else {
                sanity!(false, "ready-set-live", "ready seq {seq} is not in flight");
                continue;
            };
            sanity!(
                rob_entry!(self, idx).state == State::WaitRs,
                "ready-set-state",
                "ready seq {seq} is {:?}, not WaitRs",
                rob_entry!(self, idx).state
            );
        }
    }

    /// No lost wakeups: the bucket the cycle just drained is empty
    /// again (anything left would sleep for a whole calendar
    /// revolution), and every far-scheduled event is strictly future.
    fn check_calendar(&self) {
        let slot = (self.cycle as usize) & (COMPLETION_RING - 1);
        sanity!(
            self.wake_ring[slot].is_empty(),
            "wake-bucket-drained",
            "{} wakeups left behind in cycle {}'s bucket",
            self.wake_ring[slot].len(),
            self.cycle
        );
        sanity!(
            self.completions[slot].is_empty(),
            "completion-bucket-drained",
            "{} completions left behind in cycle {}'s bucket",
            self.completions[slot].len(),
            self.cycle
        );
        for &(t, b) in &self.wake_far {
            sanity!(
                t > self.cycle,
                "wake-far-future",
                "far wake for seq {} at cycle {t} is not in the future",
                b.seq
            );
        }
        for &(t, seq, _) in &self.completions_far {
            sanity!(
                t > self.cycle,
                "completion-far-future",
                "far completion for seq {seq} at cycle {t} is not in the future"
            );
        }
    }

    /// Store-queue entries are strictly age-ordered, belong to
    /// in-flight instructions, and the missing-data bookkeeping (the
    /// counter and the wake list) agrees with the entries.
    fn check_store_queue(&self) {
        let mut prev = None;
        let mut dataless = 0usize;
        for e in self.sq.iter() {
            sanity!(
                prev.is_none_or(|p| p < e.seq),
                "store-queue-age-order",
                "store queue out of age order: {prev:?} then {}",
                e.seq
            );
            prev = Some(e.seq);
            if e.data.is_none() {
                dataless += 1;
            }
            sanity!(
                self.rob_index(e.seq).is_some(),
                "store-queue-live",
                "store seq {} is queued but not in flight",
                e.seq
            );
        }
        let (counter, wake_list) = self.sq.missing_counts();
        sanity!(
            counter == dataless && wake_list == dataless,
            "store-queue-missing-data",
            "{dataless} dataless stores, but counter says {counter} and the wake list {wake_list}"
        );
    }

    /// Reference-count conservation: every rename-map entry points at a
    /// live generation with a positive count, and the total reference
    /// count equals mapped registers plus in-flight shadowed mappings.
    /// A drifting total is a leaked or double-freed register — the §2.2
    /// sharing discipline depends on exact counts.
    fn check_refcounts(&self) {
        let mut expected = 0u64;
        for (log, p) in self.map.iter() {
            let snap = self.refvec.snapshot(p.preg);
            sanity!(
                snap.gen == p.gen,
                "map-generation-live",
                "{log} maps to p{} gen {}, but the register is at gen {}",
                p.preg,
                p.gen,
                snap.gen
            );
            sanity!(
                snap.count > 0,
                "map-entry-counted",
                "{log} maps to p{}, whose reference count is zero",
                p.preg
            );
            expected += 1;
        }
        for i in 0..self.rob_len {
            if rob_entry!(self, i).dst_old.is_some() {
                expected += 1;
            }
        }
        let total = self.refvec.total_count();
        sanity!(
            total == expected,
            "refcount-conservation",
            "total reference count {total} != {expected} (mapped + in-flight shadowed)"
        );
    }
}
