//! Core and simulator configuration.
//!
//! Defaults reproduce §3.1 of the paper: a 4-way superscalar,
//! dynamically scheduled processor with a 13-stage pipeline (3 fetch,
//! 1 decode, 1 rename, 2 schedule, 2 register read, 1 execute,
//! 1 writeback, 1 DIVA, 1 retire), at most 128 instructions and 64 memory
//! operations in flight, and a 40-entry reservation-station scheduler
//! issuing up to 2 simple-integer, 2 complex/FP, 1 load and 1 store per
//! cycle. The §3.5 reduced-complexity design points (`RS`, `IW`, `IW+RS`)
//! are provided as presets.

use rix_frontend::PredictorConfig;
use rix_integration::IntegrationConfig;
use rix_isa::json::Json;
use rix_mem::MemConfig;

/// Per-cycle issue limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IssueConfig {
    /// Total instructions selected per cycle.
    pub width: usize,
    /// Simple-integer slots (ALU ops, branches, returns).
    pub simple: usize,
    /// Complex-integer / floating-point slots.
    pub complex: usize,
    /// Load-port slots.
    pub load: usize,
    /// Store-port slots.
    pub store: usize,
    /// When true, loads and stores share a single memory port (the §3.5
    /// `IW` configuration).
    pub shared_ldst: bool,
}

impl IssueConfig {
    /// The base machine: 4-way issue, 2+2+1+1 ports.
    #[must_use]
    pub fn base() -> Self {
        Self { width: 4, simple: 2, complex: 2, load: 1, store: 1, shared_ldst: false }
    }

    /// The §3.5 `IW` point: 3-way issue with a single shared load/store
    /// port.
    #[must_use]
    pub fn reduced() -> Self {
        Self { width: 3, simple: 2, complex: 2, load: 1, store: 1, shared_ldst: true }
    }
}

impl Default for IssueConfig {
    fn default() -> Self {
        Self::base()
    }
}

impl IssueConfig {
    /// The field names [`IssueConfig::apply_json`] accepts.
    pub const KEYS: &'static [&'static str] =
        &["width", "simple", "complex", "load", "store", "shared_ldst"];

    /// Serialises the issue limits as a JSON object (every field, stable
    /// key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"width":{},"simple":{},"complex":{},"load":{},"store":{},"shared_ldst":{}}}"#,
            self.width, self.simple, self.complex, self.load, self.store, self.shared_ldst
        )
    }

    /// Applies a (possibly partial) JSON object: present keys overwrite,
    /// omitted keys keep their current value, unknown keys are rejected
    /// with an error naming them.
    pub fn apply_json(&mut self, v: &Json) -> Result<(), String> {
        let Json::Obj(fields) = v else {
            return Err("issue config must be a JSON object".to_string());
        };
        for (k, val) in fields {
            match k.as_str() {
                "width" => self.width = req_usize(k, val)?,
                "simple" => self.simple = req_usize(k, val)?,
                "complex" => self.complex = req_usize(k, val)?,
                "load" => self.load = req_usize(k, val)?,
                "store" => self.store = req_usize(k, val)?,
                "shared_ldst" => {
                    self.shared_ldst = val
                        .as_bool()
                        .ok_or_else(|| format!("key `{k}` must be a boolean"))?;
                }
                other => return Err(rix_isa::json::unknown_key(other, Self::KEYS)),
            }
        }
        Ok(())
    }
}

use rix_isa::json::expect_u64 as req_u64;

fn req_usize(key: &str, v: &Json) -> Result<usize, String> {
    Ok(req_u64(key, v)? as usize)
}

/// Out-of-order core geometry and pipeline depths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions renamed per cycle.
    pub rename_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Reorder-buffer entries (max instructions in flight).
    pub rob_entries: usize,
    /// Max memory operations in flight.
    pub lsq_entries: usize,
    /// Reservation stations.
    pub rs_entries: usize,
    /// Issue ports.
    pub issue: IssueConfig,
    /// Fetch + decode depth: cycles from fetch to rename availability.
    pub front_delay: u64,
    /// Schedule depth: cycles from rename to earliest select.
    pub sched_delay: u64,
    /// Register-read depth: cycles from select to execute.
    pub regread_delay: u64,
    /// Writeback + DIVA depth: cycles from completion to retirement
    /// eligibility.
    pub diva_delay: u64,
    /// Fetch-queue (decoupling buffer) depth.
    pub fetch_queue: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            fetch_width: 4,
            rename_width: 4,
            retire_width: 4,
            rob_entries: 128,
            lsq_entries: 64,
            rs_entries: 40,
            issue: IssueConfig::base(),
            front_delay: 4,   // 3 fetch + 1 decode
            sched_delay: 2,   // 2 schedule stages
            regread_delay: 2, // 2 register-read stages
            diva_delay: 2,    // writeback + DIVA
            fetch_queue: 16,
        }
    }
}

impl CoreConfig {
    /// The §3.5 `RS` point: reservation stations halved (40 → 20).
    #[must_use]
    pub fn rs20() -> Self {
        Self { rs_entries: 20, ..Self::default() }
    }

    /// The §3.5 `IW` point: 3-way issue, single load/store port.
    #[must_use]
    pub fn iw3() -> Self {
        Self { issue: IssueConfig::reduced(), ..Self::default() }
    }

    /// The §3.5 `IW+RS` point: both reductions combined.
    #[must_use]
    pub fn iw3_rs20() -> Self {
        Self { rs_entries: 20, issue: IssueConfig::reduced(), ..Self::default() }
    }

    /// The field names [`CoreConfig::apply_json`] accepts.
    pub const KEYS: &'static [&'static str] = &[
        "fetch_width",
        "rename_width",
        "retire_width",
        "rob_entries",
        "lsq_entries",
        "rs_entries",
        "issue",
        "front_delay",
        "sched_delay",
        "regread_delay",
        "diva_delay",
        "fetch_queue",
    ];

    /// Serialises the core geometry as a JSON object (every field,
    /// stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                r#"{{"fetch_width":{},"rename_width":{},"retire_width":{},"#,
                r#""rob_entries":{},"lsq_entries":{},"rs_entries":{},"issue":{},"#,
                r#""front_delay":{},"sched_delay":{},"regread_delay":{},"#,
                r#""diva_delay":{},"fetch_queue":{}}}"#
            ),
            self.fetch_width,
            self.rename_width,
            self.retire_width,
            self.rob_entries,
            self.lsq_entries,
            self.rs_entries,
            self.issue.to_json(),
            self.front_delay,
            self.sched_delay,
            self.regread_delay,
            self.diva_delay,
            self.fetch_queue,
        )
    }

    /// Applies a (possibly partial) JSON object (the nested `issue`
    /// object may itself be partial): present keys overwrite, omitted
    /// keys keep their current value, unknown keys are rejected with an
    /// error naming them.
    pub fn apply_json(&mut self, v: &Json) -> Result<(), String> {
        let Json::Obj(fields) = v else {
            return Err("core config must be a JSON object".to_string());
        };
        for (k, val) in fields {
            match k.as_str() {
                "fetch_width" => self.fetch_width = req_usize(k, val)?,
                "rename_width" => self.rename_width = req_usize(k, val)?,
                "retire_width" => self.retire_width = req_usize(k, val)?,
                "rob_entries" => self.rob_entries = req_usize(k, val)?,
                "lsq_entries" => self.lsq_entries = req_usize(k, val)?,
                "rs_entries" => self.rs_entries = req_usize(k, val)?,
                "issue" => self.issue.apply_json(val).map_err(|e| format!("issue: {e}"))?,
                "front_delay" => self.front_delay = req_u64(k, val)?,
                "sched_delay" => self.sched_delay = req_u64(k, val)?,
                "regread_delay" => self.regread_delay = req_u64(k, val)?,
                "diva_delay" => self.diva_delay = req_u64(k, val)?,
                "fetch_queue" => self.fetch_queue = req_usize(k, val)?,
                other => return Err(rix_isa::json::unknown_key(other, Self::KEYS)),
            }
        }
        Ok(())
    }
}

/// Complete simulator configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Core geometry.
    pub core: CoreConfig,
    /// Memory hierarchy.
    pub mem: MemConfig,
    /// Integration machinery (set `enabled: false` for the baseline).
    pub integration: IntegrationConfig,
    /// Branch-predictor table sizes (paper: 8K-entry hybrid).
    pub predictor: PredictorConfig,
    /// Physical register file size (paper: 1K).
    pub num_pregs: usize,
    /// Initial stack-pointer value.
    pub stack_top: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            core: CoreConfig::default(),
            mem: MemConfig::default(),
            integration: IntegrationConfig::default(),
            predictor: PredictorConfig::default(),
            num_pregs: 1024,
            stack_top: 0x0800_0000,
        }
    }
}

impl SimConfig {
    /// The no-integration baseline processor.
    #[must_use]
    pub fn baseline() -> Self {
        Self { integration: IntegrationConfig::disabled(), ..Self::default() }
    }

    /// Replaces the integration configuration.
    #[must_use]
    pub fn with_integration(self, integration: IntegrationConfig) -> Self {
        Self { integration, ..self }
    }

    /// Replaces the core configuration.
    #[must_use]
    pub fn with_core(self, core: CoreConfig) -> Self {
        Self { core, ..self }
    }

    /// Physical register file size override (the 4K-IT point of Figure 6
    /// also uses 4K registers).
    #[must_use]
    pub fn with_pregs(self, num_pregs: usize) -> Self {
        Self { num_pregs, ..self }
    }

    /// Checks that the machine can actually be **built**: the physical
    /// register file covers the architectural registers plus the
    /// in-flight window, and every sub-config passes its own
    /// buildability check (cache geometry, predictor table sizes, IT /
    /// LISP geometry, counter widths). This is what separates a merely
    /// well-typed configuration — which the JSON layer accepts — from
    /// one [`crate::Simulator::new`] will not panic on; experiment
    /// validation calls it per arm so a bad spec fails with a named
    /// error instead of a worker-thread panic.
    pub fn validate(&self) -> Result<(), String> {
        let floor = rix_isa::reg::NUM_LOG_REGS + self.core.rob_entries + 8;
        if self.num_pregs < floor {
            return Err(format!(
                "num_pregs = {} cannot cover the {} architectural registers plus the \
                 {}-entry window (needs at least {floor})",
                self.num_pregs,
                rix_isa::reg::NUM_LOG_REGS,
                self.core.rob_entries
            ));
        }
        self.mem.validate().map_err(|e| format!("mem: {e}"))?;
        self.integration.validate().map_err(|e| format!("integration: {e}"))?;
        self.predictor.validate().map_err(|e| format!("predictor: {e}"))?;
        Ok(())
    }

    // ----- JSON round trip ----------------------------------------------

    /// The field names [`SimConfig::apply_json`] accepts.
    pub const KEYS: &'static [&'static str] =
        &["core", "mem", "integration", "predictor", "num_pregs", "stack_top"];

    /// Serialises the complete configuration as a JSON object. The
    /// serialisation is **exact**: [`SimConfig::from_json`] of the output
    /// equals the input, field for field, for any configuration.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"core":{},"mem":{},"integration":{},"predictor":{},"num_pregs":{},"stack_top":{}}}"#,
            self.core.to_json(),
            self.mem.to_json(),
            self.integration.to_json(),
            self.predictor.to_json(),
            self.num_pregs,
            self.stack_top,
        )
    }

    /// Applies a (possibly partial) JSON object onto this configuration:
    /// present keys overwrite (nested objects may themselves be
    /// partial), omitted keys keep their current value, unknown keys are
    /// rejected with an error naming them and their position.
    pub fn apply_json(&mut self, v: &Json) -> Result<(), String> {
        let Json::Obj(fields) = v else {
            return Err("simulator config must be a JSON object".to_string());
        };
        for (k, val) in fields {
            let nest = |e: String| format!("{k}: {e}");
            match k.as_str() {
                "core" => self.core.apply_json(val).map_err(nest)?,
                "mem" => self.mem.apply_json(val).map_err(nest)?,
                "integration" => self.integration.apply_json(val).map_err(nest)?,
                "predictor" => self.predictor.apply_json(val).map_err(nest)?,
                "num_pregs" => self.num_pregs = req_usize(k, val)?,
                "stack_top" => self.stack_top = req_u64(k, val)?,
                other => return Err(rix_isa::json::unknown_key(other, Self::KEYS)),
            }
        }
        Ok(())
    }

    /// Parses a configuration from JSON text: [`SimConfig::default`]
    /// plus the document's (possibly partial) overrides. `{}` is the
    /// default machine; unknown keys anywhere are rejected.
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// As [`SimConfig::from_json`], over an already-parsed [`Json`].
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let mut cfg = Self::default();
        cfg.apply_json(v)?;
        Ok(cfg)
    }

    // ----- named presets ------------------------------------------------

    /// Every named preset: `(name, what it is)`. Resolve one with
    /// [`SimConfig::preset`].
    pub const PRESET_NAMES: &'static [(&'static str, &'static str)] = &[
        ("base", "the no-integration baseline machine (§3.1)"),
        ("default", "the headline machine: +general +opcode +reverse, realistic LISP"),
        ("plus_reverse", "alias of `default` (the fourth Figure 4 arm)"),
        ("squash_reuse", "integration arm 1: PC-indexed squash reuse only"),
        ("plus_general", "integration arm 2: + general reuse via reference counting"),
        ("plus_opcode", "integration arm 3: + opcode/immediate/call-depth indexing"),
        ("oracle", "the headline machine with oracle mis-integration suppression"),
        ("rs20", "the §3.5 `RS` point: 20 reservation stations, no integration"),
        ("iw3", "the §3.5 `IW` point: 3-way issue, shared load/store port, no integration"),
        ("iw3_rs20", "the §3.5 `IW+RS` point: both reductions, no integration"),
    ];

    /// Resolves a named preset — every design point of the paper's
    /// evaluation is reachable by string. Unknown names produce an error
    /// naming the closest preset and listing all of them.
    pub fn preset(name: &str) -> Result<Self, String> {
        Ok(match name {
            "base" => Self::baseline(),
            "default" | "plus_reverse" => Self::default(),
            "squash_reuse" => {
                Self::default().with_integration(IntegrationConfig::squash_reuse())
            }
            "plus_general" => {
                Self::default().with_integration(IntegrationConfig::plus_general())
            }
            "plus_opcode" => Self::default().with_integration(IntegrationConfig::plus_opcode()),
            "oracle" => Self::default().with_integration(IntegrationConfig::default().with_oracle()),
            "rs20" => Self::baseline().with_core(CoreConfig::rs20()),
            "iw3" => Self::baseline().with_core(CoreConfig::iw3()),
            "iw3_rs20" => Self::baseline().with_core(CoreConfig::iw3_rs20()),
            other => {
                let names: Vec<&str> = Self::PRESET_NAMES.iter().map(|(n, _)| *n).collect();
                let closest = names
                    .iter()
                    .min_by_key(|n| rix_isa::json::edit_distance(other, n))
                    .expect("preset list is non-empty");
                return Err(format!(
                    "unknown preset `{other}` (did you mean `{closest}`?); known presets: {}",
                    names.join(", ")
                ));
            }
        })
    }

    // ----- field paths --------------------------------------------------

    /// Every leaf field of the configuration tree as a dotted path
    /// (`"integration.it_entries"`, `"core.issue.width"`, …) — the
    /// address space parameter axes sweep over.
    pub const FIELD_PATHS: &'static [&'static str] = &[
        "core.fetch_width",
        "core.rename_width",
        "core.retire_width",
        "core.rob_entries",
        "core.lsq_entries",
        "core.rs_entries",
        "core.issue.width",
        "core.issue.simple",
        "core.issue.complex",
        "core.issue.load",
        "core.issue.store",
        "core.issue.shared_ldst",
        "core.front_delay",
        "core.sched_delay",
        "core.regread_delay",
        "core.diva_delay",
        "core.fetch_queue",
        "mem.l1i.size_bytes",
        "mem.l1i.line_bytes",
        "mem.l1i.ways",
        "mem.l1i.hit_latency",
        "mem.l1d.size_bytes",
        "mem.l1d.line_bytes",
        "mem.l1d.ways",
        "mem.l1d.hit_latency",
        "mem.l2.size_bytes",
        "mem.l2.line_bytes",
        "mem.l2.ways",
        "mem.l2.hit_latency",
        "mem.mem_latency",
        "mem.mshrs",
        "mem.write_buffer",
        "integration.enabled",
        "integration.general_reuse",
        "integration.index",
        "integration.reverse",
        "integration.suppression",
        "integration.it_entries",
        "integration.it_ways",
        "integration.gen_bits",
        "integration.count_bits",
        "integration.lisp_entries",
        "integration.lisp_ways",
        "integration.pipeline_depth",
        "predictor.bimodal_entries",
        "predictor.gshare_entries",
        "predictor.chooser_entries",
        "predictor.history_bits",
        "num_pregs",
        "stack_top",
    ];

    /// Resolves a field path: a full dotted path resolves to itself, a
    /// bare leaf name (`"it_entries"`) resolves when it is unambiguous.
    /// Unknown or ambiguous names produce an error naming the
    /// candidates.
    pub fn resolve_path(path: &str) -> Result<&'static str, String> {
        if let Some(full) = Self::FIELD_PATHS.iter().find(|p| **p == path) {
            return Ok(full);
        }
        let suffix = format!(".{path}");
        let matches: Vec<&'static str> = Self::FIELD_PATHS
            .iter()
            .copied()
            .filter(|p| p.ends_with(&suffix))
            .collect();
        match matches[..] {
            [full] => Ok(full),
            [] => {
                let closest = Self::FIELD_PATHS
                    .iter()
                    .min_by_key(|p| {
                        rix_isa::json::edit_distance(
                            path,
                            p.rsplit('.').next().expect("paths are non-empty"),
                        )
                    })
                    .expect("path list is non-empty");
                Err(format!(
                    "unknown config field `{path}` (did you mean `{closest}`?); \
                     see SimConfig::FIELD_PATHS for the full list"
                ))
            }
            _ => Err(format!(
                "ambiguous config field `{path}`: matches {}; use a full dotted path",
                matches.join(", ")
            )),
        }
    }

    /// Sets one leaf field by path (full dotted path, or an unambiguous
    /// leaf name). The value goes through the same typed parsing as
    /// [`SimConfig::apply_json`], so type mismatches and enum typos are
    /// rejected with the same messages.
    pub fn set_path(&mut self, path: &str, value: &Json) -> Result<(), String> {
        let full = Self::resolve_path(path)?;
        let mut wrapped = value.clone();
        for seg in full.rsplit('.') {
            wrapped = Json::Obj(vec![(seg.to_string(), wrapped)]);
        }
        self.apply_json(&wrapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = CoreConfig::default();
        assert_eq!(c.rename_width, 4);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.lsq_entries, 64);
        assert_eq!(c.rs_entries, 40);
        assert_eq!(c.issue.width, 4);
        // 3 fetch + 1 decode + 1 rename + 2 sched + 2 read + 1 exec
        // + 1 WB + 1 DIVA + 1 retire = 13 stages.
        assert_eq!(c.front_delay + 1 + c.sched_delay + c.regread_delay + 1 + c.diva_delay + 1, 13);
    }

    #[test]
    fn fig7_presets() {
        assert_eq!(CoreConfig::rs20().rs_entries, 20);
        assert_eq!(CoreConfig::iw3().issue.width, 3);
        assert!(CoreConfig::iw3().issue.shared_ldst);
        let both = CoreConfig::iw3_rs20();
        assert_eq!(both.rs_entries, 20);
        assert_eq!(both.issue.width, 3);
    }

    #[test]
    fn baseline_disables_integration() {
        assert!(!SimConfig::baseline().integration.enabled);
        assert!(SimConfig::default().integration.enabled);
    }

    #[test]
    fn builders() {
        let c = SimConfig::default().with_pregs(4096).with_core(CoreConfig::rs20());
        assert_eq!(c.num_pregs, 4096);
        assert_eq!(c.core.rs_entries, 20);
    }

    #[test]
    fn json_round_trip_is_exact_for_every_preset() {
        for (name, _) in SimConfig::PRESET_NAMES {
            let cfg = SimConfig::preset(name).expect("listed preset resolves");
            let back = SimConfig::from_json(&cfg.to_json()).expect("parses");
            assert_eq!(back, cfg, "preset `{name}` round-trips");
            assert_eq!(back.to_json(), cfg.to_json(), "`{name}` serialisation is stable");
        }
    }

    #[test]
    fn from_json_defaults_omitted_fields() {
        assert_eq!(SimConfig::from_json("{}").unwrap(), SimConfig::default());
        let c = SimConfig::from_json(r#"{"integration":{"it_entries":64,"it_ways":64}}"#)
            .unwrap();
        assert_eq!(c.integration.it_entries, 64);
        assert_eq!(c.core, CoreConfig::default(), "untouched subtree keeps defaults");
        assert_eq!(c.num_pregs, 1024);
    }

    #[test]
    fn from_json_rejects_unknown_keys_naming_them() {
        let err = SimConfig::from_json(r#"{"corez":{}}"#).unwrap_err();
        assert!(err.contains("unknown key `corez`"), "{err}");
        assert!(err.contains("did you mean `core`?"), "{err}");
        let err = SimConfig::from_json(r#"{"integration":{"generel_reuse":true}}"#).unwrap_err();
        assert!(err.contains("integration: unknown key `generel_reuse`"), "{err}");
        assert!(err.contains("general_reuse"), "{err}");
        let err = SimConfig::from_json(r#"{"mem":{"l1d":{"wayz":4}}}"#).unwrap_err();
        assert!(err.contains("l1d: unknown key `wayz`"), "{err}");
        let err =
            SimConfig::from_json(r#"{"integration":{"suppression":"orakle"}}"#).unwrap_err();
        assert!(err.contains("orakle") && err.contains("oracle"), "{err}");
    }

    #[test]
    fn presets_resolve_by_string() {
        assert_eq!(SimConfig::preset("base").unwrap(), SimConfig::baseline());
        assert_eq!(SimConfig::preset("plus_reverse").unwrap(), SimConfig::default());
        assert_eq!(
            SimConfig::preset("iw3_rs20").unwrap(),
            SimConfig::baseline().with_core(CoreConfig::iw3_rs20())
        );
        assert_eq!(
            SimConfig::preset("oracle").unwrap().integration.suppression,
            rix_integration::Suppression::Oracle
        );
        let err = SimConfig::preset("iw3_rs21").unwrap_err();
        assert!(err.contains("unknown preset `iw3_rs21`"), "{err}");
        assert!(err.contains("did you mean `iw3_rs20`?"), "{err}");
        assert!(err.contains("plus_reverse"), "lists all presets: {err}");
    }

    #[test]
    fn set_path_resolves_leaf_names() {
        let mut c = SimConfig::default();
        c.set_path("it_entries", &Json::Num("256".into())).unwrap();
        assert_eq!(c.integration.it_entries, 256);
        c.set_path("core.issue.width", &Json::Num("3".into())).unwrap();
        assert_eq!(c.core.issue.width, 3);
        c.set_path("suppression", &Json::Str("oracle".into())).unwrap();
        assert_eq!(c.integration.suppression, rix_integration::Suppression::Oracle);

        // `ways` appears under every cache level and the IT: ambiguous.
        let err = c.set_path("ways", &Json::Num("1".into())).unwrap_err();
        assert!(err.contains("ambiguous"), "{err}");
        assert!(err.contains("mem.l1d.ways"), "{err}");
        let err = c.set_path("it_entrees", &Json::Num("1".into())).unwrap_err();
        assert!(err.contains("unknown config field `it_entrees`"), "{err}");
        assert!(err.contains("it_entries"), "{err}");
        // Type mismatches surface the apply_json message.
        let err = c.set_path("it_entries", &Json::Str("many".into())).unwrap_err();
        assert!(err.contains("unsigned integer"), "{err}");
    }

    #[test]
    fn field_paths_cover_every_serialised_leaf() {
        // Every FIELD_PATHS entry must be settable, and the number of
        // leaves must match what to_json emits (guards against a new
        // config field missing from the path list).
        let mut c = SimConfig::default();
        for path in SimConfig::FIELD_PATHS {
            let leaf = path.rsplit('.').next().unwrap();
            let probe = match leaf {
                "shared_ldst" | "enabled" | "general_reuse" => Json::Bool(true),
                "index" => Json::Str("pc".into()),
                "reverse" => Json::Str("off".into()),
                "suppression" => Json::Str("oracle".into()),
                _ => Json::Num("2".into()),
            };
            c.set_path(path, &probe).unwrap_or_else(|e| panic!("{path}: {e}"));
        }
        let leaves = SimConfig::default().to_json().matches(':').count()
            - SimConfig::default().to_json().matches(r#"":{""#).count();
        assert_eq!(
            SimConfig::FIELD_PATHS.len(),
            leaves,
            "FIELD_PATHS and to_json disagree on the number of leaf fields"
        );
    }
}
