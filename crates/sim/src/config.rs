//! Core and simulator configuration.
//!
//! Defaults reproduce §3.1 of the paper: a 4-way superscalar,
//! dynamically scheduled processor with a 13-stage pipeline (3 fetch,
//! 1 decode, 1 rename, 2 schedule, 2 register read, 1 execute,
//! 1 writeback, 1 DIVA, 1 retire), at most 128 instructions and 64 memory
//! operations in flight, and a 40-entry reservation-station scheduler
//! issuing up to 2 simple-integer, 2 complex/FP, 1 load and 1 store per
//! cycle. The §3.5 reduced-complexity design points (`RS`, `IW`, `IW+RS`)
//! are provided as presets.

use rix_integration::IntegrationConfig;
use rix_mem::MemConfig;

/// Per-cycle issue limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IssueConfig {
    /// Total instructions selected per cycle.
    pub width: usize,
    /// Simple-integer slots (ALU ops, branches, returns).
    pub simple: usize,
    /// Complex-integer / floating-point slots.
    pub complex: usize,
    /// Load-port slots.
    pub load: usize,
    /// Store-port slots.
    pub store: usize,
    /// When true, loads and stores share a single memory port (the §3.5
    /// `IW` configuration).
    pub shared_ldst: bool,
}

impl IssueConfig {
    /// The base machine: 4-way issue, 2+2+1+1 ports.
    #[must_use]
    pub fn base() -> Self {
        Self { width: 4, simple: 2, complex: 2, load: 1, store: 1, shared_ldst: false }
    }

    /// The §3.5 `IW` point: 3-way issue with a single shared load/store
    /// port.
    #[must_use]
    pub fn reduced() -> Self {
        Self { width: 3, simple: 2, complex: 2, load: 1, store: 1, shared_ldst: true }
    }
}

impl Default for IssueConfig {
    fn default() -> Self {
        Self::base()
    }
}

/// Out-of-order core geometry and pipeline depths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions renamed per cycle.
    pub rename_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Reorder-buffer entries (max instructions in flight).
    pub rob_entries: usize,
    /// Max memory operations in flight.
    pub lsq_entries: usize,
    /// Reservation stations.
    pub rs_entries: usize,
    /// Issue ports.
    pub issue: IssueConfig,
    /// Fetch + decode depth: cycles from fetch to rename availability.
    pub front_delay: u64,
    /// Schedule depth: cycles from rename to earliest select.
    pub sched_delay: u64,
    /// Register-read depth: cycles from select to execute.
    pub regread_delay: u64,
    /// Writeback + DIVA depth: cycles from completion to retirement
    /// eligibility.
    pub diva_delay: u64,
    /// Fetch-queue (decoupling buffer) depth.
    pub fetch_queue: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            fetch_width: 4,
            rename_width: 4,
            retire_width: 4,
            rob_entries: 128,
            lsq_entries: 64,
            rs_entries: 40,
            issue: IssueConfig::base(),
            front_delay: 4,   // 3 fetch + 1 decode
            sched_delay: 2,   // 2 schedule stages
            regread_delay: 2, // 2 register-read stages
            diva_delay: 2,    // writeback + DIVA
            fetch_queue: 16,
        }
    }
}

impl CoreConfig {
    /// The §3.5 `RS` point: reservation stations halved (40 → 20).
    #[must_use]
    pub fn rs20() -> Self {
        Self { rs_entries: 20, ..Self::default() }
    }

    /// The §3.5 `IW` point: 3-way issue, single load/store port.
    #[must_use]
    pub fn iw3() -> Self {
        Self { issue: IssueConfig::reduced(), ..Self::default() }
    }

    /// The §3.5 `IW+RS` point: both reductions combined.
    #[must_use]
    pub fn iw3_rs20() -> Self {
        Self { rs_entries: 20, issue: IssueConfig::reduced(), ..Self::default() }
    }
}

/// Complete simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Core geometry.
    pub core: CoreConfig,
    /// Memory hierarchy.
    pub mem: MemConfig,
    /// Integration machinery (set `enabled: false` for the baseline).
    pub integration: IntegrationConfig,
    /// Physical register file size (paper: 1K).
    pub num_pregs: usize,
    /// Initial stack-pointer value.
    pub stack_top: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            core: CoreConfig::default(),
            mem: MemConfig::default(),
            integration: IntegrationConfig::default(),
            num_pregs: 1024,
            stack_top: 0x0800_0000,
        }
    }
}

impl SimConfig {
    /// The no-integration baseline processor.
    #[must_use]
    pub fn baseline() -> Self {
        Self { integration: IntegrationConfig::disabled(), ..Self::default() }
    }

    /// Replaces the integration configuration.
    #[must_use]
    pub fn with_integration(self, integration: IntegrationConfig) -> Self {
        Self { integration, ..self }
    }

    /// Replaces the core configuration.
    #[must_use]
    pub fn with_core(self, core: CoreConfig) -> Self {
        Self { core, ..self }
    }

    /// Physical register file size override (the 4K-IT point of Figure 6
    /// also uses 4K registers).
    #[must_use]
    pub fn with_pregs(self, num_pregs: usize) -> Self {
        Self { num_pregs, ..self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = CoreConfig::default();
        assert_eq!(c.rename_width, 4);
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.lsq_entries, 64);
        assert_eq!(c.rs_entries, 40);
        assert_eq!(c.issue.width, 4);
        // 3 fetch + 1 decode + 1 rename + 2 sched + 2 read + 1 exec
        // + 1 WB + 1 DIVA + 1 retire = 13 stages.
        assert_eq!(c.front_delay + 1 + c.sched_delay + c.regread_delay + 1 + c.diva_delay + 1, 13);
    }

    #[test]
    fn fig7_presets() {
        assert_eq!(CoreConfig::rs20().rs_entries, 20);
        assert_eq!(CoreConfig::iw3().issue.width, 3);
        assert!(CoreConfig::iw3().issue.shared_ldst);
        let both = CoreConfig::iw3_rs20();
        assert_eq!(both.rs_entries, 20);
        assert_eq!(both.issue.width, 3);
    }

    #[test]
    fn baseline_disables_integration() {
        assert!(!SimConfig::baseline().integration.enabled);
        assert!(SimConfig::default().integration.enabled);
    }

    #[test]
    fn builders() {
        let c = SimConfig::default().with_pregs(4096).with_core(CoreConfig::rs20());
        assert_eq!(c.num_pregs, 4096);
        assert_eq!(c.core.rs_entries, 20);
    }
}
