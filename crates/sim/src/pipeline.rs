//! The out-of-order pipeline with register integration.
//!
//! [`Simulator`] models the paper's 13-stage, 4-way machine as five
//! per-cycle steps processed oldest-first (retire/DIVA → complete →
//! issue → rename/integrate → fetch). Wrong-path instructions are
//! *really fetched and executed* — fetch follows the predicted stream
//! through program memory — which is what makes squash reuse observable,
//! and physical registers hold real values, so a mis-integration
//! propagates a genuinely wrong value until the DIVA checker catches it
//! at retirement and flushes.
//!
//! Timing model in brief:
//!
//! * fetch→rename takes `front_delay` (3 fetch + 1 decode) cycles; one
//!   fetch group per I-cache line per cycle; taken branches end the group
//!   (plus a decode bubble on a BTB miss),
//! * rename→issue takes at least `sched_delay` cycles; operands arrive
//!   through the bypass network, so a dependent may be *selected* once its
//!   producer's result is within `regread_delay` cycles of arriving,
//! * issue→result takes `regread_delay` + execution latency (loads add
//!   1 AGEN cycle plus cache/forwarding latency),
//! * completion→retirement takes `diva_delay` (writeback + DIVA) cycles,
//! * squash recovery is monolithic: fetch restarts at the redirect the
//!   cycle after next (§3.1: recovery modelled as occurring in one cycle).
//!
//! Integrating instructions bypass scheduling, register read and execute
//! entirely: a value integration completes as soon as the shared physical
//! register is ready; a branch integration resolves *at rename*.

use crate::checkpoint::Checkpoint;
use crate::config::SimConfig;
use crate::lsq::{Cht, StoreQueue};
use crate::session::{StopReason, StopWhen};
use crate::stats::{RunResult, SimStats};
use rix_isa::ArchState;
use rix_frontend::{FrontEnd, SpecCheckpoint};
use rix_integration::{
    IntegrationKind, It, ItEntry, ItKey, ItOutput, Lisp, MapTable, PregRef, RefVector,
    Suppression,
};
use rix_integration::{IntegrationEvent, IntegrationType, ResultStatus};
use rix_isa::{semantics, ExecClass, InstAddr, Instr, Opcode, Operand, Program};
use rix_mem::{Cycle, DataStore, MemSystem};
use std::collections::VecDeque;

const NO_CYCLE: Cycle = u64::MAX;

/// Place expression for the ROB entry at logical index `$idx`: a flat
/// ring-slot access (`abs & mask`), with a field-level borrow of
/// `rob_slots` only, so other simulator fields stay independently
/// borrowable around it.
macro_rules! rob_entry {
    ($s:expr, $idx:expr) => {
        $s.rob_slots[(($s.rob_base as usize).wrapping_add($idx)) & $s.rob_mask]
    };
}

/// Place expression for the checkpoint pair at logical index `$idx`.
macro_rules! rob_pred_at {
    ($s:expr, $idx:expr) => {
        $s.rob_preds[(($s.rob_base as usize).wrapping_add($idx)) & $s.rob_mask]
    };
}

/// Place expression for the seq mirror at logical index `$idx`.
macro_rules! rob_seq_at {
    ($s:expr, $idx:expr) => {
        $s.rob_seqs[(($s.rob_base as usize).wrapping_add($idx)) & $s.rob_mask]
    };
}

/// Cycles without a retirement after which the machine is considered
/// deadlocked. The longest legitimate retirement gap (write-buffer
/// stall on top of serialized cold misses) is a few thousand cycles.
const DEADLOCK_WINDOW: Cycle = 100_000;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Waiting in a reservation station.
    WaitRs,
    /// Integrated; waiting for the shared register to become ready.
    WaitInt,
    /// Selected for execution; result arrives at `done_at`.
    Issued,
    /// Completed; eligible for DIVA + retirement.
    Done,
}

/// Completion calendar size in cycles (power of two). Large enough that
/// even a fully-queued memory system schedules completions in range;
/// further events wait in the overflow list.
const COMPLETION_RING: usize = 4096;

/// A parked operand-blocked instruction: everything a wakeup needs, so
/// waking never touches the `DynInst`.
#[derive(Clone, Copy, Debug)]
struct Blocked {
    seq: u64,
    /// Absolute ROB position (see [`Simulator::rob_base`]).
    abs: u64,
    /// The other operand still to check on wake (`u16::MAX` = none —
    /// already ready, which is monotone, or not required).
    other: u16,
    /// Precomputed scheduling rank (meaningless for loads).
    rank: u8,
    /// Precomputed port class (meaningless for loads).
    pclass: u8,
    /// Loads re-enter the poll list instead of the ready set.
    is_load: bool,
}

const NO_OTHER: u16 = u16::MAX;

/// Issue-port classes for ready-set entries (indices into the per-cycle
/// port-counter array).
const PORT_SIMPLE: u8 = 0;
const PORT_COMPLEX: u8 = 1;
const PORT_LOAD: u8 = 2;
const PORT_STORE: u8 = 3;

/// Outcome of the per-entry issue-readiness evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Readiness {
    /// May be selected this cycle.
    Ready,
    /// Blocked on this physical register; cannot issue until it is
    /// ready, so the evaluation can be skipped until then.
    WaitSrc(u16),
    /// A load blocked on store-queue/CHT state: the verdict can only
    /// change when that state changes, so it is cacheable against the
    /// scheduler generation counter.
    StallQueue,
    /// A load blocked on bypass timing (its base arrives exactly at
    /// execute): resolves by the passage of cycles, so it must be
    /// re-evaluated every cycle.
    StallTransient,
}

#[derive(Clone, Copy, Debug)]
struct Integrated {
    entry: ItEntry,
    event: IntegrationEvent,
    key: ItKey,
}

#[derive(Clone, Debug)]
struct DynInst {
    seq: u64,
    pc: InstAddr,
    instr: Instr,
    /// `instr.exec_class()`, computed once at rename — several per-stage
    /// paths dispatch on it.
    class: ExecClass,
    /// Predicted direction/target and fetch-time call depth (the bulky
    /// predictor checkpoints live in the parallel `rob_preds` ring).
    pred_taken: bool,
    pred_next_pc: InstAddr,
    call_depth: u16,
    fetch_cycle: Cycle,
    state: State,
    dst_log: Option<rix_isa::LogReg>,
    dst_new: Option<PregRef>,
    dst_old: Option<PregRef>,
    /// `[src1, src2]` as renamed; for stores only `srcs[0]` (the base)
    /// gates address generation.
    srcs: [Option<PregRef>; 2],
    /// Whether this instruction integrated; the bulky metadata (entry,
    /// key, event) lives in `Simulator::integrated_meta`, keyed by seq,
    /// keeping this struct — and therefore the ROB — small. The IT key
    /// is not stored at all: it is recomputed from `pc`/`instr`/`pred`/
    /// `srcs` where needed, which reproduces the rename-time key
    /// exactly.
    integrated: bool,
    holds_rs: bool,
    holds_lsq: bool,
    agen_at: Cycle,
    done_at: Cycle,
    /// Effective address once generated (`None` = not yet; a wrong-path
    /// address can be any bit pattern, so no sentinel is safe).
    eff_addr: Option<u64>,
    /// Seq of the forwarding store (`u64::MAX` = none/from memory —
    /// sequence numbers never reach the sentinel).
    forward_seq: u64,
    outcome: Option<bool>,
    /// Resolved indirect-jump target (`None` = not yet; a wrong-path
    /// target can be any bit pattern).
    actual_target: Option<InstAddr>,
    resolved_misp: bool,
}

/// A fetched (pre-rename) instruction. Slim: the bulky predictor
/// checkpoints travel in the parallel `fq_ckpts` ring.
#[derive(Clone, Copy, Debug)]
struct Fetched {
    pc: InstAddr,
    instr: Instr,
    taken: bool,
    next_pc: InstAddr,
    call_depth: u16,
    fetch_cycle: Cycle,
    ready_at: Cycle,
}

#[derive(Clone, Copy, Debug)]
struct SquashReq {
    /// Squash every instruction with `seq > after_seq`.
    after_seq: u64,
    redirect: InstAddr,
    checkpoint: SpecCheckpoint,
    corrected: Option<bool>,
}

#[derive(Clone, Copy, Debug)]
struct ViolationEvent {
    fire_at: Cycle,
    load_seq: u64,
    store_seq: u64,
}

#[derive(Clone, Copy, Debug)]
struct RenameMemEntry {
    seq: u64,
    word_addr: u64,
    word: u64,
}

struct PhysFile {
    val: Vec<u64>,
    ready_at: Vec<Cycle>,
    producer_seq: Vec<u64>,
    /// Absolute ROB position of the producer (see `Simulator::rob_base`)
    /// — lets the integration test locate it in O(1).
    producer_abs: Vec<u64>,
}

impl PhysFile {
    fn new(n: usize) -> Self {
        Self {
            val: vec![0; n],
            ready_at: vec![NO_CYCLE; n],
            producer_seq: vec![0; n],
            producer_abs: vec![0; n],
        }
    }
}

/// The cycle-level simulator.
///
/// ```
/// use rix_sim::{SimConfig, Simulator};
/// use rix_isa::{Asm, reg};
///
/// let mut a = Asm::new();
/// a.addq_i(reg::R1, reg::ZERO, 10);
/// a.label("loop");
/// a.subq_i(reg::R1, reg::R1, 1);
/// a.bne(reg::R1, "loop");
/// a.halt();
/// let p = a.assemble()?;
/// let result = Simulator::new(&p, SimConfig::default()).run(100);
/// assert!(result.halted);
/// assert_eq!(result.stats.retired, 22); // 1 init + 10×(subq,bne) + halt
/// # Ok::<(), rix_isa::AsmError>(())
/// ```
pub struct Simulator<'p> {
    program: &'p Program,
    cfg: SimConfig,
    cycle: Cycle,
    /// Cycle of the last `reset_stats` (statistics count from here).
    cycle_base: Cycle,
    /// Last cycle on which an instruction retired (deadlock detection).
    last_retire_cycle: Cycle,
    /// Memory-system counters at the last `reset_stats`.
    mem_base: rix_mem::MemSystemStats,
    /// Memory-system counters carried in from a restored checkpoint
    /// (the fresh `MemSystem` starts at zero, so the pre-checkpoint
    /// accumulation is added back into every delta).
    mem_carry: rix_mem::MemSystemStats,
    /// Instructions retired since **program entry** — the architectural
    /// position, unaffected by [`Simulator::reset_stats`] and carried
    /// across checkpoint restores (unlike `stats.retired`).
    retired_total: u64,
    seq_next: u64,
    // Front end.
    frontend: FrontEnd,
    fetch_pc: InstAddr,
    // Fetch queue as a power-of-two ring (head is an absolute counter),
    // with the predictor checkpoints in a parallel ring.
    fq_slots: Vec<Fetched>,
    fq_ckpts: Vec<(SpecCheckpoint, SpecCheckpoint)>,
    fq_mask: usize,
    fq_head: usize,
    fq_len: usize,
    fetch_blocked: bool,
    fetch_resume_at: Cycle,
    cur_line: Option<u64>,
    line_avail: Cycle,
    // Rename + integration.
    map: MapTable,
    refvec: RefVector,
    it: It,
    lisp: Lisp,
    phys: PhysFile,
    /// Whether the golden value shadow (and its rename-time memory
    /// overlay) must be maintained: only oracle suppression reads it,
    /// so every other configuration skips the bookkeeping entirely.
    needs_golden: bool,
    golden: Vec<u64>,
    /// Rename-time golden-memory overlay, one entry per in-flight
    /// store, in sequence order (so retirement pops the front and a
    /// squash truncates the back — no scans).
    rename_mem: VecDeque<RenameMemEntry>,
    // Windows. The ROB is a power-of-two ring: the entry at logical
    // index `i` lives in slot `(rob_base + i) & rob_mask`, so every
    // access is one flat array index (no deque wrap machinery), and an
    // entry's slot never moves for its whole lifetime.
    /// Ring storage; grows once to capacity, then slots are reused.
    rob_slots: Vec<DynInst>,
    /// Ring mirror of each entry's `seq` (immutable per entry), so the
    /// frequent seq→index searches stay off the structs.
    rob_seqs: Vec<u64>,
    /// Ring of predictor checkpoints (pre, post) parallel to
    /// `rob_slots` — off the hot `DynInst`, touched only at recovery
    /// and branch retirement.
    rob_preds: Vec<(SpecCheckpoint, SpecCheckpoint)>,
    /// Ring capacity − 1 (capacity ≥ `rob_entries`, power of two).
    rob_mask: usize,
    /// Number of in-flight entries.
    rob_len: usize,
    /// Total ROB front-pops so far. `rob_base + idx` is an entry's
    /// *absolute position* — stable for its whole lifetime (retirement
    /// pops shift indices, but never reorder; squashes pop the back) —
    /// so scheduler lists can carry it and relocate entries in O(1)
    /// instead of a binary search.
    rob_base: u64,
    // Event-driven scheduler state. The steady-state cycle loop never
    // sweeps the ROB: every waiting instruction lives in exactly one of
    // these side structures, keyed by sequence number (never an index —
    // indices shift at retirement), and moves between them on the event
    // that changes its readiness.
    /// Known-ready non-load candidates as (key, payload), sorted
    /// ascending by key = `rank << 62 | seq` — the §3.1 selection order
    /// in one u64 compare; payload = `abs << 2 | port class`. Non-load
    /// readiness is monotone, so entries stay until selected/squashed.
    ready_set: Vec<(u64, u64)>,
    /// Operand-blocked instructions parked per producing register:
    /// `preg_waiters[p]` holds the consumers waiting for `p`'s value to
    /// be scheduled. The producer's execute moves them into the wake
    /// calendar — the steady state never scans blocked instructions at
    /// all. Squashed entries are skipped lazily at wake.
    preg_waiters: Vec<Vec<Blocked>>,
    /// Wake calendar: bucket `t & (COMPLETION_RING - 1)` holds the
    /// consumers whose blocking operand becomes consumable at cycle
    /// `t`; one bucket drains per cycle.
    wake_ring: Vec<Vec<Blocked>>,
    /// Wakes scheduled ≥ a ring period ahead; almost always empty.
    wake_far: Vec<(Cycle, Blocked)>,
    /// Operand-unblocked loads as (seq, abs, cached generation, cached
    /// verdict): their readiness also hangs on store-queue state, which
    /// can regress (a conflicting older store address can resolve
    /// later), so they are re-polled — but only when the scheduler
    /// generation has moved since the cached verdict. Sorted by seq.
    wait_loads: Vec<(u64, u64, u64, bool)>,
    /// Calendar queue of completion events: bucket `t & (RING - 1)`
    /// holds the (seq, abs) pairs due at cycle `t` (completion times
    /// land within `COMPLETION_RING` cycles; anything further sits in
    /// `completions_far` until it comes into range). Each cycle drains
    /// exactly one bucket, sorted by seq — the same oldest-first order
    /// the old full-ROB completion sweep processed entries in. Squashed
    /// entries are removed lazily at drain (seqs are never reused).
    completions: Vec<Vec<(u64, u64)>>,
    /// Overflow for completion events scheduled ≥ `COMPLETION_RING`
    /// cycles ahead (pathological bus queueing); almost always empty.
    completions_far: Vec<(Cycle, u64, u64)>,
    /// Issued stores whose data register has no scheduled ready time
    /// yet, as (seq, abs); they learn `done_at` the cycle the producer
    /// schedules it.
    pending_store_data: Vec<(u64, u64)>,
    /// Value integrations waiting for the shared register, as (seq, abs).
    pending_int: Vec<(u64, u64)>,
    /// Integration metadata (entry, key, event) for in-flight integrated
    /// instructions, in seq order: retirement pops the front, a squash
    /// truncates the back — the same discipline as the ROB itself.
    integrated_meta: VecDeque<(u64, Integrated)>,
    rs_used: usize,
    lsq_used: usize,
    sq: StoreQueue,
    cht: Cht,
    /// Pending memory-order violation events, in firing order (`fire_at`
    /// is nondecreasing across pushes because every event fires a fixed
    /// delay after its issue cycle), drained by front-pop.
    events: VecDeque<ViolationEvent>,
    // Per-cycle scratch buffers, hoisted so the steady-state cycle loop
    // allocates nothing (the capacity is reused forever).
    scratch_loads: Vec<(u64, usize)>,
    scratch_due: Vec<ViolationEvent>,
    scratch_comp: Vec<(u64, u64)>,
    scratch_wakes: Vec<Blocked>,
    // Architectural state.
    arch_regs: [u64; rix_isa::reg::NUM_LOG_REGS],
    arch_next_pc: InstAddr,
    arch_mem: DataStore,
    mem: MemSystem,
    // Outcome.
    stats: SimStats,
    halted: bool,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator over `program` with the given configuration,
    /// at the program's initial architectural state.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_pregs` cannot cover the architectural registers
    /// plus the in-flight window.
    #[must_use]
    pub fn new(program: &'p Program, cfg: SimConfig) -> Self {
        let mut regs = [0u64; rix_isa::reg::NUM_LOG_REGS];
        regs[rix_isa::reg::SP.index()] = cfg.stack_top;
        let mut arch_mem = DataStore::new();
        arch_mem.load_segments(program.data_segments());
        Self::boot(program, cfg, &regs, arch_mem, program.entry(), 0, false)
    }

    /// Boots the detailed machine **mid-program** from an architectural
    /// snapshot: registers, memory and PC come from `state` (the
    /// physical registers mapped to the logical file are seeded with the
    /// architectural values), while every microarchitectural structure —
    /// caches, TLBs, predictors, the integration table, the reference
    /// vector — starts cold, exactly as at construction.
    ///
    /// This is the landing half of **functional fast-forward warm-up**:
    /// `Interp::fast_forward(n)` produces the state at interpreter
    /// speed, and the detailed session picks up from it. A session
    /// booted this way retires into exactly the architectural states the
    /// interpreter visits from `state` onward (`ArchState::retired`
    /// positions continue from `state.retired`).
    ///
    /// # Panics
    ///
    /// As [`Simulator::new`].
    #[must_use]
    pub fn from_arch_state(program: &'p Program, cfg: SimConfig, state: &ArchState) -> Self {
        let mut arch_mem = DataStore::new();
        arch_mem.load_image(&state.mem);
        Self::boot(program, cfg, &state.regs, arch_mem, state.pc, state.retired, state.halted)
    }

    /// The shared construction path of [`Simulator::new`] and
    /// [`Simulator::from_arch_state`]: identical cold microarchitecture,
    /// parameterised only by the architectural boot state.
    fn boot(
        program: &'p Program,
        cfg: SimConfig,
        regs: &[u64; rix_isa::reg::NUM_LOG_REGS],
        arch_mem: DataStore,
        pc: InstAddr,
        retired_total: u64,
        halted: bool,
    ) -> Self {
        assert!(
            cfg.num_pregs >= rix_isa::reg::NUM_LOG_REGS + cfg.core.rob_entries + 8,
            "physical register file too small for the window"
        );
        let ic = cfg.integration;
        let mut refvec = RefVector::new(cfg.num_pregs, ic.gen_bits, ic.count_bits);
        let mut phys = PhysFile::new(cfg.num_pregs);
        let mut golden = vec![0u64; cfg.num_pregs];
        let mut map = MapTable::new(PregRef::new(0, 0));
        let mut arch_regs = [0u64; rix_isa::reg::NUM_LOG_REGS];
        #[allow(clippy::needless_range_loop)] // index is also the register number
        for i in 0..rix_isa::reg::NUM_LOG_REGS {
            let log = rix_isa::LogReg::new(i as u8);
            let r = refvec.alloc().expect("reset allocation");
            refvec.mark_written(r);
            let init = regs[i];
            phys.val[r.preg as usize] = init;
            phys.ready_at[r.preg as usize] = 0;
            golden[r.preg as usize] = init;
            arch_regs[i] = init;
            map.set(log, r);
        }
        let it_ways = ic.it_ways.min(ic.it_entries);
        Self {
            program,
            cfg,
            cycle: 0,
            cycle_base: 0,
            last_retire_cycle: 0,
            mem_base: rix_mem::MemSystemStats::default(),
            mem_carry: rix_mem::MemSystemStats::default(),
            retired_total,
            seq_next: 1,
            frontend: FrontEnd::new(cfg.predictor),
            fetch_pc: pc,
            fq_slots: Vec::new(),
            fq_ckpts: Vec::new(),
            fq_mask: cfg.core.fetch_queue.next_power_of_two() - 1,
            fq_head: 0,
            fq_len: 0,
            fetch_blocked: false,
            fetch_resume_at: 0,
            cur_line: None,
            line_avail: 0,
            map,
            refvec,
            it: It::new(ic.it_entries, it_ways, ic.index),
            lisp: Lisp::new(ic.lisp_entries, ic.lisp_ways),
            phys,
            needs_golden: ic.enabled && ic.suppression == Suppression::Oracle,
            golden,
            rename_mem: VecDeque::new(),
            rob_slots: Vec::with_capacity(cfg.core.rob_entries.next_power_of_two()),
            rob_seqs: Vec::with_capacity(cfg.core.rob_entries.next_power_of_two()),
            rob_preds: Vec::with_capacity(cfg.core.rob_entries.next_power_of_two()),
            rob_mask: cfg.core.rob_entries.next_power_of_two() - 1,
            rob_len: 0,
            rob_base: 0,
            ready_set: Vec::new(),
            preg_waiters: (0..cfg.num_pregs).map(|_| Vec::new()).collect(),
            wake_ring: (0..COMPLETION_RING).map(|_| Vec::new()).collect(),
            wake_far: Vec::new(),
            wait_loads: Vec::new(),
            completions: (0..COMPLETION_RING).map(|_| Vec::new()).collect(),
            completions_far: Vec::new(),
            pending_store_data: Vec::new(),
            pending_int: Vec::new(),
            integrated_meta: VecDeque::new(),
            rs_used: 0,
            lsq_used: 0,
            sq: StoreQueue::new(),
            cht: Cht::new(256),
            events: VecDeque::new(),
            scratch_loads: Vec::new(),
            scratch_due: Vec::new(),
            scratch_comp: Vec::new(),
            scratch_wakes: Vec::new(),
            arch_regs,
            arch_next_pc: pc,
            arch_mem,
            mem: MemSystem::new(cfg.mem),
            stats: SimStats::default(),
            halted,
        }
    }

    /// Runs until `target_retired` instructions retire, the program
    /// halts, or a safety limit trips: [`StopWhen::budget`]'s cycle net,
    /// or — earlier than the pre-session API would have stopped — the
    /// deadlock window, which cuts a machine that has stopped retiring
    /// loose instead of idling it to the cycle limit.
    ///
    /// A convenience wrapper over the resumable session API: equivalent
    /// to [`Simulator::run_budget`] on a fresh session.
    pub fn run(mut self, target_retired: u64) -> RunResult {
        self.run_budget(target_retired)
    }

    /// Runs one measurement interval: until `target_retired`
    /// instructions retire *counting from the last
    /// [`Simulator::reset_stats`]*, under [`StopWhen::budget`]'s safety
    /// net. In the returned snapshot, `timed_out` means the budget was
    /// not met (the cycle net or deadlock window fired first).
    pub fn run_budget(&mut self, target_retired: u64) -> RunResult {
        self.run_until(&StopWhen::budget(target_retired));
        let mut r = self.result();
        r.timed_out = !self.halted && self.stats.retired < target_retired;
        r
    }

    /// Advances the machine until `stop` is satisfied, the program
    /// halts, or the machine deadlocks (no retirement for 100 000
    /// cycles) — whichever comes first. The session remains usable
    /// afterwards:
    /// call [`Simulator::step`] or `run_until` again to resume, and
    /// [`Simulator::result`] to snapshot statistics.
    pub fn run_until(&mut self, stop: &StopWhen) -> StopReason {
        // Fast path for the overwhelmingly common budget shape
        // (retired-or-cycles): the per-cycle stop test collapses to two
        // integer compares, in the same order the generic walk would
        // evaluate them.
        let reason = if let StopWhen::Any(subs) = stop {
            if let [StopWhen::RetiredAtLeast(a), StopWhen::CyclesAtLeast(b)] = subs[..] {
                loop {
                    if self.halted {
                        break StopReason::Halted;
                    }
                    if self.stats.retired >= a {
                        break StopReason::RetiredAtLeast(a);
                    }
                    if self.stats.cycles >= b {
                        break StopReason::CyclesAtLeast(b);
                    }
                    if self.deadlocked() {
                        break StopReason::Deadlocked;
                    }
                    self.step();
                }
            } else {
                self.run_until_generic(stop)
            }
        } else {
            self.run_until_generic(stop)
        };
        self.stats.mem = self.mem_stats_delta();
        reason
    }

    /// The general stop-condition walk (see [`Simulator::run_until`]).
    fn run_until_generic(&mut self, stop: &StopWhen) -> StopReason {
        loop {
            if self.halted {
                break StopReason::Halted;
            }
            let deadlocked = self.deadlocked();
            if let Some(r) = stop.check(self.stats.retired, self.stats.cycles, deadlocked) {
                break r;
            }
            if deadlocked {
                break StopReason::Deadlocked;
            }
            self.step();
        }
    }

    /// Advances the machine one cycle.
    pub fn step(&mut self) {
        let retired_before = self.stats.retired;
        self.do_retire();
        if !self.halted {
            self.do_complete();
            self.do_issue();
            self.do_rename();
            self.do_fetch();
        }
        #[cfg(any(debug_assertions, feature = "sanitize"))]
        self.sanitize_step();
        self.stats.rs_occupancy_sum += self.rs_used as u64;
        self.stats.rob_occupancy_sum += self.rob_len as u64;
        self.cycle += 1;
        if self.stats.retired != retired_before {
            self.last_retire_cycle = self.cycle;
        }
        self.stats.cycles = self.cycle - self.cycle_base;
    }

    /// Zeroes every statistics counter while preserving machine state
    /// (caches, predictors, integration table, in-flight window), so a
    /// session can warm up and then measure: subsequent statistics —
    /// including [`SimStats::cycles`] and the memory-hierarchy counters
    /// — count from this point.
    pub fn reset_stats(&mut self) {
        self.cycle_base = self.cycle;
        self.mem_base = self.mem.stats();
        self.mem_carry = rix_mem::MemSystemStats::default();
        self.stats = SimStats::default();
    }

    /// Snapshots the session as a [`RunResult`] without consuming it.
    /// `timed_out` reports whether the machine is currently deadlocked.
    pub fn result(&mut self) -> RunResult {
        self.stats.mem = self.mem_stats_delta();
        RunResult {
            stats: self.stats.clone(),
            halted: self.halted,
            timed_out: self.deadlocked(),
        }
    }

    /// Consumes the session into its final [`RunResult`].
    #[must_use]
    pub fn into_result(mut self) -> RunResult {
        self.result()
    }

    /// The current architectural state: PC, logical registers, memory
    /// image and retired position, exactly as retirement has committed
    /// them. The snapshot is always at a retirement boundary —
    /// in-flight (speculative, unretired) work is not part of it — and
    /// equals what [`rix_isa::interp::Interp::fast_forward`] reports at
    /// the same retired position.
    #[must_use]
    pub fn arch_state(&self) -> ArchState {
        ArchState {
            pc: self.arch_next_pc,
            regs: self.arch_regs,
            retired: self.retired_total,
            halted: self.halted,
            mem: self.arch_mem.dump_image(),
        }
    }

    /// Instructions retired since program entry (the architectural
    /// position): unaffected by [`Simulator::reset_stats`], continues
    /// across [`Simulator::from_arch_state`] / checkpoint restores.
    #[must_use]
    pub fn retired_total(&self) -> u64 {
        self.retired_total
    }

    /// Captures the session as an on-disk-serialisable [`Checkpoint`]
    /// (architectural state + accumulated statistics + absolute cycle)
    /// at the current retirement boundary, **draining in-flight state**:
    /// speculative, unretired work is discarded, and the live session is
    /// re-synchronised to exactly the machine a
    /// [`Simulator::from_checkpoint`] restore produces (cold caches,
    /// predictors and integration table; warm statistics).
    ///
    /// That re-synchronisation is what makes checkpoints exact:
    /// continuing this session after `checkpoint()` is **byte-identical**
    /// to saving the checkpoint, reloading it in a fresh process, and
    /// resuming there — the session that never left memory and the
    /// session that round-tripped through disk produce the same
    /// [`RunResult::to_json`]. The cost is that a checkpoint, like any
    /// restore, is a full pipeline flush plus cold microarchitectural
    /// structures, so place checkpoints between measurement intervals,
    /// not inside one.
    pub fn checkpoint(&mut self) -> Checkpoint {
        self.stats.mem = self.mem_stats_delta();
        let ck = Checkpoint {
            arch: self.arch_state(),
            stats: self.stats.clone(),
            cycle: self.cycle,
            program_hash: crate::checkpoint::fingerprint(self.program),
        };
        *self = Self::from_checkpoint(self.program, self.cfg, &ck);
        ck
    }

    /// Restores a session from a [`Checkpoint`] over the same program
    /// and configuration: the architectural state boots via
    /// [`Simulator::from_arch_state`], and the statistics — including
    /// the absolute cycle count and the memory-hierarchy counters —
    /// continue from the captured values, so the eventual
    /// [`RunResult`] covers the whole logical run, not just the
    /// post-restore segment.
    ///
    /// # Panics
    ///
    /// As [`Simulator::new`]; additionally panics when `program` does
    /// not match the checkpoint's recorded
    /// [`fingerprint`](crate::checkpoint::fingerprint) — an
    /// architectural snapshot is meaningless against any other
    /// instruction stream, so a wrong program (or the same benchmark at
    /// a different seed) is refused instead of run.
    #[must_use]
    pub fn from_checkpoint(program: &'p Program, cfg: SimConfig, ck: &Checkpoint) -> Self {
        assert_eq!(
            crate::checkpoint::fingerprint(program),
            ck.program_hash,
            "checkpoint belongs to a different program (same benchmark name but a \
             different seed, or a different benchmark entirely)"
        );
        let mut sim = Self::from_arch_state(program, cfg, &ck.arch);
        sim.stats = ck.stats.clone();
        sim.cycle = ck.cycle;
        sim.cycle_base = ck.cycle - ck.stats.cycles;
        sim.last_retire_cycle = ck.cycle;
        // The fresh MemSystem's counters restart at zero; the carry adds
        // the pre-checkpoint accumulation back into every delta.
        sim.mem_carry = ck.stats.mem;
        sim
    }

    /// Whether no instruction has retired for the deadlock window.
    #[must_use]
    pub fn deadlocked(&self) -> bool {
        !self.halted && self.cycle - self.last_retire_cycle >= DEADLOCK_WINDOW
    }

    /// Memory-hierarchy counters accumulated since the last
    /// [`Simulator::reset_stats`], plus any carry restored from a
    /// checkpoint (the restored `MemSystem` restarts at zero).
    fn mem_stats_delta(&mut self) -> rix_mem::MemSystemStats {
        let now = self.mem.stats();
        let b = &self.mem_base;
        let c = &self.mem_carry;
        let cache = |n: rix_mem::CacheStats,
                     b: rix_mem::CacheStats,
                     c: rix_mem::CacheStats| rix_mem::CacheStats {
            hits: n.hits - b.hits + c.hits,
            misses: n.misses - b.misses + c.misses,
            writebacks: n.writebacks - b.writebacks + c.writebacks,
        };
        rix_mem::MemSystemStats {
            l1i: cache(now.l1i, b.l1i, c.l1i),
            l1d: cache(now.l1d, b.l1d, c.l1d),
            l2: cache(now.l2, b.l2, c.l2),
            itlb_misses: now.itlb_misses - b.itlb_misses + c.itlb_misses,
            dtlb_misses: now.dtlb_misses - b.dtlb_misses + c.dtlb_misses,
            mshr_merges: now.mshr_merges - b.mshr_merges + c.mshr_merges,
            write_buffer_stalls: now.write_buffer_stalls - b.write_buffer_stalls
                + c.write_buffer_stalls,
            backside_busy: now.backside_busy - b.backside_busy + c.backside_busy,
            membus_busy: now.membus_busy - b.membus_busy + c.membus_busy,
        }
    }

    // ----- helpers -------------------------------------------------------

    fn val(&self, r: PregRef) -> u64 {
        self.phys.val[r.preg as usize]
    }

    fn src_ready(&self, r: PregRef) -> bool {
        // Operands arrive through the bypass network: a consumer may be
        // selected `regread_delay` cycles before the value lands.
        self.phys.ready_at[r.preg as usize] <= self.cycle + self.cfg.core.regread_delay
    }

    fn map_src(&self, r: rix_isa::LogReg) -> PregRef {
        self.map.get(r)
    }

    /// Locates `seq` in the ROB. Sequence numbers are strictly increasing
    /// but *not* contiguous: a squash discards renamed numbers without
    /// reusing them (global uniqueness keeps store-queue ordering,
    /// forwarding comparisons and distance statistics sound), so this is
    /// a binary search rather than front-offset arithmetic.
    /// Appends a renamed entry to the ROB ring.
    fn rob_push(&mut self, d: DynInst, ckpts: (SpecCheckpoint, SpecCheckpoint)) {
        sanity!(
            self.rob_len <= self.rob_mask,
            "rob-ring-capacity",
            "pushing into a full ROB ring ({} entries)",
            self.rob_len
        );
        let slot = ((self.rob_base as usize).wrapping_add(self.rob_len)) & self.rob_mask;
        if slot == self.rob_slots.len() {
            self.rob_seqs.push(d.seq);
            self.rob_preds.push(ckpts);
            self.rob_slots.push(d);
        } else {
            self.rob_seqs[slot] = d.seq;
            self.rob_preds[slot] = ckpts;
            self.rob_slots[slot] = d;
        }
        self.rob_len += 1;
    }

    /// Appends a fetched instruction (and its checkpoint pair) to the
    /// fetch-queue ring.
    fn fq_push(&mut self, f: Fetched, ck: (SpecCheckpoint, SpecCheckpoint)) {
        sanity!(
            self.fq_len <= self.fq_mask,
            "fetch-queue-ring-capacity",
            "pushing into a full fetch-queue ring ({} entries)",
            self.fq_len
        );
        let slot = (self.fq_head.wrapping_add(self.fq_len)) & self.fq_mask;
        if slot == self.fq_slots.len() {
            self.fq_slots.push(f);
            self.fq_ckpts.push(ck);
        } else {
            self.fq_slots[slot] = f;
            self.fq_ckpts[slot] = ck;
        }
        self.fq_len += 1;
    }

    /// First logical index whose seq is `> seq` (the seq mirror is
    /// sorted ascending).
    fn rob_upper_bound(&self, seq: u64) -> usize {
        let (mut lo, mut hi) = (0usize, self.rob_len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if rob_seq_at!(self, mid) <= seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Locates `seq` in the ROB by binary search (used when no absolute
    /// position is at hand; sequence numbers are strictly increasing
    /// but *not* contiguous — a squash discards renamed numbers).
    fn rob_index(&self, seq: u64) -> Option<usize> {
        let (mut lo, mut hi) = (0usize, self.rob_len);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if rob_seq_at!(self, mid) < seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < self.rob_len && rob_seq_at!(self, lo) == seq).then_some(lo)
    }

    /// O(1) relocation of an entry whose absolute position was recorded
    /// when it entered a scheduler list; `None` once it has left the
    /// ROB (squashed — retirement never outruns a listed entry).
    #[inline]
    fn rob_locate(&self, seq: u64, abs: u64) -> Option<usize> {
        let idx = abs.checked_sub(self.rob_base)? as usize;
        (idx < self.rob_len && self.rob_seqs[(abs as usize) & self.rob_mask] == seq)
            .then_some(idx)
    }

    fn golden_of(&self, r: PregRef) -> u64 {
        self.golden[r.preg as usize]
    }

    fn rename_read_word(&self, seq: u64, word_addr: u64) -> u64 {
        // Entries are seq-ordered: binary-search the `seq < seq` prefix
        // boundary, then scan it youngest-first for the word.
        let end = self.rename_mem.partition_point(|e| e.seq < seq);
        self.rename_mem
            .range(..end)
            .rev()
            .find(|e| e.word_addr == word_addr)
            .map_or_else(|| self.arch_mem.read_word(word_addr), |e| e.word)
    }

    /// Rename-time functional result on the golden value shadow (used by
    /// oracle suppression and to seed each register's golden value).
    fn rename_golden(&self, seq: u64, pc: InstAddr, instr: Instr) -> Option<u64> {
        let g1 = instr.src1.map(|r| self.golden_of(self.map_src(r)));
        match instr.exec_class() {
            ExecClass::SimpleInt | ExecClass::Complex => {
                let a = g1?;
                let b = match instr.src2 {
                    Some(Operand::Reg(r)) => self.golden_of(self.map_src(r)),
                    Some(Operand::Imm(i)) => i as i64 as u64,
                    None => return None,
                };
                Some(semantics::alu(instr.op, a, b))
            }
            ExecClass::Load => {
                let ea = semantics::effective_addr(instr.op, g1?, instr.disp);
                Some(semantics::load_from_word(
                    instr.op,
                    ea,
                    self.rename_read_word(seq, ea & !7),
                ))
            }
            ExecClass::DirectJump if instr.op == Opcode::Jsr => Some(pc + 1),
            _ => None,
        }
    }

    // ----- fetch ---------------------------------------------------------

    fn icache_line(&self, pc: InstAddr) -> u64 {
        // Line size is a power of two (asserted by `Cache::new`), so
        // the per-fetch division is a shift.
        (pc * rix_isa::encode::INSTR_BYTES) >> self.cfg.mem.l1i.line_bytes.trailing_zeros()
    }

    fn do_fetch(&mut self) {
        if self.halted || self.fetch_blocked || self.cycle < self.fetch_resume_at {
            return;
        }
        let start_line = self.icache_line(self.fetch_pc);
        if self.cur_line != Some(start_line) {
            let ready = self
                .mem
                .ifetch(self.cycle, self.fetch_pc * rix_isa::encode::INSTR_BYTES);
            self.cur_line = Some(start_line);
            // The hit latency is folded into the front-end depth; only
            // extra miss cycles stall fetch.
            self.line_avail = ready.saturating_sub(self.cfg.mem.l1i.hit_latency);
        }
        if self.line_avail > self.cycle {
            return;
        }
        let mut count = 0;
        while count < self.cfg.core.fetch_width && self.fq_len < self.cfg.core.fetch_queue
        {
            if self.icache_line(self.fetch_pc) != start_line {
                self.cur_line = None; // next group starts a new line
                break;
            }
            let Some(instr) = self.program.fetch(self.fetch_pc) else {
                // Ran off the program (a wrong path, or the final halt
                // already fetched): stall until a squash redirects us.
                self.fetch_blocked = true;
                break;
            };
            let pc = self.fetch_pc;
            // Probed before `predict` (which inserts the branch); only
            // conditional branches consult the result.
            let btb_hit = instr.op.is_cond_branch() && self.frontend.btb_hit(pc);
            let pred = self.frontend.predict(pc, instr);
            self.fq_push(
                Fetched {
                    pc,
                    instr,
                    taken: pred.taken,
                    next_pc: pred.next_pc,
                    call_depth: pred.call_depth,
                    fetch_cycle: self.cycle,
                    ready_at: self.cycle + self.cfg.core.front_delay,
                },
                (pred.checkpoint, pred.post_checkpoint),
            );
            self.stats.fetched += 1;
            count += 1;
            if instr.op == Opcode::Halt {
                self.fetch_blocked = true;
                break;
            }
            if pred.next_pc != pc + 1 {
                // Redirected fetch: group ends; a taken conditional
                // branch missing in the BTB redirects at decode instead
                // of fetch, costing one extra bubble.
                self.fetch_pc = pred.next_pc;
                self.cur_line = None;
                let bubble = if instr.op.is_cond_branch() && !btb_hit { 2 } else { 1 };
                self.fetch_resume_at = self.cycle + bubble;
                break;
            }
            self.fetch_pc += 1;
        }
    }

    // ----- rename + integration ------------------------------------------

    fn do_rename(&mut self) {
        for _ in 0..self.cfg.core.rename_width {
            if self.fq_len == 0 {
                return;
            }
            let slot = self.fq_head & self.fq_mask;
            let f = self.fq_slots[slot];
            if f.ready_at > self.cycle {
                return;
            }
            if self.rob_len >= self.cfg.core.rob_entries {
                self.stats.stalls_rob += 1;
                return;
            }
            let ck = self.fq_ckpts[slot];
            if !self.rename_one(f, ck) {
                return; // resource stall; retry next cycle
            }
            // A fast-resolved branch inside `rename_one` clears the
            // queue (the renamed instruction included) — nothing left
            // to pop then.
            if self.fq_len > 0 {
                self.fq_head = self.fq_head.wrapping_add(1);
                self.fq_len -= 1;
            }
        }
    }

    /// Renames one instruction; returns `false` on a structural stall.
    fn rename_one(&mut self, f: Fetched, ck: (SpecCheckpoint, SpecCheckpoint)) -> bool {
        let instr = f.instr;
        let seq = self.seq_next;
        let class = instr.exec_class();
        let dst_log = instr.dst.filter(|d| !d.is_zero());

        let src1 = instr.src1.map(|r| self.map_src(r));
        let src2r = instr.src2_reg().map(|r| self.map_src(r));
        let key = ItKey::new(f.pc, instr, f.call_depth, src1, src2r);

        let mut d = DynInst {
            seq,
            pc: f.pc,
            instr,
            class,
            pred_taken: f.taken,
            pred_next_pc: f.next_pc,
            call_depth: f.call_depth,
            fetch_cycle: f.fetch_cycle,
            state: State::Done,
            dst_log,
            dst_new: None,
            dst_old: None,
            srcs: [src1, src2r],
            integrated: false,
            holds_rs: false,
            holds_lsq: false,
            agen_at: NO_CYCLE,
            done_at: self.cycle,
            eff_addr: None,
            forward_seq: u64::MAX,
            outcome: None,
            actual_target: None,
            resolved_misp: false,
        };

        // Value ops whose destination is a zero register degenerate to
        // no-ops (writes to r31/f31 are discarded).
        let effective_class = if dst_log.is_none()
            && matches!(class, ExecClass::SimpleInt | ExecClass::Complex | ExecClass::Load)
        {
            ExecClass::Nop
        } else {
            class
        };

        match effective_class {
            ExecClass::Nop | ExecClass::Syscall => { /* done at rename */ }
            ExecClass::DirectJump => {
                if instr.op == Opcode::Jsr {
                    // The return address is produced for free at rename.
                    let Some(ra) = self.refvec.alloc() else {
                        self.stats.stalls_preg += 1;
                        return false;
                    };
                    let dst = dst_log.expect("jsr writes ra");
                    self.phys.val[ra.preg as usize] = f.pc + 1;
                    self.phys.ready_at[ra.preg as usize] = self.cycle;
                    self.phys.producer_seq[ra.preg as usize] = seq;
                    self.phys.producer_abs[ra.preg as usize] = self.rob_base + self.rob_len as u64;
                    if self.needs_golden {
                        self.golden[ra.preg as usize] = f.pc + 1;
                    }
                    self.refvec.mark_written(ra);
                    d.dst_new = Some(ra);
                    d.dst_old = Some(self.map.set(dst, ra));
                }
            }
            ExecClass::IndirectJump => {
                if !self.take_rs() {
                    return false;
                }
                d.holds_rs = true;
                d.state = State::WaitRs;
                d.done_at = NO_CYCLE;
            }
            ExecClass::CondBranch => {
                if let Some(ig) = self.try_integrate(seq, &f, key, None) {
                    let ItOutput::Branch(taken) = ig.entry.out else { unreachable!() };
                    d.integrated = true;
                    self.integrated_meta.push_back((seq, ig));
                    d.outcome = Some(taken);
                    d.state = State::Done;
                    d.done_at = self.cycle;
                    if taken != f.taken {
                        // Fast resolution at rename: nothing younger has
                        // renamed, so only the front end must recover.
                        d.resolved_misp = true;
                        let redirect = if taken { instr.target } else { f.pc + 1 };
                        self.frontend.repair(ck.0, Some(taken));
                        self.fq_len = 0;
                        self.fetch_pc = redirect;
                        self.fetch_blocked = false;
                        self.cur_line = None;
                        self.fetch_resume_at = self.cycle + 1;
                        self.stats.squashes_branch += 1;
                        self.finish_rename(d, ck, seq);
                        return true;
                    }
                } else {
                    if !self.take_rs() {
                        return false;
                    }
                    d.holds_rs = true;
                    d.state = State::WaitRs;
                    d.done_at = NO_CYCLE;
                }
            }
            ExecClass::Store => {
                if self.rs_used >= self.cfg.core.rs_entries {
                    self.stats.stalls_rs += 1;
                    return false;
                }
                if self.lsq_used >= self.cfg.core.lsq_entries {
                    self.stats.stalls_lsq += 1;
                    return false;
                }
                self.rs_used += 1;
                self.lsq_used += 1;
                d.holds_rs = true;
                d.holds_lsq = true;
                d.state = State::WaitRs;
                d.done_at = NO_CYCLE;
                let base = src1.expect("store has a base");
                let data = src2r.expect("store has data");
                self.sq.push(seq, instr.op, data);
                if self.cfg.integration.enabled
                    && rix_integration::it::wants_reverse_entry(self.cfg.integration.reverse, instr)
                {
                    self.it
                        .insert_reverse_store(f.pc, instr, f.call_depth, base, data, seq);
                }
                // Golden memory overlay for the rename-time shadow
                // (only oracle suppression ever reads it).
                if self.needs_golden {
                    let g_base = self.golden_of(base);
                    let g_data = self.golden_of(data);
                    let ea = semantics::effective_addr(instr.op, g_base, instr.disp);
                    let word_addr = ea & !7;
                    let prev = self.rename_read_word(seq, word_addr);
                    let word = semantics::merge_store(instr.op, ea, prev, g_data);
                    self.rename_mem.push_back(RenameMemEntry { seq, word_addr, word });
                }
            }
            ExecClass::SimpleInt | ExecClass::Complex | ExecClass::Load => {
                let dst = dst_log.expect("value op has a destination");
                if let Some(ig) = self.try_integrate(seq, &f, key, Some(dst)) {
                    let ItOutput::Value(out) = ig.entry.out else { unreachable!() };
                    d.dst_new = Some(out);
                    d.dst_old = Some(self.map.set(dst, out));
                    d.integrated = true;
                    self.integrated_meta.push_back((seq, ig));
                    d.state = State::WaitInt;
                    d.done_at = NO_CYCLE;
                } else {
                    if self.rs_used >= self.cfg.core.rs_entries {
                        self.stats.stalls_rs += 1;
                        return false;
                    }
                    if instr.op.is_load() && self.lsq_used >= self.cfg.core.lsq_entries {
                        self.stats.stalls_lsq += 1;
                        return false;
                    }
                    let Some(out) = self.refvec.alloc() else {
                        self.stats.stalls_preg += 1;
                        return false;
                    };
                    self.rs_used += 1;
                    d.holds_rs = true;
                    if instr.op.is_load() {
                        self.lsq_used += 1;
                        d.holds_lsq = true;
                    }
                    self.phys.ready_at[out.preg as usize] = NO_CYCLE;
                    self.phys.producer_seq[out.preg as usize] = seq;
                    self.phys.producer_abs[out.preg as usize] =
                        self.rob_base + self.rob_len as u64;
                    if self.needs_golden {
                        if let Some(g) = self.rename_golden(seq, f.pc, instr) {
                            self.golden[out.preg as usize] = g;
                        }
                    }
                    d.dst_new = Some(out);
                    d.dst_old = Some(self.map.set(dst, out));
                    d.state = State::WaitRs;
                    d.done_at = NO_CYCLE;
                    if self.cfg.integration.enabled && instr.op.is_integrable() {
                        self.it.insert_direct(key, out, seq);
                    }
                    if self.cfg.integration.enabled
                        && rix_integration::it::wants_reverse_entry(
                            self.cfg.integration.reverse,
                            instr,
                        )
                        && !instr.op.is_store()
                    {
                        // Reverse entry for an invertible add: the old
                        // mapping of the source is the entry's output.
                        let src = src1.expect("invertible add has a source");
                        self.it
                            .insert_reverse_add(f.pc, instr, f.call_depth, src, out, seq);
                    }
                }
            }
        }
        self.finish_rename(d, ck, seq);
        true
    }

    fn finish_rename(&mut self, d: DynInst, ck: (SpecCheckpoint, SpecCheckpoint), seq: u64) {
        sanity!(
            self.rob_len == 0 || rob_entry!(self, self.rob_len - 1).seq < seq,
            "rename-seq-monotone",
            "renamed seq {seq} is not younger than the ROB tail"
        );
        let state = d.state;
        self.rob_push(d, ck);
        self.seq_next = seq + 1;
        // Enter the event-driven scheduler. Classifying at rename is
        // equivalent to the old next-cycle sweep: a wrong "blocked"
        // verdict is re-examined the moment the operand's readiness
        // deadline passes, and load verdicts only pick a poll list.
        match state {
            State::WaitRs => self.classify_waiting(seq, self.rob_len - 1),
            State::WaitInt => {
                let abs = self.rob_base + (self.rob_len - 1) as u64;
                self.pending_int.push((seq, abs));
            }
            _ => {}
        }
    }

    /// Classifies the just-renamed waiting instruction `seq` (at ROB
    /// position `idx`) into the issue lists. Wakeups after this never
    /// touch the `DynInst` again: the parked entry carries the
    /// remaining operand and the precomputed rank/port class.
    fn classify_waiting(&mut self, seq: u64, idx: usize) {
        let abs = self.rob_base + idx as u64;
        let d = &rob_entry!(self, idx);
        sanity!(d.seq == seq, "classify-seq-match", "rob[{idx}] holds {} not {seq}", d.seq);
        sanity!(
            d.state == State::WaitRs,
            "classify-state-waiting",
            "classifying seq {seq} in state {:?}",
            d.state
        );
        let class = d.class;
        let readiness = self.issue_readiness(d);
        if class == ExecClass::Load {
            // Loads poll every cycle once operand-unblocked; blocking on
            // the base first keeps the poll list short, and the verdict
            // is cached against the scheduler generation.
            match readiness {
                Readiness::WaitSrc(p) => self.block_on(p, Blocked {
                    seq,
                    abs,
                    other: NO_OTHER,
                    rank: 0,
                    pclass: PORT_LOAD,
                    is_load: true,
                }),
                verdict => {
                    let cache =
                        Self::load_poll_cache(self.sched_gen(), self.sched_addr_gen(), verdict);
                    let pos = self.wait_loads.partition_point(|&(s, ..)| s < seq);
                    self.wait_loads.insert(pos, (seq, abs, cache.0, cache.1));
                }
            }
            return;
        }
        let rank: u8 = match class {
            ExecClass::CondBranch | ExecClass::IndirectJump => 0,
            ExecClass::Complex if d.instr.op.is_fp() => 0,
            _ => 1,
        };
        let pclass: u8 = match class {
            ExecClass::SimpleInt | ExecClass::CondBranch | ExecClass::IndirectJump => {
                PORT_SIMPLE
            }
            ExecClass::Complex => PORT_COMPLEX,
            ExecClass::Store => PORT_STORE,
            _ => unreachable!("loads handled above; other classes never wait"),
        };
        match readiness {
            Readiness::Ready => self.insert_ready(rank, seq, abs, pclass),
            Readiness::WaitSrc(p) => {
                // The remaining operand to check on wake: only when the
                // blocker is src1 can an (unready) src2 still matter —
                // a src2 blocker means src1 was already ready, which is
                // monotone. Stores never need their data operand to
                // issue.
                let other = match d.srcs {
                    [Some(s0), Some(s1)]
                        if s0.preg == p && class != ExecClass::Store =>
                    {
                        s1.preg
                    }
                    _ => NO_OTHER,
                };
                self.block_on(p, Blocked { seq, abs, other, rank, pclass, is_load: false });
            }
            Readiness::StallQueue | Readiness::StallTransient => {
                unreachable!("only loads can stall")
            }
        }
    }

    /// Parks an instruction on a not-yet-ready operand register: if the
    /// operand's arrival is already scheduled the wake goes straight on
    /// the calendar; otherwise the producer's execute will move it
    /// there (see [`Simulator::wake_waiters`]).
    fn block_on(&mut self, wait: u16, meta: Blocked) {
        let ready = self.phys.ready_at[wait as usize];
        if ready == NO_CYCLE {
            self.preg_waiters[wait as usize].push(meta);
        } else {
            // `WaitSrc` implies `ready > cycle + regread`, so the wake
            // is strictly in the future.
            let wake = ready - self.cfg.core.regread_delay;
            sanity!(
                wake > self.cycle,
                "wakeup-strictly-future",
                "parking a wake at cycle {wake}, not after {}",
                self.cycle
            );
            self.schedule_wake(wake, meta);
        }
    }

    /// Schedules a wake event on the calendar.
    fn schedule_wake(&mut self, wake: Cycle, meta: Blocked) {
        if wake - self.cycle >= COMPLETION_RING as u64 {
            self.wake_far.push((wake, meta));
        } else {
            self.wake_ring[(wake as usize) & (COMPLETION_RING - 1)].push(meta);
        }
    }

    /// Moves every consumer parked on `preg` onto the wake calendar:
    /// its value arrives at `ready`, so they become selectable
    /// `regread_delay` earlier — but never before the next issue pass.
    fn wake_waiters(&mut self, preg: u16, ready: Cycle) {
        if self.preg_waiters[preg as usize].is_empty() {
            return;
        }
        let wake = ready
            .saturating_sub(self.cfg.core.regread_delay)
            .max(self.cycle + 1);
        while let Some(m) = self.preg_waiters[preg as usize].pop() {
            self.schedule_wake(wake, m);
        }
    }

    /// Inserts a known-ready candidate into the sorted ready set.
    fn insert_ready(&mut self, rank: u8, seq: u64, abs: u64, pclass: u8) {
        sanity!(
            seq < 1 << 62 && abs < 1 << 62,
            "ready-key-width",
            "seq {seq} / abs {abs} overflow the packed ready-set key"
        );
        let key = (u64::from(rank) << 62) | seq;
        let payload = (abs << 2) | u64::from(pclass);
        let pos = self.ready_set.partition_point(|&(k, _)| k < key);
        self.ready_set.insert(pos, (key, payload));
    }

    /// The scheduler generation: changes whenever store-queue contents
    /// or CHT predictions change — the only inputs (beyond monotone
    /// operand readiness) a waiting load's issue verdict depends on.
    #[inline]
    fn sched_gen(&self) -> u64 {
        self.sq.generation() + self.cht.trainings()
    }

    /// The readiness-revoking generation: only an address resolution or
    /// a CHT training can turn a ready load unready, so Ready verdicts
    /// cache against this much quieter counter.
    #[inline]
    fn sched_addr_gen(&self) -> u64 {
        self.sq.addr_generation() + self.cht.trainings()
    }

    /// Maps a load's poll verdict to its (generation, ready) cache
    /// entry: Ready caches against the addr generation, queue stalls
    /// against the full generation, and transient stalls use the
    /// never-matching sentinel so they are re-evaluated every cycle.
    fn load_poll_cache(gen_full: u64, gen_addr: u64, verdict: Readiness) -> (u64, bool) {
        match verdict {
            Readiness::Ready => (gen_addr, true),
            Readiness::StallQueue => (gen_full, false),
            Readiness::StallTransient => (u64::MAX, false),
            Readiness::WaitSrc(_) => unreachable!("polled load operands are ready"),
        }
    }

    fn take_rs(&mut self) -> bool {
        if self.rs_used >= self.cfg.core.rs_entries {
            self.stats.stalls_rs += 1;
            return false;
        }
        self.rs_used += 1;
        true
    }

    /// The integration test (§2.1) with all three extensions: looks up
    /// the IT, applies suppression, checks register-state eligibility,
    /// and on success increments the reference count.
    fn try_integrate(
        &mut self,
        seq: u64,
        f: &Fetched,
        key: ItKey,
        dst: Option<rix_isa::LogReg>,
    ) -> Option<Integrated> {
        let ic = self.cfg.integration;
        if !ic.enabled || !f.instr.op.is_integrable() {
            return None;
        }
        if f.instr.dst.is_some() && dst.is_none() {
            return None;
        }
        let entry = self.it.lookup(key)?;
        // Emulated integration pipelining (§3.3): a too-recent entry is
        // not yet visible to the lookup stage. Entries created before a
        // pipeline flush are always visible (the flush provides the
        // separation), which is why squash reuse is impervious.
        if ic.pipeline_depth > 0 && seq.saturating_sub(entry.creator_seq) < ic.pipeline_depth {
            return None;
        }
        // Suppression.
        match ic.suppression {
            Suppression::Lisp => {
                if f.instr.op.is_load() && self.lisp.suppress(f.pc) {
                    self.stats.integration.suppressed += 1;
                    return None;
                }
            }
            Suppression::Oracle => {
                let ok = match entry.out {
                    ItOutput::Value(out) => {
                        let mine = self.rename_golden(seq, f.pc, f.instr);
                        // The shared register must be destined for my
                        // value — and if it has already been written
                        // (e.g. by a squashed wrong-path producer whose
                        // memory-order speculation went wrong), the value
                        // actually present must match too.
                        mine == Some(self.golden_of(out))
                            && (!self.refvec.written(out) || mine == Some(self.val(out)))
                    }
                    ItOutput::Branch(taken) => f
                        .instr
                        .src1
                        .map(|r| {
                            semantics::branch_taken(
                                f.instr.op,
                                self.golden_of(self.map_src(r)),
                            ) == taken
                        })
                        .unwrap_or(false),
                };
                if !ok {
                    self.stats.integration.suppressed += 1;
                    return None;
                }
            }
        }
        match entry.out {
            ItOutput::Value(out) => {
                let eligible = if ic.general_reuse {
                    self.refvec.eligible_general(out)
                } else {
                    self.refvec.eligible_squash(out)
                };
                if !eligible {
                    return None;
                }
                let refcount = self.refvec.integrate(out)?;
                let status = if refcount == 1 {
                    ResultStatus::ShadowSquash
                } else {
                    let producer = self.phys.producer_seq[out.preg as usize];
                    let pabs = self.phys.producer_abs[out.preg as usize];
                    match self.rob_locate(producer, pabs).map(|i| rob_entry!(self, i).state) {
                        Some(State::WaitRs) | Some(State::WaitInt) => ResultStatus::Rename,
                        Some(State::Issued) | Some(State::Done) => ResultStatus::Issue,
                        None => ResultStatus::Retire,
                    }
                };
                Some(Integrated {
                    entry,
                    key,
                    event: IntegrationEvent {
                        kind: if entry.reverse {
                            IntegrationKind::Reverse
                        } else {
                            IntegrationKind::Direct
                        },
                        itype: IntegrationType::classify(f.instr),
                        distance: seq.saturating_sub(entry.creator_seq),
                        status,
                        refcount,
                    },
                })
            }
            ItOutput::Branch(_) => Some(Integrated {
                entry,
                key,
                event: IntegrationEvent {
                    kind: if entry.reverse {
                        IntegrationKind::Reverse
                    } else {
                        IntegrationKind::Direct
                    },
                    itype: IntegrationType::classify(f.instr),
                    distance: seq.saturating_sub(entry.creator_seq),
                    status: ResultStatus::Retire,
                    refcount: 0,
                },
            }),
        }
    }

    // ----- issue ----------------------------------------------------------

    fn do_issue(&mut self) {
        // Make completed store data visible to forwarding.
        let cycle = self.cycle;
        let phys_ready = &self.phys.ready_at;
        let phys_val = &self.phys.val;
        self.sq.fill_data(
            cycle,
            |p| phys_ready[p.preg as usize],
            |p| phys_val[p.preg as usize],
        );

        // Wake operand-blocked entries whose register hit its readiness
        // deadline and re-classify them (the evaluation has no side
        // effects, so the wake order within a cycle is immaterial).
        let regread = self.cfg.core.regread_delay;
        // Bring far-scheduled wakes into calendar range (almost always
        // empty), then drain this cycle's wake bucket. Squashed entries
        // are skipped lazily (absolute positions never lie).
        if !self.wake_far.is_empty() {
            let mut i = 0;
            while i < self.wake_far.len() {
                let (t, m) = self.wake_far[i];
                if t - cycle < COMPLETION_RING as u64 {
                    self.wake_far.swap_remove(i);
                    self.wake_ring[(t as usize) & (COMPLETION_RING - 1)].push(m);
                } else {
                    i += 1;
                }
            }
        }
        let slot = (cycle as usize) & (COMPLETION_RING - 1);
        let mut due = std::mem::replace(
            &mut self.wake_ring[slot],
            std::mem::take(&mut self.scratch_wakes),
        );
        for &b in &due {
            if self.rob_locate(b.seq, b.abs).is_none() {
                continue; // squashed while parked
            }
            sanity!(
                rob_entry!(self, (b.abs - self.rob_base) as usize).state == State::WaitRs,
                "woken-state-waiting",
                "woken seq {} is not waiting for issue",
                b.seq
            );
            // Woken. Loads re-enter the poll list; others either become
            // candidates or re-park on their remaining operand — all
            // from the parked entry, without touching the DynInst.
            if b.is_load {
                let pos = self.wait_loads.partition_point(|&(s, ..)| s < b.seq);
                self.wait_loads.insert(pos, (b.seq, b.abs, u64::MAX, false));
            } else if b.other != NO_OTHER
                && self.phys.ready_at[b.other as usize] > cycle + regread
            {
                // Re-park on the remaining operand.
                let mut m = b;
                let wait = m.other;
                m.other = NO_OTHER;
                self.block_on(wait, m);
            } else {
                self.insert_ready(b.rank, b.seq, b.abs, b.pclass);
            }
        }
        due.clear();
        self.scratch_wakes = due;

        // Poll operand-unblocked loads: unlike every other class their
        // readiness also hangs on store-queue state, which can regress.
        // The cached verdict short-circuits the evaluation while the
        // scheduler generation is unchanged.
        let gen_full = self.sched_gen();
        let gen_addr = self.sched_addr_gen();
        let mut loads = std::mem::take(&mut self.scratch_loads);
        loads.clear();
        let mut wi = 0;
        while wi < self.wait_loads.len() {
            let (seq, abs, cached_key, cached_ready) = self.wait_loads[wi];
            wi += 1;
            let fresh =
                cached_key == if cached_ready { gen_addr } else { gen_full };
            if fresh {
                if cached_ready {
                    let idx =
                        self.rob_locate(seq, abs).expect("waiting load is in flight");
                    loads.push((seq, idx));
                }
                continue;
            }
            let idx = self.rob_locate(seq, abs).expect("waiting load is in flight");
            let verdict = self.issue_readiness(&rob_entry!(self, idx));
            let cache = Self::load_poll_cache(gen_full, gen_addr, verdict);
            self.wait_loads[wi - 1] = (seq, abs, cache.0, cache.1);
            if verdict == Readiness::Ready {
                loads.push((seq, idx));
            }
        }
        // `wait_loads` is kept sorted by seq, so `loads` already is.
        sanity!(loads.is_sorted(), "poll-list-sorted", "ready loads are out of age order");

        // Greedy in-order selection (§3.1: loads/branches/FP first, age
        // as tie-breaker) over the merge of the two sorted candidate
        // sources: transient ready loads (rank 0) and the persistent
        // ready set. Identical order and port arbitration to the old
        // full-ROB candidate sweep.
        let issue = self.cfg.core.issue;
        let mut total = issue.width;
        let mut ports = [issue.simple, issue.complex, issue.load, issue.store];
        let mut shared = if issue.shared_ldst { 1 } else { usize::MAX };
        let mut li = 0;
        let mut ri = 0;
        while total > 0 {
            let next_load = loads.get(li).copied();
            let next_ready = self.ready_set.get(ri).copied();
            let take_load = match (next_load, next_ready) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                // Load keys are `0 << 62 | seq` — directly comparable.
                (Some((ls, _)), Some((k, _))) => ls < k,
            };
            if take_load {
                let (seq, idx) = next_load.expect("checked");
                li += 1;
                let port =
                    if issue.shared_ldst { &mut shared } else { &mut ports[PORT_LOAD as usize] };
                if *port == 0 {
                    continue;
                }
                *port -= 1;
                total -= 1;
                let pos = self
                    .wait_loads
                    .iter()
                    .position(|&(s, ..)| s == seq)
                    .expect("selected load is listed");
                self.wait_loads.remove(pos); // keeps seq order
                self.execute(idx);
            } else {
                let (key, payload) = next_ready.expect("checked");
                let (seq, abs) = (key & ((1 << 62) - 1), payload >> 2);
                let pclass = (payload & 3) as u8;
                let port = if pclass == PORT_STORE && issue.shared_ldst {
                    &mut shared
                } else {
                    &mut ports[pclass as usize]
                };
                if *port == 0 {
                    ri += 1;
                    continue;
                }
                *port -= 1;
                total -= 1;
                let idx = self.rob_locate(seq, abs).expect("ready instruction is in flight");
                self.ready_set.remove(ri);
                self.execute(idx);
            }
        }
        self.scratch_loads = loads;
    }

    fn issue_readiness(&self, d: &DynInst) -> Readiness {
        let class = d.class;
        // Stores need only the base for address generation.
        let needed: &[Option<PregRef>] = if class == ExecClass::Store {
            &d.srcs[..1]
        } else {
            &d.srcs[..]
        };
        for &s in needed.iter().flatten() {
            if !self.src_ready(s) {
                // A blocking operand: issue is impossible until this
                // register becomes ready (memoizable by the caller).
                return Readiness::WaitSrc(s.preg);
            }
        }
        if class == ExecClass::Load {
            if self.cht.predicts_conflict(d.pc) && !self.sq.all_older_resolved(d.seq) {
                return Readiness::StallQueue;
            }
            // If the youngest older same-word store has no data yet,
            // wait for it (forwarding would stall anyway).
            let base = d.srcs[0].expect("load has a base");
            if self.phys.ready_at[base.preg as usize] <= self.cycle {
                let addr =
                    semantics::effective_addr(d.instr.op, self.val(base), d.instr.disp);
                if let Some(e) = self.sq.youngest_older_match(d.seq, addr & !7) {
                    if e.data.is_none() {
                        return Readiness::StallQueue;
                    }
                }
            } else {
                // Base arrives exactly at execute via bypass; defer the
                // forwarding question one cycle rather than guess.
                return Readiness::StallTransient;
            }
        }
        Readiness::Ready
    }

    fn execute(&mut self, idx: usize) {
        let t_exec = self.cycle + self.cfg.core.regread_delay;
        self.stats.executed += 1;
        let (instr, class, seq, srcs, dst_new) = {
            let d = &mut rob_entry!(self, idx);
            d.state = State::Issued;
            d.holds_rs = false;
            (d.instr, d.class, d.seq, d.srcs, d.dst_new)
        };
        self.rs_used -= 1;

        match class {
            ExecClass::SimpleInt | ExecClass::Complex => {
                let a = self.val(srcs[0].expect("ALU op has src1"));
                let b = match instr.src2 {
                    Some(Operand::Reg(_)) => self.val(srcs[1].expect("reg operand renamed")),
                    Some(Operand::Imm(i)) => i as i64 as u64,
                    None => 0,
                };
                let r = semantics::alu(instr.op, a, b);
                let done = t_exec + instr.op.latency();
                let out = dst_new.expect("ALU op has a destination");
                rob_entry!(self, idx).done_at = done;
                self.schedule_completion_at(done, self.cycle + 1, seq, idx);
                self.phys.val[out.preg as usize] = r;
                self.phys.ready_at[out.preg as usize] = done;
                self.wake_waiters(out.preg, done);
            }
            ExecClass::CondBranch => {
                let c = self.val(srcs[0].expect("branch has a condition"));
                let d = &mut rob_entry!(self, idx);
                d.outcome = Some(semantics::branch_taken(instr.op, c));
                d.done_at = t_exec + 1;
                self.schedule_completion_at(t_exec + 1, self.cycle + 1, seq, idx);
            }
            ExecClass::IndirectJump => {
                let t = self.val(srcs[0].expect("ret reads ra"));
                let d = &mut rob_entry!(self, idx);
                d.actual_target = Some(t);
                d.done_at = t_exec + 1;
                self.schedule_completion_at(t_exec + 1, self.cycle + 1, seq, idx);
            }
            ExecClass::Load => {
                let base = self.val(srcs[0].expect("load has a base"));
                let addr = semantics::effective_addr(instr.op, base, instr.disp);
                let agen = t_exec + 1;
                self.stats.loads_executed += 1;
                let word_addr = addr & !7;
                let arch_word = self.arch_mem.read_word(word_addr);
                let (word, fwd) = self.sq.spec_word(seq, word_addr, arch_word);
                let value = semantics::load_from_word(instr.op, addr, word);
                let done = if fwd.is_some() {
                    agen + 2 // store-to-load forwarding takes 2 cycles
                } else {
                    self.mem.dload(agen, addr)
                };
                let d = &mut rob_entry!(self, idx);
                d.agen_at = agen;
                d.eff_addr = Some(addr);
                d.forward_seq = fwd.unwrap_or(u64::MAX);
                d.done_at = done;
                self.schedule_completion_at(done, self.cycle + 1, seq, idx);
                let out = dst_new.expect("load has a destination");
                self.phys.val[out.preg as usize] = value;
                self.phys.ready_at[out.preg as usize] = done;
                self.wake_waiters(out.preg, done);
            }
            ExecClass::Store => {
                let base = self.val(srcs[0].expect("store has a base"));
                let addr = semantics::effective_addr(instr.op, base, instr.disp);
                let agen = t_exec + 1;
                let data_preg = srcs[1].expect("store has data");
                let data_ready = self.phys.ready_at[data_preg.preg as usize];
                let done =
                    if data_ready == NO_CYCLE { NO_CYCLE } else { agen.max(data_ready) };
                {
                    let d = &mut rob_entry!(self, idx);
                    d.agen_at = agen;
                    d.eff_addr = Some(addr);
                    d.done_at = done;
                }
                if done == NO_CYCLE {
                    // Completion time unknown until the data producer
                    // schedules its result.
                    self.pending_store_data.push((seq, self.rob_base + idx as u64));
                } else {
                    self.schedule_completion_at(done, self.cycle + 1, seq, idx);
                }
                self.sq.set_addr(seq, addr);
                // Memory-order violation check: any younger load that
                // already obtained its value from an older source (or
                // from memory) while touching this word mis-speculated.
                let word_addr = addr & !7;
                let mut victim: Option<u64> = None;
                // Only entries younger than the store can violate; the
                // seq-ordered ROB bounds the scan by binary search.
                let start = self.rob_upper_bound(seq);
                for yi in start..self.rob_len {
                    let y = &rob_entry!(self, yi);
                    if y.integrated {
                        continue;
                    }
                    if !matches!(y.state, State::Issued | State::Done) {
                        continue;
                    }
                    if !y.instr.op.is_load() {
                        continue;
                    }
                    if y.eff_addr.map(|a| a & !7) != Some(word_addr) {
                        continue;
                    }
                    if y.forward_seq == u64::MAX || y.forward_seq < seq {
                        victim = Some(victim.map_or(y.seq, |v: u64| v.min(y.seq)));
                    }
                }
                if let Some(load_seq) = victim {
                    // Every event fires a fixed delay after its issue
                    // cycle, so firing order equals push order and the
                    // drain in `fire_due_violations` can front-pop.
                    sanity!(
                        self.events.back().is_none_or(|e| e.fire_at <= agen),
                        "violation-fifo-order",
                        "violation event at cycle {agen} fires before the queue tail"
                    );
                    self.events.push_back(ViolationEvent {
                        fire_at: agen,
                        load_seq,
                        store_seq: seq,
                    });
                }
            }
            _ => unreachable!("only scheduled classes execute"),
        }
    }

    // ----- completion / resolution ----------------------------------------

    fn do_complete(&mut self) {
        // Fire due memory-order violation events (oldest load wins).
        // Guarded so the common empty case does zero work; events sit in
        // firing order, so the due prefix pops off the front.
        if !self.events.is_empty() {
            self.fire_due_violations();
        }

        // Completions and branch resolution, fully event-driven — no
        // ROB sweep. The three sources below never perturb each other's
        // predicates (they only touch their own entry's state/done_at
        // and non-ROB structures), and due completions drain from the
        // heap in (cycle, seq) order, which is exactly the oldest-first
        // order the historical full scan processed them in.
        let mut squash_req: Option<SquashReq> = None;
        let cycle = self.cycle;

        // Stores waiting on data learn their completion time as soon as
        // the producer has scheduled it.
        let mut i = 0;
        while i < self.pending_store_data.len() {
            let (seq, abs) = self.pending_store_data[i];
            let idx = self.rob_locate(seq, abs).expect("pending store is in flight");
            let d = &rob_entry!(self, idx);
            sanity!(
                d.instr.op.is_store(),
                "pending-store-is-store",
                "seq {seq} on the pending-store-data list is `{}`",
                d.instr
            );
            let data = d.srcs[1].expect("store has data");
            let ready = self.phys.ready_at[data.preg as usize];
            if ready == NO_CYCLE {
                i += 1;
                continue;
            }
            let done = d.agen_at.max(ready);
            self.pending_store_data.swap_remove(i);
            rob_entry!(self, idx).done_at = done;
            self.schedule_completion_at(done, cycle, seq, idx);
        }

        // Value integrations complete when the shared register is ready.
        let mut i = 0;
        while i < self.pending_int.len() {
            let (seq, abs) = self.pending_int[i];
            let idx = self.rob_locate(seq, abs).expect("pending integration is in flight");
            sanity!(
                rob_entry!(self, idx).integrated,
                "pending-int-integrated",
                "seq {seq} on the pending-integration list was never integrated"
            );
            // The shared register is exactly the renamed destination.
            let out = rob_entry!(self, idx).dst_new.expect("value integration has a shared dst");
            if self.phys.ready_at[out.preg as usize] > cycle {
                i += 1;
                continue;
            }
            self.pending_int.swap_remove(i);
            let d = &mut rob_entry!(self, idx);
            d.done_at = cycle;
            d.state = State::Done;
        }

        // Bring far-scheduled completions into calendar range (the
        // overflow list is almost always empty).
        if !self.completions_far.is_empty() {
            let mut i = 0;
            while i < self.completions_far.len() {
                let (t, seq, abs) = self.completions_far[i];
                if t - cycle < COMPLETION_RING as u64 {
                    self.completions_far.swap_remove(i);
                    self.completions[(t as usize) & (COMPLETION_RING - 1)].push((seq, abs));
                } else {
                    i += 1;
                }
            }
        }

        // Drain this cycle's calendar bucket in seq order (lazily
        // skipping squashed sequence numbers).
        let slot = (cycle as usize) & (COMPLETION_RING - 1);
        let mut due = std::mem::replace(
            &mut self.completions[slot],
            std::mem::take(&mut self.scratch_comp),
        );
        due.sort_unstable();
        for &(seq, abs) in &due {
            let Some(idx) = self.rob_locate(seq, abs) else { continue };
            sanity!(
                rob_entry!(self, idx).state == State::Issued,
                "completion-state-issued",
                "completing seq {seq} in state {:?}",
                rob_entry!(self, idx).state
            );
            sanity!(
                rob_entry!(self, idx).done_at <= cycle,
                "completion-not-early",
                "seq {seq} completes at cycle {cycle} but is done at {}",
                rob_entry!(self, idx).done_at
            );
            self.complete_issued(idx, &mut squash_req);
        }
        due.clear();
        self.scratch_comp = due;
        if let Some(req) = squash_req {
            self.stats.squashes_branch += 1;
            self.squash(req);
        }
    }

    /// Schedules the completion event of the issued instruction at ROB
    /// position `idx`, firing no earlier than `floor`: the completion
    /// drain for this cycle has already run when issue-time scheduling
    /// happens, so those events must land at `cycle + 1` at the
    /// earliest — exactly when the old completion sweep would first
    /// have seen them — while schedules from within the completion
    /// phase itself (a store learning a past completion time) may still
    /// fire in the current cycle's bucket.
    #[inline]
    fn schedule_completion_at(&mut self, done_at: Cycle, floor: Cycle, seq: u64, idx: usize) {
        sanity!(
            done_at != NO_CYCLE,
            "completion-time-known",
            "scheduling a completion for seq {seq} with no completion time"
        );
        let abs = self.rob_base + idx as u64;
        let fire = done_at.max(floor);
        if fire - self.cycle >= COMPLETION_RING as u64 {
            self.completions_far.push((fire, seq, abs));
        } else {
            self.completions[(fire as usize) & (COMPLETION_RING - 1)].push((seq, abs));
        }
    }

    /// Marks the issued instruction at `idx` complete: writeback
    /// bookkeeping, branch/return resolution, and (for the oldest
    /// resolving mispredict) the squash request.
    fn complete_issued(&mut self, idx: usize, squash_req: &mut Option<SquashReq>) {
        let d = &rob_entry!(self, idx);
        let seq = d.seq;
        let instr = d.instr;
        let class = d.class;
        let outcome = d.outcome;
        let actual_target = d.actual_target;
        let pred_taken = d.pred_taken;
        let pred_next_pc = d.pred_next_pc;
        let call_depth = d.call_depth;
        let pc = d.pc;
        let srcs = d.srcs;
        rob_entry!(self, idx).state = State::Done;
        if let Some(out) = rob_entry!(self, idx).dst_new {
            self.refvec.mark_written(out);
        }
        match class {
            ExecClass::CondBranch => {
                let taken = outcome.expect("resolved branch");
                if self.cfg.integration.enabled {
                    // Recomputes the rename-time key exactly: srcs hold
                    // the renamed inputs the original key was built from.
                    let key = ItKey::new(pc, instr, call_depth, srcs[0], srcs[1]);
                    self.it.insert_branch(key, taken, seq);
                }
                if taken != pred_taken && !rob_entry!(self, idx).resolved_misp {
                    rob_entry!(self, idx).resolved_misp = true;
                    let redirect = if taken { instr.target } else { pc + 1 };
                    let req = SquashReq {
                        after_seq: seq,
                        redirect,
                        checkpoint: rob_pred_at!(self, idx).0,
                        corrected: Some(taken),
                    };
                    if squash_req.is_none_or(|r| seq < r.after_seq) {
                        *squash_req = Some(req);
                    }
                }
            }
            ExecClass::IndirectJump => {
                let target = actual_target.expect("resolved ret");
                if target != pred_next_pc && !rob_entry!(self, idx).resolved_misp {
                    rob_entry!(self, idx).resolved_misp = true;
                    let req = SquashReq {
                        after_seq: seq,
                        redirect: target,
                        checkpoint: rob_pred_at!(self, idx).1,
                        corrected: None,
                    };
                    if squash_req.is_none_or(|r| seq < r.after_seq) {
                        *squash_req = Some(req);
                    }
                }
            }
            _ => {}
        }
    }

    /// Pops every violation event whose `fire_at` has arrived and
    /// squashes the offending loads, oldest load first. The scratch
    /// buffer keeps this allocation-free.
    fn fire_due_violations(&mut self) {
        let cycle = self.cycle;
        let mut due = std::mem::take(&mut self.scratch_due);
        sanity!(due.is_empty(), "violation-scratch-clean", "violation scratch buffer not drained");
        while let Some(&e) = self.events.front() {
            if e.fire_at > cycle {
                break;
            }
            due.push(e);
            self.events.pop_front();
        }
        due.sort_unstable_by_key(|e| e.load_seq);
        for ev in due.drain(..) {
            let Some(idx) = self.rob_index(ev.load_seq) else { continue };
            let d = &rob_entry!(self, idx);
            if !d.instr.op.is_load() {
                continue;
            }
            self.cht.train(d.pc);
            self.stats.squashes_memorder += 1;
            let req = SquashReq {
                after_seq: ev.load_seq - 1,
                redirect: d.pc,
                checkpoint: rob_pred_at!(self, idx).0,
                corrected: None,
            };
            self.squash(req);
        }
        self.scratch_due = due;
    }

    // ----- squash ----------------------------------------------------------

    fn squash(&mut self, req: SquashReq) {
        while self.rob_len > 0 && rob_entry!(self, self.rob_len - 1).seq > req.after_seq {
            let d = &rob_entry!(self, self.rob_len - 1);
            let (dst_log, dst_old, dst_new) = (d.dst_log, d.dst_old, d.dst_new);
            let (holds_rs, holds_lsq) = (d.holds_rs, d.holds_lsq);
            if let Some(dst) = dst_log {
                let old = dst_old.expect("renamed dst recorded its old mapping");
                self.map.set(dst, old);
                let new = dst_new.expect("renamed dst allocated or integrated");
                self.refvec.unmap_squash(new);
            }
            if holds_rs {
                self.rs_used -= 1;
            }
            if holds_lsq {
                self.lsq_used -= 1;
            }
            self.rob_len -= 1;
        }
        self.sq.squash_younger(req.after_seq);
        // Seq-ordered: squashed rename-overlay entries are a suffix.
        while self.rename_mem.back().is_some_and(|e| e.seq > req.after_seq) {
            self.rename_mem.pop_back();
        }
        // Purge squashed instructions from the eagerly-consumed
        // scheduler lists. The completion heap, wake calendar and
        // per-preg waiter lists are cleaned lazily at drain instead —
        // sequence numbers are never reused, so stale entries are
        // harmless.
        self.ready_set.retain(|&(k, _)| k & ((1 << 62) - 1) <= req.after_seq);
        self.wait_loads.retain(|&(s, ..)| s <= req.after_seq);
        self.pending_store_data.retain(|&(s, _)| s <= req.after_seq);
        self.pending_int.retain(|&(s, _)| s <= req.after_seq);
        // Seq-ordered: squashed integration metadata is a suffix.
        while self.integrated_meta.back().is_some_and(|&(s, _)| s > req.after_seq) {
            self.integrated_meta.pop_back();
        }
        self.events
            .retain(|e| e.load_seq <= req.after_seq && e.store_seq <= req.after_seq);
        self.frontend.repair(req.checkpoint, req.corrected);
        self.fq_len = 0;
        self.fetch_pc = req.redirect;
        self.fetch_blocked = false;
        self.cur_line = None;
        // Monolithic one-cycle recovery (§3.1), then the redirect.
        self.fetch_resume_at = self.cycle + 2;
    }

    // ----- retire / DIVA ----------------------------------------------------

    fn do_retire(&mut self) {
        for _ in 0..self.cfg.core.retire_width {
            if self.rob_len == 0 {
                return;
            }
            let head = &rob_entry!(self, 0);
            if head.state != State::Done
                || self.cycle < head.done_at.saturating_add(self.cfg.core.diva_delay)
            {
                return;
            }
            if !self.retire_head() {
                return;
            }
            if self.halted {
                return;
            }
        }
    }

    /// DIVA-checks and retires the ROB head. Returns `false` when
    /// retirement must stall (write buffer) or the head was flushed.
    fn retire_head(&mut self) -> bool {
        sanity!(self.rob_len > 0, "retire-nonempty-rob", "retiring from an empty ROB");
        let head = &rob_entry!(self, 0);
        let instr = head.instr;
        let class = head.class;
        let pc = head.pc;
        let seq = head.seq;

        // DIVA verifies the retirement PC chain before anything else: a
        // retiring instruction must be the architectural successor of the
        // previous one. A mismatch is repaired like any other DIVA fault:
        // flush and refetch from the correct PC.
        if pc != self.arch_next_pc {
            let redirect = self.arch_next_pc;
            let checkpoint = rob_pred_at!(self, 0).0;
            self.stats.squashes_diva += 1;
            self.squash(SquashReq { after_seq: seq - 1, redirect, checkpoint, corrected: None });
            return false;
        }

        // --- DIVA: in-order functional re-execution on architectural state.
        let g1 = instr.src1.map(|r| self.arch_regs[r.index()]);
        let gop2 = match instr.src2 {
            Some(Operand::Reg(r)) => Some(self.arch_regs[r.index()]),
            Some(Operand::Imm(i)) => Some(i as i64 as u64),
            None => None,
        };
        let mut golden_value: Option<u64> = None;
        let mut golden_ea: Option<u64> = None;
        let mut golden_taken: Option<bool> = None;
        match class {
            ExecClass::SimpleInt | ExecClass::Complex => {
                golden_value = Some(semantics::alu(
                    instr.op,
                    g1.expect("ALU src"),
                    gop2.expect("ALU operand"),
                ));
            }
            ExecClass::Load => {
                let ea = semantics::effective_addr(instr.op, g1.expect("base"), instr.disp);
                golden_ea = Some(ea);
                golden_value = Some(self.arch_mem.load(instr.op, ea));
            }
            ExecClass::Store => {
                golden_ea = Some(semantics::effective_addr(
                    instr.op,
                    g1.expect("base"),
                    instr.disp,
                ));
            }
            ExecClass::CondBranch => {
                golden_taken = Some(semantics::branch_taken(instr.op, g1.expect("cond")));
            }
            ExecClass::DirectJump if instr.op == Opcode::Jsr => {
                golden_value = Some(pc + 1);
            }
            _ => {}
        }

        let fault = match class {
            ExecClass::SimpleInt | ExecClass::Complex | ExecClass::Load => {
                let out = head.dst_new.expect("value op has dst");
                Some(self.val(out)) != golden_value
            }
            ExecClass::Store => head.eff_addr != golden_ea,
            ExecClass::CondBranch => head.outcome != golden_taken,
            ExecClass::IndirectJump => head.actual_target != g1,
            _ => false,
        };

        if fault {
            let integrated = head.integrated;
            let checkpoint = rob_pred_at!(self, 0).0;
            self.stats.squashes_diva += 1;
            if integrated {
                self.stats.integration.mis_integrations += 1;
                if instr.op.is_load() {
                    self.stats.integration.load_mis_integrations += 1;
                    if self.cfg.integration.suppression == Suppression::Lisp {
                        self.lisp.train(pc);
                    }
                } else {
                    self.stats.integration.register_mis_integrations += 1;
                }
                // The integrated head's metadata is the oldest in the
                // seq-ordered side queue (the squash below drops it
                // together with the head).
                let (mseq, ig) =
                    self.integrated_meta.front().expect("integrated head has metadata");
                sanity!(
                    *mseq == seq,
                    "integrated-meta-front",
                    "integrated head seq {seq} but the metadata front is {mseq}"
                );
                let (key, out) = (ig.key, ig.entry.out);
                self.it.invalidate(key, out);
            } else if instr.op.is_load() {
                // A late memory-order slip: train the CHT so the refetch
                // does not repeat it.
                self.cht.train(pc);
            }
            let req = SquashReq {
                after_seq: seq - 1, // flush includes the offender
                redirect: pc,
                checkpoint,
                corrected: None,
            };
            self.squash(req);
            return false;
        }

        // --- Stores drain through the write buffer.
        if instr.op.is_store() {
            let ea = golden_ea.expect("store ea");
            if self.mem.retire_store(self.cycle, ea).is_none() {
                self.stats.stalls_writebuf += 1;
                return false;
            }
            let data = gop2.expect("store data");
            self.arch_mem.store(instr.op, ea, data);
            let _ = self.sq.pop_retire(seq);
            if self.needs_golden {
                // Stores retire in order and the overlay is seq-ordered,
                // so the retiring store's entry is the front.
                sanity!(
                    self.rename_mem.front().is_some_and(|e| e.seq == seq),
                    "rename-mem-front",
                    "retiring store seq {seq} is not the oldest overlay entry"
                );
                self.rename_mem.pop_front();
            }
        }

        let head = &rob_entry!(self, 0);
        // --- Architectural register update.
        if let Some(dst) = head.dst_log {
            self.arch_regs[dst.index()] =
                golden_value.expect("dst implies a value-producing op");
        }
        // --- Branch bookkeeping.
        if instr.op.is_cond_branch() {
            self.stats.cond_branches_retired += 1;
            let taken = golden_taken.expect("cond branch");
            let ckpt = rob_pred_at!(self, 0).0;
            self.frontend.resolve_cond(pc, ckpt, taken);
            if taken != head.pred_taken {
                self.stats.branch_mispredicts += 1;
                self.stats.resolution_latency_sum +=
                    head.done_at.saturating_sub(head.fetch_cycle);
            }
        }
        // --- Reference-count shadow decrement (§2.2: retiring an
        // instruction decrements the *shadowed* register, never its own).
        if let Some(old) = head.dst_old {
            self.refvec.unmap_shadow(old);
        }
        if head.holds_lsq {
            self.lsq_used -= 1;
        }
        // --- Integration accounting happens at retirement (§3.2).
        if head.integrated {
            let (mseq, ig) =
                self.integrated_meta.pop_front().expect("integrated head has metadata");
            sanity!(
                mseq == seq,
                "integrated-meta-front",
                "integrated head seq {seq} but the metadata front is {mseq}"
            );
            self.stats.integration.record(ig.event);
        }
        // Advance the architectural PC chain.
        self.arch_next_pc = match class {
            ExecClass::CondBranch if golden_taken == Some(true) => instr.target,
            ExecClass::DirectJump => instr.target,
            ExecClass::IndirectJump => g1.expect("ret reads ra"),
            _ => pc + 1,
        };
        self.stats.retired += 1;
        self.retired_total += 1;
        self.stats.integration.retired += 1;
        if instr.op.is_load() {
            self.stats.loads_retired += 1;
        }
        if instr.op.is_store() {
            self.stats.stores_retired += 1;
        }
        if instr.op == Opcode::Halt {
            self.halted = true;
        }
        self.rob_len -= 1;
        self.rob_base += 1;
        true
    }

    // ----- introspection (tests/diagnostics) -------------------------------

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Statistics so far. Core counters (cycles, retired, stalls, …)
    /// are live after every [`Simulator::step`]; the memory-hierarchy
    /// block (`mem`) is snapshotted lazily — by [`Simulator::run_until`]
    /// and [`Simulator::result`], not per step — to keep the cycle loop
    /// lean. Use [`Simulator::result`] when `mem` must be current.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Architectural register value (for tests).
    #[must_use]
    pub fn arch_reg(&self, r: rix_isa::LogReg) -> u64 {
        self.arch_regs[r.index()]
    }

    /// Architectural memory word (for tests).
    #[must_use]
    pub fn arch_mem_word(&self, addr: u64) -> u64 {
        self.arch_mem.read_word(addr)
    }

    /// Whether the program has halted.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }
}

// The per-cycle invariant checker, a child module so it can audit the
// private machine state. Declared after the `rob_entry!` family so the
// macros are in scope there.
#[cfg(any(debug_assertions, feature = "sanitize"))]
#[path = "sanitize.rs"]
mod sanitize;
