//! The out-of-order pipeline with register integration.
//!
//! [`Simulator`] models the paper's 13-stage, 4-way machine as five
//! per-cycle steps processed oldest-first (retire/DIVA → complete →
//! issue → rename/integrate → fetch). Wrong-path instructions are
//! *really fetched and executed* — fetch follows the predicted stream
//! through program memory — which is what makes squash reuse observable,
//! and physical registers hold real values, so a mis-integration
//! propagates a genuinely wrong value until the DIVA checker catches it
//! at retirement and flushes.
//!
//! Timing model in brief:
//!
//! * fetch→rename takes `front_delay` (3 fetch + 1 decode) cycles; one
//!   fetch group per I-cache line per cycle; taken branches end the group
//!   (plus a decode bubble on a BTB miss),
//! * rename→issue takes at least `sched_delay` cycles; operands arrive
//!   through the bypass network, so a dependent may be *selected* once its
//!   producer's result is within `regread_delay` cycles of arriving,
//! * issue→result takes `regread_delay` + execution latency (loads add
//!   1 AGEN cycle plus cache/forwarding latency),
//! * completion→retirement takes `diva_delay` (writeback + DIVA) cycles,
//! * squash recovery is monolithic: fetch restarts at the redirect the
//!   cycle after next (§3.1: recovery modelled as occurring in one cycle).
//!
//! Integrating instructions bypass scheduling, register read and execute
//! entirely: a value integration completes as soon as the shared physical
//! register is ready; a branch integration resolves *at rename*.

use crate::config::SimConfig;
use crate::lsq::{Cht, StoreQueue};
use crate::session::{StopReason, StopWhen};
use crate::stats::{RunResult, SimStats};
use rix_frontend::{FrontEnd, Prediction, SpecCheckpoint};
use rix_integration::{
    IntegrationKind, It, ItEntry, ItKey, ItOutput, Lisp, MapTable, PregRef, RefVector,
    Suppression,
};
use rix_integration::{IntegrationEvent, IntegrationType, ResultStatus};
use rix_isa::{semantics, ExecClass, InstAddr, Instr, Opcode, Operand, Program};
use rix_mem::{Cycle, DataStore, MemSystem};
use std::collections::VecDeque;

const NO_CYCLE: Cycle = u64::MAX;

/// Cycles without a retirement after which the machine is considered
/// deadlocked. The longest legitimate retirement gap (write-buffer
/// stall on top of serialized cold misses) is a few thousand cycles.
const DEADLOCK_WINDOW: Cycle = 100_000;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Waiting in a reservation station.
    WaitRs,
    /// Integrated; waiting for the shared register to become ready.
    WaitInt,
    /// Selected for execution; result arrives at `done_at`.
    Issued,
    /// Completed; eligible for DIVA + retirement.
    Done,
}

#[derive(Clone, Copy, Debug)]
struct Integrated {
    entry: ItEntry,
    event: IntegrationEvent,
    key: ItKey,
}

#[derive(Clone, Debug)]
struct DynInst {
    seq: u64,
    pc: InstAddr,
    instr: Instr,
    pred: Prediction,
    fetch_cycle: Cycle,
    state: State,
    dst_log: Option<rix_isa::LogReg>,
    dst_new: Option<PregRef>,
    dst_old: Option<PregRef>,
    /// `[src1, src2]` as renamed; for stores only `srcs[0]` (the base)
    /// gates address generation.
    srcs: [Option<PregRef>; 2],
    it_key: Option<ItKey>,
    integrated: Option<Integrated>,
    holds_rs: bool,
    holds_lsq: bool,
    agen_at: Cycle,
    done_at: Cycle,
    eff_addr: Option<u64>,
    forward_seq: Option<u64>,
    outcome: Option<bool>,
    actual_target: Option<InstAddr>,
    resolved_misp: bool,
}

#[derive(Clone, Copy, Debug)]
struct Fetched {
    pc: InstAddr,
    instr: Instr,
    pred: Prediction,
    fetch_cycle: Cycle,
    ready_at: Cycle,
}

#[derive(Clone, Copy, Debug)]
struct SquashReq {
    /// Squash every instruction with `seq > after_seq`.
    after_seq: u64,
    redirect: InstAddr,
    checkpoint: SpecCheckpoint,
    corrected: Option<bool>,
}

#[derive(Clone, Copy, Debug)]
struct ViolationEvent {
    fire_at: Cycle,
    load_seq: u64,
    store_seq: u64,
}

#[derive(Clone, Copy, Debug)]
struct RenameMemEntry {
    seq: u64,
    word_addr: u64,
    word: u64,
}

struct PhysFile {
    val: Vec<u64>,
    ready_at: Vec<Cycle>,
    producer_seq: Vec<u64>,
}

impl PhysFile {
    fn new(n: usize) -> Self {
        Self { val: vec![0; n], ready_at: vec![NO_CYCLE; n], producer_seq: vec![0; n] }
    }
}

/// The cycle-level simulator.
///
/// ```
/// use rix_sim::{SimConfig, Simulator};
/// use rix_isa::{Asm, reg};
///
/// let mut a = Asm::new();
/// a.addq_i(reg::R1, reg::ZERO, 10);
/// a.label("loop");
/// a.subq_i(reg::R1, reg::R1, 1);
/// a.bne(reg::R1, "loop");
/// a.halt();
/// let p = a.assemble()?;
/// let result = Simulator::new(&p, SimConfig::default()).run(100);
/// assert!(result.halted);
/// assert_eq!(result.stats.retired, 22); // 1 init + 10×(subq,bne) + halt
/// # Ok::<(), rix_isa::AsmError>(())
/// ```
pub struct Simulator<'p> {
    program: &'p Program,
    cfg: SimConfig,
    cycle: Cycle,
    /// Cycle of the last `reset_stats` (statistics count from here).
    cycle_base: Cycle,
    /// Last cycle on which an instruction retired (deadlock detection).
    last_retire_cycle: Cycle,
    /// Memory-system counters at the last `reset_stats`.
    mem_base: rix_mem::MemSystemStats,
    seq_next: u64,
    // Front end.
    frontend: FrontEnd,
    fetch_pc: InstAddr,
    fetch_queue: VecDeque<Fetched>,
    fetch_blocked: bool,
    fetch_resume_at: Cycle,
    cur_line: Option<u64>,
    line_avail: Cycle,
    // Rename + integration.
    map: MapTable,
    refvec: RefVector,
    it: It,
    lisp: Lisp,
    phys: PhysFile,
    golden: Vec<u64>,
    rename_mem: Vec<RenameMemEntry>,
    // Windows.
    rob: VecDeque<DynInst>,
    rs_used: usize,
    lsq_used: usize,
    sq: StoreQueue,
    cht: Cht,
    events: Vec<ViolationEvent>,
    // Architectural state.
    arch_regs: [u64; rix_isa::reg::NUM_LOG_REGS],
    arch_next_pc: InstAddr,
    arch_mem: DataStore,
    mem: MemSystem,
    // Outcome.
    stats: SimStats,
    halted: bool,
}

impl<'p> Simulator<'p> {
    /// Builds a simulator over `program` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_pregs` cannot cover the architectural registers
    /// plus the in-flight window.
    #[must_use]
    pub fn new(program: &'p Program, cfg: SimConfig) -> Self {
        assert!(
            cfg.num_pregs >= rix_isa::reg::NUM_LOG_REGS + cfg.core.rob_entries + 8,
            "physical register file too small for the window"
        );
        let ic = cfg.integration;
        let mut refvec = RefVector::new(cfg.num_pregs, ic.gen_bits, ic.count_bits);
        let mut phys = PhysFile::new(cfg.num_pregs);
        let mut golden = vec![0u64; cfg.num_pregs];
        let mut map = MapTable::new(PregRef::new(0, 0));
        let mut arch_regs = [0u64; rix_isa::reg::NUM_LOG_REGS];
        #[allow(clippy::needless_range_loop)] // index is also the register number
        for i in 0..rix_isa::reg::NUM_LOG_REGS {
            let log = rix_isa::LogReg::new(i as u8);
            let r = refvec.alloc().expect("reset allocation");
            refvec.mark_written(r);
            let init = if log == rix_isa::reg::SP { cfg.stack_top } else { 0 };
            phys.val[r.preg as usize] = init;
            phys.ready_at[r.preg as usize] = 0;
            golden[r.preg as usize] = init;
            arch_regs[i] = init;
            map.set(log, r);
        }
        let mut arch_mem = DataStore::new();
        arch_mem.load_segments(program.data_segments());
        let it_ways = ic.it_ways.min(ic.it_entries);
        Self {
            program,
            cfg,
            cycle: 0,
            cycle_base: 0,
            last_retire_cycle: 0,
            mem_base: rix_mem::MemSystemStats::default(),
            seq_next: 1,
            frontend: FrontEnd::default(),
            fetch_pc: program.entry(),
            fetch_queue: VecDeque::new(),
            fetch_blocked: false,
            fetch_resume_at: 0,
            cur_line: None,
            line_avail: 0,
            map,
            refvec,
            it: It::new(ic.it_entries, it_ways, ic.index),
            lisp: Lisp::new(ic.lisp_entries, ic.lisp_ways),
            phys,
            golden,
            rename_mem: Vec::new(),
            rob: VecDeque::new(),
            rs_used: 0,
            lsq_used: 0,
            sq: StoreQueue::new(),
            cht: Cht::new(256),
            events: Vec::new(),
            arch_regs,
            arch_next_pc: program.entry(),
            arch_mem,
            mem: MemSystem::new(cfg.mem),
            stats: SimStats::default(),
            halted: false,
        }
    }

    /// Runs until `target_retired` instructions retire, the program
    /// halts, or a safety limit trips: [`StopWhen::budget`]'s cycle net,
    /// or — earlier than the pre-session API would have stopped — the
    /// deadlock window, which cuts a machine that has stopped retiring
    /// loose instead of idling it to the cycle limit.
    ///
    /// A convenience wrapper over the resumable session API: equivalent
    /// to [`Simulator::run_budget`] on a fresh session.
    pub fn run(mut self, target_retired: u64) -> RunResult {
        self.run_budget(target_retired)
    }

    /// Runs one measurement interval: until `target_retired`
    /// instructions retire *counting from the last
    /// [`Simulator::reset_stats`]*, under [`StopWhen::budget`]'s safety
    /// net. In the returned snapshot, `timed_out` means the budget was
    /// not met (the cycle net or deadlock window fired first).
    pub fn run_budget(&mut self, target_retired: u64) -> RunResult {
        self.run_until(&StopWhen::budget(target_retired));
        let mut r = self.result();
        r.timed_out = !self.halted && self.stats.retired < target_retired;
        r
    }

    /// Advances the machine until `stop` is satisfied, the program
    /// halts, or the machine deadlocks (no retirement for 100 000
    /// cycles) — whichever comes first. The session remains usable
    /// afterwards:
    /// call [`Simulator::step`] or `run_until` again to resume, and
    /// [`Simulator::result`] to snapshot statistics.
    pub fn run_until(&mut self, stop: &StopWhen) -> StopReason {
        let reason = loop {
            if self.halted {
                break StopReason::Halted;
            }
            let deadlocked = self.deadlocked();
            if let Some(r) = stop.check(self.stats.retired, self.stats.cycles, deadlocked) {
                break r;
            }
            if deadlocked {
                break StopReason::Deadlocked;
            }
            self.step();
        };
        self.stats.mem = self.mem_stats_delta();
        reason
    }

    /// Advances the machine one cycle.
    pub fn step(&mut self) {
        let retired_before = self.stats.retired;
        self.do_retire();
        if !self.halted {
            self.do_complete();
            self.do_issue();
            self.do_rename();
            self.do_fetch();
        }
        self.stats.rs_occupancy_sum += self.rs_used as u64;
        self.stats.rob_occupancy_sum += self.rob.len() as u64;
        self.cycle += 1;
        if self.stats.retired != retired_before {
            self.last_retire_cycle = self.cycle;
        }
        self.stats.cycles = self.cycle - self.cycle_base;
    }

    /// Zeroes every statistics counter while preserving machine state
    /// (caches, predictors, integration table, in-flight window), so a
    /// session can warm up and then measure: subsequent statistics —
    /// including [`SimStats::cycles`] and the memory-hierarchy counters
    /// — count from this point.
    pub fn reset_stats(&mut self) {
        self.cycle_base = self.cycle;
        self.mem_base = self.mem.stats();
        self.stats = SimStats::default();
    }

    /// Snapshots the session as a [`RunResult`] without consuming it.
    /// `timed_out` reports whether the machine is currently deadlocked.
    pub fn result(&mut self) -> RunResult {
        self.stats.mem = self.mem_stats_delta();
        RunResult {
            stats: self.stats.clone(),
            halted: self.halted,
            timed_out: self.deadlocked(),
        }
    }

    /// Consumes the session into its final [`RunResult`].
    #[must_use]
    pub fn into_result(mut self) -> RunResult {
        self.result()
    }

    /// Whether no instruction has retired for the deadlock window.
    #[must_use]
    pub fn deadlocked(&self) -> bool {
        !self.halted && self.cycle - self.last_retire_cycle >= DEADLOCK_WINDOW
    }

    /// Memory-hierarchy counters accumulated since the last
    /// [`Simulator::reset_stats`].
    fn mem_stats_delta(&mut self) -> rix_mem::MemSystemStats {
        let now = self.mem.stats();
        let b = &self.mem_base;
        let cache = |n: rix_mem::CacheStats, b: rix_mem::CacheStats| rix_mem::CacheStats {
            hits: n.hits - b.hits,
            misses: n.misses - b.misses,
            writebacks: n.writebacks - b.writebacks,
        };
        rix_mem::MemSystemStats {
            l1i: cache(now.l1i, b.l1i),
            l1d: cache(now.l1d, b.l1d),
            l2: cache(now.l2, b.l2),
            itlb_misses: now.itlb_misses - b.itlb_misses,
            dtlb_misses: now.dtlb_misses - b.dtlb_misses,
            mshr_merges: now.mshr_merges - b.mshr_merges,
            write_buffer_stalls: now.write_buffer_stalls - b.write_buffer_stalls,
            backside_busy: now.backside_busy - b.backside_busy,
            membus_busy: now.membus_busy - b.membus_busy,
        }
    }

    // ----- helpers -------------------------------------------------------

    fn val(&self, r: PregRef) -> u64 {
        self.phys.val[r.preg as usize]
    }

    fn src_ready(&self, r: PregRef) -> bool {
        // Operands arrive through the bypass network: a consumer may be
        // selected `regread_delay` cycles before the value lands.
        self.phys.ready_at[r.preg as usize] <= self.cycle + self.cfg.core.regread_delay
    }

    fn map_src(&self, r: rix_isa::LogReg) -> PregRef {
        self.map.get(r)
    }

    /// Locates `seq` in the ROB. Sequence numbers are strictly increasing
    /// but *not* contiguous: a squash discards renamed numbers without
    /// reusing them (global uniqueness keeps store-queue ordering,
    /// forwarding comparisons and distance statistics sound), so this is
    /// a binary search rather than front-offset arithmetic.
    fn rob_index(&self, seq: u64) -> Option<usize> {
        let idx = self.rob.partition_point(|d| d.seq < seq);
        (idx < self.rob.len() && self.rob[idx].seq == seq).then_some(idx)
    }

    fn golden_of(&self, r: PregRef) -> u64 {
        self.golden[r.preg as usize]
    }

    fn rename_read_word(&self, seq: u64, word_addr: u64) -> u64 {
        self.rename_mem
            .iter()
            .rev()
            .find(|e| e.seq < seq && e.word_addr == word_addr)
            .map_or_else(|| self.arch_mem.read_word(word_addr), |e| e.word)
    }

    /// Rename-time functional result on the golden value shadow (used by
    /// oracle suppression and to seed each register's golden value).
    fn rename_golden(&self, seq: u64, pc: InstAddr, instr: Instr) -> Option<u64> {
        let g1 = instr.src1.map(|r| self.golden_of(self.map_src(r)));
        match instr.exec_class() {
            ExecClass::SimpleInt | ExecClass::Complex => {
                let a = g1?;
                let b = match instr.src2 {
                    Some(Operand::Reg(r)) => self.golden_of(self.map_src(r)),
                    Some(Operand::Imm(i)) => i as i64 as u64,
                    None => return None,
                };
                Some(semantics::alu(instr.op, a, b))
            }
            ExecClass::Load => {
                let ea = semantics::effective_addr(instr.op, g1?, instr.disp);
                Some(semantics::load_from_word(
                    instr.op,
                    ea,
                    self.rename_read_word(seq, ea & !7),
                ))
            }
            ExecClass::DirectJump if instr.op == Opcode::Jsr => Some(pc + 1),
            _ => None,
        }
    }

    // ----- fetch ---------------------------------------------------------

    fn icache_line(&self, pc: InstAddr) -> u64 {
        pc * rix_isa::encode::INSTR_BYTES / self.cfg.mem.l1i.line_bytes
    }

    fn do_fetch(&mut self) {
        if self.halted || self.fetch_blocked || self.cycle < self.fetch_resume_at {
            return;
        }
        let start_line = self.icache_line(self.fetch_pc);
        if self.cur_line != Some(start_line) {
            let ready = self
                .mem
                .ifetch(self.cycle, self.fetch_pc * rix_isa::encode::INSTR_BYTES);
            self.cur_line = Some(start_line);
            // The hit latency is folded into the front-end depth; only
            // extra miss cycles stall fetch.
            self.line_avail = ready.saturating_sub(self.cfg.mem.l1i.hit_latency);
        }
        if self.line_avail > self.cycle {
            return;
        }
        let mut count = 0;
        while count < self.cfg.core.fetch_width
            && self.fetch_queue.len() < self.cfg.core.fetch_queue
        {
            if self.icache_line(self.fetch_pc) != start_line {
                self.cur_line = None; // next group starts a new line
                break;
            }
            let Some(instr) = self.program.fetch(self.fetch_pc) else {
                // Ran off the program (a wrong path, or the final halt
                // already fetched): stall until a squash redirects us.
                self.fetch_blocked = true;
                break;
            };
            let pc = self.fetch_pc;
            let btb_hit = self.frontend.btb_hit(pc);
            let pred = self.frontend.predict(pc, instr);
            self.fetch_queue.push_back(Fetched {
                pc,
                instr,
                pred,
                fetch_cycle: self.cycle,
                ready_at: self.cycle + self.cfg.core.front_delay,
            });
            self.stats.fetched += 1;
            count += 1;
            if instr.op == Opcode::Halt {
                self.fetch_blocked = true;
                break;
            }
            if pred.next_pc != pc + 1 {
                // Redirected fetch: group ends; a taken conditional
                // branch missing in the BTB redirects at decode instead
                // of fetch, costing one extra bubble.
                self.fetch_pc = pred.next_pc;
                self.cur_line = None;
                let bubble = if instr.op.is_cond_branch() && !btb_hit { 2 } else { 1 };
                self.fetch_resume_at = self.cycle + bubble;
                break;
            }
            self.fetch_pc += 1;
        }
    }

    // ----- rename + integration ------------------------------------------

    fn do_rename(&mut self) {
        for _ in 0..self.cfg.core.rename_width {
            let Some(&f) = self.fetch_queue.front() else { return };
            if f.ready_at > self.cycle {
                return;
            }
            if self.rob.len() >= self.cfg.core.rob_entries {
                self.stats.stalls_rob += 1;
                return;
            }
            if !self.rename_one(f) {
                return; // resource stall; retry next cycle
            }
            self.fetch_queue.pop_front();
        }
    }

    /// Renames one instruction; returns `false` on a structural stall.
    fn rename_one(&mut self, f: Fetched) -> bool {
        let instr = f.instr;
        let seq = self.seq_next;
        let class = instr.exec_class();
        let dst_log = instr.dst.filter(|d| !d.is_zero());

        let src1 = instr.src1.map(|r| self.map_src(r));
        let src2r = instr.src2_reg().map(|r| self.map_src(r));
        let key = ItKey::new(f.pc, instr, f.pred.call_depth, src1, src2r);

        let mut d = DynInst {
            seq,
            pc: f.pc,
            instr,
            pred: f.pred,
            fetch_cycle: f.fetch_cycle,
            state: State::Done,
            dst_log,
            dst_new: None,
            dst_old: None,
            srcs: [src1, src2r],
            it_key: Some(key),
            integrated: None,
            holds_rs: false,
            holds_lsq: false,
            agen_at: NO_CYCLE,
            done_at: self.cycle,
            eff_addr: None,
            forward_seq: None,
            outcome: None,
            actual_target: None,
            resolved_misp: false,
        };

        // Value ops whose destination is a zero register degenerate to
        // no-ops (writes to r31/f31 are discarded).
        let effective_class = if dst_log.is_none()
            && matches!(class, ExecClass::SimpleInt | ExecClass::Complex | ExecClass::Load)
        {
            ExecClass::Nop
        } else {
            class
        };

        match effective_class {
            ExecClass::Nop | ExecClass::Syscall => { /* done at rename */ }
            ExecClass::DirectJump => {
                if instr.op == Opcode::Jsr {
                    // The return address is produced for free at rename.
                    let Some(ra) = self.refvec.alloc() else {
                        self.stats.stalls_preg += 1;
                        return false;
                    };
                    let dst = dst_log.expect("jsr writes ra");
                    self.phys.val[ra.preg as usize] = f.pc + 1;
                    self.phys.ready_at[ra.preg as usize] = self.cycle;
                    self.phys.producer_seq[ra.preg as usize] = seq;
                    self.golden[ra.preg as usize] = f.pc + 1;
                    self.refvec.mark_written(ra);
                    d.dst_new = Some(ra);
                    d.dst_old = Some(self.map.set(dst, ra));
                }
            }
            ExecClass::IndirectJump => {
                if !self.take_rs() {
                    return false;
                }
                d.holds_rs = true;
                d.state = State::WaitRs;
                d.done_at = NO_CYCLE;
            }
            ExecClass::CondBranch => {
                if let Some(ig) = self.try_integrate(seq, &f, key, None) {
                    let ItOutput::Branch(taken) = ig.entry.out else { unreachable!() };
                    d.integrated = Some(ig);
                    d.outcome = Some(taken);
                    d.state = State::Done;
                    d.done_at = self.cycle;
                    if taken != f.pred.taken {
                        // Fast resolution at rename: nothing younger has
                        // renamed, so only the front end must recover.
                        d.resolved_misp = true;
                        let redirect = if taken { instr.target } else { f.pc + 1 };
                        self.frontend.repair(f.pred.checkpoint, Some(taken));
                        self.fetch_queue.clear();
                        self.fetch_pc = redirect;
                        self.fetch_blocked = false;
                        self.cur_line = None;
                        self.fetch_resume_at = self.cycle + 1;
                        self.stats.squashes_branch += 1;
                        self.finish_rename(d, f, seq);
                        return true;
                    }
                } else {
                    if !self.take_rs() {
                        return false;
                    }
                    d.holds_rs = true;
                    d.state = State::WaitRs;
                    d.done_at = NO_CYCLE;
                }
            }
            ExecClass::Store => {
                if self.rs_used >= self.cfg.core.rs_entries {
                    self.stats.stalls_rs += 1;
                    return false;
                }
                if self.lsq_used >= self.cfg.core.lsq_entries {
                    self.stats.stalls_lsq += 1;
                    return false;
                }
                self.rs_used += 1;
                self.lsq_used += 1;
                d.holds_rs = true;
                d.holds_lsq = true;
                d.state = State::WaitRs;
                d.done_at = NO_CYCLE;
                let base = src1.expect("store has a base");
                let data = src2r.expect("store has data");
                self.sq.push(seq, instr.op, data);
                if self.cfg.integration.enabled
                    && rix_integration::it::wants_reverse_entry(self.cfg.integration.reverse, instr)
                {
                    self.it
                        .insert_reverse_store(f.pc, instr, f.pred.call_depth, base, data, seq);
                }
                // Golden memory overlay for the rename-time shadow.
                let g_base = self.golden_of(base);
                let g_data = self.golden_of(data);
                let ea = semantics::effective_addr(instr.op, g_base, instr.disp);
                let word_addr = ea & !7;
                let prev = self.rename_read_word(seq, word_addr);
                let word = semantics::merge_store(instr.op, ea, prev, g_data);
                self.rename_mem.push(RenameMemEntry { seq, word_addr, word });
            }
            ExecClass::SimpleInt | ExecClass::Complex | ExecClass::Load => {
                let dst = dst_log.expect("value op has a destination");
                if let Some(ig) = self.try_integrate(seq, &f, key, Some(dst)) {
                    let ItOutput::Value(out) = ig.entry.out else { unreachable!() };
                    d.dst_new = Some(out);
                    d.dst_old = Some(self.map.set(dst, out));
                    d.integrated = Some(ig);
                    d.state = State::WaitInt;
                    d.done_at = NO_CYCLE;
                } else {
                    if self.rs_used >= self.cfg.core.rs_entries {
                        self.stats.stalls_rs += 1;
                        return false;
                    }
                    if instr.op.is_load() && self.lsq_used >= self.cfg.core.lsq_entries {
                        self.stats.stalls_lsq += 1;
                        return false;
                    }
                    let Some(out) = self.refvec.alloc() else {
                        self.stats.stalls_preg += 1;
                        return false;
                    };
                    self.rs_used += 1;
                    d.holds_rs = true;
                    if instr.op.is_load() {
                        self.lsq_used += 1;
                        d.holds_lsq = true;
                    }
                    self.phys.ready_at[out.preg as usize] = NO_CYCLE;
                    self.phys.producer_seq[out.preg as usize] = seq;
                    if let Some(g) = self.rename_golden(seq, f.pc, instr) {
                        self.golden[out.preg as usize] = g;
                    }
                    d.dst_new = Some(out);
                    d.dst_old = Some(self.map.set(dst, out));
                    d.state = State::WaitRs;
                    d.done_at = NO_CYCLE;
                    if self.cfg.integration.enabled && instr.op.is_integrable() {
                        self.it.insert_direct(key, out, seq);
                    }
                    if self.cfg.integration.enabled
                        && rix_integration::it::wants_reverse_entry(
                            self.cfg.integration.reverse,
                            instr,
                        )
                        && !instr.op.is_store()
                    {
                        // Reverse entry for an invertible add: the old
                        // mapping of the source is the entry's output.
                        let src = src1.expect("invertible add has a source");
                        self.it
                            .insert_reverse_add(f.pc, instr, f.pred.call_depth, src, out, seq);
                    }
                }
            }
        }
        self.finish_rename(d, f, seq);
        true
    }

    fn finish_rename(&mut self, d: DynInst, f: Fetched, seq: u64) {
        let _ = f;
        debug_assert!(
            self.rob.back().is_none_or(|b| b.seq < seq),
            "sequence numbers strictly increase"
        );
        self.rob.push_back(d);
        self.seq_next = seq + 1;
    }

    fn take_rs(&mut self) -> bool {
        if self.rs_used >= self.cfg.core.rs_entries {
            self.stats.stalls_rs += 1;
            return false;
        }
        self.rs_used += 1;
        true
    }

    /// The integration test (§2.1) with all three extensions: looks up
    /// the IT, applies suppression, checks register-state eligibility,
    /// and on success increments the reference count.
    fn try_integrate(
        &mut self,
        seq: u64,
        f: &Fetched,
        key: ItKey,
        dst: Option<rix_isa::LogReg>,
    ) -> Option<Integrated> {
        let ic = self.cfg.integration;
        if !ic.enabled || !f.instr.op.is_integrable() {
            return None;
        }
        if f.instr.dst.is_some() && dst.is_none() {
            return None;
        }
        let entry = self.it.lookup(key)?;
        // Emulated integration pipelining (§3.3): a too-recent entry is
        // not yet visible to the lookup stage. Entries created before a
        // pipeline flush are always visible (the flush provides the
        // separation), which is why squash reuse is impervious.
        if ic.pipeline_depth > 0 && seq.saturating_sub(entry.creator_seq) < ic.pipeline_depth {
            return None;
        }
        // Suppression.
        match ic.suppression {
            Suppression::Lisp => {
                if f.instr.op.is_load() && self.lisp.suppress(f.pc) {
                    self.stats.integration.suppressed += 1;
                    return None;
                }
            }
            Suppression::Oracle => {
                let ok = match entry.out {
                    ItOutput::Value(out) => {
                        let mine = self.rename_golden(seq, f.pc, f.instr);
                        // The shared register must be destined for my
                        // value — and if it has already been written
                        // (e.g. by a squashed wrong-path producer whose
                        // memory-order speculation went wrong), the value
                        // actually present must match too.
                        mine == Some(self.golden_of(out))
                            && (!self.refvec.written(out) || mine == Some(self.val(out)))
                    }
                    ItOutput::Branch(taken) => f
                        .instr
                        .src1
                        .map(|r| {
                            semantics::branch_taken(
                                f.instr.op,
                                self.golden_of(self.map_src(r)),
                            ) == taken
                        })
                        .unwrap_or(false),
                };
                if !ok {
                    self.stats.integration.suppressed += 1;
                    return None;
                }
            }
        }
        match entry.out {
            ItOutput::Value(out) => {
                let eligible = if ic.general_reuse {
                    self.refvec.eligible_general(out)
                } else {
                    self.refvec.eligible_squash(out)
                };
                if !eligible {
                    return None;
                }
                let refcount = self.refvec.integrate(out)?;
                let status = if refcount == 1 {
                    ResultStatus::ShadowSquash
                } else {
                    let producer = self.phys.producer_seq[out.preg as usize];
                    match self.rob_index(producer).map(|i| self.rob[i].state) {
                        Some(State::WaitRs) | Some(State::WaitInt) => ResultStatus::Rename,
                        Some(State::Issued) | Some(State::Done) => ResultStatus::Issue,
                        None => ResultStatus::Retire,
                    }
                };
                Some(Integrated {
                    entry,
                    key,
                    event: IntegrationEvent {
                        kind: if entry.reverse {
                            IntegrationKind::Reverse
                        } else {
                            IntegrationKind::Direct
                        },
                        itype: IntegrationType::classify(f.instr),
                        distance: seq.saturating_sub(entry.creator_seq),
                        status,
                        refcount,
                    },
                })
            }
            ItOutput::Branch(_) => Some(Integrated {
                entry,
                key,
                event: IntegrationEvent {
                    kind: if entry.reverse {
                        IntegrationKind::Reverse
                    } else {
                        IntegrationKind::Direct
                    },
                    itype: IntegrationType::classify(f.instr),
                    distance: seq.saturating_sub(entry.creator_seq),
                    status: ResultStatus::Retire,
                    refcount: 0,
                },
            }),
        }
    }

    // ----- issue ----------------------------------------------------------

    fn do_issue(&mut self) {
        // Make completed store data visible to forwarding.
        let cycle = self.cycle;
        let phys_ready = &self.phys.ready_at;
        let phys_val = &self.phys.val;
        self.sq.fill_data(|p| {
            (phys_ready[p.preg as usize] <= cycle).then(|| phys_val[p.preg as usize])
        });

        let issue = self.cfg.core.issue;
        let mut total = issue.width;
        let mut simple = issue.simple;
        let mut complex = issue.complex;
        let mut load = issue.load;
        let mut store = issue.store;
        let mut shared = if issue.shared_ldst { 1 } else { usize::MAX };

        // Gather ready candidates with scheduling priority: loads,
        // branches and FP first, age as tie-breaker (§3.1).
        let mut cands: Vec<(u8, u64, usize)> = Vec::new();
        for (idx, d) in self.rob.iter().enumerate() {
            if d.state != State::WaitRs || !self.ready_to_issue(d) {
                continue;
            }
            let rank = match d.instr.exec_class() {
                ExecClass::Load | ExecClass::CondBranch | ExecClass::IndirectJump => 0,
                ExecClass::Complex if d.instr.op.is_fp() => 0,
                _ => 1,
            };
            cands.push((rank, d.seq, idx));
        }
        cands.sort_unstable();

        for (_, _, idx) in cands {
            if total == 0 {
                break;
            }
            let class = self.rob[idx].instr.exec_class();
            let port = match class {
                ExecClass::SimpleInt | ExecClass::CondBranch | ExecClass::IndirectJump => {
                    &mut simple
                }
                ExecClass::Complex => &mut complex,
                ExecClass::Load => {
                    if issue.shared_ldst {
                        &mut shared
                    } else {
                        &mut load
                    }
                }
                ExecClass::Store => {
                    if issue.shared_ldst {
                        &mut shared
                    } else {
                        &mut store
                    }
                }
                _ => continue,
            };
            if *port == 0 {
                continue;
            }
            *port -= 1;
            total -= 1;
            self.execute(idx);
        }
    }

    fn ready_to_issue(&self, d: &DynInst) -> bool {
        let class = d.instr.exec_class();
        // Stores need only the base for address generation.
        let needed: &[Option<PregRef>] = if class == ExecClass::Store {
            &d.srcs[..1]
        } else {
            &d.srcs[..]
        };
        if !needed.iter().flatten().all(|&s| self.src_ready(s)) {
            return false;
        }
        if class == ExecClass::Load {
            if self.cht.predicts_conflict(d.pc) && !self.sq.all_older_resolved(d.seq) {
                return false;
            }
            // If the youngest older same-word store has no data yet,
            // wait for it (forwarding would stall anyway).
            let base = d.srcs[0].expect("load has a base");
            if self.phys.ready_at[base.preg as usize] <= self.cycle {
                let addr =
                    semantics::effective_addr(d.instr.op, self.val(base), d.instr.disp);
                if let Some(e) = self.sq.youngest_older_match(d.seq, addr & !7) {
                    if e.data.is_none() {
                        return false;
                    }
                }
            } else {
                // Base arrives exactly at execute via bypass; defer the
                // forwarding question one cycle rather than guess.
                return false;
            }
        }
        true
    }

    fn execute(&mut self, idx: usize) {
        let t_exec = self.cycle + self.cfg.core.regread_delay;
        self.stats.executed += 1;
        let (instr, seq, srcs, dst_new) = {
            let d = &mut self.rob[idx];
            d.state = State::Issued;
            d.holds_rs = false;
            (d.instr, d.seq, d.srcs, d.dst_new)
        };
        self.rs_used -= 1;

        match instr.exec_class() {
            ExecClass::SimpleInt | ExecClass::Complex => {
                let a = self.val(srcs[0].expect("ALU op has src1"));
                let b = match instr.src2 {
                    Some(Operand::Reg(_)) => self.val(srcs[1].expect("reg operand renamed")),
                    Some(Operand::Imm(i)) => i as i64 as u64,
                    None => 0,
                };
                let r = semantics::alu(instr.op, a, b);
                let done = t_exec + instr.op.latency();
                let out = dst_new.expect("ALU op has a destination");
                self.rob[idx].done_at = done;
                self.phys.val[out.preg as usize] = r;
                self.phys.ready_at[out.preg as usize] = done;
            }
            ExecClass::CondBranch => {
                let c = self.val(srcs[0].expect("branch has a condition"));
                let d = &mut self.rob[idx];
                d.outcome = Some(semantics::branch_taken(instr.op, c));
                d.done_at = t_exec + 1;
            }
            ExecClass::IndirectJump => {
                let t = self.val(srcs[0].expect("ret reads ra"));
                let d = &mut self.rob[idx];
                d.actual_target = Some(t);
                d.done_at = t_exec + 1;
            }
            ExecClass::Load => {
                let base = self.val(srcs[0].expect("load has a base"));
                let addr = semantics::effective_addr(instr.op, base, instr.disp);
                let agen = t_exec + 1;
                self.stats.loads_executed += 1;
                let word_addr = addr & !7;
                let arch_word = self.arch_mem.read_word(word_addr);
                let (word, fwd) = self.sq.spec_word(seq, word_addr, arch_word);
                let value = semantics::load_from_word(instr.op, addr, word);
                let done = if fwd.is_some() {
                    agen + 2 // store-to-load forwarding takes 2 cycles
                } else {
                    self.mem.dload(agen, addr)
                };
                let d = &mut self.rob[idx];
                d.agen_at = agen;
                d.eff_addr = Some(addr);
                d.forward_seq = fwd;
                d.done_at = done;
                let out = dst_new.expect("load has a destination");
                self.phys.val[out.preg as usize] = value;
                self.phys.ready_at[out.preg as usize] = done;
            }
            ExecClass::Store => {
                let base = self.val(srcs[0].expect("store has a base"));
                let addr = semantics::effective_addr(instr.op, base, instr.disp);
                let agen = t_exec + 1;
                let data_preg = srcs[1].expect("store has data");
                let data_ready = self.phys.ready_at[data_preg.preg as usize];
                {
                    let d = &mut self.rob[idx];
                    d.agen_at = agen;
                    d.eff_addr = Some(addr);
                    d.done_at =
                        if data_ready == NO_CYCLE { NO_CYCLE } else { agen.max(data_ready) };
                }
                self.sq.set_addr(seq, addr);
                // Memory-order violation check: any younger load that
                // already obtained its value from an older source (or
                // from memory) while touching this word mis-speculated.
                let word_addr = addr & !7;
                let mut victim: Option<u64> = None;
                for y in self.rob.iter() {
                    if y.seq <= seq || y.integrated.is_some() {
                        continue;
                    }
                    if !matches!(y.state, State::Issued | State::Done) {
                        continue;
                    }
                    if !y.instr.op.is_load() {
                        continue;
                    }
                    if y.eff_addr.map(|a| a & !7) != Some(word_addr) {
                        continue;
                    }
                    if y.forward_seq.is_none_or(|fs| fs < seq) {
                        victim = Some(victim.map_or(y.seq, |v: u64| v.min(y.seq)));
                    }
                }
                if let Some(load_seq) = victim {
                    self.events.push(ViolationEvent {
                        fire_at: agen,
                        load_seq,
                        store_seq: seq,
                    });
                }
            }
            _ => unreachable!("only scheduled classes execute"),
        }
    }

    // ----- completion / resolution ----------------------------------------

    fn do_complete(&mut self) {
        // Fire due memory-order violation events (oldest load wins).
        let cycle = self.cycle;
        let mut due: Vec<ViolationEvent> = Vec::new();
        self.events.retain(|e| {
            if e.fire_at <= cycle {
                due.push(*e);
                false
            } else {
                true
            }
        });
        due.sort_unstable_by_key(|e| e.load_seq);
        for ev in due {
            let Some(idx) = self.rob_index(ev.load_seq) else { continue };
            let d = &self.rob[idx];
            if !d.instr.op.is_load() {
                continue;
            }
            self.cht.train(d.pc);
            self.stats.squashes_memorder += 1;
            let req = SquashReq {
                after_seq: ev.load_seq - 1,
                redirect: d.pc,
                checkpoint: d.pred.checkpoint,
                corrected: None,
            };
            self.squash(req);
        }

        // Completions and branch resolution.
        let mut squash_req: Option<SquashReq> = None;
        for idx in 0..self.rob.len() {
            let d = &self.rob[idx];
            match d.state {
                State::WaitInt => {
                    if let Some(ig) = &d.integrated {
                        if let ItOutput::Value(out) = ig.entry.out {
                            if self.phys.ready_at[out.preg as usize] <= self.cycle {
                                let d = &mut self.rob[idx];
                                d.done_at = self.cycle;
                                d.state = State::Done;
                            }
                        }
                    }
                }
                State::Issued => {
                    // Stores waiting on data learn their completion time
                    // as soon as the producer has scheduled it.
                    if d.instr.op.is_store() && d.done_at == NO_CYCLE {
                        let data = d.srcs[1].expect("store has data");
                        let ready = self.phys.ready_at[data.preg as usize];
                        if ready != NO_CYCLE {
                            let agen = d.agen_at;
                            self.rob[idx].done_at = agen.max(ready);
                        }
                    }
                    let d = &self.rob[idx];
                    if d.done_at <= self.cycle {
                        let seq = d.seq;
                        let instr = d.instr;
                        let outcome = d.outcome;
                        let actual_target = d.actual_target;
                        let pred = d.pred;
                        let pc = d.pc;
                        let key = d.it_key;
                        {
                            let d = &mut self.rob[idx];
                            d.state = State::Done;
                        }
                        if let Some(out) = self.rob[idx].dst_new {
                            self.refvec.mark_written(out);
                        }
                        match instr.exec_class() {
                            ExecClass::CondBranch => {
                                let taken = outcome.expect("resolved branch");
                                if self.cfg.integration.enabled {
                                    if let Some(key) = key {
                                        self.it.insert_branch(key, taken, seq);
                                    }
                                }
                                if taken != pred.taken && !self.rob[idx].resolved_misp {
                                    self.rob[idx].resolved_misp = true;
                                    let redirect =
                                        if taken { instr.target } else { pc + 1 };
                                    let req = SquashReq {
                                        after_seq: seq,
                                        redirect,
                                        checkpoint: pred.checkpoint,
                                        corrected: Some(taken),
                                    };
                                    if squash_req.is_none_or(|r| seq < r.after_seq) {
                                        squash_req = Some(req);
                                    }
                                }
                            }
                            ExecClass::IndirectJump => {
                                let target = actual_target.expect("resolved ret");
                                if target != pred.next_pc && !self.rob[idx].resolved_misp {
                                    self.rob[idx].resolved_misp = true;
                                    let req = SquashReq {
                                        after_seq: seq,
                                        redirect: target,
                                        checkpoint: pred.post_checkpoint,
                                        corrected: None,
                                    };
                                    if squash_req.is_none_or(|r| seq < r.after_seq) {
                                        squash_req = Some(req);
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
        if let Some(req) = squash_req {
            self.stats.squashes_branch += 1;
            self.squash(req);
        }
    }

    // ----- squash ----------------------------------------------------------

    fn squash(&mut self, req: SquashReq) {
        while self.rob.back().is_some_and(|d| d.seq > req.after_seq) {
            let d = self.rob.pop_back().expect("checked non-empty");
            if let Some(dst) = d.dst_log {
                let old = d.dst_old.expect("renamed dst recorded its old mapping");
                self.map.set(dst, old);
                let new = d.dst_new.expect("renamed dst allocated or integrated");
                self.refvec.unmap_squash(new);
            }
            if d.holds_rs {
                self.rs_used -= 1;
            }
            if d.holds_lsq {
                self.lsq_used -= 1;
            }
        }
        self.sq.squash_younger(req.after_seq);
        self.rename_mem.retain(|e| e.seq <= req.after_seq);
        self.events
            .retain(|e| e.load_seq <= req.after_seq && e.store_seq <= req.after_seq);
        self.frontend.repair(req.checkpoint, req.corrected);
        self.fetch_queue.clear();
        self.fetch_pc = req.redirect;
        self.fetch_blocked = false;
        self.cur_line = None;
        // Monolithic one-cycle recovery (§3.1), then the redirect.
        self.fetch_resume_at = self.cycle + 2;
    }

    // ----- retire / DIVA ----------------------------------------------------

    fn do_retire(&mut self) {
        for _ in 0..self.cfg.core.retire_width {
            let Some(head) = self.rob.front() else { return };
            if head.state != State::Done
                || self.cycle < head.done_at.saturating_add(self.cfg.core.diva_delay)
            {
                return;
            }
            if !self.retire_head() {
                return;
            }
            if self.halted {
                return;
            }
        }
    }

    /// DIVA-checks and retires the ROB head. Returns `false` when
    /// retirement must stall (write buffer) or the head was flushed.
    fn retire_head(&mut self) -> bool {
        let head = self.rob.front().expect("caller checked");
        let instr = head.instr;
        let pc = head.pc;
        let seq = head.seq;

        // DIVA verifies the retirement PC chain before anything else: a
        // retiring instruction must be the architectural successor of the
        // previous one. A mismatch is repaired like any other DIVA fault:
        // flush and refetch from the correct PC.
        if pc != self.arch_next_pc {
            let redirect = self.arch_next_pc;
            let checkpoint = head.pred.checkpoint;
            self.stats.squashes_diva += 1;
            self.squash(SquashReq { after_seq: seq - 1, redirect, checkpoint, corrected: None });
            return false;
        }

        // --- DIVA: in-order functional re-execution on architectural state.
        let g1 = instr.src1.map(|r| self.arch_regs[r.index()]);
        let gop2 = match instr.src2 {
            Some(Operand::Reg(r)) => Some(self.arch_regs[r.index()]),
            Some(Operand::Imm(i)) => Some(i as i64 as u64),
            None => None,
        };
        let mut golden_value: Option<u64> = None;
        let mut golden_ea: Option<u64> = None;
        let mut golden_taken: Option<bool> = None;
        match instr.exec_class() {
            ExecClass::SimpleInt | ExecClass::Complex => {
                golden_value = Some(semantics::alu(
                    instr.op,
                    g1.expect("ALU src"),
                    gop2.expect("ALU operand"),
                ));
            }
            ExecClass::Load => {
                let ea = semantics::effective_addr(instr.op, g1.expect("base"), instr.disp);
                golden_ea = Some(ea);
                golden_value = Some(self.arch_mem.load(instr.op, ea));
            }
            ExecClass::Store => {
                golden_ea = Some(semantics::effective_addr(
                    instr.op,
                    g1.expect("base"),
                    instr.disp,
                ));
            }
            ExecClass::CondBranch => {
                golden_taken = Some(semantics::branch_taken(instr.op, g1.expect("cond")));
            }
            ExecClass::DirectJump if instr.op == Opcode::Jsr => {
                golden_value = Some(pc + 1);
            }
            _ => {}
        }

        let fault = match instr.exec_class() {
            ExecClass::SimpleInt | ExecClass::Complex | ExecClass::Load => {
                let out = head.dst_new.expect("value op has dst");
                Some(self.val(out)) != golden_value
            }
            ExecClass::Store => head.eff_addr != golden_ea,
            ExecClass::CondBranch => head.outcome != golden_taken,
            ExecClass::IndirectJump => head.actual_target != g1,
            _ => false,
        };

        if fault {
            let integrated = head.integrated.is_some();
            self.stats.squashes_diva += 1;
            if integrated {
                self.stats.integration.mis_integrations += 1;
                if instr.op.is_load() {
                    self.stats.integration.load_mis_integrations += 1;
                    if self.cfg.integration.suppression == Suppression::Lisp {
                        self.lisp.train(pc);
                    }
                } else {
                    self.stats.integration.register_mis_integrations += 1;
                }
                let ig = head.integrated.as_ref().expect("checked");
                let (key, out) = (ig.key, ig.entry.out);
                self.it.invalidate(key, out);
            } else if instr.op.is_load() {
                // A late memory-order slip: train the CHT so the refetch
                // does not repeat it.
                self.cht.train(pc);
            }
            let req = SquashReq {
                after_seq: seq - 1, // flush includes the offender
                redirect: pc,
                checkpoint: head.pred.checkpoint,
                corrected: None,
            };
            self.squash(req);
            return false;
        }

        // --- Stores drain through the write buffer.
        if instr.op.is_store() {
            let ea = golden_ea.expect("store ea");
            if self.mem.retire_store(self.cycle, ea).is_none() {
                self.stats.stalls_writebuf += 1;
                return false;
            }
            let data = gop2.expect("store data");
            self.arch_mem.store(instr.op, ea, data);
            let _ = self.sq.pop_retire(seq);
            self.rename_mem.retain(|e| e.seq != seq);
        }

        let head = self.rob.front().expect("still present");
        // --- Architectural register update.
        if let Some(dst) = head.dst_log {
            self.arch_regs[dst.index()] =
                golden_value.expect("dst implies a value-producing op");
        }
        // --- Branch bookkeeping.
        if instr.op.is_cond_branch() {
            self.stats.cond_branches_retired += 1;
            let taken = golden_taken.expect("cond branch");
            self.frontend.resolve_cond(pc, head.pred.checkpoint, taken);
            if taken != head.pred.taken {
                self.stats.branch_mispredicts += 1;
                self.stats.resolution_latency_sum +=
                    head.done_at.saturating_sub(head.fetch_cycle);
            }
        }
        // --- Reference-count shadow decrement (§2.2: retiring an
        // instruction decrements the *shadowed* register, never its own).
        if let Some(old) = head.dst_old {
            self.refvec.unmap_shadow(old);
        }
        if head.holds_lsq {
            self.lsq_used -= 1;
        }
        // --- Integration accounting happens at retirement (§3.2).
        if let Some(ig) = &head.integrated {
            self.stats.integration.record(ig.event);
        }
        // Advance the architectural PC chain.
        self.arch_next_pc = match instr.exec_class() {
            ExecClass::CondBranch if golden_taken == Some(true) => instr.target,
            ExecClass::DirectJump => instr.target,
            ExecClass::IndirectJump => g1.expect("ret reads ra"),
            _ => pc + 1,
        };
        self.stats.retired += 1;
        self.stats.integration.retired += 1;
        if instr.op.is_load() {
            self.stats.loads_retired += 1;
        }
        if instr.op.is_store() {
            self.stats.stores_retired += 1;
        }
        if instr.op == Opcode::Halt {
            self.halted = true;
        }
        self.rob.pop_front();
        true
    }

    // ----- introspection (tests/diagnostics) -------------------------------

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Statistics so far. Core counters (cycles, retired, stalls, …)
    /// are live after every [`Simulator::step`]; the memory-hierarchy
    /// block (`mem`) is snapshotted lazily — by [`Simulator::run_until`]
    /// and [`Simulator::result`], not per step — to keep the cycle loop
    /// lean. Use [`Simulator::result`] when `mem` must be current.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Architectural register value (for tests).
    #[must_use]
    pub fn arch_reg(&self, r: rix_isa::LogReg) -> u64 {
        self.arch_regs[r.index()]
    }

    /// Architectural memory word (for tests).
    #[must_use]
    pub fn arch_mem_word(&self, addr: u64) -> u64 {
        self.arch_mem.read_word(addr)
    }

    /// Whether the program has halted.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }
}
